"""Shared helpers for the benchmark suite.

Every benchmark file regenerates one table or figure from EXPERIMENTS.md.
Conventions:

- Grammars are pre-built at module import so pytest-benchmark timings
  measure only the phase under study.
- Each file ends with a ``test_report_*`` that assembles and prints the
  full table/series (visible with ``pytest benchmarks/ --benchmark-only -s``);
  the printed rows are what EXPERIMENTS.md records.
- Machine-independent operation counts accompany every timing.
"""

from __future__ import annotations

from typing import Dict, List

from repro.automaton import LR0Automaton
from repro.grammar.grammar import Grammar
from repro.grammars import corpus

#: The corpus subset used for per-grammar tables, smallest to largest —
#: mirrors the paper's practice of reporting rows per real grammar.
TABLE_GRAMMARS: List[str] = [
    "lr0_demo",
    "expr",
    "lvalue",
    "lalr_not_slr",
    "lr1_not_lalr",
    "unit_chain",
    "epsilon_heavy",
    "json",
    "lua_like_chunks",
    "mini_pascal_det",
    "mini_c",
    "algol_like",
    "toy_java",
]


def load_augmented(name: str) -> Grammar:
    return corpus.load(name, augment=True)


def prepared() -> "Dict[str, tuple]":
    """(grammar, automaton) per table grammar, built once per module."""
    out = {}
    for name in TABLE_GRAMMARS:
        grammar = load_augmented(name)
        out[name] = (grammar, LR0Automaton(grammar))
    return out


def banner(title: str) -> str:
    rule = "=" * max(8, len(title))
    return f"\n{rule}\n{title}\n{rule}"

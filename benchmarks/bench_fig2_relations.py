"""Figure 2 — relation structure vs nullable-chain length.

On ``S -> X1 ... Xn t; Xi -> ai | %empty`` the `reads` relation forms
long chains (reading "through" the nullable run), so relation size and
Digraph traversal work grow quadratically in n while states stay linear —
the structural regime the Digraph's single-pass traversal is built for.

Regenerate:  pytest benchmarks/bench_fig2_relations.py --benchmark-only -s
"""

import pytest

from repro.automaton import LR0Automaton
from repro.bench import format_series
from repro.core import LalrAnalysis
from repro.core.relations import LalrRelations
from repro.grammars import nullable_chain_family

from common import banner

SIZES = [2, 4, 8, 16, 32]
PREPARED = {}
for n in SIZES:
    grammar = nullable_chain_family(n).augmented()
    PREPARED[n] = (grammar, LR0Automaton(grammar))


@pytest.mark.parametrize("n", SIZES)
def test_relation_construction(benchmark, n):
    grammar, automaton = PREPARED[n]
    benchmark(lambda: LalrRelations(automaton))


@pytest.mark.parametrize("n", SIZES)
def test_full_analysis(benchmark, n):
    grammar, automaton = PREPARED[n]
    benchmark(lambda: LalrAnalysis(grammar, automaton))


def test_report_fig2(benchmark):
    def build():
        series = {
            "states": [], "nt_transitions": [], "reads_edges": [],
            "includes_edges": [], "digraph_unions": [], "reads_sccs": [],
        }
        for n in SIZES:
            grammar, automaton = PREPARED[n]
            analysis = LalrAnalysis(grammar, automaton)
            stats = analysis.relations.stats()
            series["states"].append(len(automaton))
            series["nt_transitions"].append(stats["nonterminal_transitions"])
            series["reads_edges"].append(stats["reads_edges"])
            series["includes_edges"].append(stats["includes_edges"])
            series["digraph_unions"].append(analysis.stats.unions)
            series["reads_sccs"].append(len(analysis.reads_sccs))
        return series

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    print(banner("Figure 2 — relation sizes vs nullable-chain length n"))
    print(format_series("n", series, SIZES))
    # Shape assertions: reads edges grow superlinearly; no spurious SCCs.
    assert series["reads_edges"][-1] > 4 * series["reads_edges"][-3]
    assert all(count == 0 for count in series["reads_sccs"])

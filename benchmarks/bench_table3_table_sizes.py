"""Table 3 — automaton/table sizes and conflict counts per construction.

Quantifies the size argument for LALR: the LALR table lives on the LR(0)
automaton while canonical LR(1) multiplies states; and the resolving-power
argument: conflicts per construction step down LR(0) -> SLR -> LALR.

Regenerate:  pytest benchmarks/bench_table3_table_sizes.py --benchmark-only -s
"""

import pytest

from repro.automaton import LR1Automaton
from repro.bench import format_table
from repro.tables import (
    build_clr_table,
    build_lalr_table,
    build_lr0_table,
    build_slr_table,
)

from common import TABLE_GRAMMARS, banner, prepared

PREPARED = prepared()

BUILDERS = {
    "lr0": build_lr0_table,
    "slr1": build_slr_table,
    "lalr1": build_lalr_table,
}


@pytest.mark.parametrize("name", TABLE_GRAMMARS)
@pytest.mark.parametrize("method", list(BUILDERS))
def test_build_lr0_based_table(benchmark, name, method):
    grammar, automaton = PREPARED[name]
    benchmark(lambda: BUILDERS[method](grammar, automaton))


@pytest.mark.parametrize("name", ["expr", "json", "mini_c"])
def test_build_clr_table(benchmark, name):
    grammar, _ = PREPARED[name]
    benchmark(lambda: build_clr_table(grammar))


def test_report_table3(benchmark):
    def build():
        rows = []
        for name in TABLE_GRAMMARS:
            grammar, automaton = PREPARED[name]
            lr0 = build_lr0_table(grammar, automaton)
            slr = build_slr_table(grammar, automaton)
            lalr = build_lalr_table(grammar, automaton)
            clr = build_clr_table(grammar, LR1Automaton(grammar))
            rows.append([
                name,
                lalr.n_states,
                clr.n_states,
                round(clr.n_states / lalr.n_states, 2),
                lalr.size_cells(),
                clr.size_cells(),
                len(lr0.unresolved_conflicts),
                len(slr.unresolved_conflicts),
                len(lalr.unresolved_conflicts),
                len(clr.unresolved_conflicts),
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = [
        "grammar", "lalr_states", "clr_states", "clr/lalr",
        "lalr_cells", "clr_cells",
        "lr0_conf", "slr_conf", "lalr_conf", "clr_conf",
    ]
    print(banner("Table 3 — table sizes and conflicts per construction"))
    print(format_table(headers, rows))

"""Table 1 — grammar & automaton statistics for the corpus.

Columns mirror the per-grammar descriptive table every LALR paper opens
with: grammar sizes, LR(0) automaton sizes, and the sizes of the four
DeRemer-Pennello relations the algorithm's cost is linear in.

Regenerate:  pytest benchmarks/bench_table1_grammar_stats.py --benchmark-only -s
"""

import pytest

from repro.automaton import LR0Automaton
from repro.bench import format_table, grammar_row

from common import TABLE_GRAMMARS, banner, load_augmented

GRAMMARS = {name: load_augmented(name) for name in TABLE_GRAMMARS}


@pytest.mark.parametrize("name", TABLE_GRAMMARS)
def test_lr0_automaton_construction(benchmark, name):
    """Time to build the LR(0) automaton (input to every method)."""
    grammar = GRAMMARS[name]
    benchmark(lambda: LR0Automaton(grammar))


def test_report_table1(benchmark):
    columns = [
        "terminals", "nonterminals", "productions", "states",
        "nonterminal_transitions", "reads_edges", "includes_edges",
        "lookback_edges", "reads_sccs", "includes_sccs",
    ]

    def build():
        return [
            [name] + [grammar_row(GRAMMARS[name])[c] for c in columns]
            for name in TABLE_GRAMMARS
        ]

    rows = benchmark(build)
    print(banner("Table 1 — grammar and relation statistics"))
    print(format_table(["grammar"] + columns, rows))

"""Figure 3 — end-to-end parser throughput with LALR vs CLR tables.

The consumer-side result: tables built from DeRemer-Pennello lookaheads
drive the same engine at the same speed as canonical-LR(1) tables (the
actions taken are identical on LR(1)-deterministic inputs) while being a
fraction of the size.  Throughput is tokens/second over generated
sentences.

Regenerate:  pytest benchmarks/bench_fig3_parse_throughput.py --benchmark-only -s
"""

import pytest

from repro.analysis import SentenceGenerator
from repro.bench import Timer, format_table
from repro.grammars import corpus
from repro.parser import Parser
from repro.tables import build_clr_table, build_lalr_table

from common import banner

WORKLOADS = ["expr", "json", "mini_pascal_det", "toy_java"]


def _sentences(grammar, count=150, budget=400):
    generator = SentenceGenerator(grammar, seed=20)
    return generator.sentences(count, budget=budget)


PREPARED = {}
for name in WORKLOADS:
    grammar = corpus.load(name, augment=True)
    PREPARED[name] = {
        "grammar": grammar,
        "lalr": Parser(build_lalr_table(grammar)),
        "clr": Parser(build_clr_table(grammar)),
        "sentences": _sentences(grammar),
    }


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("method", ["lalr", "clr"])
def test_parse_throughput(benchmark, name, method):
    bundle = PREPARED[name]
    parser = bundle[method]
    sentences = bundle["sentences"]

    def parse_all():
        for sentence in sentences:
            parser.parse(sentence)

    benchmark(parse_all)


def test_report_fig3(benchmark):
    def build():
        rows = []
        for name in WORKLOADS:
            bundle = PREPARED[name]
            tokens = sum(len(s) for s in bundle["sentences"])
            speeds = {}
            for method in ("lalr", "clr"):
                parser = bundle[method]
                samples = []
                for _ in range(3):  # warm + median-of-3
                    with Timer() as timer:
                        for sentence in bundle["sentences"]:
                            parser.parse(sentence)
                    samples.append(timer.seconds)
                samples.sort()
                speeds[method] = tokens / samples[1] if samples[1] else 0.0
            rows.append([
                name,
                tokens,
                bundle["lalr"].table.n_states,
                bundle["clr"].table.n_states,
                int(speeds["lalr"]),
                int(speeds["clr"]),
                round(speeds["lalr"] / speeds["clr"], 2) if speeds["clr"] else 0,
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = [
        "grammar", "tokens", "lalr_states", "clr_states",
        "lalr_tok_per_s", "clr_tok_per_s", "lalr/clr_speed",
    ]
    print(banner("Figure 3 — parse throughput, LALR vs CLR tables"))
    print(format_table(headers, rows))
    # Same-engine sanity: speeds within 2x of each other; trees identical
    # is asserted in the test suite.
    for row in rows:
        assert 0.4 <= row[-1] <= 2.5

"""Ablation A — the Digraph SCC traversal vs naive fixpoint relaxation.

Isolates the paper's algorithmic core: evaluate the same Follow-set
specification over the same `includes` relations with (a) the one-pass
SCC-collapsing Digraph and (b) repeated relaxation sweeps.  The unit-chain
family stretches the relation's diameter, which is exactly the parameter
the naive method's cost multiplies by.

Regenerate:  pytest benchmarks/bench_ablation_digraph.py --benchmark-only -s
"""

import pytest

from repro.automaton import LR0Automaton
from repro.bench import format_table, time_callable
from repro.core import LalrAnalysis
from repro.core.digraph import DigraphStats, digraph, naive_closure
from repro.core.relations import LalrRelations
from repro.grammars import unit_chain_family

from common import banner

SIZES = [4, 8, 16, 32]


def _setting(n):
    grammar = unit_chain_family(n).augmented()
    automaton = LR0Automaton(grammar)
    relations = LalrRelations(automaton)
    analysis = LalrAnalysis(grammar, automaton)
    read_sets = analysis.read_sets
    return relations, read_sets


PREPARED = {n: _setting(n) for n in SIZES}


def follow_via_digraph(relations, read_sets, stats=None):
    return digraph(
        relations.transitions,
        lambda t: relations.includes[t],
        lambda t: read_sets[t],
        stats,
    )[0]


def follow_via_naive(relations, read_sets, stats=None, reverse_edges=False):
    return naive_closure(
        relations.transitions,
        lambda t: relations.includes[t],
        lambda t: read_sets[t],
        stats,
        reverse_edges=reverse_edges,
    )


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("variant", ["digraph", "naive"])
def test_follow_evaluation(benchmark, n, variant):
    relations, read_sets = PREPARED[n]
    fn = follow_via_digraph if variant == "digraph" else follow_via_naive
    benchmark(lambda: fn(relations, read_sets))


def test_report_ablation_digraph(benchmark):
    def build():
        rows = []
        for n in SIZES:
            relations, read_sets = PREPARED[n]
            fast = follow_via_digraph(relations, read_sets)
            slow = follow_via_naive(relations, read_sets)
            assert fast == slow, "ablation variants disagree!"
            fast_stats = DigraphStats()
            best_stats, worst_stats = DigraphStats(), DigraphStats()
            follow_via_digraph(relations, read_sets, fast_stats)
            follow_via_naive(relations, read_sets, best_stats)
            worst = follow_via_naive(
                relations, read_sets, worst_stats, reverse_edges=True
            )
            assert worst == fast, "adversarial order changed the fixpoint!"
            fast_time = time_callable(
                lambda: follow_via_digraph(relations, read_sets), repeats=5
            )
            worst_time = time_callable(
                lambda: follow_via_naive(relations, read_sets, reverse_edges=True),
                repeats=5,
            )
            rows.append([
                n,
                len(relations.transitions),
                fast_stats.unions,
                best_stats.unions,
                worst_stats.unions,
                round(worst_stats.unions / max(1, fast_stats.unions), 2),
                fast_time * 1e3,
                worst_time * 1e3,
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = [
        "n", "transitions", "digraph_unions", "naive_best_unions",
        "naive_worst_unions", "worst/digraph", "digraph_ms", "naive_worst_ms",
    ]
    print(banner("Ablation A — Digraph vs naive fixpoint (includes relation)"))
    print(format_table(headers, rows))
    # Shape: under adversarial edge order the union-count gap widens with
    # the chain depth (the Digraph is order-insensitive by construction).
    ratios = [row[5] for row in rows]
    assert ratios[-1] > ratios[0]

"""Ablation B — int-bitmask terminal sets vs frozenset-based sets.

The DP pipeline unions terminal sets constantly; this ablation re-runs
the two Digraph phases with Python frozensets standing in for the int
masks, quantifying the representation choice (the paper used bit vectors
for the same reason).

Regenerate:  pytest benchmarks/bench_ablation_bitset.py --benchmark-only -s
"""

import pytest

from repro.automaton import LR0Automaton
from repro.bench import format_table, time_callable
from repro.core.relations import LalrRelations

from common import TABLE_GRAMMARS, banner, load_augmented

SUBSET = ["expr", "json", "lua_like_chunks", "mini_pascal_det", "mini_c"]


def _setting(name):
    grammar = load_augmented(name)
    automaton = LR0Automaton(grammar)
    return LalrRelations(automaton)


PREPARED = {name: _setting(name) for name in SUBSET}


def la_with_bitsets(relations):
    """The production pipeline: int masks all the way through."""
    from repro.core.digraph import digraph

    read, _ = digraph(
        relations.transitions,
        lambda t: relations.reads[t],
        lambda t: relations.dr[t],
    )
    follow, _ = digraph(
        relations.transitions,
        lambda t: relations.includes[t],
        lambda t: read[t],
    )
    la = {}
    for site, lookbacks in relations.lookback.items():
        mask = 0
        for transition in lookbacks:
            mask |= follow[transition]
        la[site] = mask
    return la


def la_with_frozensets(relations):
    """Same traversals with frozenset unions (the ablated representation)."""
    from repro.core.digraph import digraph

    vocabulary = relations.vocabulary
    dr_sets = {t: vocabulary.symbols(m) for t, m in relations.dr.items()}

    # digraph() unions with `|=`, which frozensets support; the `!= 0`
    # emptiness checks aren't used by the traversal, so it runs unchanged.
    read, _ = digraph(
        relations.transitions,
        lambda t: relations.reads[t],
        lambda t: dr_sets[t],
    )
    follow, _ = digraph(
        relations.transitions,
        lambda t: relations.includes[t],
        lambda t: read[t],
    )
    la = {}
    for site, lookbacks in relations.lookback.items():
        combined = frozenset()
        for transition in lookbacks:
            combined |= follow[transition]
        la[site] = combined
    return la


@pytest.mark.parametrize("name", SUBSET)
@pytest.mark.parametrize("variant", ["bitset", "frozenset"])
def test_representation(benchmark, name, variant):
    relations = PREPARED[name]
    fn = la_with_bitsets if variant == "bitset" else la_with_frozensets
    benchmark(lambda: fn(relations))


def test_report_ablation_bitset(benchmark):
    def build():
        rows = []
        for name in SUBSET:
            relations = PREPARED[name]
            bit_la = la_with_bitsets(relations)
            set_la = la_with_frozensets(relations)
            # Semantics must be identical.
            vocabulary = relations.vocabulary
            assert {
                site: vocabulary.symbols(mask) for site, mask in bit_la.items()
            } == set_la
            bit_time = time_callable(lambda: la_with_bitsets(relations), repeats=5)
            set_time = time_callable(lambda: la_with_frozensets(relations), repeats=5)
            rows.append([
                name,
                len(relations.transitions),
                bit_time * 1e3,
                set_time * 1e3,
                round(set_time / bit_time, 2),
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["grammar", "transitions", "bitset_ms", "frozenset_ms", "frozen/bit"]
    print(banner("Ablation B — terminal-set representation inside the pipeline"))
    print(format_table(headers, rows))

"""Ablation C — default-reduction table compression.

Quantifies the classic generator optimisation applied on top of the
DP-built LALR tables: populated cells before/after compression and the
parse-throughput cost of the extra default-lookup indirection (expected
to be near zero — the dict miss plus a list index).

Regenerate:  pytest benchmarks/bench_ablation_compress.py --benchmark-only -s
"""

import pytest

from repro.analysis import SentenceGenerator
from repro.bench import Timer, format_table
from repro.parser import Parser
from repro.tables import build_lalr_table
from repro.tables.compress import compress

from common import banner, prepared

PREPARED = prepared()
NAMES = ["expr", "json", "lua_like_chunks", "mini_pascal_det", "mini_c"]

TABLES = {}
for name in NAMES:
    grammar, automaton = PREPARED[name]
    table = build_lalr_table(grammar, automaton)
    TABLES[name] = (grammar, table, compress(table))


@pytest.mark.parametrize("name", NAMES)
def test_compression_time(benchmark, name):
    _, table, _ = TABLES[name]
    benchmark(lambda: compress(table))


@pytest.mark.parametrize("name", ["expr", "mini_pascal_det"])
@pytest.mark.parametrize("variant", ["plain", "compressed"])
def test_parse_with_table_variant(benchmark, name, variant):
    grammar, table, compressed = TABLES[name]
    parser = Parser(table if variant == "plain" else compressed)
    sentences = SentenceGenerator(grammar, seed=13).sentences(40, budget=60)

    def parse_all():
        for sentence in sentences:
            parser.parse(sentence)

    benchmark(parse_all)


def test_report_ablation_compress(benchmark):
    def build():
        rows = []
        for name in NAMES:
            grammar, table, compressed = TABLES[name]
            plain_parser = Parser(table)
            compact_parser = Parser(compressed)
            sentences = SentenceGenerator(grammar, seed=13).sentences(40, budget=60)
            tokens = sum(len(s) for s in sentences) or 1
            with Timer() as plain_time:
                for sentence in sentences:
                    plain_parser.parse(sentence)
            with Timer() as compact_time:
                for sentence in sentences:
                    compact_parser.parse(sentence)
            rows.append([
                name,
                table.size_cells(),
                compressed.size_cells(),
                round(table.size_cells() / compressed.size_cells(), 2),
                int(tokens / plain_time.seconds) if plain_time.seconds else 0,
                int(tokens / compact_time.seconds) if compact_time.seconds else 0,
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = [
        "grammar", "cells", "compressed_cells", "ratio",
        "plain_tok_per_s", "compressed_tok_per_s",
    ]
    print(banner("Ablation C — default-reduction compression"))
    print(format_table(headers, rows))
    for row in rows:
        assert row[3] >= 1.0  # compression never grows the table

"""Table 4 — the classification matrix over the whole corpus.

Each grammar's expected LR-hierarchy class against the detected one, plus
the reads-SCC quick not-LR(k) verdict.  This is the correctness table: a
single mismatch would falsify the reproduction.

Regenerate:  pytest benchmarks/bench_table4_classification.py --benchmark-only -s
"""

import pytest

from repro.bench import format_table
from repro.grammars import corpus
from repro.tables import classify

ALL_NAMES = [e.name for e in corpus.all_entries()]
GRAMMARS = {name: corpus.load(name) for name in ALL_NAMES}


@pytest.mark.parametrize("name", ALL_NAMES)
def test_classification_time(benchmark, name):
    grammar = GRAMMARS[name]
    benchmark(lambda: classify(grammar))


def test_report_table4(benchmark):
    def build():
        rows = []
        mismatches = 0
        for entry in corpus.all_entries():
            verdict = classify(GRAMMARS[entry.name])
            ok = (
                verdict.grammar_class == entry.expected_class
                and verdict.not_lr_k == entry.expected_not_lr_k
            )
            mismatches += 0 if ok else 1
            rows.append([
                entry.name,
                str(entry.expected_class),
                str(verdict.grammar_class),
                verdict.is_lr0,
                verdict.is_slr1,
                verdict.is_lalr1,
                verdict.is_lr1,
                verdict.not_lr_k,
                ok,
            ])
        return rows, mismatches

    rows, mismatches = benchmark.pedantic(build, rounds=1, iterations=1)
    from common import banner

    headers = [
        "grammar", "expected", "detected",
        "lr0", "slr1", "lalr1", "lr1", "not_lr_k", "match",
    ]
    print(banner("Table 4 — LR-hierarchy classification matrix"))
    print(format_table(headers, rows))
    print(f"\nmismatches: {mismatches} / {len(rows)}")
    assert mismatches == 0

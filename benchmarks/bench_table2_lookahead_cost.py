"""Table 2 — the cost of computing LALR(1) look-ahead sets, per method.

The paper's central table: DeRemer-Pennello versus the techniques it
displaced, on the same grammars, charged only for the lookahead phase
(the shared LR(0) automaton is prebuilt).  Wall time comes from
pytest-benchmark; the report adds machine-independent operation counts.

Expected shape: deremer_pennello beats propagation (factor grows with
grammar size) and lr1_merge (largest factor); slr_follow is cheapest but
solves a weaker problem (see Table 4).

Regenerate:  pytest benchmarks/bench_table2_lookahead_cost.py --benchmark-only -s
"""

import pytest

from repro.bench import METHODS, cost_row, format_table, measure_methods

from common import TABLE_GRAMMARS, banner, prepared

PREPARED = prepared()


@pytest.mark.parametrize("name", TABLE_GRAMMARS)
@pytest.mark.parametrize("method", list(METHODS))
def test_lookahead_method(benchmark, name, method):
    grammar, automaton = PREPARED[name]
    benchmark(lambda: METHODS[method](grammar, automaton))


def test_report_table2(benchmark):
    def build():
        rows = []
        for name in TABLE_GRAMMARS:
            grammar, automaton = PREPARED[name]
            times = measure_methods(grammar, repeats=3)
            counts = cost_row(grammar)
            rows.append([
                name,
                times["deremer_pennello"] * 1e3,
                times["propagation"] * 1e3,
                times["lr1_merge"] * 1e3,
                times["slr_follow"] * 1e3,
                round(times["propagation"] / times["deremer_pennello"], 1),
                round(times["lr1_merge"] / times["deremer_pennello"], 1),
                counts["dp_unions"],
                counts["prop_unions"],
                counts["lr1_states"],
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = [
        "grammar", "dp_ms", "prop_ms", "merge_ms", "slr_ms",
        "prop/dp", "merge/dp", "dp_unions", "prop_unions", "lr1_states",
    ]
    print(banner("Table 2 — lookahead computation cost per method"))
    print(format_table(headers, rows))

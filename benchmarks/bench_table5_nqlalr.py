"""Table 5 — NQLALR(1) precision loss (the paper's §7 case against it).

NQLALR attaches Follow sets to goto-target states instead of transitions
(cheaper bookkeeping, fewer nodes) but merges left contexts: its LA sets
are supersets of the exact ones.  The table reports, per grammar, how
many nodes the shortcut saves, how many reduction sites it loosens, and
whether the looseness manufactures conflicts on an LALR(1)-clean grammar.

Regenerate:  pytest benchmarks/bench_table5_nqlalr.py --benchmark-only -s
"""

import pytest

from repro.baselines.nqlalr import NqlalrAnalysis, nqlalr_overapproximation_sites
from repro.bench import format_table
from repro.tables import build_lalr_table

from common import banner, prepared

PREPARED = prepared()
NAMES = list(PREPARED) + ["nqlalr_trap"]

from common import load_augmented
from repro.automaton import LR0Automaton

_trap = load_augmented("nqlalr_trap")
PREPARED["nqlalr_trap"] = (_trap, LR0Automaton(_trap))


@pytest.mark.parametrize("name", NAMES)
def test_nqlalr_time(benchmark, name):
    grammar, automaton = PREPARED[name]
    benchmark(lambda: NqlalrAnalysis(grammar, automaton))


def test_report_table5(benchmark):
    def build():
        rows = []
        for name in NAMES:
            grammar, automaton = PREPARED[name]
            analysis = NqlalrAnalysis(grammar, automaton)
            nq_nodes, transitions = analysis.merged_node_count()
            loose_sites = nqlalr_overapproximation_sites(grammar, automaton)
            exact_table = build_lalr_table(grammar, automaton)
            nq_table = build_lalr_table(
                grammar, automaton, analysis.lookahead_table()
            )
            spurious = (
                len(nq_table.unresolved_conflicts)
                - len(exact_table.unresolved_conflicts)
            )
            rows.append([
                name,
                transitions,
                nq_nodes,
                len(loose_sites),
                sum(len(extra) for _, extra in loose_sites),
                len(exact_table.unresolved_conflicts),
                len(nq_table.unresolved_conflicts),
                spurious,
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = [
        "grammar", "exact_nodes", "nq_nodes", "loose_sites",
        "spurious_terminals", "exact_conflicts", "nq_conflicts", "spurious_conflicts",
    ]
    print(banner("Table 5 — NQLALR(1) merging: node savings vs precision loss"))
    print(format_table(headers, rows))
    # The trap grammar must show spurious conflicts; none may show fewer.
    by_name = {row[0]: row for row in rows}
    assert by_name["nqlalr_trap"][-1] > 0
    assert all(row[-1] >= 0 for row in rows)

"""Figure 1 — lookahead-computation time vs grammar size, per method.

The scaling figure behind the paper's efficiency claim: on the
expression-grammar family G(n) (n precedence levels), DeRemer-Pennello
grows roughly linearly with the automaton, propagation grows faster
(per-kernel-item closures), and LR(1)-merge grows fastest (it rebuilds
the whole item system with lookaheads).

Regenerate:  pytest benchmarks/bench_fig1_scaling.py --benchmark-only -s
"""

import pytest

from repro.automaton import LR0Automaton
from repro.bench import METHODS, format_series, time_callable
from repro.grammars import expression_family

from common import banner

SIZES = [2, 4, 8, 16, 32]
PREPARED = {}
for n in SIZES:
    grammar = expression_family(n).augmented()
    PREPARED[n] = (grammar, LR0Automaton(grammar))


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("method", ["deremer_pennello", "propagation", "lr1_merge"])
def test_scaling_point(benchmark, n, method):
    grammar, automaton = PREPARED[n]
    benchmark(lambda: METHODS[method](grammar, automaton))


def test_report_fig1(benchmark):
    def build():
        series = {"dp_ms": [], "prop_ms": [], "merge_ms": [],
                  "prop/dp": [], "merge/dp": []}
        for n in SIZES:
            grammar, automaton = PREPARED[n]
            timings = {
                method: time_callable(
                    lambda m=method: METHODS[m](grammar, automaton), repeats=3
                )
                for method in ("deremer_pennello", "propagation", "lr1_merge")
            }
            series["dp_ms"].append(timings["deremer_pennello"] * 1e3)
            series["prop_ms"].append(timings["propagation"] * 1e3)
            series["merge_ms"].append(timings["lr1_merge"] * 1e3)
            series["prop/dp"].append(
                timings["propagation"] / timings["deremer_pennello"]
            )
            series["merge/dp"].append(
                timings["lr1_merge"] / timings["deremer_pennello"]
            )
        return series

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    print(banner("Figure 1 — lookahead time vs expression-family size n"))
    print(format_series("n", series, SIZES))
    # Shape assertion: at the largest size both baselines cost more than DP.
    assert series["prop/dp"][-1] > 1.0
    assert series["merge/dp"][-1] > 1.0

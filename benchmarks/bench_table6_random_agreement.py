"""Table 6 — robustness sweep over random grammars.

The equivalence theorem (LA_DP == LA_merge == LA_propagation) and the
superset property (LA ⊆ LA_NQLALR ⊆ FOLLOW) verified over a population
of machine-generated grammars, bucketed by shape; plus the LR-class
distribution the random model produces.  This is the evaluation analogue
of the suite's property tests: no cherry-picking — every generated
grammar must agree, and the table records how many did.

Regenerate:  pytest benchmarks/bench_table6_random_agreement.py --benchmark-only -s
"""

import pytest

from repro.automaton import LR0Automaton
from repro.baselines import (
    MergedLr1Analysis,
    NqlalrAnalysis,
    PropagationAnalysis,
    SlrAnalysis,
)
from repro.bench import format_table
from repro.core import LalrAnalysis
from repro.grammars import random_grammar
from repro.tables import classify

from common import banner

#: (label, knobs, how many grammars)
BUCKETS = [
    ("small",          dict(n_nonterminals=3, n_terminals=3, epsilon_weight=0.1), 25),
    ("nullable-heavy", dict(n_nonterminals=4, n_terminals=3, epsilon_weight=0.35), 25),
    ("wide",           dict(n_nonterminals=6, n_terminals=5, epsilon_weight=0.15), 25),
]


def _grammars(label, knobs, count):
    import zlib

    out = []
    # Deterministic per-label seed (str hash is randomised per process).
    base = zlib.crc32(label.encode()) % 100_000
    for i in range(count):
        try:
            out.append(random_grammar(base + i, **knobs))
        except Exception:
            continue
    return out


@pytest.mark.parametrize("label,knobs,count", BUCKETS)
def test_equivalence_sweep(benchmark, label, knobs, count):
    grammars = _grammars(label, knobs, count)

    def verify_all():
        agreed = 0
        for grammar in grammars:
            augmented = grammar.augmented()
            automaton = LR0Automaton(augmented)
            dp = LalrAnalysis(augmented, automaton).lookahead_table()
            merged = MergedLr1Analysis(augmented, automaton).lookahead_table()
            if dp == merged:
                agreed += 1
        return agreed

    agreed = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    assert agreed == len(grammars)


def test_report_table6(benchmark):
    def build():
        rows = []
        for label, knobs, count in BUCKETS:
            grammars = _grammars(label, knobs, count)
            sites = 0
            dp_eq_merge = dp_eq_prop = nq_superset = slr_superset = 0
            classes = {}
            for grammar in grammars:
                augmented = grammar.augmented()
                automaton = LR0Automaton(augmented)
                dp = LalrAnalysis(augmented, automaton).lookahead_table()
                merged = MergedLr1Analysis(augmented, automaton).lookahead_table()
                propagated = PropagationAnalysis(augmented, automaton).lookahead_table()
                nq = NqlalrAnalysis(augmented, automaton).lookahead_table()
                slr = SlrAnalysis(augmented, automaton).lookahead_table()
                sites += len(dp)
                dp_eq_merge += dp == merged
                dp_eq_prop += dp == propagated
                nq_superset += all(dp[s] <= nq[s] for s in dp)
                slr_superset += all(dp[s] <= slr[s] for s in dp)
                verdict = classify(grammar)
                key = str(verdict.grammar_class)
                classes[key] = classes.get(key, 0) + 1
            histogram = ", ".join(f"{k}:{v}" for k, v in sorted(classes.items()))
            n = len(grammars)
            rows.append([
                label, n, sites,
                f"{dp_eq_merge}/{n}", f"{dp_eq_prop}/{n}",
                f"{nq_superset}/{n}", f"{slr_superset}/{n}",
                histogram,
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = [
        "bucket", "grammars", "reduce_sites",
        "dp==merge", "dp==prop", "dp⊆nqlalr", "dp⊆slr", "class distribution",
    ]
    print(banner("Table 6 — random-grammar agreement sweep"))
    print(format_table(headers, rows))
    for row in rows:
        n = row[1]
        assert row[3] == f"{n}/{n}" and row[4] == f"{n}/{n}"
        assert row[5] == f"{n}/{n}" and row[6] == f"{n}/{n}"

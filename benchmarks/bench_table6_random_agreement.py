"""Table 6 — robustness sweep over random grammars.

The equivalence theorem (LA_DP == LA_merge == LA_propagation) and its
neighbouring invariants verified over a population of machine-generated
grammars, bucketed by shape.  Since the fuzz subsystem landed, the checks
are the **shared oracle stack** (:mod:`repro.fuzz.oracles`) — the same
code the ``repro fuzz`` campaigns and the property tests run — so this
table is literally a fixed-seed fuzz campaign rendered as a benchmark:
no cherry-picking, every generated grammar must agree, and the table
records how many did per oracle.

Regenerate:  pytest benchmarks/bench_table6_random_agreement.py --benchmark-only -s
"""

import pytest

from repro.bench import format_table
from repro.fuzz.campaign import DEFAULT_BUCKETS, bucket_grammars
from repro.fuzz.oracles import oracle_names, run_oracles
from repro.tables import classify

from common import banner

#: (bucket, how many grammars) — the first buckets of the campaign's
#: default sweep, at benchmark-sized populations.
BUCKETS = [(bucket, 25) for bucket in DEFAULT_BUCKETS[:4]]


@pytest.mark.parametrize(
    "bucket,count", BUCKETS, ids=[b.label for b, _ in BUCKETS]
)
def test_equivalence_sweep(benchmark, bucket, count):
    grammars = bucket_grammars(bucket, count, campaign_seed=6)

    def verify_all():
        agreed = 0
        for grammar in grammars:
            if not run_oracles(grammar, names=["lookahead-equivalence"]):
                agreed += 1
        return agreed

    agreed = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    assert agreed == len(grammars)


def test_report_table6(benchmark):
    stack = oracle_names()

    def build():
        rows = []
        for bucket, count in BUCKETS:
            grammars = bucket_grammars(bucket, count, campaign_seed=6)
            agreements = {name: 0 for name in stack}
            classes = {}
            for grammar in grammars:
                failed = {
                    failure.oracle for failure in run_oracles(grammar, seed=6)
                }
                for name in stack:
                    agreements[name] += name not in failed
                verdict = classify(grammar)
                key = str(verdict.grammar_class)
                classes[key] = classes.get(key, 0) + 1
            histogram = ", ".join(f"{k}:{v}" for k, v in sorted(classes.items()))
            n = len(grammars)
            rows.append(
                [bucket.label, n]
                + [f"{agreements[name]}/{n}" for name in stack]
                + [histogram]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["bucket", "grammars"] + stack + ["class distribution"]
    print(banner("Table 6 — random-grammar agreement sweep (oracle stack)"))
    print(format_table(headers, rows))
    for row in rows:
        n = row[1]
        for column in row[2 : 2 + len(stack)]:
            assert column == f"{n}/{n}", row

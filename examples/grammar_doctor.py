#!/usr/bin/env python3
"""Grammar doctor: diagnose a grammar's place in the LR hierarchy.

Shows what the DeRemer-Pennello machinery gives a grammar *author*:
- classification (LR(0) / SLR(1) / LALR(1) / LR(1) / not LR(1)),
- the instant not-LR(k) verdict from reads-relation cycles,
- every conflict, with the LR(0) state's items for context and a
  concrete witness input that reaches it,
- a bounded ambiguity check (is the grammar provably ambiguous, with an
  example sentence, or merely deterministic-hard?),
- where SLR's FOLLOW over-approximates the true LALR look-aheads
  (exactly the information the paper's per-state Follow sets add).

Run:  python examples/grammar_doctor.py                # demo corpus tour
      python examples/grammar_doctor.py path/to/file   # diagnose a file
"""

import sys

from repro import LalrAnalysis, build_lalr_table, classify, load_grammar_file
from repro.automaton import LR0Automaton
from repro.baselines import SlrAnalysis
from repro.grammars import corpus


def diagnose(grammar) -> None:
    grammar = grammar.augmented()
    print(f"=== {grammar.name or 'grammar'} ===")
    automaton = LR0Automaton(grammar)
    analysis = LalrAnalysis(grammar, automaton)

    verdict = classify(grammar)
    print(f"class: {verdict.grammar_class}"
          f"  (LR(0):{_yn(verdict.is_lr0)} SLR(1):{_yn(verdict.is_slr1)}"
          f" LALR(1):{_yn(verdict.is_lalr1)} LR(1):{_yn(verdict.is_lr1)})")

    if analysis.not_lr_k:
        print("reads-relation cycles found -> NOT LR(k) for ANY k:")
        for component in analysis.reads_sccs:
            members = ", ".join(f"({p},{a.name})" for p, a in component)
            print(f"  cycle through: {members}")

    table = build_lalr_table(grammar, automaton, analysis.lookahead_table())
    if table.unresolved_conflicts:
        from repro.tables.explain import explain_conflict

        print(f"{len(table.unresolved_conflicts)} LALR(1) conflict(s):")
        for conflict in table.unresolved_conflicts:
            print(f"  {conflict.describe(grammar)}")
            witness = explain_conflict(automaton, conflict)
            if witness is not None:
                print(f"  example input: {witness.describe()}")
            print("  state items:")
            for line in automaton.format_state(conflict.state).splitlines()[1:]:
                print(f"  {line}")
        # Is the grammar actually ambiguous, or just hard to parse
        # deterministically?  The tree-counting oracle can often tell.
        from repro.analysis import ambiguity_report
        from repro.grammar.errors import GrammarValidationError

        user_grammar = corpus_or_user_view(grammar)
        if user_grammar is not None and len(user_grammar.productions) <= 40:
            try:
                report = ambiguity_report(user_grammar, 6)
            except GrammarValidationError:
                report = None
            if report is not None:
                if report.verdict == "ambiguous":
                    print(f"ambiguous: e.g. {report.witness.words()!r} has "
                          f"{report.witness.tree_count} parse trees")
                elif report.verdict == "cyclic":
                    print("cyclic (A =>+ A): infinitely ambiguous")
                else:
                    print(f"no ambiguity among the {report.sentences_checked} "
                          f"sentences of length <= {report.bound} "
                          f"(may be deterministic-hard, like palindromes)")
    else:
        print("no LALR(1) conflicts")

    # Where does LALR beat SLR on this grammar?
    slr = SlrAnalysis(grammar, automaton)
    improvements = []
    for site, lalr_la in analysis.lookahead_table().items():
        slr_la = slr.lookahead(*site)
        if lalr_la != slr_la:
            improvements.append((site, lalr_la, slr_la))
    if improvements:
        print(f"{len(improvements)} site(s) where per-state Follow is sharper than FOLLOW:")
        for (state, production_index), lalr_la, slr_la in improvements[:8]:
            production = grammar.productions[production_index]
            extra = ", ".join(sorted(t.name for t in slr_la - lalr_la))
            print(f"  state {state}, {production}: FOLLOW adds spurious {{{extra}}}")
        if len(improvements) > 8:
            print(f"  ... and {len(improvements) - 8} more")
    else:
        print("SLR's FOLLOW equals the LALR look-aheads everywhere here")
    print()


def corpus_or_user_view(grammar):
    """The non-augmented view of *grammar* (ambiguity counts user trees)."""
    if not grammar.is_augmented:
        return grammar
    from repro.grammar import load_grammar, write_arrow

    try:
        return load_grammar(write_arrow(grammar))
    except Exception:
        return None


def _yn(flag: bool) -> str:
    return "yes" if flag else "no"


def main() -> None:
    if len(sys.argv) > 1:
        for path in sys.argv[1:]:
            diagnose(load_grammar_file(path))
        return
    for name in ("expr", "lvalue", "lalr_not_slr", "lr1_not_lalr",
                 "dangling_else", "reads_cycle"):
        diagnose(corpus.load(name))


if __name__ == "__main__":
    main()

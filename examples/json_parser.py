#!/usr/bin/env python3
"""A JSON parser: realistic grammar, parse trees, tree-to-value walking.

Uses the corpus JSON grammar, tokenises real JSON text, parses it with an
LALR(1) table, and converts the parse tree into Python objects — then
cross-checks against the standard library's ``json``.

Run:  python examples/json_parser.py
"""

import json
import os

from repro import Lexer, Node, Parser, build_lalr_table
from repro.grammars import corpus
from repro.tables import TableCache, default_cache_dir

SAMPLE = """
{
  "paper": "Efficient computation of LALR(1) look-ahead sets",
  "venue": "PLDI",
  "year": 1979,
  "lalr": true,
  "lookaheads": ["DR", "reads", "includes", "lookback"],
  "nested": {"digraph": {"scc": true}, "cost": [1, 2.5, -3e2]},
  "nothing": null,
  "empty_obj": {},
  "empty_arr": []
}
"""


def build_json_parser():
    grammar = corpus.load("json").augmented()
    # Default startup path: load the cached table; build only on a miss
    # (opt out with REPRO_NO_TABLE_CACHE=1).
    if os.environ.get("REPRO_NO_TABLE_CACHE"):
        table = build_lalr_table(grammar)
    else:
        table = TableCache(default_cache_dir()).load_or_build(
            grammar, "lalr1", build_lalr_table
        )
    assert table.is_deterministic
    lexer = (
        Lexer(grammar)
        .skip(r"\s+")
        .token("STRING", r'"(\\.|[^"\\])*"', convert=lambda s: json.loads(s))
        .token("NUMBER", r"-?\d+(\.\d+)?([eE][+-]?\d+)?",
               convert=lambda s: float(s) if any(c in s for c in ".eE") else int(s))
        .keywords("true", "false", "null")
        .with_literals("{", "}", "[", "]", ",", ":")
    )
    return Parser(table), lexer


def to_value(node: Node):
    """Fold a parse tree into the Python value it denotes."""
    name = node.symbol.name
    if node.is_leaf:
        return {"true": True, "false": False, "null": None}.get(name, node.value)
    children = node.children
    if name == "value":
        return to_value(children[0])
    if name == "object":
        return dict(_members(children[1]))
    if name == "array":
        return list(_elements(children[1]))
    raise AssertionError(f"unexpected node {name}")


def _members(node: Node):
    if not node.children:            # members -> %empty
        return
    yield from _member_list(node.children[0])


def _member_list(node: Node):
    if len(node.children) == 1:      # member_list -> member
        yield _member(node.children[0])
    else:                            # member_list -> member_list ',' member
        yield from _member_list(node.children[0])
        yield _member(node.children[2])


def _member(node: Node):
    return node.children[0].value, to_value(node.children[2])


def _elements(node: Node):
    if not node.children:            # elements -> %empty
        return
    yield from _element_list(node.children[0])


def _element_list(node: Node):
    if len(node.children) == 1:      # element_list -> value
        yield to_value(node.children[0])
    else:                            # element_list -> element_list ',' value
        yield from _element_list(node.children[0])
        yield to_value(node.children[2])


def parse_json(text: str):
    parser, lexer = build_json_parser()
    return to_value(parser.parse(lexer.tokenize(text)))


def main() -> None:
    value = parse_json(SAMPLE)
    expected = json.loads(SAMPLE)
    print(json.dumps(value, indent=2, sort_keys=True))
    assert value == expected, "mismatch against the standard library!"
    print("\nmatches the standard library json module: yes")


if __name__ == "__main__":
    main()

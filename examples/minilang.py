#!/usr/bin/env python3
"""A complete mini-language front end: lex -> LALR parse -> AST -> run.

The most "downstream user"-shaped example: a small imperative language
(assignments, if/else, while, print, arithmetic & comparisons) whose
grammar is LALR(1) by construction (matched/unmatched statements solve
dangling-else grammatically), parsed with the DeRemer-Pennello-powered
table, folded into an AST by semantic actions, and executed by a tiny
tree-walking interpreter.

Run:  python examples/minilang.py              # runs the demo program
      python examples/minilang.py path/to/file # runs your program
"""

import os
import sys

from repro import Lexer, Parser, build_lalr_table, classify, load_grammar
from repro.tables import TableCache, default_cache_dir

GRAMMAR = """
%token NUM ID
%start program
%%
program : stmts ;
stmts : %empty | stmts stmt ;
stmt : matched | unmatched ;
matched : ID '=' expr ';'
        | print expr ';'
        | '{' stmts '}'
        | if '(' expr ')' matched else matched
        | while '(' expr ')' matched
        ;
unmatched : if '(' expr ')' stmt
          | if '(' expr ')' matched else unmatched
          | while '(' expr ')' unmatched
          ;
expr : sum
     | sum '<' sum
     | sum '>' sum
     | sum '==' sum
     ;
sum : term | sum '+' term | sum '-' term ;
term : factor | term '*' factor | term '/' factor ;
factor : NUM | ID | '(' expr ')' | '-' factor ;
"""

DEMO = """
// greatest common divisor, then a countdown
a = 252; b = 105;
while (a > 0) {
    if (a < b) { t = a; a = b; b = t; }
    a = a - b;
}
print b;

n = 5; total = 0;
while (n > 0) { total = total + n * n; n = n - 1; }
print total;          // 55
if (total == 55) print 1; else print 0;
"""


# -- AST -----------------------------------------------------------------

class Assign:
    def __init__(self, name, expr):
        self.name, self.expr = name, expr


class Print:
    def __init__(self, expr):
        self.expr = expr


class Block:
    def __init__(self, stmts):
        self.stmts = stmts


class If:
    def __init__(self, cond, then, otherwise=None):
        self.cond, self.then, self.otherwise = cond, then, otherwise


class While:
    def __init__(self, cond, body):
        self.cond, self.body = cond, body


class BinOp:
    def __init__(self, op, left, right):
        self.op, self.left, self.right = op, left, right


class Neg:
    def __init__(self, expr):
        self.expr = expr


class Num:
    def __init__(self, value):
        self.value = value


class Var:
    def __init__(self, name):
        self.name = name


# -- front end -------------------------------------------------------------

def build_frontend():
    grammar = load_grammar(GRAMMAR, name="minilang").augmented()
    verdict = classify(grammar)
    assert verdict.is_lalr1, verdict  # the grammar is LALR(1) by design
    # Default startup path: the on-disk table cache (REPRO_NO_TABLE_CACHE=1
    # opts out, REPRO_TABLE_CACHE relocates the directory).
    if os.environ.get("REPRO_NO_TABLE_CACHE"):
        table = build_lalr_table(grammar)
    else:
        table = TableCache(default_cache_dir()).load_or_build(
            grammar, "lalr1", build_lalr_table
        )
    assert table.is_deterministic
    lexer = (
        Lexer(grammar)
        .skip(r"\s+")
        .skip(r"//[^\n]*")
        .token("NUM", r"\d+", convert=int)
        .keywords("if", "else", "while", "print")
        .token("ID", r"[A-Za-z_][A-Za-z0-9_]*")
        .with_literals()
    )
    return Parser(table), lexer


def to_ast(production, children):
    """Semantic action: fold one reduction into an AST node."""
    shape = [s.name for s in production.rhs]
    head = production.lhs.name
    if head == "program":
        return Block(children[0])
    if head == "stmts":
        return [] if not children else children[0] + [children[1]]
    if shape == ["NUM"]:
        return Num(children[0])
    if shape == ["ID"] and head == "factor":
        return Var(children[0])
    if head in ("stmt", "expr", "sum", "term", "factor") and len(children) == 1:
        return children[0]
    if shape == ["ID", "=", "expr", ";"]:
        return Assign(children[0], children[2])
    if shape == ["print", "expr", ";"]:
        return Print(children[1])
    if shape == ["{", "stmts", "}"]:
        return Block(children[1])
    if shape[:1] == ["if"] and "else" in shape:
        return If(children[2], children[4], children[6])
    if shape[:1] == ["if"]:
        return If(children[2], children[4])
    if shape[:1] == ["while"]:
        return While(children[2], children[4])
    if len(shape) == 3 and shape[0] == "(":
        return children[1]
    if len(shape) == 3:  # binary operator
        return BinOp(production.rhs[1].name, children[0], children[2])
    if shape == ["-", "factor"]:
        return Neg(children[1])
    if shape == ["NUM"]:
        return Num(children[0])
    if shape == ["ID"]:
        return Var(children[0])
    raise AssertionError(f"unhandled production {production}")


# -- interpreter -----------------------------------------------------------

_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b,
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "==": lambda a, b: int(a == b),
}


def evaluate(node, env):
    if isinstance(node, Num):
        return node.value
    if isinstance(node, Var):
        if node.name not in env:
            raise NameError(f"undefined variable {node.name!r}")
        return env[node.name]
    if isinstance(node, Neg):
        return -evaluate(node.expr, env)
    if isinstance(node, BinOp):
        return _OPS[node.op](evaluate(node.left, env), evaluate(node.right, env))
    raise AssertionError(node)


def execute(node, env, output):
    if isinstance(node, Block):
        for stmt in node.stmts:
            execute(stmt, env, output)
    elif isinstance(node, Assign):
        env[node.name] = evaluate(node.expr, env)
    elif isinstance(node, Print):
        output.append(evaluate(node.expr, env))
    elif isinstance(node, If):
        if evaluate(node.cond, env):
            execute(node.then, env, output)
        elif node.otherwise is not None:
            execute(node.otherwise, env, output)
    elif isinstance(node, While):
        while evaluate(node.cond, env):
            execute(node.body, env, output)
    else:
        raise AssertionError(node)


def run_program(source: str):
    """Parse and execute *source*; returns the list of printed values."""
    parser, lexer = build_frontend()
    ast = parser.parse_with_actions(lexer.tokenize(source), to_ast)
    output = []
    execute(ast, {}, output)
    return output


def main() -> None:
    if len(sys.argv) > 1:
        with open(sys.argv[1], "r", encoding="utf-8") as handle:
            source = handle.read()
    else:
        source = DEMO
    for value in run_program(source):
        print(value)


if __name__ == "__main__":
    main()

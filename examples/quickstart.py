#!/usr/bin/env python3
"""Quickstart: from grammar text to LALR(1) look-ahead sets to a parse.

Covers the 60-second tour of the library:
1. parse a grammar,
2. run the DeRemer-Pennello analysis and inspect LA sets,
3. build the LALR(1) table,
4. parse a sentence with it.

Run:  python examples/quickstart.py
"""

from repro import LalrAnalysis, Parser, build_lalr_table, classify, load_grammar

GRAMMAR = """
E -> E + T | T
T -> T * F | F
F -> ( E ) | id
"""


def main() -> None:
    # 1. Parse the grammar (arrow format; yacc format also works) and
    #    augment it with S' -> E $end, as every LR construction expects.
    grammar = load_grammar(GRAMMAR, name="expr").augmented()
    print("Grammar:")
    for production in grammar.productions:
        print(f"  {production.index}: {production}")

    # 2. The paper's algorithm: LALR(1) look-ahead sets straight from the
    #    LR(0) automaton, no LR(1) items anywhere.
    analysis = LalrAnalysis(grammar)
    print(f"\nLR(0) automaton: {len(analysis.automaton)} states")
    print("LALR(1) look-ahead sets (state, production -> LA):")
    for (state, production_index), lookaheads in sorted(
        analysis.lookahead_table().items()
    ):
        production = grammar.productions[production_index]
        names = ", ".join(sorted(t.name for t in lookaheads))
        print(f"  LA({state:2d}, {production})  =  {{{names}}}")

    # Diagnostics come free: a cycle in `reads` would prove not-LR(k).
    print(f"\nnot LR(k)? {analysis.not_lr_k}")
    print(f"grammar class: {classify(grammar).grammar_class}")

    # 3. Build the LALR(1) parse table from those sets.
    table = build_lalr_table(grammar)
    print(f"\nLALR(1) table: {table.n_states} states, "
          f"{len(table.unresolved_conflicts)} conflicts")

    # 4. Parse something.
    parser = Parser(table)
    sentence = "id + id * ( id + id )".split()
    tree = parser.parse(sentence)
    print(f"\nparse of {' '.join(sentence)!r}:")
    print(tree.format(indent="  "))


if __name__ == "__main__":
    main()

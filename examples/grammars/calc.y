/* An ambiguous calculator grammar disambiguated by precedence —
   try: python -m repro classify examples/grammars/calc.y --use-precedence */
%token NUM
%left '+' '-'
%left '*' '/'
%right UMINUS
%start expr
%%
expr : expr '+' expr
     | expr '-' expr
     | expr '*' expr
     | expr '/' expr
     | '-' expr %prec UMINUS
     | '(' expr ')'
     | NUM
     ;

/* A statement language with a deliberate dangling-else conflict —
   try: python -m repro conflicts examples/grammars/statements.y --explain */
%token ID NUM
%start stmts
%%
stmts : stmt | stmts stmt ;
stmt : ID '=' NUM ';'
     | if '(' ID ')' stmt
     | if '(' ID ')' stmt else stmt
     | '{' stmts '}'
     ;

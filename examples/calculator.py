#!/usr/bin/env python3
"""An evaluating calculator built on the LALR(1) pipeline.

Demonstrates the yacc workflow end to end:
- an *ambiguous* expression grammar disambiguated by %left/%right
  precedence declarations (conflicts resolved, not reported),
- a lexer mapping text to tokens,
- semantic actions folded over reductions (no parse tree materialised).

Startup goes through the on-disk table cache (the production pattern:
build once, then load the serialised table on every later run).  Set
``REPRO_NO_TABLE_CACHE=1`` to force a rebuild, or ``REPRO_TABLE_CACHE``
to relocate the cache directory.

Run:  python examples/calculator.py            # demo expressions
      python examples/calculator.py '2*(3+4)'  # evaluate arguments
"""

import os
import sys

from repro import Lexer, Parser, build_lalr_table, load_grammar
from repro.tables import TableCache, default_cache_dir

GRAMMAR = """
%token NUM
%left '+' '-'
%left '*' '/'
%right '^'
%right UMINUS
%start expr
%%
expr : expr '+' expr
     | expr '-' expr
     | expr '*' expr
     | expr '/' expr
     | expr '^' expr
     | '-' expr %prec UMINUS
     | '(' expr ')'
     | NUM
     ;
"""


def cached_table(grammar, builder=build_lalr_table, method="lalr1"):
    """Load the parse table from the on-disk cache, building on miss."""
    if os.environ.get("REPRO_NO_TABLE_CACHE"):
        return builder(grammar)
    return TableCache(default_cache_dir()).load_or_build(grammar, method, builder)


def build_calculator():
    """Returns (parser, lexer) for the calculator language."""
    grammar = load_grammar(GRAMMAR, name="calculator").augmented()
    table = cached_table(grammar)
    # The raw grammar is ambiguous; precedence must have resolved every
    # conflict, otherwise the declarations are wrong.
    assert table.is_deterministic, [
        c.describe(grammar) for c in table.unresolved_conflicts
    ]
    lexer = (
        Lexer(grammar)
        .skip(r"\s+")
        .token("NUM", r"\d+(\.\d+)?", convert=float)
        .with_literals()
    )
    return Parser(table), lexer


def evaluate(parser: Parser, lexer: Lexer, text: str) -> float:
    """Parse *text* and compute its value via semantic actions."""

    def reduce_action(production, children):
        rhs_names = [s.name for s in production.rhs]
        if rhs_names == ["NUM"]:
            return children[0]
        if rhs_names == ["(", "expr", ")"]:
            return children[1]
        if rhs_names == ["-", "expr"]:
            return -children[1]
        left, op, right = children
        return {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: left / right,
            "^": lambda: left ** right,
        }[production.rhs[1].name]()

    return parser.parse_with_actions(lexer.tokenize(text), reduce_action)


def main() -> None:
    parser, lexer = build_calculator()
    expressions = sys.argv[1:] or [
        "1 + 2 * 3",
        "(1 + 2) * 3",
        "2 ^ 3 ^ 2",          # right-assoc: 2^(3^2) = 512
        "10 - 4 - 3",         # left-assoc: (10-4)-3 = 3
        "-3 ^ 2",             # unary binds tighter: (-3)^2 = 9
        "100 / 4 / 5",
    ]
    for text in expressions:
        print(f"{text} = {evaluate(parser, lexer, text)}")


if __name__ == "__main__":
    main()

"""Unit tests: the GLR bench harness (LALR vs GLR vs CYK)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.glr import (
    compare_glr_baseline,
    glr_snapshot,
    main as glr_main,
)


@pytest.fixture(scope="module")
def glr_snap():
    return glr_snapshot(["expr", "dangling_else"], repeats=1)


class TestGlrSnapshot:
    def test_shape_and_counters(self, glr_snap):
        assert set(glr_snap["grammars"]) == {"expr", "dangling_else"}
        expr = glr_snap["grammars"]["expr"]["counters"]
        assert expr["unresolved_conflicts"] == 0
        assert expr["workload_tokens"] > 0
        assert expr["shifts"] == expr["workload_tokens"]
        assert expr["gss_nodes"] > 0
        assert expr["reductions"] >= expr["sppf_families"] > 0
        conflicted = glr_snap["grammars"]["dangling_else"]["counters"]
        assert conflicted["unresolved_conflicts"] == 1
        for entry in glr_snap["grammars"].values():
            throughput = entry["throughput"]
            assert throughput["lalr_tokens_per_sec"] > 0
            assert throughput["glr_tokens_per_sec"] > 0
            assert throughput["cyk_tokens_per_sec"] > 0
            assert throughput["glr_overhead"] > 0

    def test_counters_are_deterministic(self, glr_snap):
        again = glr_snapshot(["expr", "dangling_else"], repeats=1)
        for name in ("expr", "dangling_else"):
            assert (
                again["grammars"][name]["counters"]
                == glr_snap["grammars"][name]["counters"]
            )

    def test_compare_identical_has_no_drift(self, glr_snap):
        rows, drift = compare_glr_baseline(glr_snap, glr_snap)
        assert drift == []
        assert rows

    def test_compare_flags_counter_drift(self, glr_snap):
        mutated = copy.deepcopy(glr_snap)
        mutated["grammars"]["expr"]["counters"]["gss_edges"] += 1
        _, drift = compare_glr_baseline(mutated, glr_snap)
        assert any("gss_edges" in message for message in drift)

    def test_compare_flags_format_mismatch(self, glr_snap):
        mutated = copy.deepcopy(glr_snap)
        mutated["format"] = 99
        _, drift = compare_glr_baseline(mutated, glr_snap)
        assert any("format" in message for message in drift)

    def test_write_then_compare_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "glr.json"
        assert glr_main(
            ["expr", "--repeats", "1", "--write-baseline", str(baseline)]
        ) == 0
        assert glr_main(
            ["expr", "--repeats", "1", "--baseline", str(baseline)]
        ) == 0
        assert "match the baseline" in capsys.readouterr().out

    def test_compare_exits_nonzero_on_drift(self, tmp_path, capsys, glr_snap):
        mutated = copy.deepcopy(glr_snap)
        mutated["grammars"]["expr"]["counters"]["workload_tokens"] = 999
        baseline = tmp_path / "drifted.json"
        baseline.write_text(json.dumps(mutated))
        assert glr_main(
            ["expr", "dangling_else", "--repeats", "1",
             "--baseline", str(baseline)]
        ) == 1
        assert "drift" in capsys.readouterr().out


class TestCommittedBaseline:
    def test_repo_baseline_matches_current_engine(self):
        # BENCH_glr.json is the committed reference: the counters it pins
        # are pure functions of the corpus grammars and the engine, so a
        # mismatch means the GLR engine (or the workload) changed.
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_glr.json"
        baseline = json.loads(path.read_text(encoding="utf-8"))
        current = glr_snapshot(list(baseline["grammars"]), repeats=1)
        _, drift = compare_glr_baseline(current, baseline)
        assert drift == []

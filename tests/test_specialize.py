"""Byte-identity suite: the specialized hot loop vs the plain engine.

The :class:`~repro.tables.specialize.SpecializedTable` changes *how* the
engine runs — flat integer dispatch, fused reduce→goto chains, default
reductions, token memoization — and is allowed to change nothing the
caller can observe.  Corpus-wide, for every deterministic LALR grammar:

- identical parse trees (structure, productions, token values),
- identical errors on mutated sentences — message, position, state and
  expected set,
- identical traces,
- identical budget exhaustion points and progress counters,
- identical instrument counters,
- identical panic-mode recovery (error list and sync positions).

Plus the specialization invariants themselves: a default reduction only
on fully-uniform reduce rows, ParseTable surface parity cell-for-cell,
and the fuzz oracle wiring that keeps this pinned on random grammars.
"""

from __future__ import annotations

import pytest

from repro.analysis.derive import SentenceGenerator
from repro.core import instrument
from repro.core.budget import Budget, BudgetExceeded
from repro.grammars import corpus
from repro.parser import ParseError, Parser, RecoveringParser
from repro.tables import (
    SpecializedTable,
    build_lalr_table,
    specialize,
    specialized_view,
)
from repro.tables.displace import (
    ACTION_ERROR,
    ACTION_REDUCE,
    encode_action,
)

#: Corpus grammars whose LALR table is deterministic (the engine refuses
#: conflicted tables in both loops, so parity is defined over these).
DETERMINISTIC = [
    name
    for name in corpus.names()
    if build_lalr_table(corpus.load(name).augmented()).is_deterministic
]


def _pair(name):
    """(plain parser, specialized parser, augmented grammar)."""
    grammar = corpus.load(name).augmented()
    table = build_lalr_table(grammar)
    return Parser(table), Parser(specialize(table)), grammar


def _sentences(grammar, count=6, budget=30):
    return SentenceGenerator(grammar, seed=0).sentences(count, budget=budget)


def _mutants(grammar, sentences):
    """Deterministic invalid-ish streams inside the terminal alphabet."""
    terminals = sorted(
        (t for t in grammar.terminals if t is not grammar.eof),
        key=lambda s: s.name,
    )
    streams = []
    for index, sentence in enumerate(sentences):
        wrong = terminals[index % len(terminals)]
        streams.append(list(sentence) + [wrong])
        if sentence:
            streams.append(list(sentence[:-1]))
            swapped = list(sentence)
            swapped[index % len(swapped)] = wrong
            streams.append(swapped)
    streams.append([])
    return streams


def _error_of(parser, tokens):
    try:
        parser.parse(tokens)
    except ParseError as error:
        return (
            str(error),
            error.position,
            error.state,
            [s.name for s in error.expected],
            error.token.name if error.token is not None else None,
        )
    return None


def _tree_repr(node):
    return node.format()


class TestTreeParity:
    @pytest.mark.parametrize("name", DETERMINISTIC)
    def test_trees_identical_corpus_wide(self, name):
        plain, fast, grammar = _pair(name)
        for sentence in _sentences(grammar):
            reference = plain.parse(sentence)
            specialized = fast.parse(sentence)
            assert _tree_repr(specialized) == _tree_repr(reference)
            assert specialized.derivation() == reference.derivation()
            assert specialized.fringe() == reference.fringe()

    @pytest.mark.parametrize("name", DETERMINISTIC)
    def test_traces_identical(self, name):
        plain, fast, grammar = _pair(name)
        for sentence in _sentences(grammar, count=3):
            assert fast.trace(sentence) == plain.trace(sentence)

    def test_token_values_survive_memoization(self):
        # The specialized loop memoizes *string* tokens; Token objects
        # with semantic values must bypass the cache untouched.
        from repro.parser import Token

        grammar = corpus.load("expr").augmented()
        table = build_lalr_table(grammar)
        plain = Parser(table)
        fast = Parser(specialize(table))
        id_symbol = grammar.symbols["id"]
        tokens = [Token(id_symbol, 1), "+", Token(id_symbol, 2)]
        values = [leaf.value for leaf in fast.parse(tokens).leaves()]
        assert values[0] == 1 and values[2] == 2
        assert values == [
            leaf.value for leaf in plain.parse(tokens).leaves()
        ]

    def test_repeated_tokens_hit_the_cache_consistently(self):
        plain, fast, grammar = _pair("expr")
        tokens = "id + id * id + id * id".split()
        for _ in range(3):  # reuse the same parser: warm-cache parses
            assert _tree_repr(fast.parse(tokens)) == _tree_repr(
                plain.parse(tokens)
            )


class TestErrorParity:
    @pytest.mark.parametrize("name", DETERMINISTIC)
    def test_errors_identical_on_mutants(self, name):
        plain, fast, grammar = _pair(name)
        sentences = _sentences(grammar)
        for stream in _mutants(grammar, sentences):
            assert _error_of(fast, stream) == _error_of(plain, stream), stream

    def test_unknown_terminal_path_identical(self):
        plain, fast, _ = _pair("expr")
        assert _error_of(fast, ["id", "zzz"]) == _error_of(plain, ["id", "zzz"])

    def test_error_caching_never_caches_failures(self):
        # An unknown terminal must fail identically on every attempt —
        # the memo only stores successful resolutions.
        _, fast, _ = _pair("expr")
        first = _error_of(fast, ["zzz"])
        second = _error_of(fast, ["zzz"])
        assert first == second is not None


class TestBudgetParity:
    @pytest.mark.parametrize("cap", [1, 3, 7])
    def test_parse_step_exhaustion_point_identical(self, cap):
        plain, fast, grammar = _pair("expr")
        tokens = "( id + id ) * id".split()
        outcomes = []
        for parser in (plain, fast):
            try:
                parser.parse(tokens, budget=Budget(max_parse_steps=cap))
                outcomes.append(None)
            except BudgetExceeded as error:
                outcomes.append(
                    (error.phase, error.resource, error.limit, error.progress)
                )
        assert outcomes[0] == outcomes[1]

    def test_token_cap_identical(self):
        plain, fast, grammar = _pair("json")
        sentence = _sentences(grammar, count=1)[0]
        outcomes = []
        for parser in (plain, fast):
            try:
                parser.parse(sentence, budget=Budget(max_tokens=2))
                outcomes.append(None)
            except BudgetExceeded as error:
                outcomes.append(
                    (error.phase, error.resource, error.limit, error.progress)
                )
        assert outcomes[0] == outcomes[1]


class TestInstrumentParity:
    @pytest.mark.parametrize("name", DETERMINISTIC)
    def test_counters_identical_corpus_wide(self, name):
        plain, fast, grammar = _pair(name)
        for sentence in _sentences(grammar, count=3):
            with instrument.profile() as reference:
                plain.parse(sentence)
            with instrument.profile() as specialized:
                fast.parse(sentence)
            ref = {k: v for k, v in reference.counters.items()
                   if k.startswith("parse.")}
            got = {k: v for k, v in specialized.counters.items()
                   if k.startswith("parse.")}
            assert got == ref


class TestRecoveryParity:
    """Panic-mode recovery drives the duck-typed dense-row surface; the
    specialized table's lazy row views must behave cell-for-cell like
    the originals."""

    def _sync_for(self, grammar):
        names = {t.name for t in grammar.terminals}
        for preferred in (";", ")", "}"):
            if preferred in names:
                return [preferred]
        return [sorted(names)[0]]

    @pytest.mark.parametrize("name", DETERMINISTIC)
    def test_recovered_error_lists_identical(self, name):
        plain, fast, grammar = _pair(name)
        sync = self._sync_for(grammar)
        sentences = _sentences(grammar)
        for stream in _mutants(grammar, sentences):
            reference = RecoveringParser(plain, sync).check(stream)
            specialized = RecoveringParser(fast, sync).check(stream)
            assert [
                (str(e), e.position, e.state, [s.name for s in e.expected])
                for e in specialized
            ] == [
                (str(e), e.position, e.state, [s.name for s in e.expected])
                for e in reference
            ], stream


class TestSpecializationInvariants:
    @pytest.mark.parametrize("name", DETERMINISTIC)
    def test_default_only_on_fully_uniform_reduce_rows(self, name):
        grammar = corpus.load(name).augmented()
        table = build_lalr_table(grammar)
        fast = specialize(table)
        width = fast.num_terminals
        for state, row in enumerate(table.action_rows):
            coded = [encode_action(cell) for cell in row]
            uniform = (
                bool(coded)
                and (coded[0] & 3) == ACTION_REDUCE
                and all(code == coded[0] for code in coded)
            )
            default = fast.default_codes[state]
            if uniform:
                assert default == coded[0], state
            else:
                assert default == -1, state
            # And the flat matrix is exactly the dense rows, re-encoded.
            assert fast.action_codes[state * width:(state + 1) * width] == coded

    @pytest.mark.parametrize("name", DETERMINISTIC)
    def test_parse_table_surface_parity(self, name):
        grammar = corpus.load(name).augmented()
        table = build_lalr_table(grammar)
        fast = specialize(table)
        assert fast.n_states == table.n_states
        assert fast.is_deterministic == table.is_deterministic
        assert fast.conflict_summary() == table.conflict_summary()
        for state in range(table.n_states):
            for tid in range(len(table.action_rows[state])):
                assert fast.action_by_id(state, tid) == table.action_by_id(
                    state, tid
                )
            for nt in range(len(table.goto_rows[state])):
                assert fast.goto_by_id(state, nt) == table.goto_by_id(state, nt)

    def test_stats_are_pure_functions_of_the_table(self):
        grammar = corpus.load("expr").augmented()
        table = build_lalr_table(grammar)
        stats = specialize(table).specialization_stats()
        assert stats == specialize(table).specialization_stats()
        assert stats["states"] == table.n_states
        assert stats["action_cells"] == sum(
            len(row) for row in table.action_rows
        )
        populated = sum(
            1
            for row in table.action_rows
            for cell in row
            if encode_action(cell) != ACTION_ERROR
        )
        assert stats["populated_cells"] == populated
        assert (
            stats["shift_cells"] + stats["reduce_cells"] + stats["accept_cells"]
            == populated
        )

    def test_specialized_view_is_memoized(self):
        table = build_lalr_table(corpus.load("expr").augmented())
        first = specialized_view(table)
        assert specialized_view(table) is first
        assert isinstance(first, SpecializedTable)

    def test_specialized_view_of_specialized_is_identity(self):
        table = build_lalr_table(corpus.load("expr").augmented())
        fast = specialize(table)
        assert specialized_view(fast) is fast


class TestOracleWiring:
    def test_parity_oracle_exercises_specialize(self, monkeypatch):
        """The fuzz oracle must recompile through specialize() — if the
        wiring disappears, random-grammar coverage silently loses the
        hot loop."""
        import importlib

        # `repro.tables` re-exports the *function* under the same name,
        # so reach the submodule itself for patching.
        module = importlib.import_module("repro.tables.specialize")
        from repro.fuzz.oracles import run_oracles

        calls = []
        original = module.specialize

        def spy(table):
            calls.append(table)
            return original(table)

        monkeypatch.setattr(module, "specialize", spy)
        failures = run_oracles(
            corpus.load("expr"), names=["representation-parity"], seed=3
        )
        assert failures == []
        assert calls, "representation-parity never called specialize()"

"""Unit tests: the DR, reads, includes, lookback relations."""

from repro.automaton import LR0Automaton
from repro.core.relations import LalrRelations
from repro.grammar import load_grammar


def relations_for(text):
    grammar = load_grammar(text).augmented()
    automaton = LR0Automaton(grammar)
    return grammar, automaton, LalrRelations(automaton)


def transition(automaton, state, name):
    return (state, automaton.grammar.symbols[name])


class TestDR:
    def test_dr_is_directly_readable_terminals(self):
        grammar, automaton, rel = relations_for("S -> A b\nA -> a")
        t = transition(automaton, 0, "A")
        dr = rel.vocabulary.symbols(rel.dr[t])
        assert {s.name for s in dr} == {"b"}

    def test_dr_includes_end_marker_for_start_transition(self):
        grammar, automaton, rel = relations_for("S -> a")
        t = transition(automaton, 0, "S")
        dr = rel.vocabulary.symbols(rel.dr[t])
        assert {s.name for s in dr} == {"$end"}

    def test_dr_empty_when_only_nonterminals_follow(self):
        grammar, automaton, rel = relations_for("S -> A B\nA -> a\nB -> b")
        t = transition(automaton, 0, "A")
        dr = rel.vocabulary.symbols(rel.dr[t])
        # After A only the nonterminal B (and through it terminal b) —
        # b is reachable only through B's own transition, so DR sees b?
        # No: DR looks one terminal transition deep: goto(r, b) exists
        # because B -> . b is in r's closure. So DR = {b}.
        assert {s.name for s in dr} == {"b"}

    def test_every_transition_has_dr_entry(self):
        grammar, automaton, rel = relations_for("E -> E + T | T\nT -> x")
        assert set(rel.dr) == set(rel.transitions)


class TestReads:
    def test_no_nullables_no_reads(self):
        grammar, automaton, rel = relations_for("S -> A b\nA -> a")
        assert all(not edges for edges in rel.reads.values())

    def test_reads_through_nullable(self):
        grammar, automaton, rel = relations_for("S -> A B c\nA -> a\nB -> b | %empty")
        t = transition(automaton, 0, "A")
        targets = rel.reads[t]
        assert len(targets) == 1
        successor_state, symbol = targets[0]
        assert symbol.name == "B"
        assert automaton.goto(0, grammar.symbols["A"]) == successor_state

    def test_reads_chain(self):
        grammar, automaton, rel = relations_for(
            "S -> A B C d\nA -> a\nB -> %empty\nC -> %empty"
        )
        t = transition(automaton, 0, "A")
        (read1,) = rel.reads[t]
        assert read1[1].name == "B"
        (read2,) = rel.reads[read1]
        assert read2[1].name == "C"

    def test_non_nullable_nonterminal_not_read(self):
        grammar, automaton, rel = relations_for("S -> A B c\nA -> a\nB -> b")
        t = transition(automaton, 0, "A")
        assert rel.reads[t] == ()


class TestIncludes:
    def test_unit_production_includes(self):
        # R -> L: the L-transition includes the R-transition (same state).
        grammar, automaton, rel = relations_for("S -> R\nR -> L\nL -> x")
        l_t = transition(automaton, 0, "L")
        r_t = transition(automaton, 0, "R")
        assert r_t in rel.includes[l_t]

    def test_includes_requires_nullable_tail(self):
        grammar, automaton, rel = relations_for("S -> A b\nA -> a")
        a_t = transition(automaton, 0, "A")
        assert rel.includes[a_t] == []

    def test_includes_with_nullable_tail(self):
        grammar, automaton, rel = relations_for("S -> A B\nA -> a\nB -> b | %empty")
        a_t = transition(automaton, 0, "A")
        s_t = transition(automaton, 0, "S")
        assert s_t in rel.includes[a_t]

    def test_includes_walks_prefix(self):
        # B -> a A: the A-transition out of the post-a state includes B's.
        grammar, automaton, rel = relations_for("S -> B c\nB -> a A\nA -> x")
        b_t = transition(automaton, 0, "B")
        mid = automaton.goto(0, grammar.symbols["a"])
        a_t = transition(automaton, mid, "A")
        assert b_t in rel.includes[a_t]

    def test_left_recursion_no_self_include(self):
        # E -> E + T: tail '+ T' is not nullable, so no self-include.
        grammar, automaton, rel = relations_for("E -> E + T | T\nT -> x")
        e_t = transition(automaton, 0, "E")
        assert e_t not in rel.includes[e_t]


class TestLookback:
    def test_lookback_links_reduction_to_transition(self):
        grammar, automaton, rel = relations_for("S -> A b\nA -> a")
        production = next(p for p in grammar.productions if p.lhs.name == "A")
        reduce_state = automaton.goto_sequence(0, production.rhs)
        a_t = transition(automaton, 0, "A")
        assert rel.lookback[(reduce_state, production.index)] == [a_t]

    def test_epsilon_reduction_looks_back_to_same_state(self):
        grammar, automaton, rel = relations_for("S -> A b\nA -> %empty")
        production = next(p for p in grammar.productions if p.lhs.name == "A")
        a_t = transition(automaton, 0, "A")
        assert rel.lookback[(0, production.index)] == [a_t]

    def test_every_reduction_site_covered(self):
        grammar, automaton, rel = relations_for("E -> E + T | T\nT -> T * F | F\nF -> ( E ) | id")
        sites = {
            (state.state_id, item.production)
            for state in automaton.states
            for item in state.reductions
            if item.production != 0
        }
        assert sites == set(rel.lookback)

    def test_multiple_lookbacks_merge_contexts(self):
        # A reduced in two contexts: both transitions feed the same site
        # only when the reduce state is shared.
        grammar, automaton, rel = relations_for("S -> a A | b A\nA -> x")
        production = next(p for p in grammar.productions if p.lhs.name == "A")
        sites = [s for s in rel.lookback if s[1] == production.index]
        # x-reduce state is shared between both contexts (same kernel).
        assert len(sites) == 1
        (site,) = sites
        assert len(rel.lookback[site]) == 2


class TestStats:
    def test_stats_keys_and_sanity(self):
        grammar, automaton, rel = relations_for("E -> E + T | T\nT -> x")
        stats = rel.stats()
        assert stats["nonterminal_transitions"] == len(rel.transitions)
        assert stats["lookback_edges"] >= stats["reduction_sites"]
        assert stats["reads_edges"] == 0

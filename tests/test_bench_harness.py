"""Unit tests: the benchmark harness and report formatting."""

from repro.bench import (
    METHODS,
    Timer,
    cost_row,
    dict_rows,
    format_series,
    format_table,
    grammar_row,
    measure_methods,
    speedup,
    sweep,
    time_callable,
)
from repro.grammars import corpus, expression_family


class TestMeasurement:
    def test_time_callable_positive(self):
        assert time_callable(lambda: sum(range(100)), repeats=3) >= 0

    def test_timer_context(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.seconds >= 0

    def test_measure_methods_all(self):
        times = measure_methods(corpus.load("expr"), repeats=1)
        assert set(times) == set(METHODS)
        assert all(t >= 0 for t in times.values())

    def test_measure_methods_subset(self):
        times = measure_methods(
            corpus.load("expr"), methods=["deremer_pennello"], repeats=1
        )
        assert list(times) == ["deremer_pennello"]

    def test_speedup(self):
        assert speedup({"a": 2.0, "b": 1.0}, "a", "b") == 2.0
        assert speedup({"a": 2.0, "b": 0.0}, "a", "b") == float("inf")

    def test_sweep(self):
        rows = sweep([1, 2], expression_family, lambda g: {"p": len(g.productions)})
        assert [n for n, _ in rows] == [1, 2]
        assert rows[1][1]["p"] > rows[0][1]["p"]


class TestRows:
    def test_grammar_row_keys(self):
        row = grammar_row(corpus.load("expr"))
        for key in ("terminals", "productions", "states",
                    "nonterminal_transitions", "includes_edges", "reads_sccs"):
            assert key in row

    def test_cost_row_keys(self):
        row = cost_row(corpus.load("expr"))
        assert {"dp_unions", "prop_links", "lr1_states", "lalr_states"} <= set(row)

    def test_cost_row_lr1_geq_lalr(self):
        row = cost_row(corpus.load("lr1_not_lalr"))
        assert row["lr1_states"] > row["lalr_states"]


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "n"], [["alpha", 1], ["b", 23]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in text and "23" in text
        # Numeric column right-aligned: the 1 lines up under n's width.
        assert lines[-1].endswith("23")

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_format_series(self):
        text = format_series(
            "n", {"dp": [0.1, 0.2], "merge": [0.3, 0.9]}, xs=[1, 2]
        )
        assert "dp" in text and "merge" in text
        assert text.splitlines()[0].startswith("n")

    def test_cell_rendering(self):
        text = format_table(["x"], [[True], [False], [0.00001], [123.456]])
        assert "yes" in text and "no" in text
        assert "1.00e-05" in text
        assert "123.5" in text

    def test_dict_rows(self):
        rows = dict_rows(
            [("g1", {"a": 1, "b": 2}), ("g2", {"a": 3})], columns=["a", "b"]
        )
        assert rows == [["g1", 1, 2], ["g2", 3, ""]]


class TestBaselineSnapshot:
    def make_snapshot(self, repeats=1):
        from repro.bench.harness import bench_snapshot

        return bench_snapshot([("expr", corpus.load("expr"))], repeats=repeats)

    def test_snapshot_shape(self):
        snapshot = self.make_snapshot()
        assert snapshot["format"] == 1
        entry = snapshot["grammars"]["expr"]
        assert entry["lookahead_seconds"] >= 0
        assert {"unions", "edges", "nonterminal_transitions"} <= set(entry["counters"])
        # Per-phase instrument span totals of one pipeline run.
        assert "lalr.digraph.reads" in entry["phases"]
        assert "table.fill" in entry["phases"]

    def test_compare_identical_has_no_drift(self):
        from repro.bench.harness import compare_baseline

        snapshot = self.make_snapshot()
        rows, drift = compare_baseline(snapshot, snapshot)
        assert drift == []
        assert rows[0][:2] == ["expr", "lookahead"]
        assert rows[0][4] == 1.0  # same timings -> speedup exactly 1
        # One row per shared phase, all with speedup exactly 1.
        phases = {row[1] for row in rows[1:]}
        assert "lalr.digraph.reads" in phases
        assert all(row[4] == 1.0 for row in rows)

    def test_compare_flags_counter_drift(self):
        import copy

        from repro.bench.harness import compare_baseline

        snapshot = self.make_snapshot()
        tampered = copy.deepcopy(snapshot)
        tampered["grammars"]["expr"]["counters"]["unions"] += 1
        _, drift = compare_baseline(snapshot, tampered)
        assert any("unions" in message for message in drift)

    def test_compare_flags_missing_grammar(self):
        from repro.bench.harness import compare_baseline

        snapshot = self.make_snapshot()
        _, drift = compare_baseline(snapshot, {"grammars": {}})
        assert drift == ["expr: not present in baseline"]


class TestBaselineCli:
    def test_write_then_compare_round_trip(self, tmp_path, capsys):
        from repro.bench.harness import main

        path = str(tmp_path / "baseline.json")
        assert main(["corpus:expr", "--repeats", "1",
                     "--write-baseline", path]) == 0
        assert main(["corpus:expr", "--repeats", "1",
                     "--baseline", path]) == 0
        out = capsys.readouterr().out
        assert "operation counters match the baseline" in out

    def test_compare_exits_nonzero_on_drift(self, tmp_path, capsys):
        import json

        from repro.bench.harness import main

        path = tmp_path / "baseline.json"
        assert main(["corpus:expr", "--repeats", "1",
                     "--write-baseline", str(path)]) == 0
        baseline = json.loads(path.read_text(encoding="utf-8"))
        baseline["grammars"]["expr"]["counters"]["unions"] += 5
        path.write_text(json.dumps(baseline), encoding="utf-8")
        assert main(["corpus:expr", "--repeats", "1",
                     "--baseline", str(path)]) == 1
        assert "drift" in capsys.readouterr().out

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.automaton import LR0Automaton
from repro.grammar import load_grammar
from repro.grammars import corpus

EXPR_TEXT = """
E -> E + T | T
T -> T * F | F
F -> ( E ) | id
"""


@pytest.fixture
def expr_grammar():
    """The classic expression grammar, not augmented."""
    return load_grammar(EXPR_TEXT, name="expr")


@pytest.fixture
def expr_augmented(expr_grammar):
    return expr_grammar.augmented()


@pytest.fixture
def expr_automaton(expr_augmented):
    return LR0Automaton(expr_augmented)


@pytest.fixture(params=[e.name for e in corpus.all_entries()])
def corpus_entry(request):
    """Parametrised over every corpus grammar."""
    return corpus.entry(request.param)


@pytest.fixture
def corpus_grammar(corpus_entry):
    return corpus.load(corpus_entry.name)


def make(text: str, **kwargs):
    """Terse grammar-from-text helper used across test files."""
    return load_grammar(text, **kwargs)

"""Per-request QoS: budget headers, typed 503s, and no collateral damage.

Three non-negotiables for a budgeted serving layer, pinned here:

- a blown budget is a **typed** answer — ``503`` with the phase that was
  running, the resource that tripped, and partial-progress counters —
  never a hung connection or an anonymous 500;
- a blown *build* never poisons the shared artifact store with a
  partial table (the next uncapped request computes the full answer,
  bit-identical to a direct pipeline call);
- blown requests leak nothing: no queued jobs, no stuck workers, and
  the service keeps answering.
"""

from __future__ import annotations

import time

import pytest

from repro.grammars import corpus
from repro.service import Client, ServiceThread, canonical_json, compile_result

#: A corpus grammar big enough that two states cannot cover it.
BIG = "toy_java"


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("qos-cache")
    with ServiceThread(cache_dir=str(cache_dir), hot_capacity=8) as thread:
        yield thread


@pytest.fixture(scope="module")
def client(service):
    return Client(service.port)


class TestTyped503:
    def test_max_states_trips_with_phase_and_progress(self, client):
        response = client.post(
            "/compile", {"corpus": BIG}, headers={"X-Repro-Max-States": "2"}
        )
        assert response.status == 503
        body = response.json()
        assert body["error"] == "budget_exceeded"
        assert body["resource"] == "max_states"
        assert body["limit"] == 2
        assert body["phase"] == "lr0"
        assert body["progress"]["states"] >= 2
        assert body["elapsed_seconds"] >= 0
        assert response.headers.get("retry-after") == "1"

    def test_tight_deadline_trips_with_elapsed(self, client):
        response = client.post(
            "/compile",
            {"corpus": BIG, "method": "clr1"},
            headers={"X-Repro-Timeout": "0.000001"},
        )
        assert response.status == 503
        body = response.json()
        assert body["error"] == "budget_exceeded"
        assert body["resource"] == "timeout"
        assert body["elapsed_seconds"] > 0
        assert isinstance(body["progress"], dict)

    def test_parse_token_cap_trips_in_the_parse_phase(self, client):
        response = client.post(
            "/parse",
            {"corpus": "expr", "input": "( ( ( id ) ) )"},
            headers={"X-Repro-Max-Tokens": "2"},
        )
        assert response.status == 503
        body = response.json()
        assert body["resource"] == "max_tokens"
        assert body["phase"] == "parse"

    def test_analyze_honours_budget_headers_too(self, client):
        response = client.post(
            "/analyze", {"corpus": BIG}, headers={"X-Repro-Max-States": "2"}
        )
        assert response.status == 503
        assert response.json()["error"] == "budget_exceeded"

    def test_malformed_budget_header_is_client_error(self, client):
        response = client.post(
            "/compile", {"corpus": "expr"}, headers={"X-Repro-Timeout": "soon"}
        )
        assert response.status == 400
        body = response.json()
        assert body["error"] == "bad_budget_header"
        assert "x-repro-timeout" in body["detail"]

    def test_negative_budget_is_client_error(self, client):
        response = client.post(
            "/compile", {"corpus": "expr"}, headers={"X-Repro-Max-States": "-5"}
        )
        assert response.status == 400
        assert response.json()["error"] == "bad_budget_header"


class TestNoCachePoisoning:
    def test_aborted_build_stores_nothing_and_full_answer_survives(self, tmp_path):
        with ServiceThread(cache_dir=str(tmp_path / "store")) as thread:
            client = Client(thread.port)
            cache = thread.service.cache
            for _ in range(3):
                response = client.post(
                    "/compile",
                    {"corpus": BIG},
                    headers={"X-Repro-Max-States": "3"},
                )
                assert response.status == 503
            # The blown builds left no artifact behind...
            assert cache.entry_paths() == []
            assert cache.stats()["stores"] == 0
            # ...so the uncapped request computes the full, correct table.
            response = client.post("/compile", {"corpus": BIG})
            assert response.status == 200
            expected = canonical_json(compile_result(corpus.load(BIG), "lalr1"))
            assert response.body == expected
            assert cache.stats()["stores"] == 1
            # And the stored artifact round-trips to the same bytes.
            assert client.post("/compile", {"corpus": BIG}).body == expected


class TestNoLeaks:
    def test_blown_requests_leak_no_jobs_or_workers(self, service, client):
        before = client.get("/metrics?format=json").json()["jobs"]
        for _ in range(10):
            assert (
                client.post(
                    "/compile", {"corpus": BIG}, headers={"X-Repro-Max-States": "2"}
                ).status
                == 503
            )
        after = client.get("/metrics?format=json").json()["jobs"]
        # Request-path budgets never touch the job queue.
        assert after["submitted"] == before["submitted"]
        assert after["queued"] == 0
        assert after["running"] == 0
        # The workers are alive and well: a real job still completes.
        submitted = client.post("/fuzz", {"seed": 1, "count": 3}).json()
        service.join_jobs()
        body = client.get(f"/jobs/{submitted['job']}").json()
        assert body["status"] == "done"
        # And the metrics recorded every blown budget.
        counters = client.get("/metrics?format=json").json()["counters"]
        assert counters["service.budget_exceeded"] >= 10
        assert counters["service.responses.5xx"] >= 10

    def test_service_keeps_serving_after_503s(self, client):
        assert client.get("/healthz").json() == {"ok": True}
        response = client.post("/compile", {"corpus": "expr"})
        assert response.status == 200


class TestQueueBackpressure:
    def test_full_queue_rejects_with_429_and_drains_clean(self, tmp_path):
        with ServiceThread(
            cache_dir=str(tmp_path / "store"), job_workers=1, queue_capacity=1
        ) as thread:
            client = Client(thread.port)
            statuses = []
            # One slow-ish job occupies the single worker; the queue holds
            # one more; further submits must see queue_full quickly.
            for _ in range(20):
                response = client.post("/fuzz", {"seed": 5, "count": 60})
                statuses.append(response.status)
                if response.status == 429:
                    break
            assert 429 in statuses
            rejected = client.post("/fuzz", {"seed": 5, "count": 60})
            if rejected.status == 429:
                assert rejected.json()["error"] == "queue_full"
            thread.join_jobs()
            stats = client.get("/metrics?format=json").json()["jobs"]
            assert stats["queued"] == 0
            assert stats["running"] == 0
            assert stats["submitted"] == stats["completed"] + stats["failed"]
            assert stats["rejected"] >= 1
            # Every accepted job is pollable and finished.
            accepted = stats["submitted"]
            for index in range(1, accepted + 1):
                body = client.get(f"/jobs/job-{index:06d}").json()
                assert body["status"] in ("done", "failed")

"""Unit tests: corpus integrity, grammar families, random generation."""

import pytest

from repro.automaton import LR0Automaton
from repro.grammar.properties import is_reduced
from repro.grammars import (
    context_family,
    expression_family,
    corpus,
    family_sweep,
    keyword_statement_family,
    nullable_chain_family,
    random_grammar,
    random_grammar_batch,
    random_token_stream,
    unit_chain_family,
)
from repro.tables import build_lalr_table, classify
from repro.parser import Parser


class TestCorpusIntegrity:
    def test_all_load(self, corpus_entry):
        grammar = corpus.load(corpus_entry.name)
        assert len(grammar.productions) > 0

    def test_all_reduced(self, corpus_entry):
        # Corpus grammars must not contain dead symbols (they would make
        # the benchmark statistics misleading).  Terminals that exist only
        # as %prec handles (e.g. UMINUS) are exempt: they are not part of
        # any sentential form by design.
        from repro.grammar.transforms import (
            generating_nonterminals,
            reachable_symbols,
        )

        grammar = corpus.load(corpus_entry.name)
        generating = generating_nonterminals(grammar)
        assert all(nt in generating for nt in grammar.nonterminals), corpus_entry.name
        reachable = reachable_symbols(grammar)
        prec_only = {p.prec_symbol for p in grammar.productions if p.prec_symbol}
        for symbol in grammar.symbols:
            assert symbol in reachable or symbol in prec_only, (
                corpus_entry.name, symbol.name)

    def test_names_unique_and_descriptions_present(self):
        entries = list(corpus.all_entries())
        assert len({e.name for e in entries}) == len(entries)
        assert all(e.description for e in entries)

    def test_load_augment_flag(self):
        assert corpus.load("expr", augment=True).is_augmented

    def test_load_all_filters_by_tag(self):
        everything = corpus.load_all()
        classics = corpus.load_all(tag="classic")
        assert 0 < len(classics) < len(everything)

    def test_names_helper(self):
        assert "expr" in corpus.names()

    def test_parseable_tag_means_deterministic(self):
        for entry in corpus.all_entries():
            if "parseable" not in entry.tags:
                continue
            grammar = corpus.load(entry.name, augment=True)
            table = build_lalr_table(grammar)
            # expr_prec relies on precedence resolution.
            assert table.is_deterministic, entry.name


class TestFamilies:
    @pytest.mark.parametrize(
        "family",
        [expression_family, nullable_chain_family, unit_chain_family,
         context_family, keyword_statement_family],
    )
    def test_sizes_grow(self, family):
        small = family(2)
        large = family(8)
        assert len(large.productions) > len(small.productions)

    @pytest.mark.parametrize(
        "family",
        [expression_family, nullable_chain_family, unit_chain_family,
         context_family, keyword_statement_family],
    )
    def test_reduced_and_conflict_free(self, family):
        grammar = family(3)
        assert is_reduced(grammar)
        assert build_lalr_table(grammar.augmented()).is_deterministic

    def test_expression_family_rejects_zero(self):
        with pytest.raises(ValueError):
            expression_family(0)

    def test_nullable_chain_reads_edges_grow(self):
        from repro.core.relations import LalrRelations

        counts = []
        for n in (2, 6, 10):
            automaton = LR0Automaton(nullable_chain_family(n).augmented())
            counts.append(LalrRelations(automaton).stats()["reads_edges"])
        assert counts[0] < counts[1] < counts[2]

    def test_context_family_lr1_ratio_grows(self):
        from repro.baselines import MergedLr1Analysis

        ratios = []
        for n in (2, 6):
            analysis = MergedLr1Analysis(context_family(n).augmented())
            lr1, lalr = analysis.merged_state_count()
            ratios.append(lr1 / lalr)
        assert ratios[1] > ratios[0]

    def test_family_sweep(self):
        pairs = family_sweep(expression_family, [1, 3])
        assert [n for n, _ in pairs] == [1, 3]
        assert all(g.name.endswith(str(n)) for n, g in pairs)


class TestRandomGrammar:
    def test_deterministic_per_seed(self):
        a = random_grammar(7)
        b = random_grammar(7)
        assert {(p.lhs.name, tuple(s.name for s in p.rhs)) for p in a.productions} == {
            (p.lhs.name, tuple(s.name for s in p.rhs)) for p in b.productions
        }

    def test_varies_with_seed(self):
        shapes = {
            tuple(sorted(
                (p.lhs.name, tuple(s.name for s in p.rhs))
                for p in random_grammar(seed).productions
            ))
            for seed in range(12)
        }
        assert len(shapes) > 6

    def test_always_reduced(self):
        for seed in range(30):
            assert is_reduced(random_grammar(seed)), seed

    def test_batch(self):
        batch = random_grammar_batch(5, base_seed=100)
        assert len(batch) == 5

    def test_classifier_handles_random_grammars(self):
        # Smoke: classification never crashes on arbitrary reduced grammars.
        for seed in range(15):
            classify(random_grammar(seed))

    def test_random_token_stream_valid_half(self):
        grammar = corpus.load("expr", augment=True)
        parser = Parser(build_lalr_table(grammar))
        seen_valid = seen_mutated = False
        for seed in range(30):
            tokens, claimed_valid = random_token_stream(grammar, seed, 12)
            if claimed_valid:
                seen_valid = True
                assert parser.accepts(tokens)
            else:
                seen_mutated = True
        assert seen_valid and seen_mutated

"""Unit tests: sentence generation."""

import pytest

from repro.analysis import (
    SentenceGenerator,
    leftmost_derivation,
    min_yield_lengths,
    shortest_sentence,
)
from repro.grammar import GrammarValidationError, load_grammar


def words(symbols):
    return " ".join(s.name for s in symbols)


class TestMinYieldLengths:
    def test_simple(self):
        grammar = load_grammar("S -> a b | c")
        lengths = min_yield_lengths(grammar)
        assert lengths[grammar.symbols["S"]] == 1

    def test_recursive(self):
        grammar = load_grammar("S -> a S | b")
        assert min_yield_lengths(grammar)[grammar.symbols["S"]] == 1

    def test_nullable_is_zero(self):
        grammar = load_grammar("S -> A a\nA -> x | %empty")
        assert min_yield_lengths(grammar)[grammar.symbols["A"]] == 0

    def test_nongenerating_is_infinite(self):
        grammar = load_grammar("S -> a | X\nX -> X x")
        assert min_yield_lengths(grammar)[grammar.symbols["X"]] == float("inf")

    def test_composite(self):
        grammar = load_grammar("S -> A A A\nA -> a a | b")
        assert min_yield_lengths(grammar)[grammar.symbols["S"]] == 3


class TestShortestSentence:
    def test_deterministic_minimal(self):
        grammar = load_grammar("S -> a S b | c")
        assert words(shortest_sentence(grammar)) == "c"

    def test_picks_min_alternative(self):
        grammar = load_grammar("S -> a a a | b b | c")
        assert words(shortest_sentence(grammar)) == "c"

    def test_works_on_augmented_without_end_marker(self):
        grammar = load_grammar("S -> x").augmented()
        assert words(shortest_sentence(grammar)) == "x"

    def test_empty_language_rejected(self):
        grammar = load_grammar("S -> S a")
        with pytest.raises(GrammarValidationError):
            shortest_sentence(grammar)

    def test_epsilon_only_language(self):
        grammar = load_grammar("S -> %empty")
        assert shortest_sentence(grammar) == []


class TestSentenceGenerator:
    def test_deterministic_for_seed(self):
        grammar = load_grammar("S -> a S | b S | c")
        first = SentenceGenerator(grammar, seed=7).sentences(10)
        second = SentenceGenerator(grammar, seed=7).sentences(10)
        assert first == second

    def test_different_seeds_differ(self):
        grammar = load_grammar("S -> a S | b S | c")
        a = SentenceGenerator(grammar, seed=1).sentences(20)
        b = SentenceGenerator(grammar, seed=2).sentences(20)
        assert a != b

    def test_terminates_with_zero_budget(self):
        grammar = load_grammar("S -> a S | b")
        sentence = SentenceGenerator(grammar, seed=0).sentence(budget=0)
        assert words(sentence) == "b"

    def test_sentences_are_terminal_only(self):
        grammar = load_grammar("S -> a S b | A\nA -> x | y")
        for sentence in SentenceGenerator(grammar, seed=3).sentences(25):
            assert all(s.is_terminal for s in sentence)

    def test_avoids_nongenerating_alternatives(self):
        grammar = load_grammar("S -> a | X\nX -> X x")
        for sentence in SentenceGenerator(grammar, seed=5).sentences(10):
            assert words(sentence) == "a"

    def test_rejects_empty_language(self):
        with pytest.raises(GrammarValidationError):
            SentenceGenerator(load_grammar("S -> S a"))


class TestLeftmostDerivation:
    def test_replay_choices(self):
        grammar = load_grammar("S -> a S | b")
        sentence, consumed = leftmost_derivation(grammar, [0, 0, 1])
        assert words(sentence) == "a a b"
        assert consumed

    def test_choices_wrap_modulo(self):
        grammar = load_grammar("S -> a S | b")
        sentence, _ = leftmost_derivation(grammar, [2, 3])
        assert words(sentence) == "a b"

    def test_exhausted_choices_finish_minimally(self):
        grammar = load_grammar("S -> a S | b")
        sentence, consumed = leftmost_derivation(grammar, [0, 0, 0, 0])
        assert sentence[-1].name == "b"

    def test_empty_choices_is_shortest(self):
        grammar = load_grammar("S -> a S b | c")
        sentence, consumed = leftmost_derivation(grammar, [])
        assert words(sentence) == "c"
        assert consumed

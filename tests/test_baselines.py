"""Unit tests: the SLR, LR(1)-merge, and propagation baselines."""

import pytest

from repro.automaton import LR0Automaton
from repro.baselines import (
    MergedLr1Analysis,
    PropagationAnalysis,
    SlrAnalysis,
    compute_merged_lookaheads,
    compute_propagated_lookaheads,
    compute_slr_lookaheads,
)
from repro.core import LalrAnalysis
from repro.grammar import load_grammar
from repro.grammars import corpus


class TestSlr:
    def test_lookahead_is_follow(self):
        grammar = load_grammar("S -> A b\nA -> a").augmented()
        analysis = SlrAnalysis(grammar)
        production = next(p for p in grammar.productions if p.lhs.name == "A")
        # FOLLOW(A) = {b}, regardless of state.
        for site, las in analysis.lookahead_table().items():
            if site[1] == production.index:
                assert {t.name for t in las} == {"b"}

    def test_state_independent(self):
        grammar = corpus.load("lalr_not_slr").augmented()
        analysis = SlrAnalysis(grammar)
        table = analysis.lookahead_table()
        by_production = {}
        for (state, production_index), las in table.items():
            by_production.setdefault(production_index, set()).add(las)
        for las_variants in by_production.values():
            assert len(las_variants) == 1

    def test_superset_of_lalr(self, corpus_entry):
        grammar = corpus.load(corpus_entry.name).augmented()
        automaton = LR0Automaton(grammar)
        slr = SlrAnalysis(grammar, automaton).lookahead_table()
        lalr = LalrAnalysis(grammar, automaton).lookahead_table()
        assert slr.keys() == lalr.keys()
        for site in lalr:
            assert lalr[site] <= slr[site], site

    def test_strictly_larger_on_lalr_not_slr(self):
        grammar = corpus.load("lalr_not_slr").augmented()
        automaton = LR0Automaton(grammar)
        slr = SlrAnalysis(grammar, automaton).lookahead_table()
        lalr = LalrAnalysis(grammar, automaton).lookahead_table()
        assert any(lalr[site] < slr[site] for site in lalr)

    def test_one_shot_helper(self):
        grammar = load_grammar("S -> a").augmented()
        assert compute_slr_lookaheads(grammar) == SlrAnalysis(grammar).lookahead_table()


class TestMergedLr1:
    def test_merged_state_count(self):
        grammar = corpus.load("lr1_not_lalr").augmented()
        analysis = MergedLr1Analysis(grammar)
        lr1_states, lalr_states = analysis.merged_state_count()
        assert lr1_states > lalr_states

    def test_no_split_when_lalr_equals_lr0_shape(self):
        grammar = load_grammar("S -> a S | b").augmented()
        analysis = MergedLr1Analysis(grammar)
        lr1_states, lalr_states = analysis.merged_state_count()
        assert lr1_states == lalr_states

    def test_merge_unions_lookaheads(self):
        # In lr1_not_lalr, the merged c-state's LA(A->c) is {d, e} even
        # though each LR(1) state had only one of them.
        grammar = corpus.load("lr1_not_lalr").augmented()
        analysis = MergedLr1Analysis(grammar)
        a_to_c = next(p for p in grammar.productions if str(p) == "A -> c")
        las = [
            las
            for (state, production_index), las in analysis.lookahead_table().items()
            if production_index == a_to_c.index
        ]
        assert len(las) == 1
        assert {t.name for t in las[0]} == {"d", "e"}

    def test_one_shot_helper(self):
        grammar = load_grammar("S -> a").augmented()
        assert (
            compute_merged_lookaheads(grammar)
            == MergedLr1Analysis(grammar).lookahead_table()
        )


class TestPropagation:
    def test_sweeps_counted(self):
        grammar = corpus.load("expr").augmented()
        analysis = PropagationAnalysis(grammar)
        assert analysis.sweeps >= 1
        assert analysis.unions > 0

    def test_cost_summary_keys(self):
        grammar = load_grammar("S -> a").augmented()
        summary = PropagationAnalysis(grammar).cost_summary()
        assert set(summary) == {
            "kernel_slots", "propagation_links", "sweeps", "unions",
            "closure_ops", "total_ops",
        }

    def test_total_work_exceeds_digraph(self):
        # Propagation pays a dummy LR(1) closure per kernel item (plus the
        # link sweeps); DP pays one relation walk plus one traversal per
        # relation.  On a deep unit chain the totals separate clearly —
        # this is the Table-2 cost gap in machine-independent form.
        from repro.grammars.families import unit_chain_family

        grammar = unit_chain_family(12).augmented()
        automaton = LR0Automaton(grammar)
        propagation = PropagationAnalysis(grammar, automaton)
        dp = LalrAnalysis(grammar, automaton)
        propagation_total = propagation.unions + propagation.closure_ops
        dp_total = dp.stats.unions + dp.stats.edges
        assert propagation_total > 2 * dp_total

    def test_epsilon_reductions_covered(self):
        grammar = load_grammar("S -> A b\nA -> %empty").augmented()
        analysis = PropagationAnalysis(grammar)
        epsilon = next(p for p in grammar.productions if p.is_epsilon)
        assert {t.name for t in analysis.lookahead(0, epsilon.index)} == {"b"}

    def test_one_shot_helper(self):
        grammar = load_grammar("S -> a").augmented()
        assert (
            compute_propagated_lookaheads(grammar)
            == PropagationAnalysis(grammar).lookahead_table()
        )


class TestThreeWayEquivalence:
    """The reproduction's central invariant, on every corpus grammar."""

    def test_equivalence(self, corpus_entry):
        grammar = corpus.load(corpus_entry.name).augmented()
        automaton = LR0Automaton(grammar)
        dp = LalrAnalysis(grammar, automaton).lookahead_table()
        merged = MergedLr1Analysis(grammar, automaton).lookahead_table()
        propagated = PropagationAnalysis(grammar, automaton).lookahead_table()
        assert dp.keys() == merged.keys() == propagated.keys()
        for site in dp:
            assert dp[site] == merged[site], (corpus_entry.name, site)
            assert dp[site] == propagated[site], (corpus_entry.name, site)

    def test_equivalence_on_families(self):
        from repro.grammars.families import (
            context_family,
            expression_family,
            nullable_chain_family,
            unit_chain_family,
        )

        for family in (expression_family, nullable_chain_family,
                       unit_chain_family, context_family):
            grammar = family(4).augmented()
            automaton = LR0Automaton(grammar)
            dp = LalrAnalysis(grammar, automaton).lookahead_table()
            merged = MergedLr1Analysis(grammar, automaton).lookahead_table()
            propagated = PropagationAnalysis(grammar, automaton).lookahead_table()
            assert dp == merged == propagated, family.__name__

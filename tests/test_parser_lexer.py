"""Unit tests: the regex lexer and parse trees."""

import pytest

from repro.grammar import load_grammar
from repro.parser import Lexer, LexError, Node
from repro.parser.tree import count_nodes


def expr_lexer():
    grammar = load_grammar("E -> E + T | T\nT -> NUM | ( E )")
    lexer = (
        Lexer(grammar)
        .skip(r"\s+")
        .token("NUM", r"\d+", convert=int)
        .with_literals()
    )
    return grammar, lexer


class TestLexer:
    def test_tokenises(self):
        grammar, lexer = expr_lexer()
        tokens = lexer.tokenize("12 + (34+5)")
        assert [t.symbol.name for t in tokens] == [
            "NUM", "+", "(", "NUM", "+", "NUM", ")"
        ]

    def test_converts_values(self):
        grammar, lexer = expr_lexer()
        tokens = lexer.tokenize("42")
        assert tokens[0].value == 42

    def test_skip_rules(self):
        grammar, lexer = expr_lexer()
        assert lexer.tokenize("  \n\t ") == []

    def test_lex_error_position(self):
        grammar, lexer = expr_lexer()
        with pytest.raises(LexError) as info:
            lexer.tokenize("12 @ 3")
        assert info.value.position == 3

    def test_unknown_terminal_name_rejected(self):
        grammar, lexer = expr_lexer()
        with pytest.raises(Exception):
            lexer.token("NOPE", r"x")

    def test_nonterminal_rejected(self):
        grammar, lexer = expr_lexer()
        with pytest.raises(ValueError):
            lexer.token("E", r"x")

    def test_longest_literal_wins(self):
        grammar = load_grammar("S -> '==' | '='")
        lexer = Lexer(grammar).skip(r"\s+").with_literals()
        tokens = lexer.tokenize("==")
        assert [t.symbol.name for t in tokens] == ["=="]

    def test_keywords_respect_word_boundaries(self):
        grammar = load_grammar("%token ID\nS -> if ID | ID")
        lexer = (
            Lexer(grammar)
            .skip(r"\s+")
            .keywords("if")
            .token("ID", r"[a-z]+")
        )
        tokens = lexer.tokenize("if iffy")
        assert [t.symbol.name for t in tokens] == ["if", "ID"]
        assert tokens[1].value == "iffy"

    def test_rule_order_priority(self):
        grammar = load_grammar("%token WORD KW\nS -> KW | WORD")
        lexer = (
            Lexer(grammar)
            .skip(r"\s+")
            .token("KW", r"special(?![a-z])")
            .token("WORD", r"[a-z]+")
        )
        assert lexer.tokenize("special")[0].symbol.name == "KW"
        assert lexer.tokenize("specials")[0].symbol.name == "WORD"

    def test_tokens_is_lazy(self):
        grammar, lexer = expr_lexer()
        iterator = lexer.tokens("1 + @")
        first = next(iterator)
        assert first.value == 1
        next(iterator)  # '+'
        with pytest.raises(LexError):
            next(iterator)


class TestTree:
    def _tree(self):
        grammar = load_grammar("S -> a S | b")
        a = grammar.symbols["a"]
        b = grammar.symbols["b"]
        s = grammar.symbols["S"]
        p_rec, p_base = grammar.productions
        inner = Node(s, [Node(b, value="b")], production=p_base)
        return Node(s, [Node(a, value="a"), inner], production=p_rec), grammar

    def test_leaves(self):
        tree, _ = self._tree()
        assert [leaf.symbol.name for leaf in tree.leaves()] == ["a", "b"]

    def test_fringe(self):
        tree, _ = self._tree()
        assert [s.name for s in tree.fringe()] == ["a", "b"]

    def test_walk_preorder(self):
        tree, _ = self._tree()
        assert [n.symbol.name for n in tree.walk()] == ["S", "a", "S", "b"]

    def test_count_nodes(self):
        tree, _ = self._tree()
        assert count_nodes(tree) == (2, 2)

    def test_sexpr(self):
        tree, _ = self._tree()
        assert tree.sexpr() == "(S a (S b))"

    def test_format_indents(self):
        tree, _ = self._tree()
        lines = tree.format().splitlines()
        assert lines[0] == "S"
        assert lines[1] == "  a"

    def test_format_shows_values(self):
        grammar = load_grammar("S -> NUM")
        num = grammar.symbols["NUM"]
        node = Node(num, value=42)
        assert "42" in node.format()

    def test_derivation_order(self):
        tree, grammar = self._tree()
        derivation = tree.derivation()
        assert [str(p) for p in derivation] == ["S -> a S", "S -> b"]

    def test_equality(self):
        t1, _ = self._tree()
        t2, _ = self._tree()
        # Different grammar objects -> different interned symbols -> unequal.
        assert t1 == t1
        assert t1 != t2

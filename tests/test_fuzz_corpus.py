"""Unit tests: the persistent failure corpus (and the committed one).

``tests/fuzz_corpus/`` is the repository's live corpus: entries pinned
there replay on every tier-1 run, so a disagreement that was ever found
(or a boundary witness deliberately pinned) can never silently return.
"""

import json
import os

import pytest

from repro.fuzz.corpus import FailureCorpus, FailureEntry
from repro.fuzz.oracles import ORACLES, failure_fingerprint
from repro.grammar.writer import write_arrow
from repro.grammars import corpus as grammar_corpus

#: The corpus committed with the repository.
COMMITTED_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")


@pytest.fixture
def store(tmp_path):
    return FailureCorpus(str(tmp_path / "corpus"))


def make_entry(oracle="lookahead-equivalence", grammar_name="expr", **overrides):
    grammar = grammar_corpus.load(grammar_name)
    fields = dict(
        fingerprint=failure_fingerprint(oracle, grammar),
        oracle=oracle,
        detail="test entry",
        grammar_text=write_arrow(grammar),
        bucket="test",
        seed=3,
        knobs={"n_terminals": 3},
    )
    fields.update(overrides)
    return FailureEntry(**fields)


class TestPersistence:
    def test_add_then_load_round_trips(self, store):
        entry = make_entry()
        assert store.add(entry)
        loaded = store.get(entry.fingerprint[:12])
        assert loaded.to_dict() == entry.to_dict()

    def test_add_is_deduplicated_by_fingerprint(self, store):
        entry = make_entry()
        assert store.add(entry)
        assert not store.add(make_entry())
        assert len(store) == 1

    def test_update_rewrites_in_place(self, store):
        entry = make_entry()
        store.add(entry)
        entry.minimized_text = "%start N0\nN0 -> t0\n"
        store.update(entry)
        assert store.get(entry.fingerprint[:8]).minimized_text == entry.minimized_text
        assert len(store) == 1

    def test_writes_are_atomic_no_tmp_litter(self, store):
        for name in ("expr", "json", "lvalue"):
            store.add(make_entry(grammar_name=name))
        leftovers = [
            f for f in os.listdir(store.directory) if not f.endswith(".json")
        ]
        assert leftovers == []
        # Every file on disk is complete, valid JSON.
        for fingerprint in store.fingerprints():
            with open(store.path_for(fingerprint), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            assert payload["version"] == 1 and payload["grammar"]

    def test_get_unknown_and_ambiguous_prefixes(self, store):
        store.add(make_entry(grammar_name="expr"))
        store.add(make_entry(grammar_name="json"))
        with pytest.raises(KeyError, match="no corpus entry"):
            store.get("zzzz")
        with pytest.raises(KeyError, match="ambiguous"):
            store.get("")  # empty prefix matches both

    def test_missing_directory_is_an_empty_corpus(self, tmp_path):
        store = FailureCorpus(str(tmp_path / "never-created"))
        assert len(store) == 0 and store.entries() == []


class TestReplay:
    def test_fixed_entry_replays_clean(self, store):
        # The recorded oracle agrees on the stored grammar today: the
        # entry acts as a pinned regression test.
        entry = make_entry()
        store.add(entry)
        assert store.replay_all() == {entry.fingerprint: []}

    def test_live_failure_still_reproduces(self, store):
        def broken(ctx):
            return "still here"

        ORACLES["test-corpus-broken"] = broken
        try:
            entry = make_entry(oracle="test-corpus-broken")
            store.add(entry)
            surviving = store.replay_all()[entry.fingerprint]
            assert [f.detail for f in surviving] == ["still here"]
        finally:
            del ORACLES["test-corpus-broken"]

    def test_replay_parses_the_stored_grammar(self, store):
        entry = make_entry(grammar_name="lvalue")
        grammar = entry.grammar()
        assert grammar.productions
        assert {t.name for t in grammar.terminals} >= {"=", "id"}


class TestCommittedCorpus:
    """tier-1 contract: the repository's corpus always replays clean."""

    def test_committed_corpus_exists_and_is_wellformed(self):
        store = FailureCorpus(COMMITTED_DIR)
        entries = store.entries()
        assert entries, "the committed corpus must hold at least one entry"
        for entry in entries:
            assert entry.oracle in ORACLES, entry.oracle
            assert entry.fingerprint and entry.grammar_text

    def test_committed_corpus_replays_clean(self):
        store = FailureCorpus(COMMITTED_DIR)
        for fingerprint, surviving in store.replay_all(clr_state_bound=0).items():
            assert surviving == [], (
                f"corpus entry {fingerprint[:12]} regressed: "
                + "; ".join(f.describe() for f in surviving)
            )

    def test_committed_fingerprints_match_their_grammars(self):
        # An entry whose grammar text was edited by hand would silently
        # guard the wrong thing; recompute identity from content.
        store = FailureCorpus(COMMITTED_DIR)
        for entry in store.entries():
            recomputed = failure_fingerprint(entry.oracle, entry.grammar())
            assert recomputed == entry.fingerprint, entry.fingerprint

"""Unit tests: the fingerprint-keyed on-disk table cache."""

import json
import os

import pytest

from repro.core.instrument import profile
from repro.grammar import load_grammar
from repro.grammars import corpus
from repro.tables import TableCache, build_lalr_table, build_slr_table, default_cache_dir
from repro.tables.cache import CACHE_DIR_ENV


@pytest.fixture
def grammar():
    return corpus.load("expr", augment=True)


@pytest.fixture
def cache(tmp_path):
    return TableCache(str(tmp_path / "cache"))


def _build_calls(builder):
    """Wrap *builder* so tests can count real (non-cached) builds."""
    calls = []

    def wrapped(grammar):
        calls.append(grammar.name)
        return builder(grammar)

    return wrapped, calls


class TestRoundTrip:
    def test_first_build_misses_then_stores(self, grammar, cache):
        builder, calls = _build_calls(build_lalr_table)
        table = cache.load_or_build(grammar, "lalr1", builder)
        assert calls == [grammar.name]
        assert table.is_deterministic
        assert cache.stats() == {"hits": 0, "misses": 1, "corrupt": 0, "stores": 1}
        assert os.path.exists(cache.path_for(grammar, "lalr1"))

    def test_second_build_hits(self, grammar, cache):
        builder, calls = _build_calls(build_lalr_table)
        first = cache.load_or_build(grammar, "lalr1", builder)
        second = cache.load_or_build(grammar, "lalr1", builder)
        assert calls == [grammar.name]  # builder ran exactly once
        assert cache.hits == 1
        assert second.n_states == first.n_states
        assert second.actions == first.actions
        assert second.gotos == first.gotos

    def test_methods_are_keyed_separately(self, grammar, cache):
        lalr = cache.load_or_build(grammar, "lalr1", build_lalr_table)
        slr = cache.load_or_build(grammar, "slr1", build_slr_table)
        assert cache.hits == 0 and cache.stores == 2
        assert lalr.method == "lalr1" and slr.method == "slr1"

    def test_hit_emits_instrument_counter(self, grammar, cache):
        cache.load_or_build(grammar, "lalr1", build_lalr_table)
        with profile() as collector:
            cache.load_or_build(grammar, "lalr1", build_lalr_table)
        assert collector.counters["table.cache.hits"] == 1
        assert "table.cache.load" in collector.phase_totals()


class TestInvalidation:
    def test_fingerprint_mismatch_rebuilds_cleanly(self, cache):
        before = load_grammar(
            "%token a b\n%start S\n%%\nS : a b ;\n", name="g"
        ).augmented()
        after = load_grammar(
            "%token a b c\n%start S\n%%\nS : a b | a c ;\n", name="g"
        ).augmented()
        builder, calls = _build_calls(build_lalr_table)
        cache.load_or_build(before, "lalr1", builder)
        table = cache.load_or_build(after, "lalr1", builder)
        # Same grammar name, different content: distinct keys, no false hit.
        assert len(calls) == 2
        assert cache.hits == 0
        assert table.is_deterministic

    def test_embedded_fingerprint_mismatch_is_corruption(self, grammar, cache):
        # Force a key collision by renaming another grammar's entry onto
        # this grammar's path: the payload's own fingerprint must reject it.
        other = corpus.load("json", augment=True)
        cache.load_or_build(other, "lalr1", build_lalr_table)
        target = cache.path_for(grammar, "lalr1")
        os.makedirs(os.path.dirname(target), exist_ok=True)
        os.replace(cache.path_for(other, "lalr1"), target)
        table = cache.load_or_build(grammar, "lalr1", build_lalr_table)
        assert cache.corrupt == 1
        assert table.grammar.name == grammar.name

    def test_corrupt_file_rebuilds_and_evicts(self, grammar, cache):
        builder, calls = _build_calls(build_lalr_table)
        reference = cache.load_or_build(grammar, "lalr1", builder)
        path = cache.path_for(grammar, "lalr1")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"format": 1, "acti')  # torn mid-write
        table = cache.load_or_build(grammar, "lalr1", builder)
        assert len(calls) == 2  # silent rebuild, no exception
        assert table.actions == reference.actions
        assert cache.stats() == {"hits": 0, "misses": 2, "corrupt": 1, "stores": 2}
        # The damaged entry was replaced by the fresh store: next run hits.
        cache.load_or_build(grammar, "lalr1", builder)
        assert cache.hits == 1 and len(calls) == 2

    def test_corrupt_emits_instrument_counter(self, grammar, cache):
        cache.load_or_build(grammar, "lalr1", build_lalr_table)
        path = cache.path_for(grammar, "lalr1")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json at all")
        with profile() as collector:
            cache.load_or_build(grammar, "lalr1", build_lalr_table)
        assert collector.counters["table.cache.corrupt"] == 1
        assert collector.counters["table.cache.misses"] == 1

    def test_wrong_payload_type_is_corruption(self, grammar, cache):
        cache.load_or_build(grammar, "lalr1", build_lalr_table)
        path = cache.path_for(grammar, "lalr1")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(["not", "a", "table"], handle)
        table = cache.load_or_build(grammar, "lalr1", build_lalr_table)
        assert cache.corrupt == 1
        assert table.is_deterministic


class TestStore:
    def test_conflicted_table_is_cached_with_its_conflicts(self, cache):
        # Formats 4 (json) / 3 (bin) carry the unresolved-conflict
        # section, so conflicted tables are cacheable like any other.
        ambiguous = load_grammar(
            "%token a\n%start E\n%%\nE : E E | a ;\n", name="amb"
        ).augmented()
        table = build_lalr_table(ambiguous)
        assert table.unresolved_conflicts
        assert cache.store(table) is True
        assert cache.stores == 1
        assert os.path.exists(cache.path_for(ambiguous, "lalr1"))
        loaded = cache.load(ambiguous, "lalr1")
        assert not loaded.is_deterministic
        assert len(loaded.unresolved_conflicts) == len(table.unresolved_conflicts)

    def test_load_or_build_hits_for_conflicted_table(self, cache):
        ambiguous = load_grammar(
            "%token a\n%start E\n%%\nE : E E | a ;\n", name="amb"
        ).augmented()
        builder, calls = _build_calls(build_lalr_table)
        cache.load_or_build(ambiguous, "lalr1", builder)
        cache.load_or_build(ambiguous, "lalr1", builder)
        assert len(calls) == 1  # second call served from disk
        assert cache.hits == 1

    def test_unusable_directory_never_raises(self, grammar, tmp_path):
        # The configured directory is an existing *file*: loads read
        # through it (corrupt path) and stores fail soft — the cache
        # must degrade to a plain rebuild, never a crash.
        blocker = tmp_path / "notadir"
        blocker.write_text("", encoding="utf-8")
        cache = TableCache(str(blocker))
        table = cache.load_or_build(grammar, "lalr1", build_lalr_table)
        assert table.is_deterministic
        assert cache.stores == 0

    def test_clear_removes_entries(self, grammar, cache):
        cache.load_or_build(grammar, "lalr1", build_lalr_table)
        assert cache.clear() == 1
        assert cache.clear() == 0  # idempotent, also fine on missing dir


class TestBinaryBackend:
    """backend="bin" stores .rtb artifacts and loads them zero-copy; the
    eviction/corruption contract is identical to the JSON backend."""

    @pytest.fixture
    def bin_cache(self, tmp_path):
        return TableCache(str(tmp_path / "cache"), backend="bin")

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="backend"):
            TableCache(str(tmp_path), backend="xml")

    def test_round_trip_through_binary_entry(self, grammar, bin_cache):
        from repro.tables.binfmt import BINARY_SUFFIX

        builder, calls = _build_calls(build_lalr_table)
        first = bin_cache.load_or_build(grammar, "lalr1", builder)
        path = bin_cache.path_for(grammar, "lalr1")
        assert path.endswith(BINARY_SUFFIX)
        assert os.path.exists(path)
        second = bin_cache.load_or_build(grammar, "lalr1", builder)
        assert calls == [grammar.name]
        assert bin_cache.hits == 1
        assert second.actions == first.actions
        assert second.method == first.method

    def test_loaded_binary_table_parses(self, grammar, bin_cache):
        from repro.parser import Parser

        bin_cache.load_or_build(grammar, "lalr1", build_lalr_table)
        table = bin_cache.load(grammar, "lalr1")
        assert Parser(table).accepts(["id", "+", "id"])

    def test_corrupt_binary_entry_rebuilds_and_evicts(self, grammar, bin_cache):
        builder, calls = _build_calls(build_lalr_table)
        bin_cache.load_or_build(grammar, "lalr1", builder)
        path = bin_cache.path_for(grammar, "lalr1")
        with open(path, "wb") as handle:
            handle.write(b"RPTB" + b"\x00" * 10)  # truncated header
        table = bin_cache.load_or_build(grammar, "lalr1", builder)
        assert len(calls) == 2
        assert bin_cache.corrupt == 1
        assert table.is_deterministic

    def test_backends_are_keyed_separately(self, grammar, tmp_path):
        directory = str(tmp_path / "cache")
        json_cache = TableCache(directory, backend="json")
        bin_cache = TableCache(directory, backend="bin")
        json_cache.load_or_build(grammar, "lalr1", build_lalr_table)
        # Different suffix => the binary cache misses and stores its own.
        bin_cache.load_or_build(grammar, "lalr1", build_lalr_table)
        assert bin_cache.hits == 0 and bin_cache.stores == 1
        # Same fingerprint => both entries share one shard directory.
        shard = os.path.dirname(bin_cache.path_for(grammar, "lalr1"))
        assert len(os.listdir(shard)) == 2

    def test_clear_removes_both_backends(self, grammar, tmp_path):
        directory = str(tmp_path / "cache")
        TableCache(directory, backend="json").load_or_build(
            grammar, "lalr1", build_lalr_table
        )
        bin_cache = TableCache(directory, backend="bin")
        bin_cache.load_or_build(grammar, "lalr1", build_lalr_table)
        assert bin_cache.clear() == 2
        assert os.listdir(directory) == []

    def test_load_emits_latency_and_size_counters(self, grammar, bin_cache):
        bin_cache.load_or_build(grammar, "lalr1", build_lalr_table)
        with profile() as collector:
            bin_cache.load_or_build(grammar, "lalr1", build_lalr_table)
        assert collector.counters["table.cache.load_ns"] > 0
        assert collector.counters["table.bytes"] == os.path.getsize(
            bin_cache.path_for(grammar, "lalr1")
        )

    def test_store_emits_size_counter(self, grammar, bin_cache):
        with profile() as collector:
            bin_cache.load_or_build(grammar, "lalr1", build_lalr_table)
        assert collector.counters["table.bytes"] == os.path.getsize(
            bin_cache.path_for(grammar, "lalr1")
        )


class TestDefaultDirectory:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "override"))
        assert default_cache_dir() == str(tmp_path / "override")

    def test_falls_back_to_tempdir(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert os.path.basename(default_cache_dir()) == "repro-table-cache"


class TestFormatMigration:
    def test_pre_refactor_entry_evicted_and_rebuilt(self, grammar, cache):
        """A cache file written by the pre-integer-core format (format 1)
        is treated as unusable: evicted from disk, counted as corrupt,
        and the table rebuilt from scratch."""
        from repro.tables.serialize import table_to_dict

        builder, calls = _build_calls(build_lalr_table)
        # Forge a format-1 entry at the exact key the cache would probe.
        stale = table_to_dict(build_lalr_table(grammar))
        stale["format"] = 1
        path = cache.path_for(grammar, "lalr1")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(stale, handle)

        table = cache.load_or_build(grammar, "lalr1", builder)
        assert calls == [grammar.name]  # rebuilt, not loaded
        assert table.is_deterministic
        assert cache.corrupt == 1
        # The stale entry was replaced by a current-format one that now hits.
        with open(path, "r", encoding="utf-8") as handle:
            from repro.tables.serialize import FORMAT_VERSION

            assert json.load(handle)["format"] == FORMAT_VERSION
        cache.load_or_build(grammar, "lalr1", builder)
        assert cache.hits == 1 and calls == [grammar.name]


def _concurrent_writer(directory, barrier, iterations):
    """Subprocess body: hammer save_table at one fingerprint in lockstep."""
    from repro.grammars import corpus
    from repro.tables import TableCache, build_lalr_table

    grammar = corpus.load("expr", augment=True)
    table = build_lalr_table(grammar)
    cache = TableCache(directory)
    barrier.wait()  # maximise overlap between the two writers
    for _ in range(iterations):
        assert cache.store(table)


class TestConcurrentWriters:
    """Two processes save_table the same fingerprint simultaneously.

    The atomic temp-file + os.replace protocol guarantees (a) whichever
    write wins, the surviving entry is a complete, loadable JSON file —
    never an interleaving of the two — and (b) no orphaned ``*.tmp``
    files are left behind.
    """

    def test_simultaneous_stores_leave_a_loadable_entry_and_no_litter(self, tmp_path):
        import multiprocessing

        directory = str(tmp_path / "cache")
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(2)
        workers = [
            context.Process(
                target=_concurrent_writer, args=(directory, barrier, 25)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0

        # The survivor always loads (os.replace is all-or-nothing)...
        grammar = corpus.load("expr", augment=True)
        cache = TableCache(directory)
        table = cache.load(grammar, "lalr1")
        assert table is not None and table.is_deterministic
        assert cache.stats()["corrupt"] == 0
        # ...and the shard holds exactly the entry, no .tmp litter.
        entry_path = cache.path_for(grammar, "lalr1")
        assert sorted(os.listdir(directory)) == [
            os.path.basename(os.path.dirname(entry_path))
        ]
        leftovers = sorted(os.listdir(os.path.dirname(entry_path)))
        assert leftovers == [os.path.basename(entry_path)]

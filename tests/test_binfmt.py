"""Unit tests: the versioned binary parse-table format."""

import struct

import pytest

from repro.grammars import corpus
from repro.parser import Parser
from repro.tables import build_lalr_table
from repro.tables.binfmt import (
    _HEADER,
    BINARY_FORMAT_VERSION,
    BINARY_SUFFIX,
    BinaryTable,
    load_binary_table,
    save_binary_table,
    table_from_bytes,
    table_to_bytes,
)
from repro.tables.serialize import TableCacheError


def expr_table():
    return build_lalr_table(corpus.load("expr", augment=True))


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["expr", "json", "lvalue", "algol_like"])
    def test_in_memory_round_trip(self, name):
        grammar = corpus.load(name, augment=True)
        table = build_lalr_table(grammar)
        restored = table_from_bytes(table_to_bytes(table), grammar)
        assert restored.n_states == table.n_states
        assert restored.method == table.method
        assert restored.actions == table.actions
        assert [list(r) for r in restored.goto_rows] == [
            list(r) for r in table.goto_rows
        ]

    def test_file_round_trip(self, tmp_path):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        path = tmp_path / f"table{BINARY_SUFFIX}"
        written = save_binary_table(table, str(path))
        assert written == path.stat().st_size
        restored = load_binary_table(str(path), grammar)
        assert restored.actions == table.actions
        restored.close()

    def test_deterministic_bytes(self):
        table = expr_table()
        assert table_to_bytes(table) == table_to_bytes(table)

    def test_restored_table_parses_identically(self):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        restored = table_from_bytes(table_to_bytes(table), grammar)
        original, loaded = Parser(table), Parser(restored)
        good = ["id", "+", "id", "*", "(", "id", ")"]
        assert loaded.parse(good).sexpr() == original.parse(good).sexpr()

    def test_conflicted_table_round_trips(self):
        grammar = corpus.load("dangling_else", augment=True)
        table = build_lalr_table(grammar)
        assert table.unresolved_conflicts
        restored = table_from_bytes(table_to_bytes(table), grammar)
        assert not restored.is_deterministic
        assert len(restored.unresolved_conflicts) == len(
            table.unresolved_conflicts
        )
        assert restored.conflict_summary() == table.conflict_summary()
        original = restored.unresolved_conflicts[0]
        assert original.kind == table.unresolved_conflicts[0].kind
        assert original.terminal.name == (
            table.unresolved_conflicts[0].terminal.name
        )


class TestLazyDecode:
    def test_rows_cached_and_interned(self):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        restored = table_from_bytes(table_to_bytes(table), grammar)
        assert restored.action_rows[0] is restored.action_rows[0]
        assert restored.goto_rows[0] is restored.goto_rows[0]

    def test_duck_compatible_surface(self):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        restored = table_from_bytes(table_to_bytes(table), grammar)
        assert restored.is_deterministic
        assert restored.unresolved_conflicts == []
        assert restored.conflict_summary() == {
            "shift_reduce": 0, "reduce_reduce": 0, "resolved": 0,
        }
        assert restored.size_cells() == table.size_cells()
        for state in range(table.n_states):
            for terminal, action in table.actions[state].items():
                assert restored.action(state, terminal) == action
            for nonterminal, target in table.gotos[state].items():
                assert restored.goto(state, nonterminal) == target


class TestRejection:
    """Every structural defect is a TableCacheError — the cache layer's
    uniform "evict and rebuild" contract covers binary entries too."""

    def corrupt(self, blob: bytes, offset: int, new: bytes) -> bytes:
        return blob[:offset] + new + blob[offset + len(new) :]

    def test_bad_magic(self):
        grammar = corpus.load("expr", augment=True)
        blob = self.corrupt(table_to_bytes(expr_table()), 0, b"JUNK")
        with pytest.raises(TableCacheError, match="magic"):
            table_from_bytes(blob, grammar)

    def test_foreign_format_version(self):
        grammar = corpus.load("expr", augment=True)
        blob = self.corrupt(
            table_to_bytes(expr_table()), 4, struct.pack("<H", BINARY_FORMAT_VERSION + 1)
        )
        with pytest.raises(TableCacheError, match="format"):
            table_from_bytes(blob, grammar)

    def test_foreign_id_layout(self):
        grammar = corpus.load("expr", augment=True)
        blob = self.corrupt(table_to_bytes(expr_table()), 6, struct.pack("<H", 99))
        with pytest.raises(TableCacheError, match="ID layout"):
            table_from_bytes(blob, grammar)

    def test_foreign_fingerprint(self):
        other = corpus.load("lvalue", augment=True)
        with pytest.raises(TableCacheError, match="fingerprint"):
            table_from_bytes(table_to_bytes(expr_table()), other)

    def test_truncated_header(self):
        grammar = corpus.load("expr", augment=True)
        with pytest.raises(TableCacheError, match="truncated"):
            table_from_bytes(table_to_bytes(expr_table())[:10], grammar)

    def test_truncated_payload(self):
        grammar = corpus.load("expr", augment=True)
        with pytest.raises(TableCacheError, match="truncated"):
            table_from_bytes(table_to_bytes(expr_table())[:-8], grammar)

    def test_payload_corruption_caught_by_crc(self):
        grammar = corpus.load("expr", augment=True)
        blob = table_to_bytes(expr_table())
        # XOR-flip one mid-payload byte: same length, different content.
        index = len(blob) - len(blob) // 4
        corrupted = self.corrupt(blob, index, bytes([blob[index] ^ 0x5A]))
        with pytest.raises(TableCacheError, match="CRC"):
            table_from_bytes(corrupted, grammar)

    def test_empty_file(self, tmp_path):
        grammar = corpus.load("expr", augment=True)
        path = tmp_path / f"empty{BINARY_SUFFIX}"
        path.write_bytes(b"")
        with pytest.raises(TableCacheError, match="truncated"):
            load_binary_table(str(path), grammar)

    def test_json_file_masquerading_as_binary(self, tmp_path):
        grammar = corpus.load("expr", augment=True)
        path = tmp_path / f"fake{BINARY_SUFFIX}"
        path.write_bytes(b'{"format": 2, "actions": []}' + b" " * 100)
        with pytest.raises(TableCacheError, match="magic"):
            load_binary_table(str(path), grammar)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        grammar = corpus.load("expr", augment=True)
        with pytest.raises(FileNotFoundError):
            load_binary_table(str(tmp_path / "absent.rtb"), grammar)


class TestAtomicWrite:
    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / f"table{BINARY_SUFFIX}"
        save_binary_table(expr_table(), str(path))
        assert sorted(p.name for p in tmp_path.iterdir()) == [path.name]

    def test_overwrite_replaces_content(self, tmp_path):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        path = tmp_path / f"table{BINARY_SUFFIX}"
        path.write_bytes(b"old junk")
        save_binary_table(table, str(path))
        restored = load_binary_table(str(path), grammar)
        assert restored.actions == table.actions
        restored.close()


class TestClose:
    def test_close_is_idempotent(self, tmp_path):
        grammar = corpus.load("expr", augment=True)
        path = tmp_path / f"table{BINARY_SUFFIX}"
        save_binary_table(build_lalr_table(grammar), str(path))
        restored = load_binary_table(str(path), grammar)
        assert isinstance(restored, BinaryTable)
        restored.close()
        restored.close()


class TestResolvedConflictSection:
    """Format 2's trailing section: precedence-resolved conflicts ride
    the artifact, so a loaded table reports the builder's summary."""

    def test_resolved_conflicts_survive_the_round_trip(self):
        grammar = corpus.load("expr_prec", augment=True)
        table = build_lalr_table(grammar)
        assert table.conflict_summary()["resolved"] > 0
        restored = table_from_bytes(table_to_bytes(table), grammar)
        assert restored.conflict_summary() == table.conflict_summary()
        original = {
            (c.state, c.terminal, c.kind, tuple(c.actions), c.chosen)
            for c in table.conflicts
        }
        roundtripped = {
            (c.state, c.terminal, c.kind, tuple(c.actions), c.chosen)
            for c in restored.conflicts
        }
        assert roundtripped == original
        assert all(c.resolved_by_precedence for c in restored.conflicts)

    def test_conflict_free_artifact_has_no_section(self):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        blob = table_to_bytes(table)
        base = (
            _HEADER.size
            + 64  # fingerprint
            + len(table.method)
            + 4 * table.n_states
            * (grammar.ids.num_terminals + grammar.ids.num_nonterminals)
        )
        assert len(blob) == base

    def test_truncated_resolved_section_rejected(self):
        grammar = corpus.load("expr_prec", augment=True)
        blob = table_to_bytes(build_lalr_table(grammar))
        with pytest.raises(TableCacheError):
            table_from_bytes(blob[:-8], grammar)

"""Integration tests: the ``repro fuzz`` CLI and its exit-code contract.

The contract (satellite task): ``0`` = campaign/replay clean, ``1`` =
an oracle disagreement (CI must fail), ``2`` = usage error (unknown
oracle, bucket, or fingerprint; bad flags) — the same code argparse
itself uses, so misconfigured invocations never masquerade as clean
runs *or* as theorem violations.
"""

import io
import os
from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.fuzz.corpus import FailureCorpus
from repro.fuzz.oracles import ORACLES

COMMITTED_CORPUS = os.path.join(os.path.dirname(__file__), "fuzz_corpus")


def run(argv):
    captured = io.StringIO()
    with redirect_stdout(captured):
        code = main(argv)
    return code, captured.getvalue()


@pytest.fixture
def broken_oracle():
    def broken(ctx):
        return "synthetic disagreement"

    ORACLES["test-cli-broken"] = broken
    yield "test-cli-broken"
    del ORACLES["test-cli-broken"]


class TestFuzzRun:
    def test_clean_campaign_exits_zero(self):
        code, output = run(["fuzz", "run", "--seed", "1", "--count", "10"])
        assert code == 0
        assert "campaign: seed=1 count=10" in output
        assert "grammars: 10" in output
        assert "verdict: clean" in output

    def test_disagreement_exits_one_and_prints_failures(self, broken_oracle):
        code, output = run([
            "fuzz", "run", "--seed", "1", "--count", "3",
            "--oracles", broken_oracle,
        ])
        assert code == 1
        assert output.count("FAIL ") == 3
        assert "verdict: disagreement" in output

    def test_unknown_oracle_is_a_usage_error(self, capsys):
        code, _ = run(["fuzz", "run", "--oracles", "no-such-oracle"])
        assert code == 2
        assert "unknown oracle(s): no-such-oracle" in capsys.readouterr().err

    def test_unknown_bucket_is_a_usage_error(self, capsys):
        code, _ = run(["fuzz", "run", "--buckets", "small,bogus"])
        assert code == 2
        assert "unknown bucket(s): bogus" in capsys.readouterr().err

    def test_bucket_subset_is_honoured(self):
        code, output = run([
            "fuzz", "run", "--seed", "2", "--count", "6",
            "--buckets", "small,lean",
        ])
        assert code == 0
        assert "buckets=small,lean" in output
        assert "small=3" in output and "lean=3" in output

    def test_failures_land_in_the_corpus_dir(self, broken_oracle, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        code, output = run([
            "fuzz", "run", "--seed", "1", "--count", "2",
            "--oracles", broken_oracle, "--corpus", corpus_dir,
        ])
        assert code == 1
        assert "new corpus entries: 2" in output
        assert len(FailureCorpus(corpus_dir)) == 2

    def test_profile_flag_appends_breakdown(self):
        code, output = run(["fuzz", "run", "--count", "4", "--profile"])
        assert code == 0
        assert "fuzz.campaign" in output


class TestFuzzReplay:
    def test_committed_corpus_replays_clean(self):
        code, output = run(["fuzz", "replay", COMMITTED_CORPUS,
                            "--clr-bound", "0"])
        assert code == 0
        assert "still failing" in output and "verdict: clean" in output

    def test_empty_corpus_is_clean(self, tmp_path):
        code, output = run(["fuzz", "replay", str(tmp_path / "nothing")])
        assert code == 0
        assert "corpus is empty" in output

    def test_unknown_fingerprint_is_a_usage_error(self, capsys):
        code, _ = run(["fuzz", "replay", COMMITTED_CORPUS,
                       "--fingerprint", "zzzz"])
        assert code == 2
        assert "no corpus entry" in capsys.readouterr().err

    def test_surviving_failure_exits_one(self, broken_oracle, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        run(["fuzz", "run", "--seed", "1", "--count", "1",
             "--oracles", broken_oracle, "--corpus", corpus_dir])
        code, output = run(["fuzz", "replay", corpus_dir])
        assert code == 1
        assert "1 still failing" in output
        assert "verdict: disagreement" in output

    def test_single_entry_by_prefix(self):
        store = FailureCorpus(COMMITTED_CORPUS)
        fingerprint = store.fingerprints()[0]
        code, output = run(["fuzz", "replay", COMMITTED_CORPUS,
                            "--fingerprint", fingerprint[:10],
                            "--clr-bound", "0"])
        assert code == 0
        assert "replayed: 1 entries" in output


class TestFuzzMinimize:
    def test_minimizes_a_live_failure_end_to_end(self, broken_oracle, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        run(["fuzz", "run", "--seed", "1", "--count", "1",
             "--oracles", broken_oracle, "--corpus", corpus_dir])
        store = FailureCorpus(corpus_dir)
        fingerprint = store.fingerprints()[0]

        code, output = run(["fuzz", "minimize", corpus_dir, fingerprint[:12]])
        assert code == 0
        assert f"minimized {fingerprint[:12]}" in output
        # The shrunk grammar was written back onto the entry.
        entry = FailureCorpus(corpus_dir).get(fingerprint)
        assert entry.minimized_text
        assert len(entry.grammar(minimized=True).productions) <= 4

    def test_stale_entry_exits_one(self, tmp_path):
        # An entry whose oracle now agrees: nothing to shrink.
        def broken(ctx):
            return "transient"

        ORACLES["test-cli-transient"] = broken
        corpus_dir = str(tmp_path / "corpus")
        try:
            run(["fuzz", "run", "--seed", "1", "--count", "1",
                 "--oracles", "test-cli-transient", "--corpus", corpus_dir])
        finally:
            del ORACLES["test-cli-transient"]

        def fixed(ctx):
            return None

        ORACLES["test-cli-transient"] = fixed
        try:
            fingerprint = FailureCorpus(corpus_dir).fingerprints()[0]
            code, output = run(["fuzz", "minimize", corpus_dir, fingerprint])
        finally:
            del ORACLES["test-cli-transient"]
        assert code == 1
        assert "no longer reproduces" in output

    def test_unknown_fingerprint_is_a_usage_error(self, tmp_path, capsys):
        code, _ = run(["fuzz", "minimize", str(tmp_path / "empty"), "abcd"])
        assert code == 2
        assert "no corpus entry" in capsys.readouterr().err

    def test_output_flag_writes_the_grammar(self, broken_oracle, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        run(["fuzz", "run", "--seed", "1", "--count", "1",
             "--oracles", broken_oracle, "--corpus", corpus_dir])
        fingerprint = FailureCorpus(corpus_dir).fingerprints()[0]
        out_path = str(tmp_path / "minimal.cfg")
        code, _ = run(["fuzz", "minimize", corpus_dir, fingerprint,
                       "--output", out_path])
        assert code == 0
        with open(out_path, "r", encoding="utf-8") as handle:
            assert "%start" in handle.read()


class TestArgparseContract:
    def test_missing_fuzz_subcommand_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz"])
        assert excinfo.value.code == 2

    def test_bad_flag_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "run", "--no-such-flag"])
        assert excinfo.value.code == 2

    def test_missing_minimize_positionals_exit_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "minimize"])
        assert excinfo.value.code == 2

    def test_usage_and_domain_codes_are_distinct(self, broken_oracle):
        domain, _ = run(["fuzz", "run", "--count", "1",
                         "--oracles", broken_oracle])
        usage, _ = run(["fuzz", "run", "--oracles", "nope"])
        assert domain == 1 and usage == 2

"""The multi-core execution tier: pool serving must be invisible.

Two layers of contract, pinned here:

- **WorkerPool transport** — round-robin routing is deterministic
  (K requests over N workers land ceil/floor(K/N) each), typed errors
  (``HttpError``, ``BudgetExceeded``) cross the process boundary intact,
  unexpected worker exceptions surface as :class:`WorkerCrash` with the
  worker-side rendering, and a closed pool fails fast instead of
  hanging.
- **Served bit-identity** — an N-worker service answers every request
  byte-for-byte like the single-process service (budget 503s modulo the
  wall-clock ``elapsed_seconds`` field), under concurrent clients too,
  and ``/metrics`` accounts for *every* worker: per-worker served
  counters sum to the dispatch total and spread by at most one.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.budget import BudgetExceeded
from repro.service import (
    Client,
    HttpError,
    ServiceThread,
    WorkerCrash,
    WorkerPool,
    fork_available,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process pool needs fork"
)

#: Stateless requests whose pooled answers must match single-process
#: byte-for-byte: success, taxonomy errors, and a budget 503.
MATRIX = [
    ("/compile", {"corpus": "expr"}, {}),
    ("/compile", {"corpus": "json", "method": "slr"}, {}),
    ("/compile", {"corpus": "no_such_grammar"}, {}),
    ("/compile", {"corpus": "toy_java"}, {"X-Repro-Max-States": "2"}),
    ("/parse", {"corpus": "expr", "input": ["id", "+", "id"], "tree": True}, {}),
    ("/parse", {"corpus": "expr", "input": ["id", "+"]}, {}),
    ("/parse", {"corpus": "expr", "input": ["id", "zzz"]}, {}),
    ("/parse", {"corpus": "dangling_else", "input": ["other"]}, {}),
    ("/parse", {"corpus": "dangling_else", "engine": "glr", "tree": True,
                "input": ["if", "if", "other", "else", "other"]}, {}),
    ("/parse", {"corpus": "expr", "engine": "turbo", "input": ["id"]}, {}),
    ("/analyze", {"corpus": "lalr_not_slr"}, {}),
    ("/fuzz", {"seed": 11, "count": 5, "wait": True}, {}),
]


def _comparable(response):
    """(status, body) with run-dependent wall-clock fields removed."""
    try:
        body = response.json()
    except Exception:
        return response.status, response.body
    if isinstance(body, dict):
        body.pop("elapsed_seconds", None)
    return response.status, json.dumps(body, sort_keys=True)


@pytest.fixture(scope="module")
def single(tmp_path_factory):
    cache = tmp_path_factory.mktemp("pool-single")
    with ServiceThread(
        cache_dir=str(cache), cache_backend="bin", pool_workers=1
    ) as thread:
        yield thread


@pytest.fixture(scope="module")
def pooled(tmp_path_factory):
    cache = tmp_path_factory.mktemp("pool-multi")
    with ServiceThread(
        cache_dir=str(cache), cache_backend="bin", pool_workers=4
    ) as thread:
        assert thread.service.pool is not None
        yield thread


class TestWorkerPoolTransport:
    def test_round_robin_spread_is_deterministic(self):
        pool = WorkerPool(3).start()
        try:
            futures = [
                pool.submit("parse", {"corpus": "expr", "input": ["id"]})
                for _ in range(8)
            ]
            results = [f.result(timeout=60) for f in futures]
            assert all(r["valid"] for r in results)
            stats = pool.stats()
            served = [stats[f"worker_{i}_served"] for i in range(3)]
            assert sorted(served) == [2, 3, 3]
            assert sum(served) == stats["completed"] == stats["dispatched"] == 8
            assert stats["crashed"] == 0 and stats["pending"] == 0
        finally:
            pool.close()

    def test_http_error_crosses_the_boundary_typed(self):
        pool = WorkerPool(1).start()
        try:
            future = pool.submit("compile", {"corpus": "no_such_grammar"})
            with pytest.raises(HttpError) as err:
                future.result(timeout=60)
            assert err.value.status == 422
            assert err.value.code == "unknown_corpus"
        finally:
            pool.close()

    def test_budget_exceeded_crosses_the_boundary_typed(self):
        pool = WorkerPool(1).start()
        try:
            future = pool.submit(
                "compile",
                {"corpus": "toy_java"},
                headers={"x-repro-max-states": "2"},
            )
            with pytest.raises(BudgetExceeded) as err:
                future.result(timeout=60)
            assert err.value.resource == "max_states"
            assert err.value.limit == 2
            assert err.value.progress["states"] >= 2
        finally:
            pool.close()

    def test_worker_exception_becomes_workercrash_with_rendering(self):
        pool = WorkerPool(1).start()
        try:
            future = pool.submit("fuzz", {"wait": True, "count": "xx"})
            with pytest.raises(WorkerCrash) as err:
                future.result(timeout=60)
            assert err.value.rendered.startswith("ValueError:")
            assert pool.stats()["crashed"] == 1
        finally:
            pool.close()

    def test_unknown_kind_is_a_typed_400(self):
        pool = WorkerPool(1).start()
        try:
            with pytest.raises(HttpError) as err:
                pool.submit("reticulate", {}).result(timeout=60)
            assert err.value.status == 400
            assert err.value.code == "unknown_job_kind"
        finally:
            pool.close()

    def test_counters_fold_back_per_worker(self):
        absorbed = []
        pool = WorkerPool(
            2, absorb=lambda wid, counters: absorbed.append((wid, counters))
        ).start()
        try:
            futures = [
                pool.submit("parse", {"corpus": "expr", "input": ["id", "+", "id"]})
                for _ in range(4)
            ]
            for future in futures:
                future.result(timeout=60)
        finally:
            pool.close()
        assert len(absorbed) == 4
        assert sorted({wid for wid, _ in absorbed}) == [0, 1]
        for _, counters in absorbed:
            assert counters.get("parse.tokens", 0) >= 3

    def test_submit_before_start_and_after_close_fail_fast(self):
        pool = WorkerPool(1)
        with pytest.raises(WorkerCrash):
            pool.submit("parse", {}).result(timeout=5)
        pool.start()
        assert pool.alive
        pool.close()
        pool.close()  # idempotent
        assert not pool.alive
        with pytest.raises(WorkerCrash):
            pool.submit("parse", {}).result(timeout=5)


class TestServedBitIdentity:
    @pytest.mark.parametrize(
        "path,payload,headers",
        MATRIX,
        ids=[f"{p}-{i}" for i, (p, _, _) in enumerate(MATRIX)],
    )
    def test_pooled_response_matches_single_process(
        self, single, pooled, path, payload, headers
    ):
        reference = Client(single.port).post(path, payload, headers=headers)
        answer = Client(pooled.port).post(path, payload, headers=headers)
        assert _comparable(answer) == _comparable(reference)

    def test_budget_503_keeps_retry_after(self, pooled):
        response = Client(pooled.port).post(
            "/compile", {"corpus": "toy_java"},
            headers={"X-Repro-Max-States": "2"},
        )
        assert response.status == 503
        assert response.headers.get("retry-after") == "1"
        assert response.json()["error"] == "budget_exceeded"

    def test_concurrent_clients_get_identical_bytes(self, single, pooled):
        payload = {"corpus": "expr", "input": ["(", "id", "+", "id", ")"],
                   "tree": True}
        reference = Client(single.port).post("/parse", payload).body
        results, errors = [], []

        def hammer():
            try:
                client = Client(pooled.port)
                for _ in range(6):
                    response = client.post("/parse", payload)
                    results.append((response.status, response.body))
            except Exception as error:  # pragma: no cover - diagnostics
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        assert len(results) == 48
        assert set(results) == {(200, reference)}

    def test_async_compile_job_rides_the_pool(self, pooled):
        client = Client(pooled.port)
        submitted = client.post(
            "/compile", {"corpus": "mini_c", "async": True}
        )
        assert submitted.status == 202
        job_id = submitted.json()["job"]
        for _ in range(200):
            polled = client.get(f"/jobs/{job_id}").json()
            if polled["status"] in ("done", "failed"):
                break
        assert polled["status"] == "done"
        assert polled["result"]["states"] > 0


class TestPoolMetricsAccounting:
    def test_every_worker_is_counted(self, tmp_path):
        with ServiceThread(
            cache_dir=str(tmp_path / "cache"),
            cache_backend="bin",
            pool_workers=4,
        ) as thread:
            client = Client(thread.port)
            payload = {"corpus": "expr", "input": ["id", "*", "id"]}
            for _ in range(16):
                assert client.post("/parse", payload).status == 200

            metrics = client.get("/metrics?format=json").json()
            pool = metrics["pool"]
            served = [pool[f"worker_{i}_served"] for i in range(4)]
            assert all(count >= 1 for count in served)
            assert max(served) - min(served) <= 1
            assert sum(served) == pool["completed"] == pool["dispatched"] == 16
            assert pool["pending"] == 0 and pool["crashed"] == 0

            counters = metrics["counters"]
            per_worker = [
                counters.get(f"service.pool.worker.{i}.requests", 0)
                for i in range(4)
            ]
            assert sum(per_worker) == pool["completed"]
            assert counters["service.pool.dispatched"] == pool["dispatched"]
            # Worker-side instrument counters folded into the registry:
            # 16 parses of a 3-token sentence (plus EOF handling) must
            # aggregate exactly like the single-process tier would.
            assert counters["parse.tokens"] == 16 * 3

            text = client.get("/metrics").body.decode("utf-8")
            assert "repro_pool_worker_0_served" in text
            assert "repro_jobs_evicted 0" in text

"""Integration tests: the command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import main


def run(argv):
    captured = io.StringIO()
    with redirect_stdout(captured):
        code = main(argv)
    return code, captured.getvalue()


@pytest.fixture
def grammar_file(tmp_path):
    path = tmp_path / "g.cfg"
    path.write_text("E -> E + T | T\nT -> id\n")
    return str(path)


class TestPipelineCommand:
    def test_explicit_invocation(self, grammar_file):
        code, output = run(["pipeline", grammar_file])
        assert code == 0
        assert "method: lalr1" in output and "states:" in output

    def test_is_the_default_command(self, grammar_file):
        # `python -m repro <grammar>` with no command word runs pipeline.
        code, output = run([grammar_file])
        assert code == 0
        assert "method: lalr1" in output

    def test_conflicted_grammar_exit_code(self):
        code, output = run(["corpus:dangling_else"])
        assert code == 1
        assert "1 shift/reduce" in output

    def test_conflicted_grammar_input_falls_back_to_glr(self):
        code, output = run(
            ["corpus:dangling_else", "--input", "if other else other"]
        )
        assert code == 1  # nondeterministic table still exits 1
        assert "input: valid" in output
        code, output = run(["corpus:dangling_else", "--input", "else"])
        assert "input: invalid" in output

    def test_input_flag(self, grammar_file):
        code, output = run([grammar_file, "--input", "id + id"])
        assert code == 0 and "input: valid" in output
        code, output = run([grammar_file, "--input", "id +"])
        assert code == 1 and "input: invalid" in output


class TestProfileFlag:
    def test_phase_breakdown_covers_pipeline(self, grammar_file):
        code, output = run([grammar_file, "--profile"])
        assert code == 0
        assert "phase breakdown" in output
        for phase in ("lr0.build", "lalr.relations", "lalr.digraph.reads",
                      "lalr.digraph.includes", "table.fill"):
            assert phase in output, phase

    def test_counters_reported(self, grammar_file):
        _, output = run([grammar_file, "--profile"])
        assert "counters:" in output
        assert "digraph.unions" in output

    def test_throughput_on_parse(self, grammar_file):
        _, output = run([grammar_file, "--profile", "--input", "id + id"])
        assert "parse.run" in output
        assert "tokens/sec" in output

    def test_profile_json_written(self, grammar_file, tmp_path):
        import json

        json_path = tmp_path / "profile.json"
        _, output = run([grammar_file, "--profile",
                         "--profile-json", str(json_path)])
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert "lr0.build" in payload["phases"]
        assert payload["counters"]["lr0.states"] > 0

    def test_no_breakdown_without_flag(self, grammar_file):
        _, output = run([grammar_file])
        assert "phase breakdown" not in output

    def test_works_on_other_commands(self, grammar_file):
        code, output = run(["classify", grammar_file, "--profile"])
        assert code == 0
        assert "phase breakdown" in output


class TestCacheFlag:
    def test_miss_then_hit(self, grammar_file, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, output = run([grammar_file, "--cache", cache_dir])
        assert code == 0 and "cache: miss" in output
        code, output = run([grammar_file, "--cache", cache_dir])
        assert code == 0 and "cache: hit" in output

    def test_hit_shows_in_profile_counters(self, grammar_file, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run([grammar_file, "--cache", cache_dir])
        _, output = run([grammar_file, "--cache", cache_dir, "--profile"])
        assert "table.cache.hits" in output

    def test_corrupt_entry_rebuilds_silently(self, grammar_file, tmp_path):
        cache_dir = tmp_path / "cache"
        run([grammar_file, "--cache", str(cache_dir)])
        (entry,) = cache_dir.glob("*/*.json")  # entries live in shards
        entry.write_text('{"format": 1, "acti')  # torn file from a fake crash
        code, output = run([grammar_file, "--cache", str(cache_dir)])
        assert code == 0  # no traceback, just a rebuild
        assert "rebuilt (corrupt entry)" in output
        # The rebuild re-stored a good entry: next run is a clean hit.
        code, output = run([grammar_file, "--cache", str(cache_dir)])
        assert "cache: hit" in output

    def test_cache_const_default(self, grammar_file, tmp_path, monkeypatch):
        # Bare `--cache` uses $REPRO_TABLE_CACHE; the env var is read at
        # parser construction, so set it before invoking main().
        monkeypatch.setenv("REPRO_TABLE_CACHE", str(tmp_path / "env-cache"))
        code, output = run([grammar_file, "--cache"])
        assert code == 0
        assert str(tmp_path / "env-cache") in output

    def test_parse_command_honours_cache(self, grammar_file, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, _ = run(["parse", grammar_file, "--input", "id + id",
                       "--cache", cache_dir])
        assert code == 0
        code, _ = run(["parse", grammar_file, "--input", "id + id",
                       "--cache", cache_dir])
        assert code == 0


class TestClassify:
    def test_corpus_spec(self):
        code, output = run(["classify", "corpus:expr"])
        assert code == 0
        assert "class: SLR(1)" in output

    def test_file_spec(self, grammar_file):
        # Without the * level and parentheses this little grammar is LR(0).
        code, output = run(["classify", grammar_file])
        assert code == 0
        assert "class: LR(0)" in output

    def test_not_lr_k_reported(self):
        code, output = run(["classify", "corpus:reads_cycle"])
        assert "not LR(k) (reads cycle): True" in output
        assert "conflicts[clr1]: n/a" in output

    def test_use_precedence_flag(self):
        code, output = run(["classify", "corpus:expr_prec", "--use-precedence"])
        assert "LALR(1): True" in output


class TestLa:
    def test_prints_la_sets(self, grammar_file):
        code, output = run(["la", grammar_file])
        assert code == 0
        assert "LA(" in output and "Follow(" in output


class TestTable:
    def test_lalr_table_clean(self, grammar_file):
        code, output = run(["table", grammar_file])
        assert code == 0
        assert "acc" in output
        assert "0 shift/reduce" in output

    def test_exit_code_on_conflicts(self):
        code, output = run(["table", "corpus:dangling_else"])
        assert code == 1
        assert "1 shift/reduce" in output

    def test_method_selection(self, grammar_file):
        code, output = run(["table", grammar_file, "--method", "clr1"])
        assert code == 0

    def test_print_states_truncates(self, grammar_file):
        code, output = run(["table", grammar_file, "--print-states", "2"])
        assert "more states" in output


class TestTableArtifacts:
    def test_compress_displace_report(self, grammar_file):
        code, output = run(["table", grammar_file, "--compress", "displace"])
        assert code == 0
        assert "compression[displace]:" in output
        assert "comb slots" in output and "ratio" in output

    def test_compress_default_report(self, grammar_file):
        code, output = run(["table", grammar_file, "--compress", "default"])
        assert code == 0
        assert "compression[default]:" in output

    def test_compress_skipped_on_conflicts(self):
        code, output = run(
            ["table", "corpus:dangling_else", "--compress", "displace"]
        )
        assert code == 1
        assert "compression: skipped" in output

    def test_output_json_artifact(self, grammar_file, tmp_path):
        out = str(tmp_path / "table.json")
        code, output = run(["table", grammar_file, "--output", out])
        assert code == 0
        assert f"wrote {out}" in output and "json)" in output
        import json

        with open(out, "r", encoding="utf-8") as handle:
            assert "actions" in json.load(handle)

    def test_output_binary_by_extension(self, grammar_file, tmp_path):
        out = str(tmp_path / "table.rtb")
        code, output = run(["table", grammar_file, "-o", out])
        assert code == 0
        assert "binary)" in output
        with open(out, "rb") as handle:
            assert handle.read(4) == b"RPTB"

    def test_output_binary_by_format_flag(self, grammar_file, tmp_path):
        out = str(tmp_path / "table.bin")
        code, output = run(
            ["table", grammar_file, "--format", "bin", "-o", out]
        )
        assert code == 0 and "binary)" in output

    def test_output_written_for_conflicted_table(self, tmp_path):
        # JSON format 4 / binary format 3 carry the conflict log, so a
        # conflicted table is a writable artifact (exit code still
        # signals nondeterminism).
        out = str(tmp_path / "table.rtb")
        code, output = run(["table", "corpus:dangling_else", "-o", out])
        assert code == 1
        assert f"wrote {out}" in output
        from repro.grammars import corpus
        from repro.tables import load_binary_table

        loaded = load_binary_table(
            out, corpus.load("dangling_else").augmented()
        )
        assert len(loaded.unresolved_conflicts) == 1


class TestBinaryCacheFlag:
    def test_bin_backend_miss_then_hit(self, grammar_file, tmp_path):
        import os

        cache_dir = tmp_path / "cache"
        code, output = run(
            [grammar_file, "--cache", str(cache_dir), "--format", "bin"]
        )
        assert code == 0 and "cache: miss" in output
        assert list(cache_dir.glob("*/*.rtb"))  # entries live in shards
        code, output = run(
            [grammar_file, "--cache", str(cache_dir), "--format", "bin"]
        )
        assert code == 0 and "cache: hit" in output

    def test_backends_do_not_collide(self, grammar_file, tmp_path):
        # A JSON entry must not satisfy a binary lookup or vice versa.
        cache_dir = str(tmp_path / "cache")
        run([grammar_file, "--cache", cache_dir])
        _, output = run(
            [grammar_file, "--cache", cache_dir, "--format", "bin"]
        )
        assert "cache: miss" in output

    def test_corrupt_binary_entry_rebuilds(self, grammar_file, tmp_path):
        cache_dir = tmp_path / "cache"
        run([grammar_file, "--cache", str(cache_dir), "--format", "bin"])
        (entry,) = cache_dir.glob("*/*.rtb")  # entries live in shards
        entry.write_bytes(b"RPTB truncated mid-write")
        code, output = run(
            [grammar_file, "--cache", str(cache_dir), "--format", "bin"]
        )
        assert code == 0
        assert "rebuilt (corrupt entry)" in output


class TestStatesAndConflicts:
    def test_states_dump(self, grammar_file):
        code, output = run(["states", grammar_file])
        assert code == 0
        assert "state 0" in output and "·" in output

    def test_states_kernel_only_smaller(self, grammar_file):
        _, full = run(["states", grammar_file])
        _, kernel = run(["states", grammar_file, "--kernel"])
        assert len(kernel) < len(full)

    def test_conflicts_clean(self, grammar_file):
        code, output = run(["conflicts", grammar_file])
        assert code == 0
        assert "no conflicts" in output

    def test_conflicts_reported(self):
        code, output = run(["conflicts", "corpus:lr1_not_lalr"])
        assert code == 1
        assert "reduce/reduce" in output


class TestParse:
    def test_valid(self, grammar_file):
        code, output = run(["parse", grammar_file, "--input", "id + id"])
        assert code == 0
        assert "valid" in output

    def test_invalid(self, grammar_file):
        code, output = run(["parse", grammar_file, "--input", "id +"])
        assert code == 1
        assert "invalid" in output

    def test_tree_flag(self, grammar_file):
        code, output = run(["parse", grammar_file, "--input", "id", "--tree"])
        assert "E" in output and "id" in output

    def test_lr_engine_refuses_conflicted_table(self, capsys):
        code, output = run(
            ["parse", "corpus:dangling_else", "--input", "other"]
        )
        assert code == 1
        assert "unresolved conflict" in capsys.readouterr().err

    def test_glr_engine_parses_conflicted_table(self):
        code, output = run(
            ["parse", "corpus:dangling_else", "--engine", "glr",
             "--input", "if other else other"]
        )
        assert code == 0
        assert "valid (1 parse tree)" in output

    def test_glr_engine_counts_ambiguous_readings(self):
        code, output = run(
            ["parse", "corpus:dangling_else", "--engine", "glr",
             "--input", "if if other else other"]
        )
        assert code == 0
        assert "valid (2 parse trees)" in output

    def test_glr_engine_reports_syntax_errors(self):
        code, output = run(
            ["parse", "corpus:dangling_else", "--engine", "glr",
             "--input", "else"]
        )
        assert code == 1
        assert "invalid: syntax error at position 0" in output

    def test_glr_engine_matches_lr_on_deterministic_grammar(self, grammar_file):
        lr_code, lr_output = run(
            ["parse", grammar_file, "--input", "id + id", "--tree"]
        )
        glr_code, glr_output = run(
            ["parse", grammar_file, "--engine", "glr",
             "--input", "id + id", "--tree"]
        )
        assert (lr_code, lr_output.replace("valid", "", 1)) == (
            glr_code, glr_output.replace("valid (1 parse tree)", "", 1)
        )


class TestStats:
    def test_metrics_listed(self, grammar_file):
        code, output = run(["stats", grammar_file])
        assert code == 0
        assert "states" in output and "includes_edges" in output


class TestGenerateAndDot:
    def test_generate_stdout(self, grammar_file):
        code, output = run(["generate", grammar_file])
        assert code == 0
        assert "GENERATED" in output and "def parse(" in output

    def test_generate_to_file_and_use(self, grammar_file, tmp_path):
        out_path = tmp_path / "gen_parser.py"
        code, output = run(["generate", grammar_file, "-o", str(out_path)])
        assert code == 0 and "wrote" in output
        import types

        module = types.ModuleType("g")
        exec(compile(out_path.read_text(), str(out_path), "exec"), module.__dict__)
        assert module.accepts("id + id".split())
        assert not module.accepts("id +".split())

    @pytest.mark.parametrize("style", ["dense", "displace"])
    def test_generate_style_flag(self, grammar_file, tmp_path, style):
        out_path = tmp_path / f"gen_{style}.py"
        code, output = run(
            ["generate", grammar_file, "--style", style, "-o", str(out_path)]
        )
        assert code == 0 and "wrote" in output
        import types

        module = types.ModuleType(f"g_{style}")
        exec(compile(out_path.read_text(), str(out_path), "exec"), module.__dict__)
        assert module.accepts("id + id".split())
        assert not module.accepts("id +".split())

    def test_generate_refuses_conflicted(self):
        with pytest.raises(ValueError):
            run(["generate", "corpus:dangling_else"])

    def test_dot_automaton(self, grammar_file):
        code, output = run(["dot", grammar_file])
        assert code == 0
        assert output.startswith("digraph lr0 {")

    def test_dot_reads_highlights(self):
        code, output = run(["dot", "corpus:reads_cycle", "--graph", "reads"])
        assert code == 0
        assert "fillcolor" in output

    def test_dot_includes(self, grammar_file):
        code, output = run(["dot", grammar_file, "--graph", "includes"])
        assert code == 0
        assert output.startswith("digraph includes {")


class TestConflictExplain:
    def test_explain_flag(self):
        code, output = run(["conflicts", "corpus:dangling_else", "--explain"])
        assert code == 1
        assert "example:" in output
        assert "if other · else" in output

    def test_explain_silent_when_clean(self, grammar_file):
        code, output = run(["conflicts", grammar_file, "--explain"])
        assert code == 0 and "example" not in output


class TestLintCommand:
    def test_clean_grammar(self, grammar_file):
        code, output = run(["lint", grammar_file])
        assert code == 0 and "clean" in output

    def test_error_exit_code(self):
        code, output = run(["lint", "corpus:reads_cycle"])
        assert code == 1
        assert "derivation-cycle" in output


class TestAmbiguityCommand:
    def test_ambiguous_grammar(self):
        code, output = run(["ambiguity", "corpus:dangling_else"])
        assert code == 1
        assert "verdict: ambiguous" in output and "witness:" in output

    def test_unambiguous_within_bound(self, grammar_file):
        code, output = run(["ambiguity", grammar_file, "--bound", "5"])
        assert code == 0
        assert "unambiguous-within" in output

    def test_cyclic_reported(self, tmp_path):
        path = tmp_path / "cyc.cfg"
        path.write_text("A -> B | a\nB -> A\n")
        code, output = run(["ambiguity", str(path)])
        assert code == 1 and "cyclic" in output


class TestEditCommand:
    def test_rhs_edit_splices_and_verifies(self):
        code, output = run(
            ["edit", "corpus:expr", "--set", "1: E * T", "--verify"]
        )
        assert code == 1  # the edited grammar is conflicted
        assert "splice (rhs)" in output
        assert "states recomputed" in output
        assert "2 shift/reduce" in output
        assert "bit-identical to a from-scratch build" in output

    def test_guard_fallback_still_verifies(self):
        # T -> T * id re-shapes state 10: the splice must fall back, and
        # --verify must still certify the rebuilt table.
        code, output = run(
            ["edit", "corpus:expr", "--set", "3: T * id", "--verify"]
        )
        assert code == 0
        assert "rebuild (rhs)" in output
        assert "bit-identical to a from-scratch build" in output

    def test_self_edit_is_a_noop(self):
        code, output = run(["edit", "corpus:expr", "--set", "5: ( E )"])
        assert code == 0
        assert "noop (identical)" in output

    def test_add_is_a_structural_rebuild(self):
        code, output = run(
            ["edit", "corpus:expr", "--add", "F: num", "--verify"]
        )
        assert code == 0
        assert "rebuild (terminal-set)" in output
        assert "states: 14" in output

    def test_no_edits_is_a_usage_error(self, capsys):
        assert main(["edit", "corpus:expr"]) == 2
        assert "no edits given" in capsys.readouterr().err

    def test_bad_index_is_a_usage_error(self, capsys):
        assert main(["edit", "corpus:expr", "--set", "99: id"]) == 2
        assert "--set" in capsys.readouterr().err

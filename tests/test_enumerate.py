"""Unit tests: bounded language enumeration."""

from repro.analysis.enumerate import (
    all_strings,
    bounded_language_equal,
    enumerate_language,
    yield_sets,
)
from repro.grammar import load_grammar, remove_epsilon_rules


def sentences(grammar, k):
    return {
        " ".join(s.name for s in sentence)
        for sentence in enumerate_language(grammar, k)
    }


class TestEnumerate:
    def test_finite_language_complete(self):
        grammar = load_grammar("S -> a b | c")
        assert sentences(grammar, 5) == {"a b", "c"}

    def test_length_bound_respected(self):
        grammar = load_grammar("S -> a S | a")
        assert sentences(grammar, 3) == {"a", "a a", "a a a"}

    def test_epsilon_included(self):
        grammar = load_grammar("S -> a S | %empty")
        result = sentences(grammar, 2)
        assert result == {"", "a", "a a"}

    def test_ambiguity_does_not_duplicate(self):
        grammar = load_grammar("S -> S S | a")
        result = enumerate_language(grammar, 3)
        assert len(result) == 3  # a, aa, aaa — as a set

    def test_palindromes(self):
        grammar = load_grammar("S -> a S a | b S b | %empty")
        result = sentences(grammar, 4)
        assert result == {
            "", "a a", "b b",
            "a a a a", "a b b a", "b a a b", "b b b b",
        }

    def test_expression_grammar_counts(self):
        grammar = load_grammar("E -> E + E | id")
        # length 1: id; length 3: id+id; length 5: id+id+id (one string).
        assert sentences(grammar, 5) == {"id", "id + id", "id + id + id"}

    def test_nongenerating_branch_ignored(self):
        grammar = load_grammar("S -> a | X\nX -> X x")
        assert sentences(grammar, 4) == {"a"}

    def test_yield_sets_per_nonterminal(self):
        grammar = load_grammar("S -> A A\nA -> a | b")
        yields = yield_sets(grammar, 2)
        a_yields = {
            " ".join(s.name for s in y) for y in yields[grammar.symbols["A"]]
        }
        assert a_yields == {"a", "b"}
        s_yields = yields[grammar.symbols["S"]]
        assert len(s_yields) == 4

    def test_works_on_augmented_view(self):
        grammar = load_grammar("S -> a").augmented()
        assert sentences(grammar, 2) == {"a"}


class TestAllStrings:
    def test_counts(self):
        grammar = load_grammar("S -> a b")
        terminals = grammar.terminals
        strings = list(all_strings(terminals, 2))
        # ε + 2 + 4
        assert len(strings) == 7

    def test_includes_empty(self):
        grammar = load_grammar("S -> a")
        assert () in set(all_strings(grammar.terminals, 1))


class TestBoundedEquality:
    def test_identical_grammars(self):
        a = load_grammar("S -> a S | b")
        b = load_grammar("S -> a S | b")
        assert bounded_language_equal(a, b, 5)

    def test_different_languages(self):
        a = load_grammar("S -> a S | b")
        b = load_grammar("S -> a S | c")
        assert not bounded_language_equal(a, b, 3)

    def test_equivalent_shapes(self):
        left_recursive = load_grammar("S -> S a | a")
        right_recursive = load_grammar("S -> a S | a")
        assert bounded_language_equal(left_recursive, right_recursive, 6)

    def test_epsilon_removal_contract(self):
        grammar = load_grammar("""
S -> A b A
A -> a | %empty
""")
        stripped = remove_epsilon_rules(grammar)
        assert bounded_language_equal(grammar, stripped, 5, ignore_epsilon=True)

    def test_epsilon_removal_contract_nullable_start(self):
        grammar = load_grammar("S -> a S a | %empty")
        stripped = remove_epsilon_rules(grammar)
        assert bounded_language_equal(grammar, stripped, 6, ignore_epsilon=True)

    def test_epsilon_removal_on_random_grammars(self):
        from repro.grammars import random_grammar

        for seed in range(12):
            grammar = random_grammar(seed, epsilon_weight=0.3)
            stripped = remove_epsilon_rules(grammar)
            assert bounded_language_equal(grammar, stripped, 4, ignore_epsilon=True), seed

"""Property-based tests (hypothesis) over random grammars.

These are the suite's heavy guns: every invariant in DESIGN.md §5 checked
on machine-generated grammars whose shapes (nullable density, recursion,
alternative counts) hypothesis explores and shrinks.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis import FirstSets, FollowSets, SentenceGenerator, leftmost_derivation
from repro.automaton import LR0Automaton
from repro.core import LalrAnalysis
from repro.core.digraph import digraph, naive_closure
from repro.fuzz.oracles import run_oracles
from repro.grammars.random_gen import random_grammar
from repro.parser import Parser
from repro.tables import build_clr_table, build_lalr_table

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

grammar_shapes = st.builds(
    lambda seed, nts, ts, eps: random_grammar(
        seed,
        n_nonterminals=nts,
        n_terminals=ts,
        epsilon_weight=eps,
    ),
    seed=st.integers(min_value=0, max_value=10_000),
    nts=st.integers(min_value=2, max_value=6),
    ts=st.integers(min_value=2, max_value=5),
    eps=st.floats(min_value=0.0, max_value=0.4),
)


class TestLookaheadEquivalence:
    """The headline theorem and its neighbours, via the shared oracle
    stack (repro.fuzz.oracles) — the same checks the fuzz campaign and
    the Table 6 benchmark run, here driven by hypothesis shapes."""

    @given(grammar=grammar_shapes)
    @settings(max_examples=60, **COMMON)
    def test_lookahead_oracles_agree(self, grammar):
        """LA_DP == LA_merge == LA_propagation, LA ⊆ NQLALR ⊆ FOLLOW,
        and generic-vs-integer Digraph identity."""
        failures = run_oracles(
            grammar,
            names=["lookahead-equivalence", "superset-chain", "digraph-identity"],
        )
        assert failures == [], [f.describe() for f in failures]

    @given(grammar=grammar_shapes)
    @settings(max_examples=30, **COMMON)
    def test_table_and_roundtrip_oracles_agree(self, grammar):
        """Cell-identical tables from DP vs merged lookaheads, and
        identical LALR/CLR derivations on generated sentences."""
        failures = run_oracles(
            grammar, names=["table-agreement", "sentence-roundtrip"], seed=7
        )
        assert failures == [], [f.describe() for f in failures]

    @given(grammar=grammar_shapes)
    @settings(max_examples=40, **COMMON)
    def test_dr_read_follow_chain(self, grammar):
        """DR ⊆ Read ⊆ Follow on every nonterminal transition."""
        analysis = LalrAnalysis(grammar.augmented())
        for transition in analysis.relations.transitions:
            dr = analysis.relations.dr[transition]
            read = analysis.read_sets[transition]
            follow = analysis.follow_sets[transition]
            assert dr & ~read == 0
            assert read & ~follow == 0


class TestDigraphProperty:
    @given(
        n=st.integers(min_value=1, max_value=12),
        edge_seeds=st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=40
        ),
        init_seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=100, **COMMON)
    def test_digraph_equals_naive_fixpoint(self, n, edge_seeds, init_seed):
        nodes = list(range(n))
        edges = {x: [] for x in nodes}
        for a, b in edge_seeds:
            edges[a % n].append(b % n)
        initial = {x: (init_seed >> x) & 0xFF for x in nodes}
        fast, _ = digraph(nodes, lambda x: edges[x], lambda x: initial[x])
        slow = naive_closure(nodes, lambda x: edges[x], lambda x: initial[x])
        assert fast == slow

    @given(
        n=st.integers(min_value=2, max_value=10),
        edge_seeds=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30
        ),
    )
    @settings(max_examples=60, **COMMON)
    def test_scc_members_share_results(self, n, edge_seeds):
        nodes = list(range(n))
        edges = {x: [] for x in nodes}
        for a, b in edge_seeds:
            edges[a % n].append(b % n)
        result, sccs = digraph(nodes, lambda x: edges[x], lambda x: 1 << x)
        for component in sccs:
            values = {result[member] for member in component}
            assert len(values) == 1


class TestFirstFollowProperties:
    @given(grammar=grammar_shapes)
    @settings(max_examples=50, **COMMON)
    def test_first_of_generated_sentence_prefix(self, grammar):
        """The first terminal of any generated sentence is in FIRST(start)."""
        generator = SentenceGenerator(grammar, seed=3)
        first = FirstSets(grammar)
        for _ in range(5):
            sentence = generator.sentence(budget=12)
            if sentence:
                assert sentence[0] in first[grammar.start]

    @given(grammar=grammar_shapes)
    @settings(max_examples=50, **COMMON)
    def test_follow_contains_observed_followers(self, grammar):
        """Any terminal observed right after A's yield in a derivation tree
        must lie in FOLLOW(A).  We check the weaker corollary that is easy
        to observe: adjacent pairs in rhs contribute FIRST(next) ⊆
        FOLLOW(prev) for nonterminal prev."""
        first = FirstSets(grammar)
        follow = FollowSets(grammar, first)
        for production in grammar.productions:
            rhs = production.rhs
            for i in range(len(rhs) - 1):
                if rhs[i].is_nonterminal:
                    terminals, _ = first.of_sequence(rhs[i + 1 :])
                    assert terminals <= follow[rhs[i]]

    @given(grammar=grammar_shapes)
    @settings(max_examples=50, **COMMON)
    def test_nullable_iff_empty_derivable(self, grammar):
        from repro.analysis import nullable_nonterminals
        from repro.analysis.derive import min_yield_lengths

        nullable = nullable_nonterminals(grammar)
        lengths = min_yield_lengths(grammar)
        for nonterminal in grammar.nonterminals:
            assert (nonterminal in nullable) == (lengths[nonterminal] == 0)


class TestParserRoundTrip:
    @given(
        grammar=grammar_shapes,
        choices=st.lists(st.integers(min_value=0, max_value=7), max_size=12),
    )
    @settings(max_examples=60, **COMMON)
    def test_generated_sentences_accepted_by_clr(self, grammar, choices):
        """Every sentence of the grammar parses with the canonical table
        (CLR is conflict-free only for LR(1) grammars; the engine's
        yacc-default tie-breaks still accept every sentence — on
        ambiguous grammars they pick one tree, never reject)."""
        grammar = grammar.augmented()
        # Canonical LR(1) is exponential-prone; bound the substrate so a
        # rare pathological draw cannot stall the suite.
        assume(len(LR0Automaton(grammar)) <= 40)
        sentence, _ = leftmost_derivation(grammar, choices)
        table = build_clr_table(grammar)
        parser = Parser(table, allow_conflicts=True)
        if table.is_deterministic:
            tree = parser.parse(sentence)
            assert [s.name for s in tree.fringe()] == [s.name for s in sentence]

    # (The LALR-vs-CLR sentence agreement that used to live here is now
    # the `sentence-roundtrip` oracle, exercised above and by the fuzz
    # campaign.)


class TestTableInvariants:
    @given(grammar=grammar_shapes)
    @settings(max_examples=40, **COMMON)
    def test_lalr_conflicts_iff_clr_or_merging_loss(self, grammar):
        """If LALR conflicts but CLR does not, the grammar is LR(1)-not-
        LALR(1); if CLR conflicts too, not LR(1).  Never the reverse."""
        grammar = grammar.augmented()
        assume(len(LR0Automaton(grammar)) <= 40)
        lalr = build_lalr_table(grammar)
        clr = build_clr_table(grammar)
        if lalr.is_deterministic:
            assert clr.is_deterministic

    @given(grammar=grammar_shapes)
    @settings(max_examples=40, **COMMON)
    def test_every_state_reachable_in_table(self, grammar):
        grammar = grammar.augmented()
        automaton = LR0Automaton(grammar)
        table = build_lalr_table(grammar, automaton)
        seen = {0}
        frontier = [0]
        while frontier:
            state = frontier.pop()
            successors = [a.state for a in table.actions[state].values()
                          if a.kind == "shift"]
            successors += list(table.gotos[state].values())
            for successor in successors:
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        # The state after shifting $end is deliberately unreachable — the
        # accept action replaces that shift.
        expected = set(range(table.n_states)) - {automaton.accept_state}
        assert expected <= seen


class TestNewComponentProperties:
    @given(grammar=grammar_shapes)
    @settings(max_examples=30, **COMMON)
    def test_compressed_table_equivalent_on_sentences(self, grammar):
        """Default-reduction compression never changes accepted parses."""
        from repro.analysis import SentenceGenerator
        from repro.tables.compress import compress

        grammar = grammar.augmented()
        table = build_lalr_table(grammar)
        if not table.is_deterministic:
            return
        plain = Parser(table)
        compact = Parser(compress(table))
        generator = SentenceGenerator(grammar, seed=1)
        for sentence in generator.sentences(4, budget=8):
            assert compact.parse(sentence).sexpr() == plain.parse(sentence).sexpr()

    @given(
        grammar=grammar_shapes,
        choices=st.lists(st.integers(min_value=0, max_value=7), max_size=8),
    )
    @settings(max_examples=40, **COMMON)
    def test_cyk_accepts_every_generated_sentence(self, grammar, choices):
        """CYK (via CNF) recognises every sentence the grammar derives."""
        from repro.parser import CykRecognizer

        sentence, _ = leftmost_derivation(grammar, choices)
        cyk = CykRecognizer(grammar)
        assert cyk.accepts([s.name for s in sentence])

    @given(grammar=grammar_shapes)
    @settings(max_examples=30, **COMMON)
    def test_ll1_conflict_free_iff_predict_disjoint(self, grammar):
        """The conflict list is empty exactly when PREDICT sets are
        pairwise disjoint per nonterminal — the LL(1) definition."""
        from repro.ll import Ll1Analysis

        analysis = Ll1Analysis(grammar.augmented())
        disjoint = True
        for nonterminal in analysis.grammar.nonterminals:
            if nonterminal is analysis.grammar.start:
                continue
            seen = set()
            for production in analysis.grammar.productions_for(nonterminal):
                predict = analysis.predict[production.index]
                if predict & seen:
                    disjoint = False
                seen |= predict
        assert analysis.is_ll1 == disjoint

    @given(grammar=grammar_shapes)
    @settings(max_examples=30, **COMMON)
    def test_lint_never_crashes_and_flags_cycles(self, grammar):
        from repro.grammar.lint import lint
        from repro.grammar.properties import has_cycles

        findings = lint(grammar)
        if has_cycles(grammar):
            assert any(w.code == "derivation-cycle" for w in findings)

    @given(
        grammar=grammar_shapes,
        choices=st.lists(st.integers(min_value=0, max_value=7), max_size=8),
    )
    @settings(max_examples=30, **COMMON)
    def test_generated_sentences_have_at_least_one_tree(self, grammar, choices):
        """Tree counting must see every derivable sentence (count ≥ 1)."""
        from repro.analysis.ambiguity import TreeCounter
        from repro.grammar.errors import GrammarValidationError
        from repro.grammar.properties import has_cycles

        if has_cycles(grammar):
            return
        sentence, _ = leftmost_derivation(grammar, choices)
        assume(len(sentence) <= 8)  # keep the span DP cheap
        assert TreeCounter(grammar).count(sentence) >= 1

    @given(grammar=grammar_shapes)
    @settings(max_examples=20, **COMMON)
    def test_deterministic_implies_unambiguous_within_bound(self, grammar):
        """LR(1)-deterministic grammars must count exactly one tree per
        sentence — the determinism ⇒ unambiguity theorem, bounded."""
        from repro.analysis.ambiguity import ambiguity_report
        from repro.grammar.properties import has_cycles

        if has_cycles(grammar):
            return
        augmented = grammar.augmented()
        assume(len(LR0Automaton(augmented)) <= 40)
        clr = build_clr_table(augmented)
        if not clr.is_deterministic:
            return
        report = ambiguity_report(grammar, 4)
        assert report.verdict == "unambiguous-within"

"""Unit tests: grammar linting."""

import pytest

from repro.grammar import load_grammar
from repro.grammar.lint import lint, lint_report
from repro.grammars import corpus


def codes(grammar):
    return [w.code for w in lint(grammar)]


class TestFindings:
    def test_clean_grammar(self):
        assert lint(load_grammar("S -> a S | b")) == []
        assert "clean" in lint_report(load_grammar("S -> a S | b"))

    def test_unused_terminal(self):
        grammar = load_grammar("%token GHOST\nS -> a")
        assert codes(grammar) == ["unused-terminal"]

    def test_prec_only_terminal_is_info(self):
        grammar = load_grammar("%right NEG\nE -> - E %prec NEG | x")
        findings = lint(grammar)
        assert [w.code for w in findings] == ["prec-only-terminal"]
        assert findings[0].severity == "info"

    def test_unreachable_nonterminal(self):
        grammar = load_grammar("S -> a\nX -> x")
        found = codes(grammar)
        assert "unreachable" in found
        # X's production is also never reduced.
        assert "never-reduced" in found

    def test_non_generating(self):
        grammar = load_grammar("S -> a | B\nB -> B b")
        found = codes(grammar)
        assert "non-generating" in found
        assert "never-reduced" in found

    def test_derivation_cycle(self):
        grammar = load_grammar("A -> B | a\nB -> A")
        assert codes(grammar).count("derivation-cycle") == 2

    def test_duplicate_production(self):
        grammar = load_grammar("S -> a | a")
        assert "duplicate-production" in codes(grammar)

    def test_severity_ordering(self):
        grammar = load_grammar("%token GHOST\nS -> a | B\nB -> B b")
        findings = lint(grammar)
        ranks = ["error", "warning", "info"]
        indices = [ranks.index(w.severity) for w in findings]
        assert indices == sorted(indices)

    def test_augmentation_not_reported(self):
        grammar = load_grammar("S -> a S | b").augmented()
        assert lint(grammar) == []

    def test_str_rendering(self):
        grammar = load_grammar("%token GHOST\nS -> a")
        (warning,) = lint(grammar)
        assert "[unused-terminal]" in str(warning)
        assert "GHOST" in str(warning)


class TestCorpusHygiene:
    @pytest.mark.parametrize("name", [e.name for e in corpus.all_entries()])
    def test_no_errors_in_corpus(self, name):
        # Corpus grammars may carry info findings (%prec handles) but no
        # errors and no warnings — except deliberately pathological
        # entries, whose defects are the point (reads_cycle's derivation
        # cycle is exactly what makes it not-LR(k)).
        if "pathological" in corpus.entry(name).tags:
            return
        findings = lint(corpus.load(name))
        serious = [w for w in findings if w.severity != "info"]
        assert serious == [], [str(w) for w in serious]

    def test_pathological_entry_flagged(self):
        findings = lint(corpus.load("reads_cycle"))
        assert any(w.code == "derivation-cycle" for w in findings)

"""Unit tests: terminal bitmask vocabulary."""

import pytest

from repro.core.bitset import EMPTY, TerminalVocabulary, _popcount_fallback, popcount
from repro.grammar import load_grammar


def vocab():
    grammar = load_grammar("S -> a b c d")
    return grammar, TerminalVocabulary(grammar)


class TestBits:
    def test_each_terminal_distinct_bit(self):
        grammar, v = vocab()
        bits = [v.bit(t) for t in grammar.terminals]
        assert len(set(bits)) == len(bits)
        for bit in bits:
            assert bit & (bit - 1) == 0  # power of two

    def test_len(self):
        grammar, v = vocab()
        assert len(v) == 4

    def test_mask_is_union_of_bits(self):
        grammar, v = vocab()
        a, b = grammar.symbols["a"], grammar.symbols["b"]
        assert v.mask([a, b]) == v.bit(a) | v.bit(b)

    def test_empty_mask(self):
        grammar, v = vocab()
        assert v.mask([]) == EMPTY


class TestRoundTrip:
    def test_symbols_inverts_mask(self):
        grammar, v = vocab()
        chosen = frozenset(grammar.terminals[1:3])
        assert v.symbols(v.mask(chosen)) == chosen

    def test_all_subsets_round_trip(self):
        grammar, v = vocab()
        from itertools import combinations

        terminals = grammar.terminals
        for size in range(len(terminals) + 1):
            for subset in combinations(terminals, size):
                mask = v.mask(subset)
                assert v.symbols(mask) == frozenset(subset)
                assert v.count(mask) == size

    def test_iter_symbols_order(self):
        grammar, v = vocab()
        mask = v.mask(grammar.terminals)
        assert list(v.iter_symbols(mask)) == grammar.terminals


class TestQueries:
    def test_contains(self):
        grammar, v = vocab()
        a, b = grammar.symbols["a"], grammar.symbols["b"]
        mask = v.bit(a)
        assert v.contains(mask, a)
        assert not v.contains(mask, b)

    def test_count_empty(self):
        grammar, v = vocab()
        assert v.count(EMPTY) == 0

    def test_union_via_or(self):
        grammar, v = vocab()
        a, b, c = (grammar.symbols[n] for n in "abc")
        assert v.symbols(v.mask([a, b]) | v.mask([b, c])) == frozenset((a, b, c))


class TestPopcount:
    """Both implementations: ``int.bit_count`` (Python >= 3.10, the
    selected path on this interpreter) and the string-counting fallback."""

    CASES = [0, 1, 2, 3, 0b1011, 2**31, 2**64 - 1, (1 << 200) | 1]

    @pytest.mark.parametrize("mask", CASES)
    def test_selected_implementation(self, mask):
        assert popcount(mask) == bin(mask).count("1")

    @pytest.mark.parametrize("mask", CASES)
    def test_fallback_agrees(self, mask):
        assert _popcount_fallback(mask) == popcount(mask)

    def test_native_selected_when_available(self):
        if hasattr(int, "bit_count"):
            assert popcount is int.bit_count
        else:
            assert popcount is _popcount_fallback

    def test_vocabulary_count_uses_popcount(self):
        grammar, v = vocab()
        full = v.mask(grammar.terminals)
        assert v.count(full) == len(grammar.terminals) == popcount(full)

"""Unit + integration tests: the LR-hierarchy classifier."""

import pytest

from repro.grammar import load_grammar
from repro.grammars import corpus
from repro.tables import GrammarClass, class_at_most, classify


class TestCorpusExpectations:
    """Every corpus entry carries its ground-truth class; the classifier
    must reproduce all of them (this is Table 4's correctness half)."""

    def test_expected_class(self, corpus_entry):
        verdict = classify(corpus.load(corpus_entry.name))
        assert verdict.grammar_class == corpus_entry.expected_class

    def test_expected_not_lr_k(self, corpus_entry):
        verdict = classify(corpus.load(corpus_entry.name))
        assert verdict.not_lr_k == corpus_entry.expected_not_lr_k


class TestHierarchyConsistency:
    def test_flags_monotone(self, corpus_entry):
        verdict = classify(corpus.load(corpus_entry.name))
        flags = [verdict.is_lr0, verdict.is_slr1, verdict.is_lalr1, verdict.is_lr1]
        # Once a construction succeeds, every stronger one must too.
        first_true = flags.index(True) if True in flags else len(flags)
        assert all(flags[first_true:]), flags

    def test_not_lr_k_implies_not_lr1(self, corpus_entry):
        verdict = classify(corpus.load(corpus_entry.name))
        if verdict.not_lr_k:
            assert not verdict.is_lr1

    def test_conflict_counts_shape(self, corpus_entry):
        verdict = classify(corpus.load(corpus_entry.name))
        assert {"lr0", "slr1", "lalr1", "clr1"} <= set(verdict.conflict_counts)

    def test_class_at_most_ordering(self):
        assert class_at_most(GrammarClass.LR0, GrammarClass.LALR1)
        assert class_at_most(GrammarClass.LALR1, GrammarClass.LALR1)
        assert not class_at_most(GrammarClass.LR1, GrammarClass.SLR1)


class TestPrecedenceHandling:
    def test_precedence_ignored_by_default(self):
        grammar = corpus.load("expr_prec")
        verdict = classify(grammar)
        assert verdict.grammar_class is GrammarClass.NOT_LR1

    def test_precedence_honoured_when_asked(self):
        grammar = corpus.load("expr_prec")
        verdict = classify(grammar, ignore_precedence=False)
        # With %left/%right honoured, every conflict resolves: the grammar
        # is usable at LALR(1) strength (and below, down to wherever the
        # resolved table is conflict-free).
        assert verdict.is_lalr1

    def test_stripping_does_not_mutate_original(self):
        grammar = corpus.load("expr_prec")
        before = dict(grammar.precedence)
        classify(grammar)
        assert grammar.precedence == before


class TestSmallVerdicts:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("S -> a S b | c", GrammarClass.LR0),
            ("S -> a S b | %empty", GrammarClass.SLR1),
            ("S -> a | a b", GrammarClass.SLR1),
            ("S -> A a | b A c | d c | b d a\nA -> d", GrammarClass.LALR1),
            ("S -> a A d | b B d | a B e | b A e\nA -> c\nB -> c", GrammarClass.LR1),
            ("S -> a S a | a", GrammarClass.NOT_LR1),
        ],
    )
    def test_verdict(self, text, expected):
        assert classify(load_grammar(text)).grammar_class == expected

    def test_epsilon_reduce_breaks_lr0(self):
        # S -> a S b | %empty: state 0 holds both `shift a` and the
        # epsilon reduce, so LR(0) conflicts; one token of FOLLOW fixes it.
        verdict = classify(load_grammar("S -> a S b | %empty"))
        assert not verdict.is_lr0
        assert verdict.is_slr1

"""Unit + integration tests: CNF conversion and the CYK oracle."""

import pytest

from repro.analysis import SentenceGenerator
from repro.analysis.enumerate import all_strings, bounded_language_equal, enumerate_language
from repro.grammar import load_grammar
from repro.grammar.cnf import CnfGrammar, is_cnf, to_cnf
from repro.grammars import corpus, random_grammar
from repro.parser import Parser
from repro.parser.cyk import CykRecognizer
from repro.tables import build_clr_table


class TestIsCnf:
    def test_accepts_cnf(self):
        grammar = load_grammar("S -> A B | a\nA -> a\nB -> b")
        assert is_cnf(grammar)

    def test_rejects_long_rhs(self):
        assert not is_cnf(load_grammar("S -> a b c"))

    def test_rejects_unit(self):
        assert not is_cnf(load_grammar("S -> A\nA -> a"))

    def test_rejects_epsilon(self):
        assert not is_cnf(load_grammar("S -> a | %empty"))

    def test_rejects_mixed_pair(self):
        assert not is_cnf(load_grammar("S -> a S | a"))


class TestToCnf:
    def test_result_is_cnf(self):
        converted = to_cnf(load_grammar("S -> a S b S | c | %empty"))
        assert is_cnf(converted.grammar)

    def test_epsilon_bit(self):
        assert to_cnf(load_grammar("S -> a | %empty")).accepts_epsilon
        assert not to_cnf(load_grammar("S -> a")).accepts_epsilon
        assert to_cnf(load_grammar("S -> A A\nA -> a | %empty")).accepts_epsilon

    def test_language_preserved(self):
        grammar = load_grammar("S -> a S b | %empty")
        converted = to_cnf(grammar)
        assert bounded_language_equal(
            grammar, converted.grammar, 6, ignore_epsilon=True
        )

    def test_language_preserved_with_units_and_epsilons(self):
        grammar = load_grammar("""
S -> A | S + A
A -> B
B -> a | ( S ) | %empty
""")
        converted = to_cnf(grammar)
        assert bounded_language_equal(
            grammar, converted.grammar, 5, ignore_epsilon=True
        )

    def test_language_preserved_on_random_grammars(self):
        for seed in range(10):
            grammar = random_grammar(seed, epsilon_weight=0.25)
            converted = to_cnf(grammar)
            assert bounded_language_equal(
                grammar, converted.grammar, 4, ignore_epsilon=True
            ), seed

    def test_augmented_rejected(self):
        with pytest.raises(ValueError):
            to_cnf(load_grammar("S -> a").augmented())

    def test_returns_named_tuple(self):
        converted = to_cnf(load_grammar("S -> a"))
        assert isinstance(converted, CnfGrammar)


class TestCykBasics:
    def test_simple_accept_reject(self):
        cyk = CykRecognizer(load_grammar("S -> a S b | a b"))
        assert cyk.accepts("a b".split())
        assert cyk.accepts("a a b b".split())
        assert not cyk.accepts("a b b".split())
        assert not cyk.accepts("b a".split())

    def test_empty_string(self):
        assert CykRecognizer(load_grammar("S -> a | %empty")).accepts([])
        assert not CykRecognizer(load_grammar("S -> a")).accepts([])

    def test_unknown_terminal_rejected(self):
        cyk = CykRecognizer(load_grammar("S -> a"))
        assert not cyk.accepts(["zzz"])

    def test_symbol_tokens(self):
        grammar = load_grammar("S -> a b")
        cyk = CykRecognizer(grammar)
        assert cyk.accepts([grammar.symbols["a"], grammar.symbols["b"]])

    def test_ambiguous_grammar_fine(self):
        cyk = CykRecognizer(load_grammar("S -> S S | a"))
        assert cyk.accepts(["a"] * 5)
        assert not cyk.accepts([])

    def test_palindrome_membership(self):
        cyk = CykRecognizer(load_grammar("S -> a S a | b S b | %empty"))
        assert cyk.accepts("a b b a".split())
        assert not cyk.accepts("a b a b".split())


class TestCykAsOracle:
    """CYK acceptance == grammar language == LR acceptance."""

    def test_exhaustive_against_enumeration(self):
        grammar = load_grammar("S -> a S b | a b | c")
        cyk = CykRecognizer(grammar)
        language = {
            tuple(s.name for s in sentence)
            for sentence in enumerate_language(grammar, 6)
        }
        for candidate in all_strings(grammar.terminals, 6):
            names = tuple(s.name for s in candidate)
            assert cyk.accepts(names) == (names in language), names

    def test_agrees_with_lr_parser_on_corpus(self):
        for name in ("expr", "json", "lr0_demo"):
            grammar = corpus.load(name, augment=True)
            parser = Parser(build_clr_table(grammar))
            cyk = CykRecognizer(corpus.load(name))
            generator = SentenceGenerator(grammar, seed=9)
            for sentence in generator.sentences(15, budget=10):
                assert cyk.accepts(sentence), (name, sentence)
                assert parser.accepts(sentence)

    def test_agrees_with_lr_on_random_grammars_and_fuzz(self):
        from repro.grammars.random_gen import random_token_stream

        checked = 0
        for seed in range(25):
            grammar = random_grammar(seed)
            augmented = grammar.augmented()
            table = build_clr_table(augmented)
            if not table.is_deterministic:
                continue  # LR acceptance undefined under conflicts
            parser = Parser(table)
            cyk = CykRecognizer(grammar)
            for sub_seed in range(6):
                tokens, _ = random_token_stream(augmented, seed * 100 + sub_seed, 8)
                names = [t.name for t in tokens]
                assert parser.accepts(tokens) == cyk.accepts(names), (seed, names)
                checked += 1
        assert checked > 30

"""Unit tests: the canonical LR(1) automaton."""

import pytest

from repro.automaton import Item, LR0Automaton, LR1Automaton
from repro.grammar import load_grammar
from repro.grammars import corpus


class TestConstruction:
    def test_auto_augments(self):
        lr1 = LR1Automaton(load_grammar("S -> a"))
        assert lr1.grammar.is_augmented

    def test_at_least_as_many_states_as_lr0(self, corpus_entry):
        grammar = corpus.load(corpus_entry.name).augmented()
        lr0 = LR0Automaton(grammar)
        lr1 = LR1Automaton(grammar)
        assert len(lr1) >= len(lr0)

    def test_cores_cover_lr0_states(self, corpus_entry):
        grammar = corpus.load(corpus_entry.name).augmented()
        lr0 = LR0Automaton(grammar)
        lr1 = LR1Automaton(grammar)
        lr0_kernels = {state.kernel for state in lr0.states}
        lr1_cores = {state.core for state in lr1.states}
        assert lr1_cores == lr0_kernels

    def test_lr1_splits_states_for_lr1_not_lalr(self):
        grammar = corpus.load("lr1_not_lalr").augmented()
        lr0 = LR0Automaton(grammar)
        lr1 = LR1Automaton(grammar)
        # The c-reduction state must be split by context.
        assert len(lr1) > len(lr0)

    def test_deterministic(self):
        grammar = load_grammar("S -> a S | b").augmented()
        first = LR1Automaton(grammar)
        second = LR1Automaton(grammar)
        assert [s.kernel for s in first.states] == [s.kernel for s in second.states]


class TestLookaheads:
    def test_start_state_lookahead(self):
        grammar = load_grammar("S -> a").augmented()
        lr1 = LR1Automaton(grammar)
        closure = lr1.states[0].closure
        s_item = Item(1, 0)
        assert closure[s_item] == frozenset((grammar.eof,))

    def test_context_specific_lookaheads(self):
        grammar = load_grammar("S -> a A d | b A e\nA -> c").augmented()
        lr1 = LR1Automaton(grammar)
        d = grammar.symbols["d"]
        e = grammar.symbols["e"]
        reduce_las = []
        for state in lr1.states:
            for production_index, las in lr1.reductions(state.state_id):
                if grammar.productions[production_index].lhs.name == "A":
                    reduce_las.append(las)
        # Two separate contexts, never merged: {d} and {e}.
        assert sorted(tuple(sorted(t.name for t in las)) for las in reduce_las) == [
            ("d",),
            ("e",),
        ]

    def test_items_flattening(self):
        grammar = load_grammar("S -> a").augmented()
        lr1 = LR1Automaton(grammar)
        flattened = list(lr1.states[0].items())
        assert len(flattened) == len(lr1.states[0].closure)  # one LA each here

    def test_goto(self):
        grammar = load_grammar("S -> a b").augmented()
        lr1 = LR1Automaton(grammar)
        a = grammar.symbols["a"]
        assert lr1.goto(0, a) is not None
        assert lr1.goto(0, grammar.symbols["b"]) is None

    def test_stats_keys(self):
        lr1 = LR1Automaton(load_grammar("S -> a"))
        stats = lr1.stats()
        assert set(stats) == {"states", "kernel_cores", "closure_items", "transitions"}


class TestLookaheadPropagationThroughClosure:
    def test_first_of_tail_becomes_lookahead(self):
        grammar = load_grammar("S -> A b\nA -> a").augmented()
        lr1 = LR1Automaton(grammar)
        b = grammar.symbols["b"]
        a_item = Item(2, 0)  # A -> . a
        assert lr1.states[0].closure[a_item] == frozenset((b,))

    def test_nullable_tail_propagates_context(self):
        grammar = load_grammar("S -> A B\nA -> a\nB -> b | %empty").augmented()
        lr1 = LR1Automaton(grammar)
        a_item = Item(2, 0)  # A -> . a
        las = {t.name for t in lr1.states[0].closure[a_item]}
        # B can vanish, so $end joins FIRST(B) = {b}.
        assert las == {"b", "$end"}

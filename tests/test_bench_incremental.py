"""Unit tests: the incremental-session benchmark.

The benchmark's job is to produce a *deterministic* snapshot — the
chosen edit recipe, the dirty-region size and the ``phase.*`` splice
counters must be pure functions of the grammar, because CI diffs them
against the committed ``BENCH_incremental.json``.  Wall times and the
derived speedup are context only and never asserted on here.
"""

import copy
import json

import pytest

from repro.bench.incremental import (
    bench_snapshot,
    compare_baseline,
    find_splice_edit,
    main,
    measure_incremental,
)
from repro.grammar.delta import replace_rhs
from repro.grammars import corpus
from repro.pipeline import AnalysisSession


@pytest.fixture(scope="module")
def expr():
    return corpus.load("expr").augmented()


class TestFindSpliceEdit:
    def test_recipe_actually_splices(self, expr):
        edit = find_splice_edit(expr)
        assert edit is not None
        index, position, replacement = edit
        production = expr.productions[index]
        assert production.rhs[position].is_terminal
        edited = replace_rhs(
            expr,
            index,
            tuple(
                replacement if i == position else s.name
                for i, s in enumerate(production.rhs)
            ),
        )
        session = AnalysisSession(expr)
        report = session.update(edited)
        assert report.strategy == "splice"
        assert not report.fell_back

    def test_deterministic(self, expr):
        assert find_splice_edit(expr) == find_splice_edit(expr)


class TestMeasureIncremental:
    def test_snapshot_row_shape(self, expr):
        entry = measure_incremental(expr, repeats=1)
        assert entry is not None
        assert set(entry) >= {
            "edit",
            "dirty_states",
            "total_states",
            "full_seconds",
            "incremental_seconds",
            "speedup",
            "counters",
        }
        assert 0 < entry["dirty_states"] < entry["total_states"]
        assert entry["full_seconds"] > 0
        assert entry["incremental_seconds"] > 0

    def test_counters_show_reuse_and_no_fallback(self, expr):
        entry = measure_incremental(expr, repeats=1)
        assert entry["counters"].get("phase.reuse", 0) > 0
        assert entry["counters"].get("phase.fallback", 0) == 0
        assert entry["counters"].get("phase.recompute", 0) == 0


class TestCompareBaseline:
    @pytest.fixture(scope="class")
    def snapshot(self):
        return bench_snapshot([("expr", corpus.load("expr"))], repeats=1)

    def test_matching_snapshots_have_no_drift(self, snapshot):
        rows, drift = compare_baseline(snapshot, copy.deepcopy(snapshot))
        assert drift == []
        assert [row[0] for row in rows] == ["expr"]

    def test_counter_drift_is_reported(self, snapshot):
        baseline = copy.deepcopy(snapshot)
        baseline["grammars"]["expr"]["counters"]["phase.reuse"] += 1
        _, drift = compare_baseline(snapshot, baseline)
        assert any("phase.reuse" in message for message in drift)

    def test_edit_recipe_drift_is_reported(self, snapshot):
        baseline = copy.deepcopy(snapshot)
        baseline["grammars"]["expr"]["edit"]["position"] += 1
        _, drift = compare_baseline(snapshot, baseline)
        assert any("edit" in message for message in drift)

    def test_missing_grammar_is_reported(self, snapshot):
        _, drift = compare_baseline(snapshot, {"grammars": {}})
        assert drift == ["expr: not present in baseline"]

    def test_speedup_changes_are_not_drift(self, snapshot):
        # Wall-clock speedups vary across machines; only the
        # deterministic columns may fail the comparison.
        baseline = copy.deepcopy(snapshot)
        baseline["grammars"]["expr"]["speedup"] *= 10
        _, drift = compare_baseline(snapshot, baseline)
        assert drift == []


class TestMain:
    def test_baseline_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        assert main(["corpus:expr", "--repeats", "1",
                     "--write-baseline", str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert "expr" in snapshot["grammars"]
        assert main(["corpus:expr", "--repeats", "1",
                     "--baseline", str(path)]) == 0
        out = capsys.readouterr().out
        assert "match the baseline" in out

    def test_min_speedup_floor_fails(self, capsys):
        # No splice can be a million times faster than a rebuild.
        assert main(["corpus:expr", "--repeats", "1",
                     "--min-speedup", "1e6"]) == 1
        assert "below the" in capsys.readouterr().out

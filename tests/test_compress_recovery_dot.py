"""Unit tests: table compression, panic-mode recovery, DOT export."""

import pytest

from repro.analysis import SentenceGenerator
from repro.automaton import LR0Automaton
from repro.automaton.dot import automaton_to_dot, includes_to_dot, reads_to_dot
from repro.core import LalrAnalysis
from repro.grammar import load_grammar
from repro.grammars import corpus
from repro.parser import Parser
from repro.parser.recovery import RecoveringParser
from repro.tables import build_lalr_table
from repro.tables.compress import compress, compression_ratio


class TestCompression:
    @pytest.fixture
    def tables(self):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        return grammar, table, compress(table)

    def test_cells_shrink(self, tables):
        grammar, table, compressed = tables
        assert compressed.size_cells() < table.size_cells()
        assert compression_ratio(table) > 1.0

    def test_action_semantics_identical_on_valid_cells(self, tables):
        grammar, table, compressed = tables
        for state in range(table.n_states):
            for terminal in grammar.terminals:
                original = table.action(state, terminal)
                if original is not None:
                    assert compressed.action(state, terminal) == original

    def test_default_may_fire_on_error_cells(self, tables):
        grammar, table, compressed = tables
        fired = 0
        for state in range(table.n_states):
            for terminal in grammar.terminals:
                if table.action(state, terminal) is None:
                    replacement = compressed.action(state, terminal)
                    if replacement is not None:
                        assert replacement.kind == "reduce"
                        fired += 1
        assert fired > 0  # compression actually generalised some rows

    def test_acceptance_unchanged(self, tables):
        grammar, table, compressed = tables
        exact = Parser(table)
        compact = Parser(compressed)
        generator = SentenceGenerator(grammar, seed=4)
        for sentence in generator.sentences(25, budget=12):
            assert compact.accepts(sentence)
            assert compact.parse(sentence).sexpr() == exact.parse(sentence).sexpr()

    def test_rejection_unchanged(self, tables):
        grammar, table, compressed = tables
        compact = Parser(compressed)
        for bad in ("id +", "+ id", "( id", "id id", "id ) id"):
            assert not compact.accepts(bad.split()), bad

    def test_error_detection_never_consumes_extra_tokens(self, tables):
        from repro.parser import ParseError

        grammar, table, compressed = tables
        exact = Parser(table)
        compact = Parser(compressed)
        for bad in ("id + + id", "( id + )", "id * ( )"):
            with pytest.raises(ParseError) as exact_info:
                exact.parse(bad.split())
            with pytest.raises(ParseError) as compact_info:
                compact.parse(bad.split())
            # Defaults may delay detection past reductions but never past
            # a consumed token.
            assert compact_info.value.position == exact_info.value.position

    def test_rows_with_single_reduce_become_default_only(self):
        grammar = load_grammar("S -> a").augmented()
        compressed = compress(build_lalr_table(grammar))
        reduce_rows = [
            i for i, default in enumerate(compressed.defaults) if default
        ]
        assert reduce_rows
        for i in reduce_rows:
            assert compressed.actions[i] == {}

    def test_error_messages_identical_plain_vs_compressed(self):
        # Regression: the compressed table used to report the expected
        # set from its post-folding sparse dict, understating what the
        # parser accepts ("expected one of: $end" instead of "$end, b").
        from repro.parser import ParseError

        grammar = corpus.load("slr_not_lr0", augment=True)
        table = build_lalr_table(grammar)
        exact = Parser(table)
        compact = Parser(compress(table))
        for bad in (["a", "a"], ["b"], ["a", "b", "b"], []):
            with pytest.raises(ParseError) as exact_info:
                exact.parse(bad)
            with pytest.raises(ParseError) as compact_info:
                compact.parse(bad)
            assert str(compact_info.value) == str(exact_info.value), bad
            assert compact_info.value.position == exact_info.value.position
            assert compact_info.value.expected == exact_info.value.expected

    def test_error_diagnostics_identical_corpus_wide(self, corpus_grammar):
        """Position, message and expected set match on every corpus
        grammar with a deterministic LALR table, across mutated inputs."""
        from repro.parser import ParseError

        grammar = corpus_grammar.augmented()
        table = build_lalr_table(grammar)
        if not table.is_deterministic:
            pytest.skip("needs a deterministic LALR table")
        exact = Parser(table)
        compact = Parser(compress(table))
        terminals = [t for t in grammar.terminals if t is not grammar.eof]

        def error_of(parser, tokens):
            try:
                parser.parse(tokens)
            except ParseError as error:
                return error
            return None

        generator = SentenceGenerator(grammar, seed=11)
        compared = 0
        for sentence in generator.sentences(8, budget=8):
            mutants = [sentence[:-1], sentence + sentence[-1:]]
            for i in range(len(sentence)):
                mutants.append(
                    sentence[:i] + [terminals[i % len(terminals)].name]
                    + sentence[i + 1:]
                )
            for bad in mutants:
                plain_error = error_of(exact, bad)
                compact_error = error_of(compact, bad)
                if plain_error is None:
                    assert compact_error is None
                    continue
                assert compact_error is not None
                assert compact_error.position == plain_error.position
                assert compact_error.expected == plain_error.expected
                assert str(compact_error) == str(plain_error)
                compared += 1
        assert compared > 0

    def test_compression_ratio_builds_once(self, tables, monkeypatch):
        # Regression: the ratio used to compress (and size) the table
        # twice — once for the numerator's guard, once for the value.
        from repro.tables.compress import CompressedTable

        grammar, table, _ = tables
        builds = []
        original = CompressedTable.__init__

        def counting(self, source):
            builds.append(1)
            original(self, source)

        monkeypatch.setattr(CompressedTable, "__init__", counting)
        assert compression_ratio(table) > 1.0
        assert len(builds) == 1

    def test_missing_accept_rejected(self, tables):
        # A table with no accept on $end must refuse to compress: a
        # column default would stand in for the missing accept and the
        # parser would reduce forever at end of input.
        grammar, table, _ = tables
        for row, dense in zip(table.actions, table.action_rows):
            for terminal, action in list(row.items()):
                if action.kind == "accept":
                    del row[terminal]
            for i, action in enumerate(dense):
                if action is not None and action.kind == "accept":
                    dense[i] = None
        with pytest.raises(ValueError, match="accept"):
            compress(table)


class TestRecovery:
    @pytest.fixture
    def recovering(self):
        grammar = load_grammar("""
%token ID
%start stmts
%%
stmts : stmt | stmts stmt ;
stmt : ID '=' ID ';' ;
""").augmented()
        parser = Parser(build_lalr_table(grammar))
        return RecoveringParser(parser, sync_tokens=[";"])

    def test_clean_input_no_errors(self, recovering):
        tokens = "ID = ID ; ID = ID ;".split()
        assert recovering.check(tokens) == []

    def test_single_error_reported_once(self, recovering):
        tokens = "ID = = ID ; ID = ID ;".split()
        errors = recovering.check(tokens)
        assert len(errors) == 1
        assert errors[0].position == 2

    def test_multiple_errors_all_reported(self, recovering):
        tokens = "ID = ; ID ID ; ID = ID ;".split()
        errors = recovering.check(tokens)
        assert len(errors) == 2

    def test_error_positions_increase(self, recovering):
        tokens = "= ; ID = ; ID ID ID ;".split()
        errors = recovering.check(tokens)
        positions = [e.position for e in errors]
        assert positions == sorted(positions)
        assert len(positions) >= 2

    def test_max_errors_cap(self, recovering):
        tokens = "= ; " * 30
        errors = recovering.check(tokens.split(), max_errors=5)
        assert len(errors) == 5

    def test_unrecoverable_tail(self, recovering):
        errors = recovering.check("ID = ID".split())  # missing final ;
        assert len(errors) == 1

    def test_nonterminal_sync_rejected(self, recovering):
        with pytest.raises(ValueError):
            RecoveringParser(recovering.parser, sync_tokens=["stmt"])

    def test_sync_as_last_real_token_terminates(self, recovering):
        # The sync token is the last real token, so its follower is the
        # appended end-of-input sentinel; no state on the stack acts on
        # it, recovery hard-resets, and the re-derived error at the
        # sentinel itself is the final one (the next recovery scan sees
        # only end-of-input and gives up).
        errors = recovering.check("= ;".split())
        assert [e.position for e in errors] == [0, 2]

    def test_unactionable_follower_hard_resets(self, recovering):
        # After "ID = ;" the sync follower is another ';' that no
        # stacked state can act on: recovery resets to the start state
        # and the parser re-derives each subsequent error exactly.
        errors = recovering.check("ID = ; ;".split())
        assert [e.position for e in errors] == [2, 3, 4]

    def test_max_errors_truncates_hard_reset_storm(self, recovering):
        # Every "= ;" pair hard-resets; the cap must stop the walk with
        # one error per pair, in position order.
        errors = recovering.check(("= ; " * 30).split(), max_errors=5)
        assert [e.position for e in errors] == [0, 2, 4, 6, 8]

    def test_check_honours_budget(self, recovering):
        from repro.core import Budget, BudgetExceeded

        with pytest.raises(BudgetExceeded) as info:
            recovering.check("ID = ID ;".split(),
                             budget=Budget(max_parse_steps=3))
        assert info.value.phase == "parse.check"
        budget = Budget(max_parse_steps=10_000)
        assert recovering.check("ID = ID ;".split(), budget=budget) == []
        assert budget.parse_steps > 0


class TestDot:
    def test_automaton_dot_structure(self):
        import re

        automaton = LR0Automaton(corpus.load("expr", augment=True))
        dot = automaton_to_dot(automaton)
        assert dot.startswith("digraph lr0 {") and dot.endswith("}")
        edges = re.findall(r"^\s*s\d+ -> s\d+", dot, re.MULTILINE)
        assert len(edges) == sum(len(s.transitions) for s in automaton.states)
        assert 's0 [label="state 0' in dot

    def test_full_closure_mode_bigger(self):
        automaton = LR0Automaton(corpus.load("expr", augment=True))
        kernel = automaton_to_dot(automaton, kernel_only=True)
        full = automaton_to_dot(automaton, kernel_only=False)
        assert len(full) > len(kernel)

    def test_reads_dot_highlights_sccs(self):
        analysis = LalrAnalysis(corpus.load("reads_cycle", augment=True))
        dot = reads_to_dot(analysis)
        assert "fillcolor" in dot  # the cycle is highlighted

    def test_includes_dot_renders(self):
        analysis = LalrAnalysis(corpus.load("expr", augment=True))
        dot = includes_to_dot(analysis)
        assert dot.startswith("digraph includes {")
        assert "fillcolor" not in dot  # no SCCs in expr's includes

    def test_quotes_escaped(self):
        grammar = load_grammar("S -> '\"' a").augmented()
        dot = automaton_to_dot(LR0Automaton(grammar))
        assert '\\"' in dot


class TestCompressedRecoveryCombo:
    def test_recovery_over_compressed_table(self):
        """Panic-mode checking drives a compressed table identically."""
        from repro.grammar import load_grammar
        from repro.tables.compress import compress

        grammar = load_grammar("""
%token ID
%start stmts
%%
stmts : stmt | stmts stmt ;
stmt : ID '=' ID ';' ;
""").augmented()
        table = build_lalr_table(grammar)
        plain = RecoveringParser(Parser(table), [";"])
        compact = RecoveringParser(Parser(compress(table)), [";"])
        tokens = "ID = ; ID ID ; ID = ID ;".split()
        plain_positions = [e.position for e in plain.check(tokens)]
        compact_positions = [e.position for e in compact.check(tokens)]
        # Compression may delay detection past reductions but never past
        # consumed input: positions match on this workload.
        assert compact_positions == plain_positions

    def test_compressed_lr0_table(self):
        from repro.grammars import corpus
        from repro.tables import build_lr0_table
        from repro.tables.compress import compress

        grammar = corpus.load("lr0_demo", augment=True)
        compact = Parser(compress(build_lr0_table(grammar)))
        assert compact.accepts("a a b b".split())
        assert not compact.accepts("a b a".split())

"""End-to-end integration flows across the whole library surface."""

import types

import pytest

from repro import (
    LalrAnalysis,
    Lexer,
    Parser,
    build_lalr_table,
    classify,
    load_grammar,
)
from repro.analysis import SentenceGenerator, enumerate_language
from repro.baselines import (
    MergedLr1Analysis,
    NqlalrAnalysis,
    PropagationAnalysis,
    SlrAnalysis,
)
from repro.automaton import LR0Automaton
from repro.grammar import write_arrow, write_yacc
from repro.grammars import corpus
from repro.ll import Ll1Analysis, LlParser
from repro.parser import CykRecognizer, RecoveringParser
from repro.tables import GrammarClass, compress, generate_parser_module


class TestFullPipelinePerGrammar:
    """Grammar text -> analysis -> table -> parse -> codegen, one flow."""

    @pytest.mark.parametrize("name", ["expr", "json", "lvalue", "toy_java", "algol_like"])
    def test_pipeline(self, name):
        grammar = corpus.load(name, augment=True)

        # 1. analyse
        analysis = LalrAnalysis(grammar)
        assert analysis.la_masks and not analysis.not_lr_k

        # 2. build + compress table
        table = build_lalr_table(grammar, analysis.automaton,
                                 analysis.lookahead_table())
        assert table.is_deterministic
        compact = compress(table)

        # 3. parse generated sentences with both
        generator = SentenceGenerator(grammar, seed=17)
        parser = Parser(table)
        compact_parser = Parser(compact)
        for sentence in generator.sentences(10, budget=20):
            tree = parser.parse(sentence)
            assert [s.name for s in tree.fringe()] == [s.name for s in sentence]
            assert compact_parser.parse(sentence).sexpr() == tree.sexpr()

        # 4. generate a standalone module and cross-check it
        module = types.ModuleType("generated")
        exec(compile(generate_parser_module(table), "<gen>", "exec"),
             module.__dict__)
        for sentence in generator.sentences(5, budget=15):
            assert module.accepts([s.name for s in sentence])

    @pytest.mark.parametrize("name", ["expr", "lvalue", "lr0_demo"])
    def test_round_trip_through_both_text_formats(self, name):
        original = corpus.load(name)
        for renderer in (write_arrow, write_yacc):
            reparsed = load_grammar(renderer(original))
            assert classify(reparsed).grammar_class == classify(original).grammar_class

    def test_all_lookahead_methods_build_identical_tables(self):
        grammar = corpus.load("toy_java", augment=True)
        automaton = LR0Automaton(grammar)
        tables = [
            build_lalr_table(grammar, automaton, method(grammar, automaton).lookahead_table())
            for method in (LalrAnalysis, MergedLr1Analysis, PropagationAnalysis)
        ]
        for other in tables[1:]:
            assert other.actions == tables[0].actions
            assert other.gotos == tables[0].gotos


class TestOracleTriangle:
    """LR engine vs CYK vs exhaustive enumeration must all agree."""

    @pytest.mark.parametrize("text,bound", [
        ("S -> a S b | a b", 6),
        ("S -> A B\nA -> a A | %empty\nB -> b B | b", 5),
        ("S -> S + S1 | S1\nS1 -> x | ( S )", 5),
    ])
    def test_three_way_agreement(self, text, bound):
        from repro.analysis.enumerate import all_strings
        from repro.tables import build_clr_table

        grammar = load_grammar(text)
        augmented = grammar.augmented()
        table = build_clr_table(augmented)
        assert table.is_deterministic
        parser = Parser(table)
        cyk = CykRecognizer(grammar)
        language = {
            tuple(s.name for s in sentence)
            for sentence in enumerate_language(grammar, bound)
        }
        terminals = [t for t in augmented.terminals if not t.is_eof]
        for candidate in all_strings(terminals, bound):
            name_tuple = tuple(s.name for s in candidate)
            in_language = name_tuple in language
            assert parser.accepts(list(candidate)) == in_language, name_tuple
            assert cyk.accepts(name_tuple) == in_language, name_tuple


class TestWorkbenchFlow:
    """The grammar-author story: diagnose, fix, re-check."""

    def test_conflict_diagnosis_and_fix(self):
        # Author writes an ambiguous grammar...
        draft = load_grammar("stmt -> if e then stmt | if e then stmt else stmt | x")
        verdict = classify(draft)
        assert verdict.grammar_class is GrammarClass.NOT_LR1

        # ...reads the conflicts...
        table = build_lalr_table(draft.augmented())
        assert any(c.kind == "shift/reduce" for c in table.unresolved_conflicts)

        # ...rewrites with matched/unmatched...
        fixed = load_grammar("""
stmt -> matched | unmatched
matched -> if e then matched else matched | x
unmatched -> if e then stmt | if e then matched else unmatched
""")
        assert classify(fixed).is_lalr1

        # ...and both grammars still generate the same bounded language.
        from repro.analysis.enumerate import bounded_language_equal

        assert bounded_language_equal(draft, fixed, 9)

    def test_ll_and_lr_sides_agree_on_ll1_grammar(self):
        text = """
E -> T Etail
Etail -> + T Etail | %empty
T -> id | ( E )
"""
        grammar = load_grammar(text).augmented()
        ll = LlParser(Ll1Analysis(grammar))
        lr = Parser(build_lalr_table(grammar))
        generator = SentenceGenerator(grammar, seed=2)
        for sentence in generator.sentences(20, budget=10):
            assert ll.accepts(sentence) == lr.accepts(sentence) == True

    def test_batch_error_checking(self):
        grammar = load_grammar("""
%token ID NUM
%start stmts
%%
stmts : stmt | stmts stmt ;
stmt : ID '=' NUM ';' ;
""").augmented()
        checker = RecoveringParser(Parser(build_lalr_table(grammar)), [";"])
        source_tokens = "ID = NUM ; ID NUM ; ID = NUM ; = ; ID = NUM ;".split()
        errors = checker.check(source_tokens)
        # position 5: `ID NUM` (missing =); position 11: statement `= ;`.
        assert [e.position for e in errors] == [5, 11]

    def test_nqlalr_would_have_lied(self):
        grammar = corpus.load("nqlalr_trap", augment=True)
        automaton = LR0Automaton(grammar)
        exact = build_lalr_table(grammar, automaton)
        loose = build_lalr_table(
            grammar, automaton, NqlalrAnalysis(grammar, automaton).lookahead_table()
        )
        slr = build_lalr_table(
            grammar, automaton, SlrAnalysis(grammar, automaton).lookahead_table()
        )
        assert exact.is_deterministic
        assert not loose.is_deterministic
        assert not slr.is_deterministic  # SLR fails here too: FOLLOW merges more

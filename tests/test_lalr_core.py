"""Unit tests: the full DeRemer-Pennello analysis on hand-checked grammars."""

import pytest

from repro.automaton import LR0Automaton
from repro.core import LalrAnalysis, compute_lookaheads
from repro.grammar import load_grammar
from repro.grammars import corpus


def la_by_production(analysis):
    """{(state, production str): sorted lookahead names} for readability."""
    grammar = analysis.grammar
    return {
        (state, str(grammar.productions[production_index])): sorted(
            t.name for t in analysis.lookahead(state, production_index)
        )
        for (state, production_index) in analysis.la_masks
    }


class TestExpressionGrammar:
    """LA sets hand-checked against the dragon-book expression grammar."""

    @pytest.fixture
    def analysis(self, expr_augmented):
        return LalrAnalysis(expr_augmented)

    def test_la_e_to_t(self, analysis):
        table = la_by_production(analysis)
        las = [v for (s, p), v in table.items() if p == "E -> T"]
        assert las == [["$end", ")", "+"]]

    def test_la_t_to_f(self, analysis):
        table = la_by_production(analysis)
        las = [v for (s, p), v in table.items() if p == "T -> F"]
        assert las == [["$end", ")", "*", "+"]]

    def test_la_f_to_id(self, analysis):
        table = la_by_production(analysis)
        las = [v for (s, p), v in table.items() if p == "F -> id"]
        assert las == [["$end", ")", "*", "+"]]

    def test_dr_read_follow_ordering(self, analysis):
        # DR ⊆ Read ⊆ Follow for every nonterminal transition.
        for transition in analysis.relations.transitions:
            dr = analysis.relations.dr[transition]
            read = analysis.read_sets[transition]
            follow = analysis.follow_sets[transition]
            assert dr | read == read
            assert read | follow == follow

    def test_no_sccs_in_either_relation(self, analysis):
        assert analysis.reads_sccs == []
        assert analysis.includes_sccs == []

    def test_not_lr_k_false(self, analysis):
        assert not analysis.not_lr_k

    def test_production_zero_has_no_la_site(self, analysis):
        assert all(production != 0 for (_, production) in analysis.la_masks)

    def test_describe_mentions_all_sites(self, analysis):
        text = analysis.describe()
        assert text.count("LA(") == len(analysis.la_masks)
        assert "Follow(" in text


class TestLvalueGrammar:
    """Dragon 4.20: S -> L = R | R; L -> * R | id; R -> L.

    The whole point of per-state Follow: in the state after reading L
    from the start, `=` must be in LA (we might be starting `L = R`), but
    in the state after `L = R ... * R`-internal L positions, it must not
    always be — SLR's FOLLOW(R) contains `=` everywhere and conflicts.
    """

    @pytest.fixture
    def analysis(self):
        return LalrAnalysis(corpus.load("lvalue").augmented())

    def test_r_to_l_after_start_excludes_equals(self, analysis):
        # THE LALR move: in the S -> L . = R / R -> L . state the reduce
        # lookahead is {$end} only — `=` stays a pure shift.  SLR's global
        # FOLLOW(R) = {$end, =} would conflict here.
        grammar = analysis.grammar
        automaton = analysis.automaton
        l_sym = grammar.symbols["L"]
        r_to_l = next(p for p in grammar.productions if str(p) == "R -> L")
        state_after_l = automaton.goto(0, l_sym)
        las = analysis.lookahead(state_after_l, r_to_l.index)
        assert sorted(t.name for t in las) == ["$end"]

    def test_r_to_l_after_star_keeps_equals(self, analysis):
        grammar = analysis.grammar
        automaton = analysis.automaton
        star = grammar.symbols["*"]
        l_sym = grammar.symbols["L"]
        r_to_l = next(p for p in grammar.productions if str(p) == "R -> L")
        star_state = automaton.goto(0, star)
        state = automaton.goto(star_state, l_sym)
        las = analysis.lookahead(state, r_to_l.index)
        # Inside `* R`, R can be followed by = (via L = R) or $end.
        assert sorted(t.name for t in las) == ["$end", "="]

    def test_is_lalr_but_not_slr(self):
        from repro.tables import classify, GrammarClass

        verdict = classify(corpus.load("lvalue"))
        assert verdict.grammar_class is GrammarClass.LALR1


class TestNullableMachinery:
    def test_read_extends_dr_through_nullables(self):
        grammar = load_grammar("S -> A B c\nA -> a\nB -> b | %empty").augmented()
        analysis = LalrAnalysis(grammar)
        a_t = (0, grammar.symbols["A"])
        # DR(0,A) = {b}; reading through nullable B adds c.
        assert {t.name for t in analysis.dr_set(a_t)} == {"b"}
        assert {t.name for t in analysis.read_set(a_t)} == {"b", "c"}

    def test_epsilon_production_lookahead(self):
        grammar = load_grammar("S -> A b\nA -> %empty").augmented()
        analysis = LalrAnalysis(grammar)
        epsilon = next(p for p in grammar.productions if p.is_epsilon)
        assert {t.name for t in analysis.lookahead(0, epsilon.index)} == {"b"}

    def test_follow_flows_through_includes(self):
        # B's follow context flows into A's via A at B's rhs end.
        grammar = load_grammar("S -> B d\nB -> a A\nA -> x").augmented()
        analysis = LalrAnalysis(grammar)
        automaton = analysis.automaton
        mid = automaton.goto(0, grammar.symbols["a"])
        a_t = (mid, grammar.symbols["A"])
        assert {t.name for t in analysis.follow_set(a_t)} == {"d"}


class TestDiagnostics:
    def test_reads_cycle_flagged(self):
        analysis = LalrAnalysis(corpus.load("reads_cycle").augmented())
        assert analysis.not_lr_k
        assert len(analysis.reads_sccs) >= 1
        # Every member of a reads-SCC is a nonterminal transition.
        for component in analysis.reads_sccs:
            for state, symbol in component:
                assert symbol.is_nonterminal

    def test_reads_scc_members_share_read_sets(self):
        analysis = LalrAnalysis(corpus.load("reads_cycle").augmented())
        for component in analysis.reads_sccs:
            masks = {analysis.read_sets[t] for t in component}
            assert len(masks) == 1

    def test_includes_scc_on_mini_c(self):
        analysis = LalrAnalysis(corpus.load("mini_c").augmented())
        # mini_c has includes cycles (left-recursive lists with nullable
        # tails); they are reported but the grammar is NOT flagged not-LR(k).
        assert analysis.includes_sccs
        assert not analysis.not_lr_k

    def test_cost_summary_keys(self):
        analysis = LalrAnalysis(load_grammar("S -> a").augmented())
        summary = analysis.cost_summary()
        for key in ("nodes", "edges", "unions", "lr0_states", "includes_edges"):
            assert key in summary


class TestConvenience:
    def test_compute_lookaheads_matches_class(self, expr_augmented):
        automaton = LR0Automaton(expr_augmented)
        via_fn = compute_lookaheads(expr_augmented, automaton)
        via_class = LalrAnalysis(expr_augmented, automaton).lookahead_table()
        assert via_fn == via_class

    def test_lookahead_unknown_site_raises(self, expr_augmented):
        analysis = LalrAnalysis(expr_augmented)
        with pytest.raises(KeyError):
            analysis.lookahead(0, 0)

    def test_auto_augments(self):
        analysis = LalrAnalysis(load_grammar("S -> a"))
        assert analysis.grammar.is_augmented


class TestGenericDigraphEquivalence:
    """The integer-core pipeline must agree with the generic hashable
    Digraph run over the Symbol-level relation views — on every corpus
    grammar, for Read, Follow and the final Symbol-level LA tables."""

    @staticmethod
    def generic_pipeline(analysis):
        """Recompute Read/Follow/LA with the generic digraph over the
        Symbol-keyed relation views (the pre-integer-core data path)."""
        from repro.core.digraph import DigraphStats, digraph

        relations = analysis.relations
        stats = DigraphStats()
        transitions = relations.transitions
        read, _ = digraph(
            transitions,
            lambda t: relations.reads[t],
            lambda t: relations.dr[t],
            stats,
        )
        follow, _ = digraph(
            transitions,
            lambda t: relations.includes[t],
            lambda t: read[t],
            stats,
        )
        la = {}
        for site, lookback in relations.lookback.items():
            mask = 0
            for transition in lookback:
                mask |= follow[transition]
                stats.unions += 1
            la[site] = mask
        return read, follow, la, stats

    @pytest.mark.parametrize("name", corpus.names())
    def test_corpus_grammar_matches(self, name):
        analysis = LalrAnalysis(corpus.load(name))
        read, follow, la, stats = self.generic_pipeline(analysis)
        assert analysis.read_sets == read
        assert analysis.follow_sets == follow
        assert analysis.la_masks == la
        # Same traversal, operation for operation: the cost counters the
        # benchmarks report are implementation-independent.
        assert analysis.stats.as_dict() == stats.as_dict()

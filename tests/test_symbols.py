"""Unit tests: symbol interning and the symbol table."""

import pytest

from repro.grammar.errors import SymbolError
from repro.grammar.symbols import EOF_NAME, EPSILON_NAME, Symbol, SymbolTable


class TestInterning:
    def test_same_name_same_object(self):
        table = SymbolTable()
        assert table.terminal("a") is table.terminal("a")

    def test_different_names_different_objects(self):
        table = SymbolTable()
        assert table.terminal("a") is not table.terminal("b")

    def test_terminal_flag(self):
        table = SymbolTable()
        assert table.terminal("a").is_terminal
        assert not table.terminal("a").is_nonterminal

    def test_nonterminal_flag(self):
        table = SymbolTable()
        assert table.nonterminal("A").is_nonterminal
        assert not table.nonterminal("A").is_terminal

    def test_kind_conflict_rejected(self):
        table = SymbolTable()
        table.terminal("x")
        with pytest.raises(SymbolError, match="redeclare"):
            table.nonterminal("x")

    def test_kind_conflict_other_direction(self):
        table = SymbolTable()
        table.nonterminal("X")
        with pytest.raises(SymbolError):
            table.terminal("X")

    def test_empty_name_rejected(self):
        table = SymbolTable()
        with pytest.raises(SymbolError):
            table.terminal("")

    def test_epsilon_name_reserved(self):
        table = SymbolTable()
        with pytest.raises(SymbolError):
            table.terminal(EPSILON_NAME)
        with pytest.raises(SymbolError):
            table.nonterminal(EPSILON_NAME)

    def test_indices_are_dense_in_order(self):
        table = SymbolTable()
        symbols = [table.terminal(f"t{i}") for i in range(5)]
        assert [s.index for s in symbols] == list(range(5))


class TestLookup:
    def test_contains(self):
        table = SymbolTable()
        table.terminal("a")
        assert "a" in table
        assert "b" not in table

    def test_get_missing_returns_none(self):
        assert SymbolTable().get("nope") is None

    def test_getitem_missing_raises(self):
        with pytest.raises(SymbolError, match="unknown symbol"):
            SymbolTable()["nope"]

    def test_iteration_preserves_order(self):
        table = SymbolTable()
        table.nonterminal("A")
        table.terminal("a")
        table.nonterminal("B")
        assert [s.name for s in table] == ["A", "a", "B"]

    def test_terminals_and_nonterminals_views(self):
        table = SymbolTable()
        table.nonterminal("A")
        table.terminal("a")
        table.terminal("b")
        assert [s.name for s in table.terminals] == ["a", "b"]
        assert [s.name for s in table.nonterminals] == ["A"]

    def test_len(self):
        table = SymbolTable()
        table.terminal("a")
        table.nonterminal("B")
        assert len(table) == 2


class TestFreshNonterminal:
    def test_appends_prime(self):
        table = SymbolTable()
        table.nonterminal("S")
        fresh = table.fresh_nonterminal("S")
        assert fresh.name == "S'"
        assert fresh.is_nonterminal

    def test_avoids_collisions(self):
        table = SymbolTable()
        table.nonterminal("S")
        table.nonterminal("S'")
        fresh = table.fresh_nonterminal("S")
        assert fresh.name == "S''"

    def test_eof_is_terminal(self):
        table = SymbolTable()
        eof = table.terminal(EOF_NAME)
        assert eof.is_eof and eof.is_terminal


class TestOrderingAndRepr:
    def test_sort_nonterminals_before_terminals(self):
        table = SymbolTable()
        a = table.terminal("a")
        big_a = table.nonterminal("A")
        assert sorted([a, big_a]) == [big_a, a]

    def test_str_is_name(self):
        table = SymbolTable()
        assert str(table.terminal("tok")) == "tok"

    def test_repr_shows_kind(self):
        table = SymbolTable()
        assert "'t'" in repr(table.terminal("t"))
        assert "nt" in repr(table.nonterminal("N"))

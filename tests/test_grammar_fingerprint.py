"""Unit tests: content fingerprints and the writer/reader roundtrip.

``repro.grammar.fingerprint`` is the single hashing authority: the
on-disk table cache key, the in-memory session memo key and the fuzz
failure-corpus identity all derive from it.  These tests pin the
properties those consumers rely on — content-only (names and object
identity don't matter), layout-versioned, and preserved bit-for-bit by
a ``write_arrow`` → ``load_grammar`` roundtrip.
"""

import hashlib

import pytest

from repro.grammar import load_grammar, write_arrow
from repro.grammar.delta import replace_rhs
from repro.grammar.fingerprint import (
    grammar_content_key,
    grammar_fingerprint,
    grammar_text,
    production_fingerprint,
    production_fingerprints,
    text_fingerprint,
)
from repro.grammars import corpus
from repro.grammars.random_gen import random_grammar

EXPR = """
E -> E + T | T
T -> T * F | F
F -> ( E ) | id
"""


class TestGrammarFingerprint:
    def test_content_equal_means_fingerprint_equal(self):
        first = load_grammar(EXPR, name="one")
        second = load_grammar(EXPR, name="two")
        assert grammar_fingerprint(first) == grammar_fingerprint(second)

    def test_name_is_not_part_of_the_content(self):
        # Generated grammars carry their seed in the name; cache hits
        # across runs require the digest to ignore it.
        first = load_grammar(EXPR, name="seed-1")
        second = load_grammar(EXPR, name="seed-2")
        assert grammar_fingerprint(first) == grammar_fingerprint(second)

    def test_rhs_edit_changes_the_fingerprint(self):
        grammar = load_grammar(EXPR).augmented()
        edited = replace_rhs(grammar, 6, ["("])
        assert grammar_fingerprint(grammar) != grammar_fingerprint(edited)

    def test_production_order_matters(self):
        first = load_grammar("S -> a\nS -> b")
        second = load_grammar("S -> b\nS -> a")
        assert grammar_fingerprint(first) != grammar_fingerprint(second)

    def test_memo_key_is_the_same_digest(self):
        assert grammar_content_key is grammar_fingerprint

    def test_hex_shape(self):
        digest = grammar_fingerprint(load_grammar(EXPR))
        assert len(digest) == 64
        int(digest, 16)


class TestProductionFingerprint:
    def test_index_free(self):
        # The same rule stated at different positions hashes the same.
        first = load_grammar("S -> a\nS -> b")
        second = load_grammar("S -> b\nS -> a")
        assert set(production_fingerprints(first)) == set(
            production_fingerprints(second)
        )
        assert production_fingerprints(first) != production_fingerprints(second)

    def test_in_production_order(self):
        grammar = load_grammar(EXPR)
        assert production_fingerprints(grammar) == [
            production_fingerprint(p) for p in grammar.productions
        ]


class TestTextFingerprint:
    def test_reproduces_the_historical_corpus_identity(self):
        # The corpus has hashed sha256(oracle + b"\x00" + grammar_text)
        # since its first commit; dedupe against old entries requires
        # the shared helper to produce the identical digest.
        oracle, text = "lalr-vs-clr", "S -> a S | b\n"
        expected = hashlib.sha256(
            oracle.encode() + b"\x00" + text.encode()
        ).hexdigest()
        assert text_fingerprint(oracle, text) == expected

    def test_parts_are_not_concatenated_blindly(self):
        assert text_fingerprint("ab", "c") != text_fingerprint("a", "bc")

    def test_grammar_text_strips_name_lines(self):
        grammar = load_grammar(EXPR, name="seed-42")
        assert "%name" not in grammar_text(grammar)


def _roundtrip_case_names():
    return [entry.name for entry in corpus.all_entries()]


class TestWriterRoundtripPreservesFingerprints:
    """Satellite property: serialising a grammar and reading it back
    preserves every per-production fingerprint *and their order* —
    i.e. the writer is lossless for everything the content hash sees."""

    @pytest.mark.parametrize("name", _roundtrip_case_names())
    def test_corpus_roundtrip(self, name):
        original = corpus.load(name)
        reparsed = load_grammar(write_arrow(original))
        assert production_fingerprints(reparsed) == production_fingerprints(
            original
        )
        assert grammar_fingerprint(reparsed) == grammar_fingerprint(original)

    @pytest.mark.parametrize("seed", range(25))
    def test_random_grammar_roundtrip(self, seed):
        original = random_grammar(seed)
        reparsed = load_grammar(write_arrow(original))
        assert production_fingerprints(reparsed) == production_fingerprints(
            original
        )
        assert grammar_fingerprint(reparsed) == grammar_fingerprint(original)

"""Unit tests: left-recursion removal and left factoring."""

import pytest

from repro.analysis.enumerate import bounded_language_equal
from repro.grammar import GrammarValidationError, load_grammar
from repro.grammar.properties import left_recursive_nonterminals
from repro.grammar.refactor import left_factor, remove_left_recursion
from repro.ll import Ll1Analysis, LlParser


class TestRemoveLeftRecursion:
    def test_immediate(self):
        grammar = load_grammar("E -> E + T | T\nT -> x")
        result = remove_left_recursion(grammar)
        assert not left_recursive_nonterminals(result)
        assert bounded_language_equal(grammar, result, 6)

    def test_indirect(self):
        grammar = load_grammar("A -> B a | a\nB -> A b | b")
        result = remove_left_recursion(grammar)
        assert not left_recursive_nonterminals(result)
        assert bounded_language_equal(grammar, result, 6)

    def test_textbook_expression_grammar(self):
        grammar = load_grammar("""
E -> E + T | T
T -> T * F | F
F -> ( E ) | id
""")
        result = remove_left_recursion(grammar)
        assert not left_recursive_nonterminals(result)
        assert bounded_language_equal(grammar, result, 6)
        names = {nt.name for nt in result.nonterminals}
        assert "E'" in names and "T'" in names

    def test_tail_nonterminals_have_epsilon(self):
        grammar = load_grammar("E -> E + x | x")
        result = remove_left_recursion(grammar)
        tail_rules = [p for p in result.productions if p.lhs.name == "E'"]
        assert any(p.is_epsilon for p in tail_rules)

    def test_non_recursive_grammar_unchanged_language(self):
        grammar = load_grammar("S -> a S b | c")
        result = remove_left_recursion(grammar)
        assert bounded_language_equal(grammar, result, 7)

    def test_cycle_rejected(self):
        with pytest.raises(GrammarValidationError, match="cycle"):
            remove_left_recursion(load_grammar("A -> B | a\nB -> A"))

    def test_nullable_rejected(self):
        with pytest.raises(GrammarValidationError, match="epsilon"):
            remove_left_recursion(load_grammar("A -> A a | %empty"))

    def test_pure_left_recursion_rejected(self):
        with pytest.raises(GrammarValidationError):
            remove_left_recursion(load_grammar("S -> a | X\nX -> X x"))

    def test_augmented_rejected(self):
        with pytest.raises(GrammarValidationError):
            remove_left_recursion(load_grammar("S -> a").augmented())


class TestLeftFactor:
    def test_simple_common_prefix(self):
        grammar = load_grammar("S -> a b | a c")
        result = left_factor(grammar)
        assert bounded_language_equal(grammar, result, 4)
        s_rules = [p for p in result.productions if p.lhs.name == "S"]
        assert len(s_rules) == 1  # one factored alternative

    def test_maximal_prefix_pulled(self):
        grammar = load_grammar("S -> a b c d | a b c e")
        result = left_factor(grammar)
        factored = next(p for p in result.productions if p.lhs.name == "S")
        assert [s.name for s in factored.rhs[:3]] == ["a", "b", "c"]

    def test_cascaded_factoring(self):
        grammar = load_grammar("S -> a b x | a b y | a c")
        result = left_factor(grammar)
        assert bounded_language_equal(grammar, result, 4)
        # No two alternatives of any nonterminal share a first symbol.
        for nonterminal in result.nonterminals:
            heads = [
                p.rhs[0]
                for p in result.productions_for(nonterminal)
                if p.rhs
            ]
            assert len(heads) == len(set(heads)), nonterminal.name

    def test_no_factoring_needed_is_identity_language(self):
        grammar = load_grammar("S -> a S | b")
        result = left_factor(grammar)
        assert bounded_language_equal(grammar, result, 6)
        assert len(result.productions) == len(grammar.productions)

    def test_dangling_if_becomes_factorable(self):
        grammar = load_grammar("S -> if e then S | if e then S else S | x")
        result = left_factor(grammar)
        assert bounded_language_equal(grammar, result, 7)


class TestLlPipeline:
    """The whole point: left-recursive LR grammars become LL(1)-usable."""

    def test_expression_grammar_becomes_ll1(self):
        grammar = load_grammar("""
E -> E + T | T
T -> T * F | F
F -> ( E ) | id
""")
        transformed = left_factor(remove_left_recursion(grammar))
        analysis = Ll1Analysis(transformed.augmented())
        assert analysis.is_ll1
        parser = LlParser(analysis)
        assert parser.accepts("id + id * id".split())
        assert parser.accepts("( id + id ) * id".split())
        assert not parser.accepts("id + * id".split())

    def test_language_preserved_through_both_transforms(self):
        grammar = load_grammar("A -> A a | B\nB -> b c | b d")
        transformed = left_factor(remove_left_recursion(grammar))
        assert bounded_language_equal(grammar, transformed, 6)

    def test_random_grammars_language_preserved(self):
        from repro.grammars import random_grammar
        from repro.grammar.properties import has_cycles
        from repro.analysis import nullable_nonterminals

        checked = 0
        for seed in range(40):
            grammar = random_grammar(seed, epsilon_weight=0.0)
            if has_cycles(grammar) or nullable_nonterminals(grammar):
                continue
            try:
                transformed = left_factor(remove_left_recursion(grammar))
            except GrammarValidationError:
                continue
            assert bounded_language_equal(grammar, transformed, 4), seed
            assert not left_recursive_nonterminals(transformed), seed
            checked += 1
        assert checked >= 10

"""Unit tests: nullable, FIRST, FOLLOW."""

from repro.analysis import FirstSets, FollowSets, nullable_nonterminals
from repro.analysis.nullable import is_nullable_sequence
from repro.grammar import load_grammar


def names(symbols):
    return sorted(s.name for s in symbols)


class TestNullable:
    def test_direct(self):
        grammar = load_grammar("S -> a | %empty")
        assert names(nullable_nonterminals(grammar)) == ["S"]

    def test_transitive_chain(self):
        grammar = load_grammar("A -> B\nB -> C\nC -> %empty")
        assert names(nullable_nonterminals(grammar)) == ["A", "B", "C"]

    def test_requires_all_rhs_nullable(self):
        grammar = load_grammar("S -> A B\nA -> %empty\nB -> b")
        assert names(nullable_nonterminals(grammar)) == ["A"]

    def test_terminal_blocks_nullability(self):
        grammar = load_grammar("S -> A a A\nA -> %empty")
        assert names(nullable_nonterminals(grammar)) == ["A"]

    def test_repeated_symbol_multiplicity(self):
        # B appears twice; both occurrences must be discharged.
        grammar = load_grammar("S -> B B\nB -> b | %empty")
        assert names(nullable_nonterminals(grammar)) == ["B", "S"]

    def test_none_nullable(self):
        grammar = load_grammar("S -> a S | b")
        assert names(nullable_nonterminals(grammar)) == []

    def test_is_nullable_sequence(self):
        grammar = load_grammar("S -> A B c\nA -> %empty\nB -> %empty")
        nullable = nullable_nonterminals(grammar)
        a, b = grammar.symbols["A"], grammar.symbols["B"]
        c = grammar.symbols["c"]
        assert is_nullable_sequence((a, b), nullable)
        assert is_nullable_sequence((), nullable)
        assert not is_nullable_sequence((a, c), nullable)


class TestFirst:
    def test_terminal_first_is_itself(self):
        grammar = load_grammar("S -> a")
        first = FirstSets(grammar)
        a = grammar.symbols["a"]
        assert first[a] == frozenset((a,))

    def test_simple(self):
        grammar = load_grammar("S -> a S | b")
        first = FirstSets(grammar)
        assert names(first[grammar.symbols["S"]]) == ["a", "b"]

    def test_through_nullable(self):
        grammar = load_grammar("S -> A b\nA -> a | %empty")
        first = FirstSets(grammar)
        assert names(first[grammar.symbols["S"]]) == ["a", "b"]

    def test_left_recursion_converges(self):
        grammar = load_grammar("E -> E + T | T\nT -> x")
        first = FirstSets(grammar)
        assert names(first[grammar.symbols["E"]]) == ["x"]

    def test_textbook_example(self):
        # The thesis demo grammar (section 5.2 shape).
        grammar = load_grammar("""
S -> C $
A -> b | %empty
B -> + S | %empty
C -> A ( C ) | a B
""")
        first = FirstSets(grammar)
        assert names(first[grammar.symbols["S"]]) == ["(", "a", "b"]
        assert names(first[grammar.symbols["A"]]) == ["b"]
        assert names(first[grammar.symbols["B"]]) == ["+"]
        assert names(first[grammar.symbols["C"]]) == ["(", "a", "b"]

    def test_of_sequence_stops_at_non_nullable(self):
        grammar = load_grammar("S -> A B\nA -> a\nB -> b")
        first = FirstSets(grammar)
        a, b = grammar.symbols["A"], grammar.symbols["B"]
        terminals, all_nullable = first.of_sequence((a, b))
        assert names(terminals) == ["a"]
        assert not all_nullable

    def test_of_sequence_spans_nullables(self):
        grammar = load_grammar("S -> A B\nA -> a | %empty\nB -> b | %empty")
        first = FirstSets(grammar)
        a, b = grammar.symbols["A"], grammar.symbols["B"]
        terminals, all_nullable = first.of_sequence((a, b))
        assert names(terminals) == ["a", "b"]
        assert all_nullable

    def test_of_empty_sequence(self):
        grammar = load_grammar("S -> a")
        terminals, all_nullable = FirstSets(grammar).of_sequence(())
        assert terminals == frozenset() and all_nullable

    def test_first_plus_folds_continuation(self):
        grammar = load_grammar("S -> A b\nA -> a | %empty")
        first = FirstSets(grammar)
        a = grammar.symbols["A"]
        b = grammar.symbols["b"]
        assert names(first.first_plus((a,), (b,))) == ["a", "b"]
        assert names(first.first_plus((b,), (a,))) == ["b"]


class TestFollow:
    def test_textbook_follow(self):
        grammar = load_grammar("""
E -> E + T | T
T -> T * F | F
F -> ( E ) | id
""").augmented()
        follow = FollowSets(grammar)
        e = grammar.symbols["E"]
        t = grammar.symbols["T"]
        f = grammar.symbols["F"]
        assert names(follow[e]) == ["$end", ")", "+"]
        assert names(follow[t]) == ["$end", ")", "*", "+"]
        assert names(follow[f]) == ["$end", ")", "*", "+"]

    def test_end_marker_via_augmentation(self):
        grammar = load_grammar("S -> a").augmented()
        assert "$end" in names(FollowSets(grammar)[grammar.symbols["S"]])

    def test_follow_through_nullable_tail(self):
        grammar = load_grammar("S -> A B d\nA -> a\nB -> b | %empty").augmented()
        follow = FollowSets(grammar)
        assert names(follow[grammar.symbols["A"]]) == ["b", "d"]

    def test_follow_of_last_symbol_inherits_lhs(self):
        grammar = load_grammar("S -> a A\nA -> b").augmented()
        follow = FollowSets(grammar)
        assert names(follow[grammar.symbols["A"]]) == names(
            follow[grammar.symbols["S"]]
        )

    def test_thesis_follow_demo(self):
        # Section 5.3 of the supplied thesis text (sanity anchor only).
        grammar = load_grammar("""
S -> A B C | a S b
A -> a A b | c | C
B -> B a b B | A A
C -> %empty | b a C a b
""").augmented()
        follow = FollowSets(grammar)
        assert names(follow[grammar.symbols["B"]]) == ["$end", "a", "b"]

    def test_non_augmented_has_no_end_marker(self):
        # Nothing ever follows S here, and without augmentation no $end is
        # invented either.
        grammar = load_grammar("S -> a S | b")
        follow = FollowSets(grammar)
        assert names(follow[grammar.symbols["S"]]) == []

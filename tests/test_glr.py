"""Unit + integration tests: the GLR engine and conflicted-table flows.

The contract under test (ISSUE 10): on a deterministic table the GLR
engine is bit-for-bit the LALR engine — same trees, same diagnostics,
same budget trip points — and on a conflicted table it explores every
action, agreeing with CYK on recognition and with the tree counter on
ambiguity degree.
"""

import pytest

from repro.analysis import SentenceGenerator
from repro.analysis.ambiguity import TreeCounter
from repro.core import instrument
from repro.core.budget import Budget, BudgetExceeded
from repro.grammar import load_grammar
from repro.grammar.errors import GrammarValidationError
from repro.grammars import corpus
from repro.parser import ConflictedTableError, CykRecognizer, GlrParser, ParseError, Parser
from repro.tables import (
    build_lalr_table,
    nondet_view,
    table_from_bytes,
    table_from_dict,
    table_to_bytes,
    table_to_dict,
)


def _tables():
    out = {}
    for name in corpus.names():
        out[name] = build_lalr_table(corpus.load(name).augmented())
    return out


_TABLES = _tables()
DETERMINISTIC = sorted(n for n, t in _TABLES.items() if t.is_deterministic)
CONFLICTED = sorted(n for n, t in _TABLES.items() if not t.is_deterministic)


def _streams(grammar, count=6, budget=16):
    """Seed-0 sentences plus deterministic mutants (truncated, swapped,
    empty) — the same shape the glr-parity fuzz oracle replays."""
    sentences = SentenceGenerator(grammar, seed=0).sentences(count, budget=budget)
    terminals = sorted(
        (t for t in grammar.terminals if t is not grammar.eof),
        key=lambda s: s.name,
    )
    streams = [[s.name for s in sentence] for sentence in sentences]
    for index, sentence in enumerate(sentences):
        if sentence:
            streams.append([s.name for s in sentence[:-1]])
            swapped = [s.name for s in sentence]
            swapped[index % len(swapped)] = terminals[index % len(terminals)].name
            streams.append(swapped)
    streams.append([])
    return streams


def _outcome(parse, words):
    try:
        return ("tree", parse(list(words)).sexpr())
    except ParseError as error:
        return ("error", str(error), error.position,
                [s.name for s in error.expected])


class TestDeterministicParity:
    """On deterministic tables the GSS is a chain: GLR == LALR, bitwise."""

    @pytest.mark.parametrize("name", DETERMINISTIC)
    def test_trees_and_errors_identical(self, name):
        table = _TABLES[name]
        lalr, glr = Parser(table), GlrParser(table)
        for words in _streams(table.grammar):
            assert _outcome(glr.parse, words) == _outcome(lalr.parse, words)

    @pytest.mark.parametrize("name", DETERMINISTIC)
    def test_forest_holds_exactly_one_tree(self, name):
        table = _TABLES[name]
        lalr, glr = Parser(table), GlrParser(table)
        for words in _streams(table.grammar):
            if not lalr.accepts(list(words)):
                continue
            forest = glr.parse_forest(list(words))
            assert forest.tree_count(limit=3) == 1
            assert not forest.is_ambiguous

    def test_budget_trips_at_the_same_token(self):
        table = _TABLES["expr"]
        words = "id + id * id + id".split()
        trips = []
        for engine in (Parser(table), GlrParser(table)):
            with pytest.raises(BudgetExceeded) as info:
                engine.parse(words, budget=Budget(max_tokens=3))
            trips.append(
                (info.value.resource, info.value.limit,
                 info.value.progress.get("tokens"))
            )
        assert trips[0] == trips[1] == ("max_tokens", 3, 4)


class TestConflictedRecognition:
    """On conflicted tables GLR explores every action: CYK is the oracle."""

    @pytest.mark.parametrize("name", CONFLICTED)
    def test_agrees_with_cyk(self, name):
        table = _TABLES[name]
        glr = GlrParser(table)
        cyk = CykRecognizer(corpus.load(name))
        for words in _streams(table.grammar, count=4, budget=12):
            assert glr.accepts(list(words)) == cyk.accepts(list(words)), words

    @pytest.mark.parametrize("name", CONFLICTED)
    def test_ambiguity_degree_matches_tree_counter(self, name):
        raw = corpus.load(name)
        try:
            counter = TreeCounter(raw)
        except GrammarValidationError:
            pytest.skip("cyclic grammar: infinite tree counts")
        glr = GlrParser(_TABLES[name])
        for words in _streams(_TABLES[name].grammar, count=4, budget=10):
            expected = counter.count(list(words))
            if expected:
                forest = glr.parse_forest(list(words))
                assert forest.tree_count(limit=expected + 10) == expected
            else:
                assert not glr.accepts(list(words))

    def test_dangling_else_has_two_readings(self):
        glr = GlrParser(_TABLES["dangling_else"])
        forest = glr.parse_forest("if if other else other".split())
        assert forest.tree_count() == 2
        assert forest.is_ambiguous
        sexprs = {tree.sexpr() for tree in forest.trees()}
        assert len(sexprs) == 2

    def test_catalan_counts(self):
        grammar = load_grammar("S -> S S | a").augmented()
        glr = GlrParser(build_lalr_table(grammar))
        for n, catalan in [(1, 1), (2, 1), (3, 2), (4, 5), (5, 14), (6, 42)]:
            forest = glr.parse_forest(["a"] * n)
            assert forest.tree_count(limit=100) == catalan, n

    def test_cyclic_grammar_terminates(self):
        # reads_cycle has A =>+ A: the SPPF holds cycles, so the forest
        # saturates rather than looping and tree extraction skips the
        # infinite derivations.
        table = _TABLES["reads_cycle"]
        glr = GlrParser(table)
        for words in _streams(table.grammar, count=3, budget=8):
            accepted = glr.accepts(list(words))
            if accepted:
                forest = glr.parse_forest(list(words))
                assert forest.tree_count(limit=50) >= 1


class TestConflictedTableOptIn:
    """Satellite: the deterministic engine refuses conflicted tables."""

    def test_default_raises_typed_error_naming_first_conflict(self):
        table = _TABLES["dangling_else"]
        with pytest.raises(ConflictedTableError) as info:
            Parser(table)
        message = str(info.value)
        assert "dangling_else" in message
        assert "1 unresolved conflict" in message
        assert "allow_conflicts=True" in message
        assert "--engine glr" in message
        assert info.value.conflicts == table.unresolved_conflicts

    def test_opt_in_parses_with_yacc_defaults_and_counts(self):
        table = _TABLES["dangling_else"]
        with instrument.profile() as collector:
            parser = Parser(table, allow_conflicts=True)
            assert parser.accepts("if other else other".split())
        assert collector.counters.get("parser.conflicted_table") == 1

    def test_yacc_default_is_the_shift_reading(self):
        # Opting in resolves dangling-else by shifting: the else binds
        # to the inner if — exactly one of the two GLR readings.
        lalr = Parser(_TABLES["dangling_else"], allow_conflicts=True)
        glr = GlrParser(_TABLES["dangling_else"])
        words = "if if other else other".split()
        sexprs = {tree.sexpr() for tree in glr.parse_forest(words).trees()}
        assert lalr.parse(words).sexpr() in sexprs


class TestCykBudget:
    """Satellite: CykRecognizer.accepts is budget-governed."""

    def test_token_cap_trips(self):
        cyk = CykRecognizer(corpus.load("palindrome"))
        with pytest.raises(BudgetExceeded) as info:
            cyk.accepts(["a"] * 10, budget=Budget(max_tokens=4))
        assert info.value.resource == "max_tokens"
        assert info.value.phase == "cyk"

    def test_deadline_checked_inside_span_loop(self):
        cyk = CykRecognizer(corpus.load("palindrome"))
        # timeout=0 expires immediately; the span loop must notice within
        # one CLOCK_STRIDE of ticks even though no token cap is set.
        with pytest.raises(BudgetExceeded) as info:
            cyk.accepts(["a"] * 16, budget=Budget(timeout=0.0))
        assert info.value.resource == "timeout"
        assert info.value.phase == "cyk"

    def test_unbudgeted_calls_unchanged(self):
        cyk = CykRecognizer(corpus.load("palindrome"))
        assert cyk.accepts(["a", "b", "b", "a"])
        assert not cyk.accepts(["a", "b"])


class TestNondetView:
    """The conflict-list view the GLR engine runs on."""

    def test_cells_in_canonical_order(self):
        view = nondet_view(_TABLES["dangling_else"])
        assert not view.is_deterministic
        multi = [cell for row in view.rows for cell in row if len(cell) >= 2]
        assert view.conflict_cells == len(multi)
        assert multi
        from repro.tables.nondet import _cell_order

        for actions in multi:
            assert tuple(sorted(actions, key=_cell_order)) == actions

    def test_deterministic_table_has_singleton_cells(self):
        view = nondet_view(_TABLES["expr"])
        assert view.is_deterministic
        assert view.conflict_cells == 0
        assert all(len(cell) <= 1 for row in view.rows for cell in row)

    def test_view_is_memoized(self):
        table = _TABLES["expr"]
        assert nondet_view(table) is nondet_view(table)


class TestArtifactRoundTrip:
    """Conflicted tables survive both artifact formats with the GLR
    engine none the wiser (satellite: JSON format 4 / binary format 3)."""

    @pytest.mark.parametrize("name", CONFLICTED)
    def test_json_and_binary_preserve_the_forest(self, name):
        table = _TABLES[name]
        grammar = table.grammar
        words = next(
            ([s.name for s in sentence]
             for sentence in SentenceGenerator(grammar, seed=0).sentences(4, budget=10)
             if sentence),
            [],
        )
        fresh = GlrParser(table).parse_forest(list(words))
        for loaded in (
            table_from_dict(table_to_dict(table), grammar),
            table_from_bytes(table_to_bytes(table), grammar),
        ):
            assert nondet_view(loaded).rows == nondet_view(table).rows
            replay = GlrParser(loaded).parse_forest(list(words))
            assert replay.tree_count(limit=50) == fresh.tree_count(limit=50)


class TestForestApi:
    def test_left_recursion_yields_one_tree(self):
        grammar = load_grammar("S -> S a | a").augmented()
        glr = GlrParser(build_lalr_table(grammar))
        forest = glr.parse_forest(["a", "a"])
        assert forest.tree_count() == 1
        assert forest.tree().sexpr() == "(S (S a) a)"

    def test_rejection_raises_parse_error_with_expected_set(self):
        glr = GlrParser(_TABLES["dangling_else"])
        with pytest.raises(ParseError) as info:
            glr.parse_forest(["else"])
        assert info.value.position == 0
        assert [s.name for s in info.value.expected] == ["if", "other"]

    def test_empty_input_on_nullable_grammar(self):
        grammar = load_grammar("S -> %empty | a S").augmented()
        glr = GlrParser(build_lalr_table(grammar))
        assert glr.accepts([])
        assert glr.parse_forest([]).tree_count() == 1

    def test_stats_exposed(self):
        glr = GlrParser(_TABLES["expr"])
        forest = glr.parse_forest("id + id".split())
        stats = forest.stats
        assert stats["shifts"] == 3
        assert stats["gss_nodes"] >= 4
        assert forest.token_count == 3

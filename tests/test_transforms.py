"""Unit tests: grammar reduction and epsilon-rule removal."""

import pytest

from repro.analysis import SentenceGenerator
from repro.grammar import (
    GrammarValidationError,
    load_grammar,
    reduce_grammar,
    remove_epsilon_rules,
)
from repro.grammar.transforms import (
    generating_nonterminals,
    nullable_from_productions,
    reachable_symbols,
)


class TestGeneratingNonterminals:
    def test_all_generating(self):
        grammar = load_grammar("S -> a A\nA -> b")
        names = {s.name for s in generating_nonterminals(grammar)}
        assert names == {"S", "A"}

    def test_nongenerating_detected(self):
        grammar = load_grammar("S -> a | B\nB -> B b")
        names = {s.name for s in generating_nonterminals(grammar)}
        assert names == {"S"}

    def test_epsilon_counts_as_generating(self):
        grammar = load_grammar("S -> A\nA -> %empty")
        names = {s.name for s in generating_nonterminals(grammar)}
        assert names == {"S", "A"}

    def test_mutual_recursion_not_generating(self):
        grammar = load_grammar("S -> a | A\nA -> B\nB -> A")
        assert {s.name for s in generating_nonterminals(grammar)} == {"S"}


class TestReachableSymbols:
    def test_start_always_reachable(self):
        grammar = load_grammar("S -> a")
        assert grammar.start in reachable_symbols(grammar)

    def test_unreachable_rule(self):
        grammar = load_grammar("S -> a\nX -> x")
        names = {s.name for s in reachable_symbols(grammar)}
        assert "X" not in names and "x" not in names

    def test_terminals_reachable_through_rules(self):
        grammar = load_grammar("S -> A\nA -> a b")
        names = {s.name for s in reachable_symbols(grammar)}
        assert {"a", "b"} <= names


class TestReduceGrammar:
    def test_reduction_removes_useless(self):
        grammar = load_grammar("""
S -> A C | B
A -> a C | A b A
B -> B a | B b A | D B
C -> a a | a B C
D -> a A | %empty
""")
        reduced = reduce_grammar(grammar)
        names = {nt.name for nt in reduced.nonterminals}
        # B is non-generating (all its rules loop); D only feeds B.
        assert names == {"S", "A", "C"}

    def test_already_reduced_identity_shape(self):
        grammar = load_grammar("S -> a S | b")
        reduced = reduce_grammar(grammar)
        assert len(reduced.productions) == len(grammar.productions)

    def test_empty_language_rejected(self):
        grammar = load_grammar("S -> S a")
        with pytest.raises(GrammarValidationError, match="empty"):
            reduce_grammar(grammar)

    def test_order_matters_classic(self):
        # Removing unreachable before non-generating would leave B: the
        # classic example proving the two passes must run generating-first.
        grammar = load_grammar("S -> a | A B\nA -> a\nB -> B b")
        reduced = reduce_grammar(grammar)
        names = {nt.name for nt in reduced.nonterminals}
        assert names == {"S"}

    def test_precedence_survives_reduction(self):
        grammar = load_grammar("%left '+'\nE -> E + E | x\nDead -> Dead d")
        reduced = reduce_grammar(grammar)
        plus = reduced.symbols["+"]
        assert plus in reduced.precedence

    def test_production_indices_renumbered(self):
        grammar = load_grammar("S -> a | X\nX -> X x\nT -> t")
        reduced = reduce_grammar(grammar)
        assert [p.index for p in reduced.productions] == list(
            range(len(reduced.productions))
        )


class TestNullableFromProductions:
    def test_direct_epsilon(self):
        grammar = load_grammar("S -> a | %empty")
        assert {s.name for s in nullable_from_productions(grammar.productions)} == {"S"}

    def test_transitive(self):
        grammar = load_grammar("S -> A B\nA -> %empty\nB -> A A")
        names = {s.name for s in nullable_from_productions(grammar.productions)}
        assert names == {"S", "A", "B"}


class TestRemoveEpsilonRules:
    def test_no_epsilon_rules_in_output(self):
        grammar = load_grammar("""
S -> A S A | a B C | b
A -> B D | a A B
B -> b B | %empty
C -> A a A | b
D -> A D | B B B | a
""")
        converted = remove_epsilon_rules(grammar)
        assert all(p.rhs for p in converted.productions)

    def test_language_preserved_on_samples(self):
        text = "S -> A b A\nA -> a | %empty"
        grammar = load_grammar(text)
        converted = remove_epsilon_rules(grammar)
        # L = {b, ab, ba, aba}; enumerate converted's sentences.
        expected = {("b",), ("a", "b"), ("b", "a"), ("a", "b", "a")}
        got = set()
        generator = SentenceGenerator(converted, seed=1)
        for _ in range(200):
            got.add(tuple(s.name for s in generator.sentence(budget=6)))
        assert got == expected

    def test_nullable_start_gets_fresh_start(self):
        grammar = load_grammar("S -> a S | %empty")
        converted = remove_epsilon_rules(grammar)
        assert converted.start.name == "S'"
        # S' -> S and S' -> %empty present
        start_rules = converted.productions_for(converted.start)
        bodies = {tuple(s.name for s in p.rhs) for p in start_rules}
        assert bodies == {("S",), ()}

    def test_non_nullable_start_keeps_start(self):
        grammar = load_grammar("S -> a A\nA -> a | %empty")
        converted = remove_epsilon_rules(grammar)
        assert converted.start.name == "S"

    def test_all_drop_combinations_generated(self):
        grammar = load_grammar("S -> A A a\nA -> a | %empty")
        converted = remove_epsilon_rules(grammar)
        bodies = {
            tuple(s.name for s in p.rhs)
            for p in converted.productions
            if p.lhs.name == "S"
        }
        assert bodies == {("A", "A", "a"), ("A", "a"), ("a",)}

    def test_augmented_grammar_rejected(self):
        grammar = load_grammar("S -> a").augmented()
        with pytest.raises(GrammarValidationError):
            remove_epsilon_rules(grammar)

    def test_duplicate_rules_not_added(self):
        grammar = load_grammar("S -> A | a\nA -> a | %empty")
        converted = remove_epsilon_rules(grammar)
        bodies = [
            (p.lhs.name, tuple(s.name for s in p.rhs)) for p in converted.productions
        ]
        assert len(bodies) == len(set(bodies))

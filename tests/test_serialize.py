"""Unit tests: parse-table serialisation."""

import json

import pytest

from repro.analysis import SentenceGenerator
from repro.grammar import load_grammar
from repro.grammars import corpus
from repro.parser import Parser
from repro.tables import build_lalr_table
from repro.tables.serialize import (
    TableCacheError,
    grammar_fingerprint,
    load_table,
    save_table,
    table_from_dict,
    table_to_dict,
)


class TestFingerprint:
    def test_stable_across_reparses(self):
        a = corpus.load("expr", augment=True)
        b = corpus.load("expr", augment=True)
        assert grammar_fingerprint(a) == grammar_fingerprint(b)

    def test_sensitive_to_rules(self):
        a = load_grammar("S -> a").augmented()
        b = load_grammar("S -> b").augmented()
        assert grammar_fingerprint(a) != grammar_fingerprint(b)

    def test_sensitive_to_precedence(self):
        a = load_grammar("%left '+'\nE -> E + E | x").augmented()
        b = load_grammar("%right '+'\nE -> E + E | x").augmented()
        assert grammar_fingerprint(a) != grammar_fingerprint(b)

    def test_sensitive_to_start(self):
        a = load_grammar("%start A\nA -> x\nB -> y")
        b = load_grammar("%start B\nA -> x\nB -> y")
        assert grammar_fingerprint(a) != grammar_fingerprint(b)


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["expr", "json", "lvalue", "algol_like"])
    def test_identical_tables(self, name):
        grammar = corpus.load(name, augment=True)
        table = build_lalr_table(grammar)
        restored = table_from_dict(table_to_dict(table), grammar)
        assert restored.actions == table.actions
        assert restored.gotos == table.gotos
        assert restored.method == table.method

    def test_restored_table_parses(self):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        restored = table_from_dict(table_to_dict(table), grammar)
        original_parser = Parser(table)
        restored_parser = Parser(restored)
        generator = SentenceGenerator(grammar, seed=3)
        for sentence in generator.sentences(10, budget=10):
            assert (
                restored_parser.parse(sentence).sexpr()
                == original_parser.parse(sentence).sexpr()
            )

    def test_json_safe(self):
        grammar = corpus.load("json", augment=True)
        data = table_to_dict(build_lalr_table(grammar))
        json.dumps(data)  # must not raise

    def test_file_round_trip(self, tmp_path):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        path = tmp_path / "table.json"
        save_table(table, str(path))
        restored = load_table(str(path), grammar)
        assert restored.actions == table.actions


class TestGuards:
    def test_conflicted_table_round_trips(self):
        grammar = corpus.load("dangling_else", augment=True)
        table = build_lalr_table(grammar)
        assert table.unresolved_conflicts
        restored = table_from_dict(table_to_dict(table), grammar)
        assert not restored.is_deterministic
        assert len(restored.unresolved_conflicts) == len(
            table.unresolved_conflicts
        )
        assert restored.conflict_summary() == table.conflict_summary()

    def test_fingerprint_mismatch_refused(self):
        expr = corpus.load("expr", augment=True)
        other = corpus.load("lvalue", augment=True)
        data = table_to_dict(build_lalr_table(expr))
        with pytest.raises(ValueError, match="fingerprint"):
            table_from_dict(data, other)

    def test_format_version_checked(self):
        grammar = corpus.load("expr", augment=True)
        data = table_to_dict(build_lalr_table(grammar))
        data["format"] = 99
        with pytest.raises(ValueError, match="format"):
            table_from_dict(data, grammar)


class TestTypedErrors:
    """Every decode failure is a TableCacheError (a ValueError subclass),
    so callers can catch corruption without also swallowing other bugs."""

    def test_is_a_value_error(self):
        assert issubclass(TableCacheError, ValueError)

    def test_non_dict_payload(self):
        grammar = corpus.load("expr", augment=True)
        with pytest.raises(TableCacheError, match="payload"):
            table_from_dict(["nope"], grammar)

    def test_truncated_payload(self):
        grammar = corpus.load("expr", augment=True)
        data = table_to_dict(build_lalr_table(grammar))
        del data["actions"]
        with pytest.raises(TableCacheError, match="truncated or malformed"):
            table_from_dict(data, grammar)

    def test_unknown_action_encoding(self):
        grammar = corpus.load("expr", augment=True)
        data = table_to_dict(build_lalr_table(grammar))
        data["actions"][0]["id"] = ["warp", 3]
        with pytest.raises(TableCacheError, match="action encoding"):
            table_from_dict(data, grammar)

    def test_mismatch_errors_are_typed(self):
        expr = corpus.load("expr", augment=True)
        other = corpus.load("lvalue", augment=True)
        data = table_to_dict(build_lalr_table(expr))
        with pytest.raises(TableCacheError):
            table_from_dict(data, other)

    def test_invalid_json_file(self, tmp_path):
        grammar = corpus.load("expr", augment=True)
        path = tmp_path / "table.json"
        path.write_text('{"format": 1, "acti', encoding="utf-8")
        with pytest.raises(TableCacheError, match="corrupt table file"):
            load_table(str(path), grammar)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        grammar = corpus.load("expr", augment=True)
        with pytest.raises(FileNotFoundError):
            load_table(str(tmp_path / "absent.json"), grammar)


class TestRowValidation:
    """table_from_dict reconstructs with conflicts=[]; that is only
    sound because every loaded row is validated — a hand-corrupted
    payload that smuggles structural nonsense must be rejected."""

    def payload(self):
        grammar = corpus.load("expr", augment=True)
        return grammar, table_to_dict(build_lalr_table(grammar))

    def test_conflict_cell_list_rejected(self):
        # A list of actions in one cell is how a conflicted table would
        # have to be encoded; it must never load as "conflict-free".
        grammar, data = self.payload()
        data["actions"][0]["id"] = [["s", 5], ["r", 2]]
        with pytest.raises(TableCacheError):
            table_from_dict(data, grammar)

    def test_overlong_action_encoding_rejected(self):
        grammar, data = self.payload()
        data["actions"][0]["id"] = ["s", 5, 6]
        with pytest.raises(TableCacheError, match="action encoding"):
            table_from_dict(data, grammar)

    def test_non_integer_shift_target_rejected(self):
        grammar, data = self.payload()
        data["actions"][0]["id"] = ["s", "5"]
        with pytest.raises(TableCacheError, match="action encoding"):
            table_from_dict(data, grammar)

    def test_unknown_symbol_name_rejected(self):
        grammar, data = self.payload()
        data["actions"][0]["not_a_symbol"] = ["s", 1]
        with pytest.raises(TableCacheError, match="malformed"):
            table_from_dict(data, grammar)

    def test_nonterminal_in_action_row_rejected(self):
        grammar, data = self.payload()
        data["actions"][0]["E"] = ["s", 1]
        with pytest.raises(TableCacheError, match="nonterminal"):
            table_from_dict(data, grammar)

    def test_terminal_in_goto_row_rejected(self):
        grammar, data = self.payload()
        data["gotos"][0]["id"] = 1
        with pytest.raises(TableCacheError, match="terminal"):
            table_from_dict(data, grammar)

    def test_shift_target_out_of_range_rejected(self):
        grammar, data = self.payload()
        data["actions"][0]["id"] = ["s", 10_000]
        with pytest.raises(TableCacheError, match="shift target"):
            table_from_dict(data, grammar)

    def test_reduce_production_out_of_range_rejected(self):
        grammar, data = self.payload()
        data["actions"][0]["id"] = ["r", 10_000]
        with pytest.raises(TableCacheError, match="reduce production"):
            table_from_dict(data, grammar)

    def test_goto_target_out_of_range_rejected(self):
        grammar, data = self.payload()
        state, row = next(
            (i, row) for i, row in enumerate(data["gotos"]) if row
        )
        row[next(iter(row))] = -3
        with pytest.raises(TableCacheError, match="GOTO target"):
            table_from_dict(data, grammar)

    def test_boolean_goto_target_rejected(self):
        grammar, data = self.payload()
        row = next(row for row in data["gotos"] if row)
        row[next(iter(row))] = True
        with pytest.raises(TableCacheError, match="GOTO target"):
            table_from_dict(data, grammar)

    def test_row_count_mismatch_rejected(self):
        grammar, data = self.payload()
        data["gotos"] = data["gotos"][:-1]
        with pytest.raises(TableCacheError, match="rows"):
            table_from_dict(data, grammar)

    def test_valid_payload_still_loads(self):
        grammar, data = self.payload()
        table = table_from_dict(data, grammar)
        assert table.conflicts == []
        assert Parser(table).accepts(["id", "+", "id"])


class TestAtomicWrite:
    def test_no_temp_files_left_behind(self, tmp_path):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        path = tmp_path / "table.json"
        save_table(table, str(path))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["table.json"]

    def test_failed_write_preserves_old_file(self, tmp_path, monkeypatch):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        path = tmp_path / "table.json"
        save_table(table, str(path))
        original = path.read_text(encoding="utf-8")

        import repro.tables.serialize as serialize

        def explode(*args, **kwargs):
            raise ValueError("simulated mid-write crash")

        monkeypatch.setattr(serialize.json, "dump", explode)
        with pytest.raises(ValueError, match="simulated"):
            save_table(table, str(path))
        # The destination is untouched and the temp file was cleaned up.
        assert path.read_text(encoding="utf-8") == original
        assert sorted(p.name for p in tmp_path.iterdir()) == ["table.json"]

    def test_overwrite_replaces_content(self, tmp_path):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        path = tmp_path / "table.json"
        path.write_text("old junk", encoding="utf-8")
        save_table(table, str(path))
        restored = load_table(str(path), grammar)
        assert restored.actions == table.actions


class TestFormatBump:
    """Format bumps evict stale artifacts: version-1 payloads (pre-ID
    era), version-2 payloads (no resolved-conflict section), and
    version-3 payloads (no unresolved conflicts — they cannot represent
    a GLR-bound table) must be rejected so cache layers rebuild."""

    def test_current_format_is_4(self):
        from repro.tables.serialize import FORMAT_VERSION

        assert FORMAT_VERSION == 4

    @pytest.mark.parametrize("stale_version", [1, 2, 3])
    def test_older_format_payload_rejected(self, stale_version):
        grammar = corpus.load("expr", augment=True)
        data = table_to_dict(build_lalr_table(grammar))
        data["format"] = stale_version
        with pytest.raises(TableCacheError, match="format"):
            table_from_dict(data, grammar)

    def test_resolved_conflicts_survive_the_round_trip(self):
        # expr_prec settles 20 cells by precedence; the loaded table must
        # report the same summary (the serving layer's bit-identity
        # contract reads it) — format 2 silently dropped them.
        grammar = corpus.load("expr_prec", augment=True)
        table = build_lalr_table(grammar)
        assert table.conflict_summary()["resolved"] > 0
        restored = table_from_dict(table_to_dict(table), grammar)
        assert restored.conflict_summary() == table.conflict_summary()
        original = {
            (c.state, c.terminal, c.kind, tuple(c.actions), c.chosen)
            for c in table.conflicts
        }
        roundtripped = {
            (c.state, c.terminal, c.kind, tuple(c.actions), c.chosen)
            for c in restored.conflicts
        }
        assert roundtripped == original
        assert all(c.resolved_by_precedence for c in restored.conflicts)

    def test_conflict_free_payload_omits_the_conflicts_key(self):
        grammar = corpus.load("expr", augment=True)
        assert "conflicts" not in table_to_dict(build_lalr_table(grammar))

    def test_malformed_conflict_record_rejected(self):
        grammar = corpus.load("expr", augment=True)
        data = table_to_dict(build_lalr_table(grammar))
        data["conflicts"] = [[0, "id", "shift/reduce"]]  # truncated record
        with pytest.raises(TableCacheError, match="conflict"):
            table_from_dict(data, grammar)

    def test_unresolved_conflicts_survive_the_round_trip(self):
        grammar = corpus.load("dangling_else", augment=True)
        table = build_lalr_table(grammar)
        restored = table_from_dict(table_to_dict(table), grammar)
        original = {
            (c.state, c.terminal, c.kind, tuple(c.actions), c.chosen)
            for c in table.unresolved_conflicts
        }
        roundtripped = {
            (c.state, c.terminal, c.kind, tuple(c.actions), c.chosen)
            for c in restored.unresolved_conflicts
        }
        assert original and roundtripped == original
        assert not any(
            c.resolved_by_precedence for c in restored.unresolved_conflicts
        )

    def test_fingerprint_covers_id_layout_version(self, monkeypatch):
        # The hashing now lives in repro.grammar.fingerprint (one scheme
        # for the disk cache, the session memo and the fuzz corpus).
        from repro.grammar import fingerprint

        grammar = corpus.load("expr", augment=True)
        before = grammar_fingerprint(grammar)
        monkeypatch.setattr(
            fingerprint,
            "ID_LAYOUT_VERSION",
            fingerprint.ID_LAYOUT_VERSION + 1,
        )
        assert grammar_fingerprint(grammar) != before

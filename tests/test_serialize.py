"""Unit tests: parse-table serialisation."""

import json

import pytest

from repro.analysis import SentenceGenerator
from repro.grammar import load_grammar
from repro.grammars import corpus
from repro.parser import Parser
from repro.tables import build_lalr_table
from repro.tables.serialize import (
    grammar_fingerprint,
    load_table,
    save_table,
    table_from_dict,
    table_to_dict,
)


class TestFingerprint:
    def test_stable_across_reparses(self):
        a = corpus.load("expr", augment=True)
        b = corpus.load("expr", augment=True)
        assert grammar_fingerprint(a) == grammar_fingerprint(b)

    def test_sensitive_to_rules(self):
        a = load_grammar("S -> a").augmented()
        b = load_grammar("S -> b").augmented()
        assert grammar_fingerprint(a) != grammar_fingerprint(b)

    def test_sensitive_to_precedence(self):
        a = load_grammar("%left '+'\nE -> E + E | x").augmented()
        b = load_grammar("%right '+'\nE -> E + E | x").augmented()
        assert grammar_fingerprint(a) != grammar_fingerprint(b)

    def test_sensitive_to_start(self):
        a = load_grammar("%start A\nA -> x\nB -> y")
        b = load_grammar("%start B\nA -> x\nB -> y")
        assert grammar_fingerprint(a) != grammar_fingerprint(b)


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["expr", "json", "lvalue", "algol_like"])
    def test_identical_tables(self, name):
        grammar = corpus.load(name, augment=True)
        table = build_lalr_table(grammar)
        restored = table_from_dict(table_to_dict(table), grammar)
        assert restored.actions == table.actions
        assert restored.gotos == table.gotos
        assert restored.method == table.method

    def test_restored_table_parses(self):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        restored = table_from_dict(table_to_dict(table), grammar)
        original_parser = Parser(table)
        restored_parser = Parser(restored)
        generator = SentenceGenerator(grammar, seed=3)
        for sentence in generator.sentences(10, budget=10):
            assert (
                restored_parser.parse(sentence).sexpr()
                == original_parser.parse(sentence).sexpr()
            )

    def test_json_safe(self):
        grammar = corpus.load("json", augment=True)
        data = table_to_dict(build_lalr_table(grammar))
        json.dumps(data)  # must not raise

    def test_file_round_trip(self, tmp_path):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        path = tmp_path / "table.json"
        save_table(table, str(path))
        restored = load_table(str(path), grammar)
        assert restored.actions == table.actions


class TestGuards:
    def test_conflicted_table_refused(self):
        grammar = corpus.load("dangling_else", augment=True)
        with pytest.raises(ValueError, match="conflicts"):
            table_to_dict(build_lalr_table(grammar))

    def test_fingerprint_mismatch_refused(self):
        expr = corpus.load("expr", augment=True)
        other = corpus.load("lvalue", augment=True)
        data = table_to_dict(build_lalr_table(expr))
        with pytest.raises(ValueError, match="fingerprint"):
            table_from_dict(data, other)

    def test_format_version_checked(self):
        grammar = corpus.load("expr", augment=True)
        data = table_to_dict(build_lalr_table(grammar))
        data["format"] = 99
        with pytest.raises(ValueError, match="format"):
            table_from_dict(data, grammar)

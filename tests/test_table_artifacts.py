"""Integration tests: representation parity and the artifacts bench.

The repo carries four interchangeable representations of one LALR(1)
table — plain dense rows, the compressed (default-reduce) form, the
displacement-packed form, and the binary artifact round-trip.  These
tests pin the tentpole invariant corpus-wide: identical parses, error
positions, messages and expected sets, regardless of representation.
"""

import pytest

from repro.analysis import SentenceGenerator
from repro.bench.artifacts import (
    ARTIFACT_BASELINE_FORMAT,
    artifacts_snapshot,
    compare_artifacts_baseline,
    snapshot_entry,
)
from repro.grammars import corpus
from repro.parser import ParseError, Parser
from repro.tables import build_lalr_table
from repro.tables.binfmt import table_from_bytes, table_to_bytes
from repro.tables.compress import compress
from repro.tables.displace import displace


def outcome_of(parser, tokens):
    """('tree', sexpr) or ('error', message, position, expected names)."""
    try:
        return ("tree", parser.parse(list(tokens)).sexpr())
    except ParseError as error:
        return (
            "error",
            str(error),
            error.position,
            [s.name for s in error.expected],
        )


class TestCorpusWideDifferential:
    def test_all_representations_agree(self, corpus_grammar):
        grammar = corpus_grammar.augmented()
        table = build_lalr_table(grammar)
        if not table.is_deterministic:
            pytest.skip("needs a deterministic LALR table")
        reference = Parser(table)
        variants = {
            "compressed": Parser(compress(table)),
            "displaced": Parser(displace(table)),
            "binary": Parser(table_from_bytes(table_to_bytes(table), grammar)),
        }
        terminals = [t for t in grammar.terminals if t is not grammar.eof]

        generator = SentenceGenerator(grammar, seed=13)
        sentences = generator.sentences(8, budget=10)
        streams = [list(s) for s in sentences]
        # Mutants stay inside the grammar's terminal alphabet: unknown
        # names take the engine's "unknown terminal" path, which is not
        # part of the representation contract.
        for sentence in sentences:
            streams.append(list(sentence[:-1]))
            streams.append(list(sentence) + list(sentence[-1:]))
            for i in range(len(sentence)):
                streams.append(
                    list(sentence[:i])
                    + [terminals[i % len(terminals)]]
                    + list(sentence[i + 1 :])
                )
        streams.append([])

        accepted = rejected = 0
        for stream in streams:
            expected = outcome_of(reference, stream)
            if expected[0] == "tree":
                accepted += 1
            else:
                rejected += 1
            for label, parser in variants.items():
                assert outcome_of(parser, stream) == expected, (
                    label,
                    [getattr(t, "name", t) for t in stream],
                )
        assert accepted > 0 and rejected > 0


class TestEofSpelling:
    def test_expected_set_message_never_leaks_end_marker(self):
        grammar = corpus.load("expr", augment=True)
        parser = Parser(build_lalr_table(grammar))
        with pytest.raises(ParseError) as info:
            parser.parse(["id", "id"])
        assert "end of input" in str(info.value)
        assert "$end" not in str(info.value)
        # The structured expected list still carries the real Symbols.
        assert grammar.eof in info.value.expected


class TestArtifactsBench:
    @pytest.fixture(scope="class")
    def snapshot(self):
        return artifacts_snapshot(
            [("expr", corpus.load("expr"))], repeats=1
        )

    def test_snapshot_shape(self, snapshot):
        assert snapshot["format"] == ARTIFACT_BASELINE_FORMAT
        entry = snapshot["grammars"]["expr"]
        assert set(entry["tokens_per_sec"]) == {
            "plain", "compressed", "displaced", "binary",
        }
        assert set(entry["cold_load_seconds"]) == {"json", "bin"}
        counters = entry["counters"]
        assert counters["stored_cells"] < counters["dense_cells"]
        assert counters["json_bytes"] > 0 and counters["bin_bytes"] > 0

    def test_self_comparison_is_clean(self, snapshot):
        rows, drift = compare_artifacts_baseline(snapshot, snapshot)
        assert drift == []
        assert rows

    def test_counter_drift_detected(self, snapshot):
        import copy

        mutated = copy.deepcopy(snapshot)
        mutated["grammars"]["expr"]["counters"]["comb_slots"] += 1
        _, drift = compare_artifacts_baseline(mutated, snapshot)
        assert any("comb_slots" in message for message in drift)

    def test_missing_grammar_is_drift(self, snapshot):
        import copy

        current = copy.deepcopy(snapshot)
        current["grammars"]["mystery"] = {"counters": {}}
        _, drift = compare_artifacts_baseline(current, snapshot)
        assert any("mystery" in message for message in drift)

    def test_conflicted_grammar_skips_cleanly(self):
        entry = snapshot_entry(corpus.load("dangling_else"), repeats=1)
        assert "skipped" in entry
        snapshot = {"format": 1, "grammars": {"dangling_else": entry}}
        _, drift = compare_artifacts_baseline(snapshot, snapshot)
        assert drift == []

    def test_committed_baseline_matches_current_counters(self):
        """BENCH_table_artifacts.json must track the code: regenerate it
        (see the module docstring) whenever representations change."""
        import json
        import os

        path = os.path.join(os.path.dirname(__file__), "..",
                            "BENCH_table_artifacts.json")
        with open(path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        names = list(baseline["grammars"])
        current = artifacts_snapshot(
            [(name, corpus.load(name)) for name in names], repeats=1
        )
        _, drift = compare_artifacts_baseline(current, baseline)
        assert drift == []

"""Unit tests: the grammar-description tokenizer."""

import pytest

from repro.grammar.errors import GrammarSyntaxError
from repro.grammar.lexer import (
    ARROW,
    CHARLIT,
    COLON,
    DIRECTIVE,
    EOF,
    IDENT,
    MARK,
    NEWLINE,
    PIPE,
    SEMI,
    tokenize,
)


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != EOF]


class TestBasicTokens:
    def test_empty_input(self):
        assert kinds("") == [EOF]

    def test_single_ident(self):
        tokens = tokenize("expr")
        assert tokens[0].kind == IDENT and tokens[0].text == "expr"

    def test_punctuation_kinds(self):
        assert kinds("a : b ; c | d")[:7] == [
            IDENT, COLON, IDENT, SEMI, IDENT, PIPE, IDENT
        ]

    def test_arrow(self):
        assert kinds("A -> b") == [IDENT, ARROW, IDENT, EOF]

    def test_unicode_arrow(self):
        assert kinds("A → b") == [IDENT, ARROW, IDENT, EOF]

    def test_arrow_splits_idents(self):
        assert texts("a->b") == ["a", "->", "b"]

    def test_mark(self):
        assert kinds("%%") == [MARK, EOF]

    def test_operator_names_are_idents(self):
        assert texts("+ * ( ) == <=") == ["+", "*", "(", ")", "==", "<="]

    def test_minus_alone_is_ident(self):
        tokens = tokenize("-")
        assert tokens[0].kind == IDENT and tokens[0].text == "-"


class TestDirectives:
    @pytest.mark.parametrize(
        "word",
        ["%token", "%left", "%right", "%nonassoc", "%start", "%prec", "%empty", "%name"],
    )
    def test_known_directives(self, word):
        tokens = tokenize(word)
        assert tokens[0].kind == DIRECTIVE and tokens[0].text == word

    def test_unknown_directive_rejected(self):
        with pytest.raises(GrammarSyntaxError, match="unknown directive"):
            tokenize("%bogus")

    def test_percent_stops_ident(self):
        assert texts("a%empty") == ["a", "%empty"]


class TestLiterals:
    def test_single_quoted(self):
        tokens = tokenize("'+'")
        assert tokens[0].kind == CHARLIT and tokens[0].text == "+"

    def test_double_quoted(self):
        tokens = tokenize('"=="')
        assert tokens[0].kind == CHARLIT and tokens[0].text == "=="

    def test_escape_sequences(self):
        assert tokenize(r"'\n'")[0].text == "\n"
        assert tokenize(r"'\\'")[0].text == "\\"
        assert tokenize(r"'\''")[0].text == "'"

    def test_unterminated_literal(self):
        with pytest.raises(GrammarSyntaxError, match="unterminated"):
            tokenize("'abc")

    def test_literal_across_newline_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            tokenize("'a\nb'")

    def test_empty_literal_rejected(self):
        with pytest.raises(GrammarSyntaxError, match="empty literal"):
            tokenize("''")


class TestCommentsAndNewlines:
    def test_hash_comment(self):
        assert kinds("a # comment\nb") == [IDENT, NEWLINE, IDENT, EOF]

    def test_double_slash_comment(self):
        assert kinds("a // comment\nb") == [IDENT, NEWLINE, IDENT, EOF]

    def test_block_comment(self):
        assert texts("a /* hi */ b") == ["a", "b"]

    def test_block_comment_multiline(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(GrammarSyntaxError, match="unterminated comment"):
            tokenize("a /* never ends")

    def test_blank_lines_emit_no_newline_tokens(self):
        assert kinds("\n\n\na\n\n\n") == [IDENT, NEWLINE, EOF]

    def test_newline_only_after_content(self):
        assert kinds("a\nb\n") == [IDENT, NEWLINE, IDENT, NEWLINE, EOF]


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        idents = [t for t in tokens if t.kind == IDENT]
        assert [t.line for t in idents] == [1, 2, 3]

    def test_column_numbers(self):
        tokens = tokenize("ab cd")
        idents = [t for t in tokens if t.kind == IDENT]
        assert [t.column for t in idents] == [1, 4]

    def test_error_carries_position(self):
        try:
            tokenize("x\n  %bad")
        except GrammarSyntaxError as error:
            assert error.line == 2
            assert error.column == 3
        else:  # pragma: no cover
            pytest.fail("expected GrammarSyntaxError")

"""Unit tests: the hot-loop and scale-out bench harnesses.

Snapshots are expensive (the scale-out one boots two real services), so
each is taken once per module and the drift comparators are exercised on
hand-mutated copies — the same split the other bench suites use.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.hotloop import (
    compare_hotloop_baseline,
    hotloop_snapshot,
    main as hotloop_main,
)
from repro.bench.scaleout import (
    compare_scaleout_baseline,
    scaleout_snapshot,
    main as scaleout_main,
)
from repro.core.parallel import fork_available


@pytest.fixture(scope="module")
def hotloop_snap():
    return hotloop_snapshot(["expr", "json"], repeats=1)


@pytest.fixture(scope="module")
def scaleout_snap():
    if not fork_available():
        pytest.skip("scale-out tier needs fork")
    return scaleout_snapshot(["expr"], workers=2, requests=4, clients=2)


class TestHotloopSnapshot:
    def test_shape_and_counters(self, hotloop_snap):
        assert set(hotloop_snap["grammars"]) == {"expr", "json"}
        entry = hotloop_snap["grammars"]["expr"]
        counters = entry["counters"]
        assert counters["states"] == 13
        assert counters["action_cells"] % counters["states"] == 0
        assert 0 < counters["populated_cells"] <= counters["action_cells"]
        assert counters["workload_tokens"] > 0
        assert counters["workload_shifts"] > 0
        assert counters["workload_reduces"] > 0
        assert entry["throughput"]["dense_tokens_per_sec"] > 0
        assert entry["throughput"]["specialized_tokens_per_sec"] > 0

    def test_counters_are_deterministic(self, hotloop_snap):
        again = hotloop_snapshot(["expr", "json"], repeats=1)
        for name in ("expr", "json"):
            assert (
                again["grammars"][name]["counters"]
                == hotloop_snap["grammars"][name]["counters"]
            )

    def test_compare_identical_has_no_drift(self, hotloop_snap):
        rows, drift = compare_hotloop_baseline(hotloop_snap, hotloop_snap)
        assert drift == []
        assert rows  # throughput rows are informational, never drift

    def test_compare_flags_counter_drift(self, hotloop_snap):
        mutated = copy.deepcopy(hotloop_snap)
        mutated["grammars"]["expr"]["counters"]["default_states"] += 1
        _, drift = compare_hotloop_baseline(mutated, hotloop_snap)
        assert any("default_states" in message for message in drift)

    def test_compare_flags_missing_grammar(self, hotloop_snap):
        mutated = copy.deepcopy(hotloop_snap)
        del mutated["grammars"]["json"]
        _, drift = compare_hotloop_baseline(mutated, hotloop_snap)
        assert any("json" in message for message in drift)

    def test_write_then_compare_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "hotloop.json"
        assert hotloop_main(
            ["expr", "--repeats", "1", "--write-baseline", str(baseline)]
        ) == 0
        assert hotloop_main(
            ["expr", "--repeats", "1", "--baseline", str(baseline)]
        ) == 0
        assert "match the baseline" in capsys.readouterr().out

    def test_compare_exits_nonzero_on_drift(self, tmp_path, capsys, hotloop_snap):
        mutated = copy.deepcopy(hotloop_snap)
        mutated["grammars"]["expr"]["counters"]["states"] = 999
        baseline = tmp_path / "drifted.json"
        baseline.write_text(json.dumps(mutated))
        assert hotloop_main(
            ["expr", "json", "--repeats", "1", "--baseline", str(baseline)]
        ) == 1
        assert "drift" in capsys.readouterr().out


class TestScaleoutSnapshot:
    def test_tiers_and_accounting(self, scaleout_snap):
        tiers = scaleout_snap["tiers"]
        assert set(tiers) == {"single", "pool2"}
        single = tiers["single"]["counters"]
        pooled = tiers["pool2"]["counters"]
        assert single["requests"] == pooled["requests"] == 4
        # The pooled tier served the same canonical bytes.
        assert pooled["bytes_identical"] == 1
        assert pooled["parse_bytes_expr"] == single["parse_bytes_expr"]
        # Deterministic round-robin: every worker counted, spread <= 1.
        assert pooled["pool_every_worker_served"] == 1
        assert pooled["pool_spread"] <= 1
        assert pooled["pool_accounted"] == 1

    def test_compare_identical_has_no_drift(self, scaleout_snap):
        rows, drift = compare_scaleout_baseline(scaleout_snap, scaleout_snap)
        assert drift == []
        assert rows

    def test_compare_flags_byte_divergence(self, scaleout_snap):
        mutated = copy.deepcopy(scaleout_snap)
        mutated["tiers"]["pool2"]["counters"]["bytes_identical"] = 0
        _, drift = compare_scaleout_baseline(mutated, scaleout_snap)
        assert any("bytes_identical" in message for message in drift)

    def test_compare_flags_missing_tier(self, scaleout_snap):
        mutated = copy.deepcopy(scaleout_snap)
        del mutated["tiers"]["pool2"]
        _, drift = compare_scaleout_baseline(mutated, scaleout_snap)
        assert any("pool2" in message for message in drift)

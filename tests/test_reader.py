"""Unit tests: parsing the two grammar text formats."""

import pytest

from repro.grammar import GrammarSyntaxError, load_grammar, load_grammar_file


class TestArrowFormat:
    def test_minimal(self):
        grammar = load_grammar("S -> a")
        assert len(grammar.productions) == 1
        assert grammar.start.name == "S"

    def test_alternatives_on_one_line(self):
        grammar = load_grammar("S -> a | b | c")
        assert len(grammar.productions) == 3

    def test_multiple_rules_same_lhs(self):
        grammar = load_grammar("S -> a\nS -> b")
        assert len(grammar.productions) == 2

    def test_empty_alternative(self):
        grammar = load_grammar("S -> a | %empty")
        assert grammar.productions[1].is_epsilon

    def test_colon_accepted_as_arrow(self):
        grammar = load_grammar("S : a b")
        assert len(grammar.productions[0].rhs) == 2

    def test_start_directive(self):
        grammar = load_grammar("%start B\nA -> a B\nB -> b")
        assert grammar.start.name == "B"

    def test_name_directive(self):
        grammar = load_grammar("%name mygrammar\nS -> a")
        assert grammar.name == "mygrammar"

    def test_token_directive_forces_terminal(self):
        grammar = load_grammar("%token EXTRA\nS -> a")
        assert grammar.symbols["EXTRA"].is_terminal

    def test_quoted_terminals(self):
        grammar = load_grammar("S -> '|' S ';' | x")
        names = {t.name for t in grammar.terminals}
        assert {"|", ";", "x"} <= names

    def test_trailing_semicolon_tolerated(self):
        grammar = load_grammar("S -> a ;\nS -> b ;")
        assert len(grammar.productions) == 2

    def test_precedence_directives(self):
        grammar = load_grammar("%left '+'\n%left '*'\nE -> E + E | E * E | x")
        plus = grammar.symbols["+"]
        star = grammar.symbols["*"]
        assert grammar.precedence[plus].level < grammar.precedence[star].level

    def test_percent_prec_in_rule(self):
        grammar = load_grammar("%right NEG\nE -> - E %prec NEG | x")
        assert grammar.productions[0].prec_symbol.name == "NEG"

    def test_bare_empty_alternative_rejected(self):
        with pytest.raises(GrammarSyntaxError, match="%empty"):
            load_grammar("S -> a |")

    def test_missing_arrow_rejected(self):
        with pytest.raises(GrammarSyntaxError, match="expected"):
            load_grammar("S a b")

    def test_empty_input_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            load_grammar("")

    def test_comment_lines_ignored(self):
        grammar = load_grammar("# top comment\nS -> a # trailing\n# done")
        assert len(grammar.productions) == 1

    def test_mixed_empty_and_symbols_rejected(self):
        with pytest.raises(GrammarSyntaxError, match="mixed"):
            load_grammar("S -> a %empty")


class TestYaccFormat:
    YACC = """
%token NUM ID
%left '+' '-'
%left '*'
%start expr
%%
expr : expr '+' expr
     | expr '-' expr
     | expr '*' expr
     | NUM
     | ID
     ;
"""

    def test_parses(self):
        grammar = load_grammar(self.YACC)
        assert len(grammar.productions) == 5
        assert grammar.start.name == "expr"

    def test_declared_tokens(self):
        grammar = load_grammar(self.YACC)
        assert grammar.symbols["NUM"].is_terminal
        assert grammar.symbols["ID"].is_terminal

    def test_precedence_carried(self):
        grammar = load_grammar(self.YACC)
        assert grammar.precedence[grammar.symbols["+"]].level == 1
        assert grammar.precedence[grammar.symbols["*"]].level == 2

    def test_multiple_rules(self):
        grammar = load_grammar("""
%%
s : a b ;
b : x | %empty ;
""")
        assert len(grammar.productions) == 3

    def test_semicolons_optional_between_rules(self):
        grammar = load_grammar("""
%%
s : a b
b : x
""")
        assert len(grammar.productions) == 2
        b = grammar.symbols["b"]
        assert b.is_nonterminal
        # 'a b' must not have swallowed the next rule head.
        assert [s.name for s in grammar.productions[0].rhs] == ["a", "b"]

    def test_code_section_ignored(self):
        grammar = load_grammar("""
%%
s : a ;
%%
this is arbitrary trailing code { } ;;;
""")
        assert len(grammar.productions) == 1

    def test_percent_prec(self):
        grammar = load_grammar("""
%right UMINUS
%%
e : '-' e %prec UMINUS | x ;
""")
        assert grammar.productions[0].prec_symbol.name == "UMINUS"

    def test_empty_rule_body(self):
        grammar = load_grammar("""
%%
s : things ;
things : %empty | things thing ;
thing : x ;
""")
        assert grammar.productions[1].is_epsilon

    def test_missing_colon_rejected(self):
        with pytest.raises(GrammarSyntaxError, match="':'"):
            load_grammar("%%\ns a ;")

    def test_no_rules_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            load_grammar("%token A\n%%\n")

    def test_declaration_after_mark_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            load_grammar("%%\n%token X\ns : a ;")

    def test_start_defaults_to_first_rule(self):
        grammar = load_grammar("%%\nfirst : a ;\nsecond : b ;")
        assert grammar.start.name == "first"


class TestFileLoading:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "g.cfg"
        path.write_text("S -> a S | b\n")
        grammar = load_grammar_file(path)
        assert len(grammar.productions) == 2

    def test_name_defaults_to_filename(self, tmp_path):
        path = tmp_path / "mylang.cfg"
        path.write_text("S -> a\n")
        assert load_grammar_file(path).name == "mylang"

    def test_augment_flag(self, tmp_path):
        path = tmp_path / "g.cfg"
        path.write_text("S -> a\n")
        assert load_grammar_file(path, augment=True).is_augmented


class TestYaccCompatibility:
    def test_value_type_tags_skipped(self):
        grammar = load_grammar("""
%token <num> NUM
%token <str> ID
%%
s : NUM ID ;
""")
        names = {t.name for t in grammar.terminals}
        assert names == {"NUM", "ID"}

    def test_type_declarations_ignored(self):
        grammar = load_grammar("""
%token NUM
%type <expr> e
%type <term> t
%%
e : t | e '+' t ;
t : NUM ;
""")
        assert grammar.symbols["e"].is_nonterminal
        assert len(grammar.productions) == 3

    def test_tag_on_precedence_line(self):
        grammar = load_grammar("%left <op> '+'\n%%\ne : e '+' e | x ;")
        plus = grammar.symbols["+"]
        assert plus in grammar.precedence

"""Unit tests: the pipeline observability layer (spans + counters)."""

import json
import threading
import time

from repro.core import instrument
from repro.core.instrument import ProfileCollector, profile, span
from repro.grammars import corpus
from repro.parser import Parser
from repro.tables import build_lalr_table


class TestDisabledMode:
    def test_disabled_by_default(self):
        assert not instrument.enabled()

    def test_span_is_shared_noop(self):
        a, b = span("x"), span("y")
        assert a is b  # one stateless singleton, no allocation per call
        with a:
            pass  # must be a usable (and reentrant) context manager

    def test_count_and_absorb_are_noops(self):
        instrument.count("x", 5)
        instrument.absorb("pre", {"a": 1})
        with profile() as collector:
            pass
        assert collector.spans == []
        assert collector.counters == {}

    def test_pipeline_adds_no_entries_when_disabled(self):
        grammar = corpus.load("expr", augment=True)
        with profile() as collector:
            pass  # collector inactive outside its block
        build_lalr_table(grammar)
        assert collector.spans == []
        assert collector.counters == {}


class TestSpans:
    def test_records_duration(self):
        with profile() as collector:
            with span("work"):
                time.sleep(0.002)
        assert collector.total("work") >= 0.002
        assert [s.name for s in collector.spans] == ["work"]

    def test_nesting_paths_and_depth(self):
        with profile() as collector:
            with span("outer"):
                with span("inner"):
                    pass
        inner, outer = collector.spans  # children complete first
        assert inner.path == ("outer", "inner") and inner.depth == 1
        assert outer.path == ("outer",) and outer.depth == 0

    def test_nested_spans_sum_within_parent(self):
        with profile() as collector:
            with span("outer"):
                with span("inner"):
                    time.sleep(0.002)
                with span("inner"):
                    time.sleep(0.002)
        # Parent covers both children; per-name totals aggregate repeats.
        assert collector.total("inner") >= 0.004
        assert collector.total("outer") >= collector.total("inner")
        assert collector.phase_totals()["inner"] == collector.total("inner")

    def test_span_closes_on_exception(self):
        with profile() as collector:
            try:
                with span("boom"):
                    raise RuntimeError
            except RuntimeError:
                pass
            with span("after"):
                pass
        assert [s.name for s in collector.spans] == ["boom", "after"]
        assert collector.spans[1].path == ("after",)  # stack fully unwound


class TestCounters:
    def test_count_accumulates(self):
        with profile() as collector:
            instrument.count("hits")
            instrument.count("hits", 2)
        assert collector.counters == {"hits": 3}

    def test_absorb_prefixes(self):
        with profile() as collector:
            instrument.absorb("digraph", {"unions": 4, "edges": 2})
            instrument.absorb("digraph", {"unions": 1})
        assert collector.counters == {"digraph.unions": 5, "digraph.edges": 2}


class TestScoping:
    def test_nested_profiles_do_not_mix(self):
        with profile() as outer:
            instrument.count("outer.only")
            with profile() as inner:
                instrument.count("inner.only")
            instrument.count("outer.only")
        assert inner.counters == {"inner.only": 1}
        assert outer.counters == {"outer.only": 2}
        assert not instrument.enabled()

    def test_thread_isolation(self):
        seen = {}

        def worker():
            with profile() as collector:
                with span("thread.work"):
                    pass
            seen["thread"] = collector

        with profile() as main_collector:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert [s.name for s in seen["thread"].spans] == ["thread.work"]
        assert main_collector.spans == []  # nothing leaked across threads


class TestPipelineIntegration:
    def test_phase_names_cover_the_pipeline(self):
        grammar = corpus.load("expr", augment=True)
        with profile() as collector:
            table = build_lalr_table(grammar)
            Parser(table).accepts("id + id".split())
        names = set(collector.phase_totals())
        assert {
            "lr0.build",
            "lalr.relations",
            "lalr.digraph.reads",
            "lalr.digraph.includes",
            "lalr.la",
            "table.fill",
            "table.build.lalr1",
            "parse.run",
        } <= names

    def test_digraph_counters_absorbed(self):
        grammar = corpus.load("expr", augment=True)
        with profile() as collector:
            build_lalr_table(grammar)
        assert collector.counters["digraph.unions"] > 0
        assert collector.counters["relations.nonterminal_transitions"] > 0
        assert collector.counters["lr0.states"] == 13

    def test_parser_counters(self):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        with profile() as collector:
            Parser(table).accepts("id + id * id".split())
        assert collector.counters["parse.tokens"] == 5
        assert collector.counters["parse.shifts"] == 5
        assert collector.counters["parse.actions"] == (
            collector.counters["parse.shifts"] + collector.counters["parse.reduces"]
        )


class TestExport:
    def test_as_dict_is_json_safe(self):
        with profile() as collector:
            with span("a"):
                instrument.count("c", 2)
        payload = json.loads(collector.to_json())
        assert payload["counters"] == {"c": 2}
        assert payload["spans"][0]["name"] == "a"
        assert payload["phases"]["a"] >= 0

    def test_format_lists_phases_and_counters(self):
        with profile() as collector:
            with span("phase.one"):
                instrument.count("things", 7)
        text = collector.format()
        assert "phase.one" in text
        assert "things" in text and "7" in text

    def test_format_empty(self):
        assert "no spans" in ProfileCollector().format()

"""Regression tests: random grammar generation at degenerate knobs.

The fuzz campaign leans on :func:`repro.grammars.random_gen.random_grammar`
being total over its legal knob space: boundary shapes must still produce
reduced grammars the whole pipeline accepts, impossible shapes must raise
immediately, and an exhausted retry loop must raise with the seed and the
knobs in the message — never loop forever.
"""

import pytest

from repro.fuzz.oracles import run_oracles
from repro.grammar.errors import GrammarValidationError
from repro.grammars import random_gen
from repro.grammars.random_gen import random_grammar, random_grammar_batch


class TestDegenerateKnobs:
    """Boundary-but-legal shapes: every draw must build and analyse."""

    @pytest.mark.parametrize(
        "knobs",
        [
            dict(n_terminals=1),
            dict(epsilon_weight=1.0),
            dict(max_rhs_len=1),
            dict(n_nonterminals=1, n_terminals=1, max_rhs_len=1, max_alternatives=1),
            dict(epsilon_weight=0.0),
        ],
        ids=["one-terminal", "all-epsilon", "unit-rhs", "minimal-everything",
             "no-epsilon"],
    )
    def test_degenerate_shapes_produce_reduced_grammars(self, knobs):
        for seed in range(20):
            grammar = random_grammar(seed, **knobs)
            assert grammar.productions
            # Reduced: every nonterminal both reachable and generating.
            from repro.grammar.transforms import (
                generating_nonterminals,
                reachable_symbols,
            )

            assert set(grammar.nonterminals) <= generating_nonterminals(grammar)
            assert set(grammar.nonterminals) <= reachable_symbols(grammar)

    def test_all_epsilon_grammar_survives_the_oracle_stack(self):
        """epsilon_weight=1.0 yields {ε}-language grammars; the whole
        lookahead pipeline (and all its baselines) must agree on them."""
        grammar = random_grammar(0, epsilon_weight=1.0)
        failures = run_oracles(grammar)
        assert failures == [], [f.describe() for f in failures]

    def test_single_terminal_grammar_survives_the_oracle_stack(self):
        grammar = random_grammar(3, n_terminals=1)
        failures = run_oracles(grammar)
        assert failures == [], [f.describe() for f in failures]

    def test_deterministic_per_seed(self):
        a = random_grammar(99, n_terminals=1, epsilon_weight=1.0)
        b = random_grammar(99, n_terminals=1, epsilon_weight=1.0)
        assert str(a) == str(b)


class TestImpossibleKnobs:
    """Structurally impossible shapes raise ValueError up front."""

    @pytest.mark.parametrize(
        "knobs,needle",
        [
            (dict(n_nonterminals=0), "n_nonterminals"),
            (dict(n_terminals=0), "n_terminals"),
            (dict(max_alternatives=0), "max_alternatives"),
            (dict(max_rhs_len=0), "max_rhs_len"),
            (dict(epsilon_weight=-0.1), "epsilon_weight"),
            (dict(epsilon_weight=1.5), "epsilon_weight"),
        ],
    )
    def test_rejected_with_the_knob_named(self, knobs, needle):
        with pytest.raises(ValueError, match=needle):
            random_grammar(0, **knobs)


class TestRetryExhaustion:
    """The bounded retry loop raises a reproducible error, never spins."""

    def test_exhaustion_names_seed_and_knobs(self, monkeypatch):
        calls = []

        def never_sample(*args, **kwargs):
            calls.append(1)
            return None

        monkeypatch.setattr(random_gen, "_sample", never_sample)
        with pytest.raises(GrammarValidationError) as excinfo:
            random_grammar(1234, n_terminals=2, epsilon_weight=0.5)
        message = str(excinfo.value)
        assert "seed 1234" in message
        assert "n_terminals=2" in message
        assert "epsilon_weight=0.5" in message
        # Bounded: exactly the documented attempt budget, not forever.
        assert len(calls) == random_gen._MAX_ATTEMPTS

    def test_batch_propagates_the_same_error(self, monkeypatch):
        monkeypatch.setattr(random_gen, "_sample", lambda *a, **k: None)
        with pytest.raises(GrammarValidationError, match="seed 7"):
            random_grammar_batch(1, base_seed=7)

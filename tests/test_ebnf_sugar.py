"""Unit tests: EBNF suffix sugar (X?, X*, X+) in the grammar reader."""

import pytest

from repro.analysis.enumerate import enumerate_language
from repro.grammar import GrammarSyntaxError, load_grammar
from repro.parser import Parser
from repro.tables import build_lalr_table


def language(text, bound):
    grammar = load_grammar(text)
    return {
        " ".join(s.name for s in sentence)
        for sentence in enumerate_language(grammar, bound)
    }


class TestDesugaring:
    def test_optional(self):
        assert language("S -> a? b", 2) == {"b", "a b"}

    def test_star(self):
        assert language("S -> a* b", 3) == {"b", "a b", "a a b"}

    def test_plus(self):
        assert language("S -> a+ b", 3) == {"a b", "a a b"}

    def test_nonterminal_base(self):
        # ';' must be quoted in arrow format (bare ; terminates a rule).
        text = "S -> item* ';'\nitem -> x | y"
        got = language(text, 3)
        assert got == {";", "x ;", "y ;", "x x ;", "x y ;", "y x ;", "y y ;"}

    def test_generated_names(self):
        grammar = load_grammar("S -> a? b* c+")
        names = {nt.name for nt in grammar.nonterminals}
        assert {"a_opt", "b_list", "c_nonempty"} <= names

    def test_sugar_reused_not_duplicated(self):
        grammar = load_grammar("S -> a? x a? | a? y")
        opt_rules = [p for p in grammar.productions if p.lhs.name == "a_opt"]
        assert len(opt_rules) == 2  # one %empty, one 'a' — generated once

    def test_lists_are_left_recursive(self):
        grammar = load_grammar("S -> a* b")
        recursive = next(
            p for p in grammar.productions
            if p.lhs.name == "a_list" and len(p.rhs) == 2
        )
        assert recursive.rhs[0].name == "a_list"

    def test_start_symbol_not_stolen_by_sugar(self):
        # The generated helper rules are added before the first user rule;
        # the default start must still be the user's first lhs.
        grammar = load_grammar("S -> a* b")
        assert grammar.start.name == "S"

    def test_start_symbol_yacc_format(self):
        grammar = load_grammar("%%\ns : a* b ;")
        assert grammar.start.name == "s"

    def test_quoted_literal_exempt(self):
        grammar = load_grammar("S -> 'x*' b")
        assert grammar.symbols["x*"].is_terminal

    def test_bare_suffix_chars_are_plain_terminals(self):
        grammar = load_grammar("E -> E * F | F\nF -> x")
        assert grammar.symbols["*"].is_terminal

    def test_stacked_suffixes_rejected(self):
        with pytest.raises(GrammarSyntaxError, match="stacked"):
            load_grammar("S -> a?* b")


class TestSugarParsing:
    def test_parseable_end_to_end(self):
        # Sugar applies to bare names only (quoted literals are exempt),
        # so the optional separator is a named token here.
        grammar = load_grammar("""
%token ID comma
%start call
%%
call : ID '(' arg* ')' ;
arg : ID comma? ;
""").augmented()
        table = build_lalr_table(grammar)
        assert table.is_deterministic
        parser = Parser(table)
        assert parser.accepts("ID ( )".split())
        assert parser.accepts("ID ( ID )".split())
        assert parser.accepts("ID ( ID comma ID )".split())
        assert parser.accepts("ID ( ID comma ID comma )".split())
        assert not parser.accepts("ID ( comma )".split())

    def test_sugar_in_both_formats_equivalent(self):
        arrow = load_grammar("S -> a+ b?")
        yacc = load_grammar("%%\nS : a+ b? ;")
        from repro.analysis.enumerate import bounded_language_equal

        assert bounded_language_equal(arrow, yacc, 4)

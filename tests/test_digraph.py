"""Unit tests: the Digraph algorithm (the paper's core primitive)."""

import random

from repro.core.digraph import DigraphStats, digraph, digraph_int, naive_closure


def run(nodes, edges, initial):
    """Helper: edges/initial as dicts, returns (result, sccs)."""
    return digraph(
        nodes,
        lambda x: edges.get(x, ()),
        lambda x: initial.get(x, 0),
    )


def to_csr(num_nodes, edges):
    """Dict-of-lists adjacency -> (offsets, adj) in CSR form."""
    offsets, adj = [0], []
    for node in range(num_nodes):
        adj.extend(edges.get(node, ()))
        offsets.append(len(adj))
    return offsets, adj


def run_int(num_nodes, edges, initial, stats=None):
    """Helper mirroring :func:`run` for the integer fast path."""
    offsets, adj = to_csr(num_nodes, edges)
    return digraph_int(
        num_nodes,
        offsets,
        adj,
        [initial.get(node, 0) for node in range(num_nodes)],
        stats,
    )


class TestAcyclic:
    def test_no_edges_is_initial(self):
        result, sccs = run(["a", "b"], {}, {"a": 0b01, "b": 0b10})
        assert result == {"a": 0b01, "b": 0b10}
        assert sccs == []

    def test_chain_accumulates(self):
        result, _ = run(
            ["a", "b", "c"],
            {"a": ["b"], "b": ["c"]},
            {"a": 0b001, "b": 0b010, "c": 0b100},
        )
        assert result["c"] == 0b100
        assert result["b"] == 0b110
        assert result["a"] == 0b111

    def test_diamond(self):
        result, _ = run(
            ["a", "b", "c", "d"],
            {"a": ["b", "c"], "b": ["d"], "c": ["d"]},
            {"a": 1, "b": 2, "c": 4, "d": 8},
        )
        assert result["a"] == 15

    def test_unreachable_untouched(self):
        result, _ = run(["a", "b"], {"a": []}, {"a": 1, "b": 2})
        assert result["b"] == 2

    def test_order_independent(self):
        edges = {"a": ["b"], "b": ["c"], "c": [], "d": ["a"]}
        initial = {"a": 1, "b": 2, "c": 4, "d": 8}
        for order in (["a", "b", "c", "d"], ["d", "c", "b", "a"], ["b", "d", "a", "c"]):
            result, _ = run(order, edges, initial)
            assert result == {"a": 7, "b": 6, "c": 4, "d": 15}


class TestSccs:
    def test_two_cycle_shares_set(self):
        result, sccs = run(["a", "b"], {"a": ["b"], "b": ["a"]}, {"a": 1, "b": 2})
        assert result["a"] == result["b"] == 3
        assert len(sccs) == 1
        assert set(sccs[0]) == {"a", "b"}

    def test_self_loop_is_nontrivial(self):
        result, sccs = run(["a"], {"a": ["a"]}, {"a": 1})
        assert result["a"] == 1
        assert len(sccs) == 1

    def test_trivial_node_not_reported(self):
        _, sccs = run(["a", "b"], {"a": ["b"]}, {"a": 1, "b": 2})
        assert sccs == []

    def test_scc_feeding_downstream(self):
        result, sccs = run(
            ["a", "b", "c"],
            {"a": ["b"], "b": ["a", "c"]},
            {"a": 1, "b": 2, "c": 4},
        )
        assert result["a"] == result["b"] == 7
        assert result["c"] == 4
        assert len(sccs) == 1

    def test_scc_fed_from_upstream(self):
        result, sccs = run(
            ["x", "a", "b"],
            {"x": ["a"], "a": ["b"], "b": ["a"]},
            {"x": 8, "a": 1, "b": 2},
        )
        assert result["x"] == 11
        assert result["a"] == result["b"] == 3

    def test_two_separate_sccs(self):
        _, sccs = run(
            ["a", "b", "c", "d"],
            {"a": ["b"], "b": ["a"], "c": ["d"], "d": ["c"]},
            {n: 1 for n in "abcd"},
        )
        assert len(sccs) == 2


class TestDeepChains:
    def test_no_recursion_limit(self):
        # A 50k-long chain would blow Python's default recursion limit if
        # the traversal were recursive.
        n = 50_000
        nodes = list(range(n))
        edges = {i: [i + 1] for i in range(n - 1)}
        result, _ = digraph(nodes, lambda x: edges.get(x, ()), lambda x: 1 << x)
        assert result[0] == (1 << n) - 1

    def test_long_cycle(self):
        n = 10_000
        nodes = list(range(n))
        edges = {i: [(i + 1) % n] for i in range(n)}
        result, sccs = digraph(nodes, lambda x: edges[x], lambda x: 1 << x)
        assert len(sccs) == 1
        assert all(result[i] == (1 << n) - 1 for i in range(n))


class TestAgainstNaiveOracle:
    def random_case(self, rng, n_nodes, n_edges):
        nodes = list(range(n_nodes))
        edges = {x: [] for x in nodes}
        for _ in range(n_edges):
            edges[rng.randrange(n_nodes)].append(rng.randrange(n_nodes))
        initial = {x: rng.getrandbits(8) for x in nodes}
        return nodes, edges, initial

    def test_random_graphs_match_naive(self):
        rng = random.Random(42)
        for _ in range(60):
            nodes, edges, initial = self.random_case(
                rng, rng.randint(1, 15), rng.randint(0, 40)
            )
            fast, _ = digraph(nodes, lambda x: edges[x], lambda x: initial[x])
            slow = naive_closure(nodes, lambda x: edges[x], lambda x: initial[x])
            assert fast == slow, (edges, initial)


class TestStats:
    def test_counters_filled(self):
        stats = DigraphStats()
        digraph(
            ["a", "b"],
            lambda x: {"a": ["b"]}.get(x, ()),
            lambda x: 1,
            stats,
        )
        assert stats.nodes == 2
        assert stats.edges == 1
        assert stats.unions >= 1
        assert stats.nontrivial_sccs == 0

    def test_scc_counters(self):
        stats = DigraphStats()
        digraph(
            ["a", "b"],
            lambda x: {"a": ["b"], "b": ["a"]}[x],
            lambda x: 1,
            stats,
        )
        assert stats.nontrivial_sccs == 1
        assert stats.scc_members == 2

    def test_as_dict(self):
        stats = DigraphStats()
        assert set(stats.as_dict()) == {
            "nodes", "edges", "unions", "nontrivial_sccs", "scc_members"
        }

    def test_naive_counts_more_unions_on_deep_chain(self):
        n = 40
        nodes = list(range(n))
        edges = {i: [i + 1] if i + 1 < n else [] for i in range(n)}
        # Order the naive sweep against the grain to expose its O(n^2).
        fast_stats, slow_stats = DigraphStats(), DigraphStats()
        digraph(nodes, lambda x: edges[x], lambda x: 1 << x, fast_stats)
        naive_closure(nodes, lambda x: edges[x], lambda x: 1 << x, slow_stats)
        assert fast_stats.unions <= slow_stats.unions


class TestIntFastPath:
    def test_int_self_loop_is_nontrivial(self):
        result, sccs = run_int(1, {0: [0]}, {0: 1})
        assert result == [1]
        assert sccs == [(0,)]

    def test_int_two_node_scc_shares_set(self):
        result, sccs = run_int(2, {0: [1], 1: [0]}, {0: 1, 1: 2})
        assert result == [3, 3]
        assert len(sccs) == 1
        assert set(sccs[0]) == {0, 1}

    def test_int_chain_accumulates(self):
        result, sccs = run_int(3, {0: [1], 1: [2]}, {0: 1, 1: 2, 2: 4})
        assert result == [7, 6, 4]
        assert sccs == []

    def test_int_deep_chain_no_recursion_limit(self):
        n = 50_000
        edges = {i: [i + 1] for i in range(n - 1)}
        result, _ = run_int(n, edges, {i: 1 << i for i in range(n)})
        assert result[0] == (1 << n) - 1

    def test_int_random_graphs_match_generic_and_naive(self):
        # The property the integer fast path must uphold: identical F*
        # AND identical operation counters (same traversal, operation
        # for operation) as the generic implementation, plus agreement
        # with the relaxation oracle.
        rng = random.Random(7)
        for _ in range(60):
            n = rng.randint(1, 15)
            edges = {x: [] for x in range(n)}
            for _ in range(rng.randint(0, 40)):
                edges[rng.randrange(n)].append(rng.randrange(n))
            initial = {x: rng.getrandbits(8) for x in range(n)}

            generic_stats, int_stats = DigraphStats(), DigraphStats()
            generic, generic_sccs = digraph(
                list(range(n)),
                lambda x: edges[x],
                lambda x: initial[x],
                generic_stats,
            )
            fast, fast_sccs = run_int(n, edges, initial, int_stats)
            slow = naive_closure(
                list(range(n)), lambda x: edges[x], lambda x: initial[x]
            )

            assert fast == [generic[x] for x in range(n)], (edges, initial)
            assert fast == [slow[x] for x in range(n)], (edges, initial)
            assert generic_stats.as_dict() == int_stats.as_dict(), (edges, initial)
            assert [tuple(sorted(c)) for c in fast_sccs] == [
                tuple(sorted(c)) for c in generic_sccs
            ], (edges, initial)

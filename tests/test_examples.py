"""Integration tests: every example must run and produce correct output."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    captured = io.StringIO()
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + list(argv)
    try:
        with redirect_stdout(captured):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return captured.getvalue()


class TestQuickstart:
    def test_runs(self):
        output = run_example("quickstart.py")
        assert "LALR(1) look-ahead sets" in output
        assert "not LR(k)? False" in output
        assert "0 conflicts" in output

    def test_shows_la_sets(self):
        output = run_example("quickstart.py")
        assert "LA(" in output
        assert "$end" in output


class TestCalculator:
    def test_demo_expressions(self):
        output = run_example("calculator.py")
        assert "1 + 2 * 3 = 7.0" in output
        assert "2 ^ 3 ^ 2 = 512.0" in output
        assert "10 - 4 - 3 = 3.0" in output
        assert "-3 ^ 2 = 9.0" in output

    def test_argv_expression(self):
        output = run_example("calculator.py", ["(2+3)*4"])
        assert "= 20.0" in output

    def test_evaluate_api(self):
        sys.path.insert(0, str(EXAMPLES))
        try:
            import calculator

            parser, lexer = calculator.build_calculator()
            assert calculator.evaluate(parser, lexer, "2^10") == 1024.0
            assert calculator.evaluate(parser, lexer, "1+2*3-4/2") == 5.0
        finally:
            sys.path.remove(str(EXAMPLES))


class TestJsonParser:
    def test_matches_stdlib(self):
        output = run_example("json_parser.py")
        assert "matches the standard library json module: yes" in output

    def test_parse_json_api(self):
        sys.path.insert(0, str(EXAMPLES))
        try:
            import json_parser

            assert json_parser.parse_json('{"a": [1, 2, {"b": null}]}') == {
                "a": [1, 2, {"b": None}]
            }
            assert json_parser.parse_json("[]") == []
            assert json_parser.parse_json("{}") == {}
            assert json_parser.parse_json("[true, false]") == [True, False]
            assert json_parser.parse_json('"x"') == "x"
            assert json_parser.parse_json("-1.5e3") == -1500.0
        finally:
            sys.path.remove(str(EXAMPLES))


class TestGrammarDoctor:
    def test_corpus_tour(self):
        output = run_example("grammar_doctor.py")
        assert "class: SLR(1)" in output
        assert "class: LALR(1)" in output
        assert "NOT LR(k) for ANY k" in output
        assert "FOLLOW adds spurious" in output
        assert "reduce/reduce" in output

    def test_diagnose_file(self, tmp_path):
        path = tmp_path / "g.cfg"
        path.write_text("S -> a S b | %empty\n")
        output = run_example("grammar_doctor.py", [str(path)])
        assert "class: SLR(1)" in output


class TestMinilang:
    def test_demo_program(self):
        output = run_example("minilang.py")
        assert output.splitlines() == ["21", "55", "1"]

    def test_run_program_api(self):
        sys.path.insert(0, str(EXAMPLES))
        try:
            import minilang

            assert minilang.run_program("print 2 + 3 * 4;") == [14]
            assert minilang.run_program(
                "x = 10; while (x > 2) x = x - 3; print x;"
            ) == [1]
            assert minilang.run_program(
                "if (1 < 2) if (2 < 1) print 0; else print 9;"
            ) == [9]  # else binds to the inner if
        finally:
            sys.path.remove(str(EXAMPLES))

    def test_file_argument(self, tmp_path):
        path = tmp_path / "prog.mini"
        path.write_text("a = 6; b = 7; print a * b;\n")
        output = run_example("minilang.py", [str(path)])
        assert output.strip() == "42"

    def test_undefined_variable(self):
        sys.path.insert(0, str(EXAMPLES))
        try:
            import minilang

            with pytest.raises(NameError):
                minilang.run_program("print ghost;")
        finally:
            sys.path.remove(str(EXAMPLES))

    def test_parse_error_propagates(self):
        sys.path.insert(0, str(EXAMPLES))
        try:
            import minilang
            from repro.parser import ParseError

            with pytest.raises(ParseError):
                minilang.run_program("x = ;")
        finally:
            sys.path.remove(str(EXAMPLES))


class TestShippedGrammarFiles:
    GRAMMARS_DIR = EXAMPLES / "grammars"

    def test_files_exist(self):
        names = {p.name for p in self.GRAMMARS_DIR.iterdir()}
        assert {"calc.y", "lvalue.cfg", "statements.y"} <= names

    def test_all_files_load(self):
        from repro.grammar import load_grammar_file

        for path in self.GRAMMARS_DIR.iterdir():
            grammar = load_grammar_file(path)
            assert grammar.productions, path.name

    def test_calc_resolves_with_precedence(self):
        from repro.grammar import load_grammar_file
        from repro.tables import classify

        grammar = load_grammar_file(self.GRAMMARS_DIR / "calc.y")
        assert classify(grammar, ignore_precedence=False).is_lalr1

    def test_statements_has_dangling_else(self):
        from repro.grammar import load_grammar_file
        from repro.automaton import LR0Automaton
        from repro.tables import build_lalr_table
        from repro.tables.explain import explain_table_conflicts

        grammar = load_grammar_file(self.GRAMMARS_DIR / "statements.y").augmented()
        automaton = LR0Automaton(grammar)
        table = build_lalr_table(grammar, automaton)
        examples = explain_table_conflicts(table, automaton)
        assert any(e.lookahead.name == "else" for e in examples)

    def test_lvalue_file_is_lalr_not_slr(self):
        from repro.grammar import load_grammar_file
        from repro.tables import classify, GrammarClass

        grammar = load_grammar_file(self.GRAMMARS_DIR / "lvalue.cfg")
        assert classify(grammar).grammar_class is GrammarClass.LALR1


class TestGrammarDoctorAmbiguity:
    def test_ambiguity_verdict_in_output(self):
        output = run_example("grammar_doctor.py")
        assert "parse trees" in output  # dangling_else witness

    def test_palindrome_reported_deterministic_hard(self, tmp_path):
        path = tmp_path / "pal.cfg"
        path.write_text("S -> a S a | b S b | %empty\n")
        output = run_example("grammar_doctor.py", [str(path)])
        assert "deterministic-hard" in output

"""Differential tests: kernel-centric LR(0) builder vs the reference.

The optimized builder (:mod:`repro.automaton.lr0`) promises **bit
identity** with the eager frozenset construction it replaced
(:mod:`repro.automaton.lr0_reference`): same state numbering, same
kernels, same closure *order*, same transition maps, same reduction
order.  These tests enforce that promise over the whole grammar corpus
and a seeded population of random grammars, so any future change to the
packed-item machinery that shifts even an internal ordering fails loudly
here before the dump-diff oracles ever see it.
"""

from __future__ import annotations

import pytest

from repro.automaton.lr0 import LR0Automaton
from repro.automaton.lr0_reference import ReferenceLR0Automaton
from repro.grammar.errors import GrammarValidationError
from repro.grammars import corpus
from repro.grammars.random_gen import random_grammar

#: Seeded random-population size (satellite requirement: 200 grammars).
RANDOM_GRAMMAR_COUNT = 200

#: Shape knobs cycled across the random population — mirrors the fuzz
#: campaign's structurally distinct families.
RANDOM_SHAPES = (
    dict(n_nonterminals=3, n_terminals=3, epsilon_weight=0.1),
    dict(n_nonterminals=4, n_terminals=3, epsilon_weight=0.35),
    dict(n_nonterminals=5, n_terminals=4, epsilon_weight=0.15),
    dict(n_nonterminals=4, n_terminals=4, max_rhs_len=6, epsilon_weight=0.1),
)


def assert_equivalent(grammar):
    """Full structural equality of both constructions on *grammar*."""
    fast = LR0Automaton(grammar)
    reference = ReferenceLR0Automaton(grammar)
    assert len(fast) == len(reference), "state counts differ"
    for fast_state, ref_state in zip(fast.states, reference.states):
        sid = fast_state.state_id
        assert sid == ref_state.state_id
        assert fast_state.kernel == ref_state.kernel, f"kernel differs in state {sid}"
        assert fast_state.closure == ref_state.closure, (
            f"closure content/order differs in state {sid}"
        )
        assert fast_state.transitions == ref_state.transitions, (
            f"transitions differ in state {sid}"
        )
        # dict ordering is part of the dump contract, not just content.
        assert list(fast_state.transitions) == list(ref_state.transitions), (
            f"transition order differs in state {sid}"
        )
        assert fast_state.reductions == ref_state.reductions, (
            f"reduction order differs in state {sid}"
        )


class TestCorpusEquivalence:
    def test_corpus_grammar(self, corpus_grammar):
        assert_equivalent(corpus_grammar.augmented())


class TestRandomEquivalence:
    @pytest.mark.parametrize("seed", range(RANDOM_GRAMMAR_COUNT))
    def test_random_grammar(self, seed):
        knobs = RANDOM_SHAPES[seed % len(RANDOM_SHAPES)]
        try:
            grammar = random_grammar(seed * 7919 + 13, **knobs)
        except GrammarValidationError:
            pytest.skip("degenerate draw never reduces")
        assert_equivalent(grammar.augmented())


class TestPackedRepresentation:
    """Spot checks on the packed core the views decode from."""

    def test_kernel_codes_sorted_and_match_view(self, expr_automaton):
        shift = expr_automaton._dot_shift
        mask = expr_automaton._dot_mask
        for state in expr_automaton.states:
            assert list(state.kernel_codes) == sorted(state.kernel_codes)
            decoded = {(code >> shift, code & mask) for code in state.kernel_codes}
            assert decoded == {(i.production, i.dot) for i in state.kernel}

    def test_advancing_the_dot_is_code_plus_one(self, expr_automaton):
        shift = expr_automaton._dot_shift
        mask = expr_automaton._dot_mask
        code = next(iter(expr_automaton.states[1].kernel_codes))
        production, dot = code >> shift, code & mask
        assert ((production << shift) | (dot - 1)) + 1 == code

    def test_closure_view_is_cached(self, expr_automaton):
        state = expr_automaton.states[0]
        assert state.closure is state.closure
        assert state.kernel is state.kernel

    def test_predecessor_index_is_lazy(self, expr_augmented):
        automaton = LR0Automaton(expr_augmented)
        assert automaton._predecessors is None
        symbol = automaton.grammar.symbols["E"]
        target = automaton.goto(0, symbol)
        assert 0 in automaton.predecessors(target, symbol)
        assert automaton._predecessors is not None

    def test_goto_sequence_sids_matches_symbol_walk(self, expr_automaton):
        grammar = expr_automaton.grammar
        for production in grammar.productions:
            by_symbols = expr_automaton.goto_sequence(0, production.rhs)
            by_sids = expr_automaton.goto_sequence_sids(0, production.rhs_sids)
            assert by_symbols == by_sids

    def test_goto_sequence_unknown_symbol_is_dead(self, expr_automaton):
        class Foreign:
            """Hashable stand-in for a symbol outside the layout."""

            def __hash__(self):
                return 17

        assert expr_automaton.goto_sequence(0, (Foreign(),)) is None
        assert expr_automaton.predecessors_along(0, (Foreign(),)) == ()

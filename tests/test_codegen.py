"""Integration tests: standalone-parser code generation."""

import types

import pytest

from repro.analysis import SentenceGenerator
from repro.grammar import load_grammar
from repro.grammars import corpus
from repro.parser import Parser
from repro.tables import build_lalr_table
from repro.tables.codegen import STYLES, generate_parser_module, write_parser_module


def load_generated(source: str):
    """exec the generated source into a fresh module object."""
    module = types.ModuleType("generated_parser")
    exec(compile(source, "<generated>", "exec"), module.__dict__)
    return module


def module_for(grammar_text_or_name, style="dict"):
    if grammar_text_or_name in corpus.names():
        grammar = corpus.load(grammar_text_or_name, augment=True)
    else:
        grammar = load_grammar(grammar_text_or_name).augmented()
    table = build_lalr_table(grammar)
    return grammar, table, load_generated(generate_parser_module(table, style=style))


class TestGeneration:
    def test_deterministic_output(self):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        assert generate_parser_module(table) == generate_parser_module(table)

    def test_refuses_conflicted_tables(self):
        grammar = corpus.load("dangling_else", augment=True)
        with pytest.raises(ValueError, match="conflicts"):
            generate_parser_module(build_lalr_table(grammar))

    def test_refuses_non_augmented(self):
        from repro.tables.table import ParseTable

        grammar = load_grammar("S -> a")
        fake = ParseTable(grammar, "lalr1", [{}], [{}], [])
        with pytest.raises(ValueError, match="augmented"):
            generate_parser_module(fake)

    def test_write_to_file(self, tmp_path):
        grammar = load_grammar("S -> a b").augmented()
        path = tmp_path / "parser_gen.py"
        write_parser_module(build_lalr_table(grammar), str(path), name="ab")
        source = path.read_text()
        assert "GENERATED" in source and "'ab'" in source

    def test_no_repro_imports_in_output(self):
        grammar = load_grammar("S -> a").augmented()
        source = generate_parser_module(build_lalr_table(grammar))
        assert "import repro" not in source
        assert "from repro" not in source


class TestGeneratedBehaviour:
    def test_accepts_matches_engine(self):
        grammar, table, module = module_for("expr")
        engine = Parser(table)
        good = ["id", "id + id * id", "( id + id ) * id"]
        bad = ["", "id +", "( id", "id id"]
        for sentence in good:
            assert module.accepts(sentence.split()), sentence
            assert engine.accepts(sentence.split())
        for sentence in bad:
            assert not module.accepts(sentence.split()), sentence

    def test_agreement_on_generated_sentences(self):
        grammar, table, module = module_for("json")
        engine = Parser(table)
        generator = SentenceGenerator(grammar, seed=6)
        for sentence in generator.sentences(20, budget=15):
            names = [s.name for s in sentence]
            assert module.accepts(names)
            assert engine.accepts(sentence)

    def test_default_tree_shape(self):
        grammar, table, module = module_for("S -> S a | b")
        # b a a => (p, (p, (p, 'b'), 'a'), 'a') with production indices.
        tree = module.parse(["b", "a", "a"])
        recursive = next(
            p.index for p in grammar.productions
            if p.index > 0 and len(p.rhs) == 2
        )
        base = next(
            p.index for p in grammar.productions
            if len(p.rhs) == 1 and p.rhs[0].is_terminal
        )
        assert tree == (recursive, (recursive, (base, "b"), "a"), "a")

    def test_token_value_pairs(self):
        grammar, table, module = module_for("S -> NUM")
        result = module.parse([("NUM", 42)])
        assert result[1] == 42

    def test_semantic_actions(self):
        grammar, table, module = module_for(
            "E -> E + T | T\nT -> NUM"
        )

        def reduce_fn(production_index, children):
            lhs, arity, rhs = module.PRODUCTIONS[production_index]
            if rhs == ("E", "+", "T"):
                return children[0] + children[2]
            return children[0]

        tokens = [("NUM", 1), ("+", None), ("NUM", 2), ("+", None), ("NUM", 39)]
        assert module.parse(tokens, reduce_fn=reduce_fn) == 42

    def test_shift_fn(self):
        grammar, table, module = module_for("S -> a a")
        result = module.parse(
            ["a", "a"],
            reduce_fn=lambda i, children: sum(children),
            shift_fn=lambda name, value: 21,
        )
        assert result == 42

    def test_error_reporting(self):
        grammar, table, module = module_for("S -> a b")
        with pytest.raises(module.SyntaxErrorLR) as info:
            module.parse(["a", "a"])
        assert info.value.position == 1
        assert info.value.expected == {"b"}

    def test_error_at_eof(self):
        grammar, table, module = module_for("S -> a b")
        with pytest.raises(module.SyntaxErrorLR, match="end of input"):
            module.parse(["a"])

    def test_exhaustive_agreement_small_grammar(self):
        from repro.analysis.enumerate import all_strings

        grammar, table, module = module_for("S -> a S b | %empty")
        engine = Parser(table)
        terminals = [t for t in grammar.terminals if not t.is_eof]
        for candidate in all_strings(terminals, 6):
            names = [s.name for s in candidate]
            assert module.accepts(names) == engine.accepts(list(candidate)), names


class TestStyles:
    """The dense and displace styles behave identically to dict."""

    @pytest.mark.parametrize("style", STYLES)
    def test_deterministic_output_per_style(self, style):
        table = build_lalr_table(corpus.load("expr", augment=True))
        assert generate_parser_module(table, style=style) == (
            generate_parser_module(table, style=style)
        )

    def test_unknown_style_rejected(self):
        table = build_lalr_table(corpus.load("expr", augment=True))
        with pytest.raises(ValueError, match="style"):
            generate_parser_module(table, style="yacc")

    @pytest.mark.parametrize("style", ["dense", "displace"])
    def test_no_repro_imports(self, style):
        table = build_lalr_table(corpus.load("expr", augment=True))
        source = generate_parser_module(table, style=style)
        assert "import repro" not in source
        assert "from repro" not in source
        assert "from array import array" in source

    @pytest.mark.parametrize("style", STYLES)
    def test_agreement_with_engine_on_sentences(self, style):
        grammar, table, module = module_for("json", style=style)
        engine = Parser(table)
        generator = SentenceGenerator(grammar, seed=9)
        for sentence in generator.sentences(15, budget=12):
            names = [s.name for s in sentence]
            assert module.accepts(names), names
            assert engine.accepts(sentence)

    @pytest.mark.parametrize("style", STYLES)
    def test_tree_identical_across_styles(self, style):
        _, _, reference = module_for("expr", style="dict")
        _, _, module = module_for("expr", style=style)
        tokens = ["id", "+", "id", "*", "(", "id", ")"]
        assert module.parse(tokens) == reference.parse(tokens)

    @pytest.mark.parametrize("style", STYLES)
    def test_productions_shape_stable(self, style):
        _, table, module = module_for("expr", style=style)
        assert len(module.PRODUCTIONS) == len(table.grammar.productions)
        for lhs_name, arity, rhs_names in module.PRODUCTIONS:
            assert isinstance(lhs_name, str)
            assert arity == len(rhs_names)

    @pytest.mark.parametrize("style", STYLES)
    def test_semantic_actions_across_styles(self, style):
        _, _, module = module_for("E -> E + T | T\nT -> NUM", style=style)

        def reduce_fn(production_index, children):
            lhs, arity, rhs = module.PRODUCTIONS[production_index]
            if rhs == ("E", "+", "T"):
                return children[0] + children[2]
            return children[0]

        tokens = [("NUM", 1), ("+", None), ("NUM", 2), ("+", None), ("NUM", 39)]
        assert module.parse(tokens, reduce_fn=reduce_fn) == 42


class TestLazyTokenConsumption:
    """Regression: the driver used to materialise the whole token stream
    into a list before parsing, so unbounded generators never parsed and
    peak memory was O(input length)."""

    @pytest.mark.parametrize("style", STYLES)
    def test_error_raised_without_draining_the_stream(self, style):
        _, _, module = module_for("S -> a b", style=style)
        pulled = []

        def unbounded():
            yield "a"
            yield "a"  # syntax error here: 'b' expected
            while True:
                pulled.append(1)
                yield "a"

        with pytest.raises(module.SyntaxErrorLR) as info:
            module.parse(unbounded())
        assert info.value.position == 1
        # One lookahead token beyond the error point at most.
        assert len(pulled) <= 1

    @pytest.mark.parametrize("style", STYLES)
    def test_pulls_only_parse_prefix(self, style):
        _, _, module = module_for("S -> a b", style=style)
        consumed = []

        def stream():
            for name in ["a", "x", "never", "never"]:
                consumed.append(name)
                yield name

        with pytest.raises(module.SyntaxErrorLR):
            module.parse(stream())
        assert consumed == ["a", "x"]

    @pytest.mark.parametrize("style", STYLES)
    def test_generator_input_parses(self, style):
        _, _, module = module_for("expr", style=style)
        tokens = (name for name in ["id", "+", "id"])
        assert module.parse(tokens) is not None


class TestEngineMessageParity:
    """Generated drivers must report byte-identical syntax errors to the
    engine — message text, position, and (display-named) expected set —
    including the "end of input" spelling of the end marker."""

    @pytest.mark.parametrize("style", STYLES)
    def test_message_parity_on_corpus(self, style, corpus_grammar):
        grammar = corpus_grammar.augmented()
        table = build_lalr_table(grammar)
        if not table.is_deterministic:
            pytest.skip("needs a deterministic LALR table")
        module = load_generated(generate_parser_module(table, style=style))
        engine = Parser(table)
        terminals = [t for t in grammar.terminals if t is not grammar.eof]

        generator = SentenceGenerator(grammar, seed=17)
        streams = [[]]
        for sentence in generator.sentences(6, budget=8):
            names = [s.name for s in sentence]
            streams.append(names[:-1])
            for i in range(len(names)):
                # Stay inside the terminal alphabet: unknown names take
                # the engine's "unknown terminal" path by design.
                streams.append(
                    names[:i] + [terminals[i % len(terminals)].name] + names[i + 1:]
                )

        from repro.parser import ParseError

        compared = 0
        for stream in streams:
            try:
                engine.parse(list(stream))
                engine_error = None
            except ParseError as error:
                engine_error = error
            try:
                module.parse(list(stream))
                module_error = None
            except module.SyntaxErrorLR as error:
                module_error = error
            if engine_error is None:
                assert module_error is None, stream
                continue
            assert module_error is not None, stream
            assert str(module_error) == str(engine_error), stream
            assert module_error.position == engine_error.position
            compared += 1
        assert compared > 0

    @pytest.mark.parametrize("style", STYLES)
    def test_expected_attribute_uses_display_names(self, style):
        _, _, module = module_for("S -> a", style=style)
        with pytest.raises(module.SyntaxErrorLR) as info:
            module.parse(["a", "a"])
        assert info.value.expected == {"end of input"}
        assert "$end" not in str(info.value)

"""Integration tests: standalone-parser code generation."""

import types

import pytest

from repro.analysis import SentenceGenerator
from repro.grammar import load_grammar
from repro.grammars import corpus
from repro.parser import Parser
from repro.tables import build_lalr_table
from repro.tables.codegen import generate_parser_module, write_parser_module


def load_generated(source: str):
    """exec the generated source into a fresh module object."""
    module = types.ModuleType("generated_parser")
    exec(compile(source, "<generated>", "exec"), module.__dict__)
    return module


def module_for(grammar_text_or_name):
    if grammar_text_or_name in corpus.names():
        grammar = corpus.load(grammar_text_or_name, augment=True)
    else:
        grammar = load_grammar(grammar_text_or_name).augmented()
    table = build_lalr_table(grammar)
    return grammar, table, load_generated(generate_parser_module(table))


class TestGeneration:
    def test_deterministic_output(self):
        grammar = corpus.load("expr", augment=True)
        table = build_lalr_table(grammar)
        assert generate_parser_module(table) == generate_parser_module(table)

    def test_refuses_conflicted_tables(self):
        grammar = corpus.load("dangling_else", augment=True)
        with pytest.raises(ValueError, match="conflicts"):
            generate_parser_module(build_lalr_table(grammar))

    def test_refuses_non_augmented(self):
        from repro.tables.table import ParseTable

        grammar = load_grammar("S -> a")
        fake = ParseTable(grammar, "lalr1", [{}], [{}], [])
        with pytest.raises(ValueError, match="augmented"):
            generate_parser_module(fake)

    def test_write_to_file(self, tmp_path):
        grammar = load_grammar("S -> a b").augmented()
        path = tmp_path / "parser_gen.py"
        write_parser_module(build_lalr_table(grammar), str(path), name="ab")
        source = path.read_text()
        assert "GENERATED" in source and "'ab'" in source

    def test_no_repro_imports_in_output(self):
        grammar = load_grammar("S -> a").augmented()
        source = generate_parser_module(build_lalr_table(grammar))
        assert "import repro" not in source
        assert "from repro" not in source


class TestGeneratedBehaviour:
    def test_accepts_matches_engine(self):
        grammar, table, module = module_for("expr")
        engine = Parser(table)
        good = ["id", "id + id * id", "( id + id ) * id"]
        bad = ["", "id +", "( id", "id id"]
        for sentence in good:
            assert module.accepts(sentence.split()), sentence
            assert engine.accepts(sentence.split())
        for sentence in bad:
            assert not module.accepts(sentence.split()), sentence

    def test_agreement_on_generated_sentences(self):
        grammar, table, module = module_for("json")
        engine = Parser(table)
        generator = SentenceGenerator(grammar, seed=6)
        for sentence in generator.sentences(20, budget=15):
            names = [s.name for s in sentence]
            assert module.accepts(names)
            assert engine.accepts(sentence)

    def test_default_tree_shape(self):
        grammar, table, module = module_for("S -> S a | b")
        # b a a => (p, (p, (p, 'b'), 'a'), 'a') with production indices.
        tree = module.parse(["b", "a", "a"])
        recursive = next(
            p.index for p in grammar.productions
            if p.index > 0 and len(p.rhs) == 2
        )
        base = next(
            p.index for p in grammar.productions
            if len(p.rhs) == 1 and p.rhs[0].is_terminal
        )
        assert tree == (recursive, (recursive, (base, "b"), "a"), "a")

    def test_token_value_pairs(self):
        grammar, table, module = module_for("S -> NUM")
        result = module.parse([("NUM", 42)])
        assert result[1] == 42

    def test_semantic_actions(self):
        grammar, table, module = module_for(
            "E -> E + T | T\nT -> NUM"
        )

        def reduce_fn(production_index, children):
            lhs, arity, rhs = module.PRODUCTIONS[production_index]
            if rhs == ("E", "+", "T"):
                return children[0] + children[2]
            return children[0]

        tokens = [("NUM", 1), ("+", None), ("NUM", 2), ("+", None), ("NUM", 39)]
        assert module.parse(tokens, reduce_fn=reduce_fn) == 42

    def test_shift_fn(self):
        grammar, table, module = module_for("S -> a a")
        result = module.parse(
            ["a", "a"],
            reduce_fn=lambda i, children: sum(children),
            shift_fn=lambda name, value: 21,
        )
        assert result == 42

    def test_error_reporting(self):
        grammar, table, module = module_for("S -> a b")
        with pytest.raises(module.SyntaxErrorLR) as info:
            module.parse(["a", "a"])
        assert info.value.position == 1
        assert info.value.expected == {"b"}

    def test_error_at_eof(self):
        grammar, table, module = module_for("S -> a b")
        with pytest.raises(module.SyntaxErrorLR, match="end of input"):
            module.parse(["a"])

    def test_exhaustive_agreement_small_grammar(self):
        from repro.analysis.enumerate import all_strings

        grammar, table, module = module_for("S -> a S b | %empty")
        engine = Parser(table)
        terminals = [t for t in grammar.terminals if not t.is_eof]
        for candidate in all_strings(terminals, 6):
            names = [s.name for s in candidate]
            assert module.accepts(names) == engine.accepts(list(candidate)), names

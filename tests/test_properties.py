"""Unit tests: structural grammar predicates and the SCC utility."""

from repro.grammar import load_grammar
from repro.grammar.properties import (
    cyclic_nonterminals,
    has_cycles,
    is_epsilon_free,
    is_finite_language,
    is_proper,
    is_reduced,
    left_recursive_nonterminals,
    right_recursive_nonterminals,
    strongly_connected_components,
)
from repro.grammar.symbols import SymbolTable


class TestIsReduced:
    def test_clean_grammar(self):
        assert is_reduced(load_grammar("S -> a S | b"))

    def test_unreachable_not_reduced(self):
        assert not is_reduced(load_grammar("S -> a\nX -> x"))

    def test_nongenerating_not_reduced(self):
        assert not is_reduced(load_grammar("S -> a | B\nB -> B b"))


class TestEpsilonFree:
    def test_free(self):
        assert is_epsilon_free(load_grammar("S -> a"))

    def test_not_free(self):
        assert not is_epsilon_free(load_grammar("S -> a | %empty"))

    def test_augmented_start_exempt(self):
        grammar = load_grammar("S -> a").augmented()
        assert is_epsilon_free(grammar)


class TestCycles:
    def test_unit_cycle(self):
        grammar = load_grammar("A -> B | a\nB -> A")
        assert has_cycles(grammar)
        assert {s.name for s in cyclic_nonterminals(grammar)} == {"A", "B"}

    def test_self_cycle(self):
        assert has_cycles(load_grammar("A -> A | a"))

    def test_cycle_through_nullable(self):
        # A -> B C with C nullable is still a cycle A =>+ A if B -> A.
        grammar = load_grammar("A -> B C | a\nB -> A\nC -> c | %empty")
        assert has_cycles(grammar)

    def test_plain_recursion_is_not_cycle(self):
        assert not has_cycles(load_grammar("E -> E + T | T\nT -> x"))

    def test_proper(self):
        assert is_proper(load_grammar("S -> a S | b"))
        assert not is_proper(load_grammar("S -> a | %empty"))


class TestRecursionDirection:
    def test_immediate_left_recursion(self):
        grammar = load_grammar("E -> E + T | T\nT -> x")
        assert {s.name for s in left_recursive_nonterminals(grammar)} == {"E"}

    def test_indirect_left_recursion(self):
        grammar = load_grammar("A -> B a | a\nB -> A b")
        names = {s.name for s in left_recursive_nonterminals(grammar)}
        assert names == {"A", "B"}

    def test_left_recursion_through_nullable_prefix(self):
        grammar = load_grammar("A -> N A a | b\nN -> n | %empty")
        assert "A" in {s.name for s in left_recursive_nonterminals(grammar)}

    def test_right_recursion(self):
        grammar = load_grammar("L -> x , L | x")
        assert {s.name for s in right_recursive_nonterminals(grammar)} == {"L"}

    def test_right_recursion_through_nullable_suffix(self):
        grammar = load_grammar("A -> a A N | b\nN -> n | %empty")
        assert "A" in {s.name for s in right_recursive_nonterminals(grammar)}

    def test_middle_recursion_is_neither(self):
        grammar = load_grammar("S -> a S b | c")
        assert not left_recursive_nonterminals(grammar)
        assert not right_recursive_nonterminals(grammar)


class TestFiniteLanguage:
    def test_finite(self):
        assert is_finite_language(load_grammar("S -> A a\nA -> b | c"))

    def test_infinite(self):
        assert not is_finite_language(load_grammar("S -> S a | b"))

    def test_recursion_in_useless_symbol_ignored(self):
        grammar = load_grammar("S -> a\nX -> X x | S")
        assert is_finite_language(grammar)

    def test_recursion_in_nongenerating_ignored(self):
        grammar = load_grammar("S -> a | B\nB -> B b")
        assert is_finite_language(grammar)


class TestSccUtility:
    def _graph(self, edges):
        table = SymbolTable()
        nodes = {}
        graph = {}
        for source, targets in edges.items():
            nodes.setdefault(source, table.nonterminal(source))
        for source, targets in edges.items():
            for target in targets:
                nodes.setdefault(target, table.nonterminal(target))
        for name, symbol in nodes.items():
            graph[symbol] = {nodes[t] for t in edges.get(name, ())}
        return graph, nodes

    def test_singletons(self):
        graph, nodes = self._graph({"A": [], "B": []})
        components = strongly_connected_components(graph)
        assert sorted(len(c) for c in components) == [1, 1]

    def test_two_cycle(self):
        graph, nodes = self._graph({"A": ["B"], "B": ["A"]})
        components = strongly_connected_components(graph)
        assert len(components) == 1 and len(components[0]) == 2

    def test_chain_topological_order(self):
        graph, nodes = self._graph({"A": ["B"], "B": ["C"], "C": []})
        components = strongly_connected_components(graph)
        order = [c[0].name for c in components]
        # Reverse topological: C before B before A.
        assert order.index("C") < order.index("B") < order.index("A")

    def test_complex(self):
        graph, nodes = self._graph(
            {"A": ["B"], "B": ["C", "A"], "C": ["D"], "D": ["C"], "E": ["A"]}
        )
        components = strongly_connected_components(graph)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2, 2]

"""The shared artifact store under fire: processes, threads, corruption.

The grammar service promotes :class:`~repro.tables.cache.TableCache`
to the shared table store — one instance hit by many worker threads,
and (through its on-disk layer) by batch-job worker *processes*.  These
tests pin the properties serving depends on:

- concurrent readers/writers across processes never observe a corrupt
  or torn entry, and every process computes the identical table;
- the thread-safe hot-table LRU counts hits and evictions exactly;
- an injected corrupt entry is silently evicted and rebuilt — at the
  cache layer and straight through a served ``/compile``.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.grammars import corpus
from repro.service import Client, ServiceThread, canonical_json, compile_result
from repro.tables import TableCache, build_lalr_table

#: Deterministic grammars the hammering sweeps — includes expr_prec so
#: precedence-resolved conflict fidelity is exercised across processes.
NAMES = ["expr", "json", "lr0_demo", "unit_chain", "expr_prec"]


def table_digest(table) -> str:
    """A representation-independent fingerprint of a table's content."""
    payload = {
        "method": table.method,
        "actions": [
            {terminal.name: repr(action) for terminal, action in row.items()}
            for row in table.actions
        ],
        "gotos": [
            {nonterminal.name: target for nonterminal, target in row.items()}
            for row in table.gotos
        ],
        "summary": table.conflict_summary(),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


def expected_digests() -> dict:
    return {
        name: table_digest(build_lalr_table(corpus.load(name, augment=True)))
        for name in NAMES
    }


def _hammer_worker(directory, backend, rounds, barrier, results):
    """Subprocess body: interleaved load_or_build over the shared dir."""
    cache = TableCache(directory, backend=backend, hot_capacity=2)
    barrier.wait()  # maximise reader/writer overlap
    digests = {}
    for _ in range(rounds):
        for name in NAMES:
            grammar = corpus.load(name, augment=True)
            table = cache.load_or_build(grammar, "lalr1", build_lalr_table)
            digests[name] = table_digest(table)
    results.put((os.getpid(), digests, cache.stats()))


class TestMultiProcessHammering:
    @pytest.mark.parametrize("backend", ["json", "bin"])
    def test_readers_and_writers_agree_bit_for_bit(self, tmp_path, backend):
        directory = str(tmp_path / "store")
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(4)
        results = context.Queue()
        workers = [
            context.Process(
                target=_hammer_worker,
                args=(directory, backend, 3, barrier, results),
            )
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        collected = [results.get(timeout=180) for _ in workers]
        for worker in workers:
            worker.join(timeout=180)
            assert worker.exitcode == 0

        expected = expected_digests()
        for _pid, digests, stats in collected:
            assert digests == expected
            # A racing writer is invisible: entries are atomic (temp file
            # + os.replace), so nobody ever reads a torn artifact.
            assert stats["corrupt"] == 0

        # The shared directory holds exactly one intact entry per grammar.
        survivor = TableCache(directory, backend=backend)
        assert len(survivor.entry_paths()) == len(NAMES)
        for name in NAMES:
            grammar = corpus.load(name, augment=True)
            table = survivor.load(grammar, "lalr1")
            assert table is not None
            assert table_digest(table) == expected[name]
        assert survivor.stats()["corrupt"] == 0


class TestThreadedSingleInstance:
    def test_one_cache_many_threads(self, tmp_path):
        cache = TableCache(str(tmp_path / "store"), hot_capacity=4)
        expected = expected_digests()

        def hammer(round_index):
            out = {}
            for name in NAMES:
                grammar = corpus.load(name, augment=True)
                table = cache.load_or_build(grammar, "lalr1", build_lalr_table)
                out[name] = table_digest(table)
            return out

        rounds = 24
        with ThreadPoolExecutor(max_workers=8) as pool:
            for digests in pool.map(hammer, range(rounds)):
                assert digests == expected

        stats = cache.stats()
        assert stats["corrupt"] == 0
        # Accounting identity: every load attempt is exactly one of
        # hot hit / disk hit / miss.
        attempts = rounds * len(NAMES)
        assert stats["hot_hits"] + stats["hits"] + stats["misses"] == attempts
        # Only missed loads trigger builds/stores, and the LRU (capacity
        # 4, five keys) keeps forcing disk round-trips.
        assert stats["stores"] <= stats["misses"]
        assert stats["hot_hits"] > 0
        assert stats["hot_evictions"] > 0


class TestHotLruExactCounters:
    def test_hit_and_eviction_counts_are_exact(self, tmp_path):
        cache = TableCache(str(tmp_path / "store"), hot_capacity=2)
        a, b, c = (corpus.load(n, augment=True) for n in ("expr", "json", "lr0_demo"))

        build = build_lalr_table
        cache.load_or_build(a, "lalr1", build)  # miss, store      hot=[A]
        cache.load_or_build(a, "lalr1", build)  # hot hit          hot=[A]
        cache.load_or_build(b, "lalr1", build)  # miss, store      hot=[A,B]
        cache.load_or_build(c, "lalr1", build)  # miss, store      hot=[B,C] evict A
        cache.load_or_build(a, "lalr1", build)  # disk hit         hot=[C,A] evict B
        cache.load_or_build(a, "lalr1", build)  # hot hit          hot=[C,A]

        assert cache.stats() == {
            "hits": 1,
            "misses": 3,
            "stores": 3,
            "corrupt": 0,
            "hot_hits": 2,
            "hot_evictions": 2,
        }

    def test_lru_order_is_recency_not_insertion(self, tmp_path):
        cache = TableCache(str(tmp_path / "store"), hot_capacity=2)
        a, b, c = (corpus.load(n, augment=True) for n in ("expr", "json", "lr0_demo"))
        build = build_lalr_table
        cache.load_or_build(a, "lalr1", build)  # hot=[A]
        cache.load_or_build(b, "lalr1", build)  # hot=[A,B]
        cache.load_or_build(a, "lalr1", build)  # hot hit, A refreshed: hot=[B,A]
        cache.load_or_build(c, "lalr1", build)  # evicts B, not A: hot=[A,C]
        hot_hits_before = cache.stats()["hot_hits"]
        cache.load_or_build(a, "lalr1", build)  # still hot
        assert cache.stats()["hot_hits"] == hot_hits_before + 1


class TestCorruptionRecovery:
    @pytest.mark.parametrize("backend", ["json", "bin"])
    def test_injected_corruption_rebuilds_silently(self, tmp_path, backend):
        directory = str(tmp_path / "store")
        cache = TableCache(directory, backend=backend)
        grammar = corpus.load("expr_prec", augment=True)
        first = cache.load_or_build(grammar, "lalr1", build_lalr_table)

        [entry] = cache.entry_paths()
        with open(entry, "wb") as handle:
            handle.write(b"\x00garbage" * 32)

        fresh = TableCache(directory, backend=backend)
        rebuilt = fresh.load_or_build(grammar, "lalr1", build_lalr_table)
        assert table_digest(rebuilt) == table_digest(first)
        assert fresh.stats()["corrupt"] == 1
        # The damaged entry was evicted and replaced by a loadable one.
        reread = TableCache(directory, backend=backend)
        assert reread.load(grammar, "lalr1") is not None
        assert reread.stats()["corrupt"] == 0

    def test_service_serves_identically_through_corruption(self, tmp_path):
        cache_dir = tmp_path / "service-store"
        expected = canonical_json(compile_result(corpus.load("expr_prec"), "lalr1"))
        with ServiceThread(cache_dir=str(cache_dir), hot_capacity=0) as thread:
            client = Client(thread.port)
            assert client.post("/compile", {"corpus": "expr_prec"}).body == expected
            for entry in thread.service.cache.entry_paths():
                with open(entry, "wb") as handle:
                    handle.write(b"not a table")
            # hot_capacity=0 forces the disk path: the corrupt entry is
            # hit, evicted, rebuilt — and the answer does not change.
            assert client.post("/compile", {"corpus": "expr_prec"}).body == expected
            counters = client.get("/metrics?format=json").json()["cache"]
            assert counters["corrupt"] == 1
            assert client.post("/compile", {"corpus": "expr_prec"}).body == expected

"""JobQueue retention: TTL eviction, the finished-job cap, and the
``evicted`` counter.

A long-lived service must not keep every job it ever ran.  Finished jobs
age out after ``ttl`` seconds (measured on an injectable monotonic
clock, so these tests never sleep) or get trimmed oldest-first past
``max_finished``.  Queued and running jobs are never evicted, and an
evicted job polls as an ordinary 404.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.jobs import Job, JobQueue
from repro.service.protocol import HttpError


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def run_jobs(queue: JobQueue, count: int, clock: FakeClock = None):
    """Start *queue*, submit *count* trivial jobs, wait them out."""

    async def drive():
        await queue.start()
        jobs = [queue.submit("batch", {"index": i}) for i in range(count)]
        await queue.join()
        await queue.close()
        return jobs

    return asyncio.run(drive())


def finished_job(job_id: str, finished_at: float, status: str = "done") -> Job:
    job = Job(job_id, "batch", {})
    job.status = status
    job.finished_at = finished_at
    return job


def _ok(job: Job) -> dict:
    return {"index": job.payload.get("index")}


class TestTtlEviction:
    def test_finished_jobs_age_out(self):
        clock = FakeClock()
        queue = JobQueue(_ok, workers=1, ttl=100.0, clock=clock)
        jobs = run_jobs(queue, 3, clock)
        assert all(job.status == "done" for job in jobs)
        assert queue.stats()["evicted"] == 0

        clock.advance(101.0)
        stats = queue.stats()
        assert stats["evicted"] == 3
        for job in jobs:
            with pytest.raises(HttpError) as err:
                queue.get(job.job_id)
            assert err.value.status == 404

    def test_young_jobs_survive_a_trim(self):
        clock = FakeClock()
        queue = JobQueue(_ok, workers=1, ttl=100.0, clock=clock)
        jobs = run_jobs(queue, 2, clock)
        clock.advance(99.0)
        assert queue.stats()["evicted"] == 0
        assert queue.get(jobs[0].job_id) is jobs[0]

    def test_ttl_zero_disables_age_eviction(self):
        clock = FakeClock()
        queue = JobQueue(_ok, workers=1, ttl=0.0, clock=clock)
        jobs = run_jobs(queue, 2, clock)
        clock.advance(1e9)
        assert queue.stats()["evicted"] == 0
        assert queue.get(jobs[-1].job_id).status == "done"

    def test_poll_path_also_evicts(self):
        clock = FakeClock()
        queue = JobQueue(_ok, workers=1, ttl=50.0, clock=clock)
        jobs = run_jobs(queue, 1, clock)
        clock.advance(51.0)
        # get() itself trims, so the 404 arrives without a stats() call.
        with pytest.raises(HttpError):
            queue.get(jobs[0].job_id)
        assert queue.evicted == 1

    def test_failed_jobs_age_out_too(self):
        clock = FakeClock()

        def boom(job):
            raise ValueError("no")

        queue = JobQueue(boom, workers=1, ttl=10.0, clock=clock)
        jobs = run_jobs(queue, 2, clock)
        assert all(job.status == "failed" for job in jobs)
        clock.advance(11.0)
        assert queue.stats()["evicted"] == 2


class TestFinishedCap:
    def test_overflow_evicts_oldest_first(self):
        clock = FakeClock()
        queue = JobQueue(_ok, workers=1, max_finished=2, ttl=0.0, clock=clock)
        jobs = run_jobs(queue, 5, clock)
        stats = queue.stats()
        assert stats["evicted"] == 3
        for old in jobs[:3]:
            with pytest.raises(HttpError):
                queue.get(old.job_id)
        for recent in jobs[3:]:
            assert queue.get(recent.job_id).status == "done"

    def test_under_the_cap_nothing_is_evicted(self):
        """Regression: a negative excess must not slice jobs away.

        ``finished[:len(finished) - max_finished]`` with a negative
        excess evicts *most* of the retained jobs as soon as more than
        half the cap is in use; the guard keeps retention exact."""
        clock = FakeClock()
        queue = JobQueue(_ok, workers=1, max_finished=256, ttl=0.0, clock=clock)
        queue._jobs.update(
            (f"job-{i:06d}", finished_job(f"job-{i:06d}", 0.0))
            for i in range(200)
        )
        queue._trim()
        assert len(queue._jobs) == 200
        assert queue.evicted == 0

    def test_unfinished_jobs_are_never_evicted(self):
        clock = FakeClock()
        queue = JobQueue(_ok, workers=1, max_finished=1, ttl=5.0, clock=clock)
        queue._jobs["job-000001"] = finished_job("job-000001", 0.0)
        running = Job("job-000002", "batch", {})
        running.status = "running"
        queue._jobs["job-000002"] = running
        queued = Job("job-000003", "batch", {})
        queue._jobs["job-000003"] = queued

        clock.advance(100.0)  # both trims would fire for finished jobs
        queue._trim()
        assert queue.evicted == 1
        assert "job-000001" not in queue._jobs
        assert queue._jobs["job-000002"] is running
        assert queue._jobs["job-000003"] is queued


class TestStatsSurface:
    def test_stats_reports_evicted(self):
        queue = JobQueue(_ok, workers=1)
        stats = queue.stats()
        assert stats["evicted"] == 0
        assert set(stats) == {
            "capacity", "workers", "submitted", "queued", "running",
            "completed", "failed", "rejected", "evicted",
        }

    def test_finished_at_set_on_completion(self):
        clock = FakeClock()
        clock.now = 42.0
        queue = JobQueue(_ok, workers=1, clock=clock)
        jobs = run_jobs(queue, 1, clock)
        assert jobs[0].finished_at == 42.0

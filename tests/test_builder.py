"""Unit tests: the fluent GrammarBuilder."""

import pytest

from repro.grammar import (
    GrammarBuilder,
    GrammarValidationError,
    SymbolError,
    grammar_from_rules,
)


class TestClassification:
    def test_lhs_names_become_nonterminals(self):
        grammar = grammar_from_rules([("S", ["a", "B"]), ("B", ["b"])])
        assert grammar.symbols["S"].is_nonterminal
        assert grammar.symbols["B"].is_nonterminal

    def test_other_names_become_terminals(self):
        grammar = grammar_from_rules([("S", ["a", "B"]), ("B", ["b"])])
        assert grammar.symbols["a"].is_terminal
        assert grammar.symbols["b"].is_terminal

    def test_declared_terminal_forced(self):
        builder = GrammarBuilder()
        builder.declare_terminal("UNUSED")
        builder.rule("S", ["a"])
        grammar = builder.build()
        assert grammar.symbols["UNUSED"].is_terminal

    def test_declared_terminal_as_lhs_rejected_eagerly(self):
        builder = GrammarBuilder()
        builder.declare_terminal("T")
        with pytest.raises(SymbolError):
            builder.rule("T", ["a"])

    def test_declared_terminal_as_lhs_rejected_at_build(self):
        builder = GrammarBuilder()
        builder.rule("T", ["a"])
        builder.declare_terminal("T")
        with pytest.raises(SymbolError):
            builder.build()


class TestStartSymbol:
    def test_default_is_first_lhs(self):
        grammar = grammar_from_rules([("A", ["x"]), ("B", ["y"])])
        assert grammar.start.name == "A"

    def test_explicit_start_method(self):
        builder = GrammarBuilder()
        builder.rule("A", ["x"])
        builder.rule("B", ["y"])
        builder.start("B")
        assert builder.build().start.name == "B"

    def test_build_start_argument_wins(self):
        builder = GrammarBuilder()
        builder.rule("A", ["x"])
        builder.rule("B", ["y"])
        builder.start("A")
        assert builder.build(start="B").start.name == "B"

    def test_unknown_start_rejected(self):
        builder = GrammarBuilder()
        builder.rule("A", ["x"])
        with pytest.raises(GrammarValidationError):
            builder.build(start="Z")

    def test_no_rules_rejected(self):
        with pytest.raises(GrammarValidationError):
            GrammarBuilder().build()


class TestRules:
    def test_epsilon_rule(self):
        grammar = grammar_from_rules([("S", ["a"]), ("S", [])])
        assert any(p.is_epsilon for p in grammar.productions)

    def test_rules_shorthand(self):
        builder = GrammarBuilder()
        builder.rules("S", ["a"], ["b"], [])
        grammar = builder.build()
        assert len(grammar.productions) == 3

    def test_fluent_chaining(self):
        grammar = (
            GrammarBuilder("chained")
            .rule("S", ["a", "S"])
            .rule("S", ["b"])
            .build()
        )
        assert grammar.name == "chained"
        assert len(grammar.productions) == 2

    def test_production_order_preserved(self):
        grammar = grammar_from_rules(
            [("S", ["a"]), ("S", ["b"]), ("S", ["c"])]
        )
        rhs_names = [p.rhs[0].name for p in grammar.productions]
        assert rhs_names == ["a", "b", "c"]


class TestPrec:
    def test_explicit_prec_symbol(self):
        builder = GrammarBuilder()
        builder.right("UMINUS")
        builder.rule("E", ["-", "E"], prec="UMINUS")
        builder.rule("E", ["x"])
        grammar = builder.build()
        production = grammar.productions[0]
        assert production.prec_symbol.name == "UMINUS"

    def test_prec_creates_terminal_if_needed(self):
        builder = GrammarBuilder()
        builder.rule("E", ["-", "E"], prec="PHANTOM")
        builder.rule("E", ["x"])
        grammar = builder.build()
        assert grammar.symbols["PHANTOM"].is_terminal

    def test_prec_nonterminal_rejected(self):
        builder = GrammarBuilder()
        builder.rule("E", ["-", "E"], prec="F")
        builder.rule("F", ["x"])
        builder.rule("E", ["x"])
        with pytest.raises(SymbolError):
            builder.build()

    def test_assoc_declares_terminals(self):
        builder = GrammarBuilder()
        builder.nonassoc("<")
        builder.rule("E", ["E", "<", "E"])
        builder.rule("E", ["x"])
        grammar = builder.build()
        assert grammar.symbols["<"].is_terminal

    def test_build_augment_flag(self):
        grammar = grammar_from_rules([("S", ["a"])], augment=True)
        assert grammar.is_augmented

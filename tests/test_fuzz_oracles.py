"""Unit tests: the shared differential-fuzzing oracle stack."""

import pytest

from repro.fuzz.oracles import (
    ORACLES,
    OracleContext,
    OracleFailure,
    default_oracle_names,
    failure_fingerprint,
    oracle,
    oracle_names,
    run_oracles,
)
from repro.grammars import corpus
from repro.grammars.random_gen import random_grammar

ALL_CORPUS = corpus.names()


class TestRegistry:
    def test_stack_order_is_stable(self):
        assert oracle_names() == [
            "lookahead-equivalence",
            "superset-chain",
            "digraph-identity",
            "table-agreement",
            "sentence-roundtrip",
            "representation-parity",
            "glr-parity",
            "incremental-edit",
        ]

    def test_edit_oracle_is_opt_in(self):
        # It multiplies the per-grammar workload by the edit count, so
        # default campaigns must not pay for it.
        assert "incremental-edit" not in default_oracle_names()
        assert "incremental-edit" in oracle_names()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AssertionError):
            oracle("lookahead-equivalence")(lambda ctx: None)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_oracles(corpus.load("expr"), names=["no-such-oracle"])


class TestFullStackOnCorpus:
    """Every corpus grammar must clear the whole stack (unbounded CLR)."""

    @pytest.mark.parametrize("name", ALL_CORPUS)
    def test_corpus_grammar_agrees(self, name):
        failures = run_oracles(
            corpus.load(name), seed=11, clr_state_bound=0
        )
        assert failures == [], [f.describe() for f in failures]


class TestSentenceRoundTrip:
    """Satellite: the fuzzer's round-trip oracle pinned corpus-wide —
    for every grammar in repro.grammars, generated sentences parse to
    identical derivations under the LALR and canonical-LR tables."""

    @pytest.mark.parametrize("name", ALL_CORPUS)
    def test_lalr_and_clr_derivations_identical(self, name):
        failures = run_oracles(
            corpus.load(name),
            names=["sentence-roundtrip"],
            seed=11,
            sentence_count=6,
            sentence_budget=16,
            clr_state_bound=0,
        )
        assert failures == [], [f.describe() for f in failures]


class TestFailureDetection:
    """The stack actually reports, not just passes: inject breakage."""

    def test_broken_oracle_is_reported(self):
        grammar = corpus.load("expr")

        def broken(ctx):
            return "synthetic disagreement"

        ORACLES["test-broken"] = broken
        try:
            failures = run_oracles(grammar, names=["test-broken"])
        finally:
            del ORACLES["test-broken"]
        assert len(failures) == 1
        failure = failures[0]
        assert failure.oracle == "test-broken"
        assert failure.kind == "disagreement"
        assert "synthetic disagreement" in failure.describe()

    def test_crashing_oracle_is_a_finding_not_an_abort(self):
        grammar = corpus.load("expr")

        def crashes(ctx):
            raise RuntimeError("boom")

        ORACLES["test-crash"] = crashes
        try:
            failures = run_oracles(grammar, names=["test-crash", "lookahead-equivalence"])
        finally:
            del ORACLES["test-crash"]
        # The crash is reported AND the rest of the stack still ran.
        assert [f.kind for f in failures] == ["crash"]
        assert "RuntimeError: boom" in failures[0].detail


class TestOracleContext:
    def test_artifacts_are_cached(self):
        context = OracleContext(corpus.load("expr"))
        assert context.automaton is context.automaton
        assert context.lalr is context.lalr
        assert context.merged is context.merged
        assert context.lalr_table is context.lalr_table

    def test_clr_bound_gates_roundtrip(self):
        grammar = corpus.load("toy_java")  # comfortably over 2 states
        context = OracleContext(grammar, clr_state_bound=2)
        assert not context.clr_in_bounds
        # The oracle must skip (vacuous agreement), not build CLR.
        assert ORACLES["sentence-roundtrip"](context) is None
        assert context._clr_table is None

    def test_zero_bound_disables_the_gate(self):
        context = OracleContext(corpus.load("expr"), clr_state_bound=0)
        assert context.clr_in_bounds

    def test_sentences_are_deterministic_per_seed(self):
        grammar = corpus.load("expr")
        a = OracleContext(grammar, seed=5).sentences()
        b = OracleContext(grammar, seed=5).sentences()
        assert a == b


class TestFingerprint:
    def test_stable_across_processes_and_draws(self):
        # Same reduced grammar text + same oracle => same identity.
        a = failure_fingerprint("lookahead-equivalence", random_grammar(17))
        b = failure_fingerprint("lookahead-equivalence", random_grammar(17))
        assert a == b and len(a) == 64

    def test_differs_by_oracle_and_by_grammar(self):
        grammar = random_grammar(17)
        assert failure_fingerprint("a", grammar) != failure_fingerprint("b", grammar)
        assert failure_fingerprint("a", grammar) != failure_fingerprint(
            "a", random_grammar(18)
        )


class TestIncrementalEditOracle:
    """Satellite: the opt-in edit oracle drives a session through random
    edits and demands bit-identity with a from-scratch build each step."""

    @pytest.mark.parametrize("name", ["expr", "json", "mini_pascal_det"])
    def test_corpus_grammar_runs_clean(self, name):
        failures = run_oracles(
            corpus.load(name), names=["incremental-edit"], seed=7
        )
        assert failures == [], [f.describe() for f in failures]

    @pytest.mark.parametrize("seed", range(5))
    def test_random_grammars_run_clean(self, seed):
        failures = run_oracles(
            random_grammar(seed), names=["incremental-edit"], seed=seed
        )
        assert failures == [], [f.describe() for f in failures]

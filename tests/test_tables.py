"""Unit tests: parse-table construction for all four methods."""

import pytest

from repro.automaton import LR0Automaton, LR1Automaton
from repro.grammar import load_grammar
from repro.grammars import corpus
from repro.tables import (
    ACCEPT,
    Accept,
    Reduce,
    Shift,
    build_clr_table,
    build_lalr_table,
    build_lr0_table,
    build_slr_table,
)


class TestActions:
    def test_shift_equality(self):
        assert Shift(3) == Shift(3)
        assert Shift(3) != Shift(4)
        assert Shift(3) != Reduce(3)

    def test_reduce_equality(self):
        assert Reduce(1) == Reduce(1)
        assert Reduce(1) != Reduce(2)

    def test_accept_singleton_equality(self):
        assert Accept() == ACCEPT

    def test_reprs(self):
        assert repr(Shift(5)) == "s5"
        assert repr(Reduce(2)) == "r2"
        assert repr(ACCEPT) == "acc"

    def test_hashable(self):
        assert len({Shift(1), Shift(1), Reduce(1), ACCEPT}) == 3


class TestLalrTable:
    @pytest.fixture
    def table(self, expr_augmented):
        return build_lalr_table(expr_augmented)

    def test_deterministic(self, table):
        assert table.is_deterministic

    def test_accept_on_eof(self, table):
        grammar = table.grammar
        accept_cells = [
            (state, terminal)
            for state in range(table.n_states)
            for terminal, action in table.actions[state].items()
            if action.kind == "accept"
        ]
        assert accept_cells == [(1, grammar.eof)] or len(accept_cells) == 1
        assert all(t is grammar.eof for _, t in accept_cells)

    def test_initial_state_shifts_first_terminals(self, table):
        grammar = table.grammar
        action = table.action(0, grammar.symbols["id"])
        assert action.kind == "shift"
        assert table.action(0, grammar.symbols["+"]) is None

    def test_gotos_present(self, table):
        grammar = table.grammar
        assert table.goto(0, grammar.symbols["E"]) is not None
        assert table.goto(0, grammar.symbols["T"]) is not None

    def test_no_reduce_by_production_zero(self, table):
        for row in table.actions:
            for action in row.values():
                if action.kind == "reduce":
                    assert action.production != 0

    def test_size_cells_positive(self, table):
        assert table.size_cells() > 0

    def test_format_renders(self, table):
        text = table.format()
        assert "state" in text and "acc" in text

    def test_format_truncates(self, table):
        text = table.format(max_states=2)
        assert "more states" in text


class TestMethodsAgreeOnDeterminism:
    def test_lr0_grammar_all_deterministic(self):
        grammar = corpus.load("lr0_demo").augmented()
        automaton = LR0Automaton(grammar)
        for build in (build_lr0_table, build_slr_table, build_lalr_table):
            assert build(grammar, automaton).is_deterministic

    def test_expr_lr0_conflicted_slr_clean(self):
        grammar = corpus.load("expr").augmented()
        automaton = LR0Automaton(grammar)
        assert not build_lr0_table(grammar, automaton).is_deterministic
        assert build_slr_table(grammar, automaton).is_deterministic

    def test_lalr_not_slr_split(self):
        grammar = corpus.load("lalr_not_slr").augmented()
        automaton = LR0Automaton(grammar)
        assert not build_slr_table(grammar, automaton).is_deterministic
        assert build_lalr_table(grammar, automaton).is_deterministic

    def test_lr1_not_lalr_split(self):
        grammar = corpus.load("lr1_not_lalr").augmented()
        assert not build_lalr_table(grammar).is_deterministic
        assert build_clr_table(grammar).is_deterministic


class TestClrTable:
    def test_lives_on_lr1_states(self):
        grammar = corpus.load("lr1_not_lalr").augmented()
        lr1 = LR1Automaton(grammar)
        table = build_clr_table(grammar, lr1)
        assert table.n_states == len(lr1)

    def test_clr_larger_than_lalr(self):
        grammar = corpus.load("mini_c").augmented()
        clr = build_clr_table(grammar)
        lalr = build_lalr_table(grammar)
        assert clr.n_states > lalr.n_states

    def test_clr_auto_augments(self):
        table = build_clr_table(load_grammar("S -> a"))
        assert table.grammar.is_augmented


class TestConflictRecords:
    def test_shift_reduce_recorded(self):
        grammar = corpus.load("dangling_else").augmented()
        table = build_lalr_table(grammar)
        assert table.conflict_summary()["shift_reduce"] == 1
        (conflict,) = table.unresolved_conflicts
        assert conflict.kind == "shift/reduce"
        assert conflict.terminal.name == "else"
        # yacc default: shift wins.
        assert conflict.chosen.kind == "shift"

    def test_reduce_reduce_recorded(self):
        grammar = corpus.load("lr1_not_lalr").augmented()
        table = build_lalr_table(grammar)
        summary = table.conflict_summary()
        assert summary["reduce_reduce"] == 2
        for conflict in table.unresolved_conflicts:
            # Earlier production wins.
            assert conflict.chosen.production == min(
                a.production for a in conflict.actions
            )

    def test_describe_mentions_state_and_kind(self):
        grammar = corpus.load("dangling_else").augmented()
        table = build_lalr_table(grammar)
        text = table.unresolved_conflicts[0].describe(grammar)
        assert "shift/reduce" in text and "state" in text and "UNRESOLVED" in text

    def test_lr0_reduce_on_every_terminal(self):
        grammar = load_grammar("S -> a").augmented()
        table = build_lr0_table(grammar)
        automaton = LR0Automaton(grammar)
        a = grammar.symbols["a"]
        reduce_state = automaton.goto(0, a)
        row = table.actions[reduce_state]
        assert all(action.kind == "reduce" for action in row.values())
        assert len(row) == len(grammar.terminals)

    def test_accept_vs_reduce_on_cyclic_grammar(self):
        # S =>+ S cycles pit accept against reduce; accept is kept and the
        # conflict reported.
        grammar = load_grammar("S -> S | a").augmented()
        table = build_lalr_table(grammar)
        assert not table.is_deterministic
        kinds = {c.kind for c in table.unresolved_conflicts}
        assert "shift/reduce" in kinds

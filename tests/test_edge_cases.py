"""Edge-case sweep across subsystems: tiny grammars, odd names, extremes."""

import pytest

from repro.automaton import LR0Automaton, LR1Automaton
from repro.baselines import MergedLr1Analysis, PropagationAnalysis
from repro.core import LalrAnalysis
from repro.grammar import load_grammar
from repro.parser import Parser
from repro.tables import build_clr_table, build_lalr_table, build_lr0_table, classify


class TestTinyGrammars:
    def test_single_terminal(self):
        grammar = load_grammar("S -> a").augmented()
        analysis = LalrAnalysis(grammar)
        # One reduce site: S -> a in the post-a state, LA = {$end}.
        ((site, la),) = analysis.lookahead_table().items()
        assert {t.name for t in la} == {"$end"}
        assert Parser(build_lalr_table(grammar)).accepts(["a"])

    def test_epsilon_only_grammar(self):
        grammar = load_grammar("S -> %empty").augmented()
        parser = Parser(build_lalr_table(grammar))
        assert parser.accepts([])
        assert not parser.accepts(["x"]) if "x" in grammar.symbols else True

    def test_epsilon_only_lookahead(self):
        grammar = load_grammar("S -> %empty").augmented()
        analysis = LalrAnalysis(grammar)
        ((_, la),) = analysis.lookahead_table().items()
        assert {t.name for t in la} == {"$end"}

    def test_single_nonterminal_chain(self):
        grammar = load_grammar("A -> B\nB -> C\nC -> x").augmented()
        analysis = LalrAnalysis(grammar)
        for la in analysis.lookahead_table().values():
            assert {t.name for t in la} == {"$end"}

    def test_unary_infinite_language(self):
        grammar = load_grammar("S -> S a | a").augmented()
        parser = Parser(build_lalr_table(grammar))
        assert parser.accepts(["a"] * 100)
        assert not parser.accepts([])

    def test_deep_nesting(self):
        grammar = load_grammar("S -> ( S ) | x").augmented()
        parser = Parser(build_lalr_table(grammar))
        depth = 300
        tokens = ["("] * depth + ["x"] + [")"] * depth
        tree = parser.parse(tokens)
        assert len(list(tree.walk())) == 2 * depth + depth + 2  # sanity: linear


class TestOddSymbolNames:
    def test_unicode_terminal(self):
        grammar = load_grammar("S -> 'λ' a").augmented()
        parser = Parser(build_lalr_table(grammar))
        assert parser.accepts(["λ", "a"])

    def test_dollar_in_name(self):
        grammar = load_grammar("S -> $x").augmented()
        assert grammar.symbols["$x"].is_terminal

    def test_numeric_names(self):
        grammar = load_grammar("S -> 0 1 2").augmented()
        parser = Parser(build_lalr_table(grammar))
        assert parser.accepts(["0", "1", "2"])

    def test_long_names(self):
        name = "t" * 200
        grammar = load_grammar(f"S -> {name}").augmented()
        assert Parser(build_lalr_table(grammar)).accepts([name])


class TestScaleExtremes:
    def test_many_alternatives(self):
        alts = " | ".join(f"k{i}" for i in range(150))
        grammar = load_grammar(f"S -> {alts}").augmented()
        verdict = classify(grammar)
        assert verdict.is_lr0
        parser = Parser(build_lr0_table(grammar))
        assert parser.accepts(["k73"])

    def test_long_rhs(self):
        rhs = " ".join(f"t{i}" for i in range(120))
        grammar = load_grammar(f"S -> {rhs}").augmented()
        parser = Parser(build_lalr_table(grammar))
        assert parser.accepts([f"t{i}" for i in range(120)])
        assert not parser.accepts([f"t{i}" for i in range(119)])

    def test_wide_nullable_block(self):
        parts = " ".join(f"O{i}" for i in range(12))
        rules = "\n".join(f"O{i} -> o{i} | %empty" for i in range(12))
        grammar = load_grammar(f"S -> {parts} end\n{rules}").augmented()
        analysis = LalrAnalysis(grammar)
        assert not analysis.not_lr_k
        parser = Parser(build_lalr_table(grammar))
        assert parser.accepts(["end"])
        assert parser.accepts(["o0", "o5", "o11", "end"])
        assert not parser.accepts(["o5", "o0", "end"])  # order fixed

    def test_equivalence_on_wide_nullable_block(self):
        parts = " ".join(f"O{i}" for i in range(8))
        rules = "\n".join(f"O{i} -> o{i} | %empty" for i in range(8))
        grammar = load_grammar(f"S -> {parts} end\n{rules}").augmented()
        automaton = LR0Automaton(grammar)
        dp = LalrAnalysis(grammar, automaton).lookahead_table()
        assert dp == MergedLr1Analysis(grammar, automaton).lookahead_table()
        assert dp == PropagationAnalysis(grammar, automaton).lookahead_table()


class TestAutomatonEdgeCases:
    def test_lr1_on_epsilon_grammar(self):
        grammar = load_grammar("S -> %empty").augmented()
        lr1 = LR1Automaton(grammar)
        assert len(lr1) >= 2

    def test_clr_table_on_trivial_grammar(self):
        grammar = load_grammar("S -> a").augmented()
        parser = Parser(build_clr_table(grammar))
        assert parser.accepts(["a"])
        assert not parser.accepts([])

    def test_goto_sequence_empty(self):
        automaton = LR0Automaton(load_grammar("S -> a"))
        assert automaton.goto_sequence(0, ()) == 0

    def test_state_format_on_every_state(self):
        automaton = LR0Automaton(load_grammar("S -> a S b | %empty"))
        for state in automaton.states:
            text = automaton.format_state(state.state_id)
            assert f"state {state.state_id}" in text

"""Unit tests: precedence/associativity conflict resolution (yacc rules)."""

import pytest

from repro.grammar import load_grammar
from repro.parser import Parser
from repro.tables import build_lalr_table


def calculator_table(declarations: str):
    grammar = load_grammar(f"""
%token NUM
{declarations}
%start e
%%
e : e '+' e
  | e '*' e
  | NUM
  ;
""").augmented()
    return grammar, build_lalr_table(grammar)


class TestResolution:
    def test_all_resolved_with_declarations(self):
        grammar, table = calculator_table("%left '+'\n%left '*'")
        assert table.is_deterministic
        assert all(c.resolved_by_precedence for c in table.conflicts)

    def test_unresolved_without_declarations(self):
        grammar, table = calculator_table("")
        assert not table.is_deterministic

    def test_left_assoc_prefers_reduce(self):
        grammar, table = calculator_table("%left '+'\n%left '*'")
        plus = grammar.symbols["+"]
        resolved = [
            c for c in table.conflicts if c.terminal is plus and c.resolved_by_precedence
        ]
        same_level = [
            c for c in resolved
            if any(a.kind == "reduce" and
                   grammar.productions[a.production].prec_symbol is plus
                   for a in c.actions)
        ]
        assert same_level
        assert all(c.chosen.kind == "reduce" for c in same_level)

    def test_right_assoc_prefers_shift(self):
        grammar, table = calculator_table("%right '+'\n%right '*'")
        plus = grammar.symbols["+"]
        same_level = [
            c for c in table.conflicts
            if c.terminal is plus and c.resolved_by_precedence
            and any(a.kind == "reduce" and
                    grammar.productions[a.production].prec_symbol is plus
                    for a in c.actions)
        ]
        assert same_level
        assert all(c.chosen.kind == "shift" for c in same_level)

    def test_higher_level_token_shifts_over_lower_reduce(self):
        grammar, table = calculator_table("%left '+'\n%left '*'")
        # In the state after e + e ., lookahead * must shift (its level is
        # higher than the production e -> e + e).
        star = grammar.symbols["*"]
        crossing = [
            c for c in table.conflicts
            if c.terminal is star
            and any(a.kind == "reduce" and
                    grammar.productions[a.production].prec_symbol
                    is grammar.symbols["+"] for a in c.actions)
        ]
        assert crossing
        assert all(c.chosen.kind == "shift" for c in crossing)

    def test_lower_level_token_reduces_over_higher_production(self):
        grammar, table = calculator_table("%left '+'\n%left '*'")
        plus = grammar.symbols["+"]
        crossing = [
            c for c in table.conflicts
            if c.terminal is plus
            and any(a.kind == "reduce" and
                    grammar.productions[a.production].prec_symbol
                    is grammar.symbols["*"] for a in c.actions)
        ]
        assert crossing
        assert all(c.chosen.kind == "reduce" for c in crossing)

    def test_nonassoc_erases_cell(self):
        grammar = load_grammar("""
%token NUM
%nonassoc '<'
%start e
%%
e : e '<' e | NUM ;
""").augmented()
        table = build_lalr_table(grammar)
        assert table.is_deterministic  # resolved (by erasure), not conflicted
        lt = grammar.symbols["<"]
        # NUM < NUM < NUM must now be a syntax error.
        parser = Parser(table)
        num = grammar.symbols["NUM"]
        assert parser.accepts([num, lt, num])
        assert not parser.accepts([num, lt, num, lt, num])


class TestSemanticEffect:
    """Resolution choices must be observable in parse shapes."""

    @staticmethod
    def shape(table, text_tokens):
        parser = Parser(table)
        tree = parser.parse(text_tokens)
        return tree.sexpr()

    def test_left_assoc_groups_left(self):
        grammar, table = calculator_table("%left '+'\n%left '*'")
        sexpr = self.shape(table, ["NUM", "+", "NUM", "+", "NUM"])
        assert sexpr == "(e (e (e NUM) + (e NUM)) + (e NUM))"

    def test_right_assoc_groups_right(self):
        grammar, table = calculator_table("%right '+'\n%right '*'")
        sexpr = self.shape(table, ["NUM", "+", "NUM", "+", "NUM"])
        assert sexpr == "(e (e NUM) + (e (e NUM) + (e NUM)))"

    def test_star_binds_tighter(self):
        grammar, table = calculator_table("%left '+'\n%left '*'")
        sexpr = self.shape(table, ["NUM", "+", "NUM", "*", "NUM"])
        assert sexpr == "(e (e NUM) + (e (e NUM) * (e NUM)))"

    def test_unary_minus_via_percent_prec(self):
        grammar = load_grammar("""
%token NUM
%left '-'
%left '*'
%right UMINUS
%start e
%%
e : e '-' e
  | e '*' e
  | '-' e %prec UMINUS
  | NUM
  ;
""").augmented()
        table = build_lalr_table(grammar)
        assert table.is_deterministic
        # -NUM * NUM parses as (-NUM) * NUM because UMINUS outranks '*'.
        sexpr = self.shape(table, ["-", "NUM", "*", "NUM"])
        assert sexpr == "(e (e - (e NUM)) * (e NUM))"


class TestPrecedenceHash:
    """Regression: Precedence defines __eq__, so it must define a
    consistent __hash__ too (otherwise it is unusable in sets/dicts)."""

    def test_equal_objects_hash_equal(self):
        from repro.grammar.grammar import Assoc, Precedence

        assert Precedence(3, Assoc.LEFT) == Precedence(3, Assoc.LEFT)
        assert hash(Precedence(3, Assoc.LEFT)) == hash(Precedence(3, Assoc.LEFT))

    def test_usable_in_sets(self):
        from repro.grammar.grammar import Assoc, Precedence

        levels = {
            Precedence(1, Assoc.LEFT),
            Precedence(1, Assoc.LEFT),
            Precedence(1, Assoc.RIGHT),
            Precedence(2, Assoc.LEFT),
        }
        assert len(levels) == 3

    def test_distinct_from_unequal(self):
        from repro.grammar.grammar import Assoc, Precedence

        assert Precedence(1, Assoc.LEFT) != Precedence(2, Assoc.LEFT)
        assert Precedence(1, Assoc.LEFT) != Assoc.LEFT

"""Unit tests: conflict counterexample generation."""

import pytest

from repro.automaton import LR0Automaton
from repro.grammar import load_grammar
from repro.grammars import corpus
from repro.tables import build_lalr_table
from repro.tables.explain import (
    explain_conflict,
    explain_table_conflicts,
    symbol_path_to_state,
    terminalise,
)


def states_consulting_lookahead(table, prefix, lookahead):
    """Parse *prefix*, then keep reducing under *lookahead*; return every
    state in which the parser consulted *lookahead* (the conflict state
    must be among them for the witness to be genuine)."""
    grammar = table.grammar
    state_stack = [0]
    position = 0
    consulted = []
    stream = list(prefix) + [lookahead]
    while True:
        token = stream[position] if position < len(stream) else None
        if token is None:
            break
        if token is lookahead and position == len(prefix):
            consulted.append(state_stack[-1])
        action = table.action(state_stack[-1], token)
        if action is None:
            # A conflicted cell's arbitrarily-chosen winner may dead-end
            # after the conflict point; the consultation was still real.
            assert consulted, (position, token.name)
            break
        if action.kind == "shift":
            if position == len(prefix):
                break  # lookahead consumed: conflict point passed
            state_stack.append(action.state)
            position += 1
        elif action.kind == "reduce":
            production = grammar.productions[action.production]
            if production.rhs:
                del state_stack[-len(production.rhs):]
            state_stack.append(table.goto(state_stack[-1], production.lhs))
        else:
            break
    return consulted


class TestPathFinding:
    def test_path_to_start_is_empty(self, expr_automaton):
        assert symbol_path_to_state(expr_automaton, 0) == []

    def test_paths_reach_their_states(self, expr_automaton):
        for state in range(len(expr_automaton)):
            path = symbol_path_to_state(expr_automaton, state)
            assert path is not None
            assert expr_automaton.goto_sequence(0, path) == state

    def test_paths_are_shortest_in_symbols(self, expr_automaton):
        # BFS property: path length == BFS depth; spot-check one state.
        grammar = expr_automaton.grammar
        after_id = expr_automaton.goto(0, grammar.symbols["id"])
        assert symbol_path_to_state(expr_automaton, after_id) == [grammar.symbols["id"]]


class TestTerminalise:
    def test_terminals_pass_through(self, expr_augmented):
        automaton_symbols = [expr_augmented.symbols["id"], expr_augmented.symbols["+"]]
        assert terminalise(expr_augmented, automaton_symbols) == automaton_symbols

    def test_nonterminal_expands_minimally(self, expr_augmented):
        e = expr_augmented.symbols["E"]
        expansion = terminalise(expr_augmented, [e])
        assert [s.name for s in expansion] == ["id"]


class TestExplanations:
    def test_dangling_else_witness(self):
        grammar = corpus.load("dangling_else", augment=True)
        automaton = LR0Automaton(grammar)
        table = build_lalr_table(grammar, automaton)
        (example,) = explain_table_conflicts(table, automaton)
        assert example.lookahead.name == "else"
        words = [s.name for s in example.prefix]
        assert words == ["if", "other"]
        assert "shift/reduce" in example.describe()

    def test_witness_reaches_conflict_state(self):
        for name in ("dangling_else", "lr1_not_lalr", "mini_c"):
            grammar = corpus.load(name, augment=True)
            automaton = LR0Automaton(grammar)
            table = build_lalr_table(grammar, automaton)
            for example in explain_table_conflicts(table, automaton):
                consulted = states_consulting_lookahead(
                    table, example.prefix, example.lookahead
                )
                assert example.conflict.state in consulted, (
                    name, example.describe(), consulted
                )

    def test_witness_lookahead_is_ambiguous_next(self):
        grammar = corpus.load("lr1_not_lalr", augment=True)
        automaton = LR0Automaton(grammar)
        table = build_lalr_table(grammar, automaton)
        examples = explain_table_conflicts(table, automaton)
        assert {e.lookahead.name for e in examples} == {"d", "e"}
        for example in examples:
            # prefix is a valid viable prefix: a/b then c.
            words = [s.name for s in example.prefix]
            assert words in (["a", "c"], ["b", "c"])

    def test_no_conflicts_no_examples(self, expr_augmented):
        table = build_lalr_table(expr_augmented)
        assert explain_table_conflicts(table) == []

    def test_explain_single_conflict_api(self):
        grammar = corpus.load("dangling_else", augment=True)
        automaton = LR0Automaton(grammar)
        table = build_lalr_table(grammar, automaton)
        example = explain_conflict(automaton, table.unresolved_conflicts[0])
        assert example is not None
        assert example.conflict is table.unresolved_conflicts[0]

"""Doc-drift guard: every concrete number/set in docs/ALGORITHM.md is
asserted here against the implementation, so the walkthrough cannot rot."""

import pytest

from repro.automaton import LR0Automaton, LR1Automaton
from repro.core import LalrAnalysis
from repro.grammars import corpus


@pytest.fixture(scope="module")
def lvalue():
    grammar = corpus.load("lvalue", augment=True)
    automaton = LR0Automaton(grammar)
    return grammar, automaton, LalrAnalysis(grammar, automaton)


def names(symbols):
    return sorted(s.name for s in symbols)


class TestAlgorithmDoc:
    def test_state_counts(self, lvalue):
        grammar, automaton, _ = lvalue
        assert len(automaton) == 11
        assert len(LR1Automaton(grammar)) == 15

    def test_seven_nonterminal_transitions(self, lvalue):
        _, _, analysis = lvalue
        rendered = {(p, s.name) for p, s in analysis.relations.transitions}
        assert rendered == {
            (0, "S"), (0, "L"), (0, "R"), (4, "L"), (4, "R"), (8, "L"), (8, "R")
        }

    def test_dr_sets(self, lvalue):
        grammar, _, analysis = lvalue
        sym = grammar.symbols
        assert names(analysis.dr_set((0, sym["S"]))) == ["$end"]
        assert names(analysis.dr_set((0, sym["L"]))) == ["="]
        assert names(analysis.dr_set((4, sym["L"]))) == []

    def test_reads_empty(self, lvalue):
        _, _, analysis = lvalue
        assert all(not e for e in analysis.relations.reads.values())

    def test_includes_edges(self, lvalue):
        grammar, _, analysis = lvalue
        sym = grammar.symbols
        inc = {
            (t[0], t[1].name): {(q, s.name) for q, s in targets}
            for t, targets in analysis.relations.includes.items()
        }
        assert inc[(0, "L")] == {(0, "R")}
        assert inc[(0, "R")] == {(0, "S")}
        assert inc[(8, "R")] == {(0, "S")}
        assert inc[(4, "R")] == {(0, "L"), (4, "L"), (8, "L")}
        assert inc[(4, "L")] == {(4, "R")}
        assert inc[(8, "L")] == {(8, "R")}

    def test_includes_scc(self, lvalue):
        _, _, analysis = lvalue
        assert len(analysis.includes_sccs) == 1
        members = {(p, s.name) for p, s in analysis.includes_sccs[0]}
        assert members == {(4, "L"), (4, "R")}

    def test_follow_sets(self, lvalue):
        grammar, _, analysis = lvalue
        sym = grammar.symbols
        expected = {
            (0, "S"): ["$end"],
            (0, "R"): ["$end"],
            (0, "L"): ["$end", "="],
            (8, "R"): ["$end"],
            (8, "L"): ["$end"],
            (4, "L"): ["$end", "="],
            (4, "R"): ["$end", "="],
        }
        for (state, name), follow in expected.items():
            assert names(analysis.follow_set((state, sym[name]))) == follow, (state, name)

    def test_punchline_la_cells(self, lvalue):
        grammar, _, analysis = lvalue
        r_to_l = next(p for p in grammar.productions if str(p) == "R -> L")
        las = {
            state: names(analysis.lookahead(state, production_index))
            for (state, production_index) in analysis.la_masks
            if production_index == r_to_l.index
        }
        assert las == {2: ["$end"], 6: ["$end", "="]}

    def test_nqlalr_merges_exactly_one_pair(self, lvalue):
        from repro.baselines import NqlalrAnalysis

        grammar, automaton, _ = lvalue
        nq = NqlalrAnalysis(grammar, automaton)
        nodes, transitions = nq.merged_node_count()
        assert (nodes, transitions) == (6, 7)

    def test_toy_java_state_ratio(self):
        grammar = corpus.load("toy_java", augment=True)
        assert len(LR0Automaton(grammar)) == 178
        assert len(LR1Automaton(grammar)) == 722

    def test_section_14_expr_displacement_numbers(self):
        # §14: "the dense 130 cells pack into 75 stored slots (1.73x)".
        from repro.tables import build_lalr_table
        from repro.tables.displace import displace

        table = build_lalr_table(corpus.load("expr", augment=True))
        stats = displace(table).packing_stats()
        assert stats["dense_cells"] == 130
        assert stats["stored_cells"] == 75
        assert round(stats["dense_cells"] / stats["stored_cells"], 2) == 1.73

    def test_section_14_header_layout(self):
        # §14's offset table: 32-byte fixed header + 64-char fingerprint.
        from repro.tables.binfmt import _HEADER

        assert _HEADER.size == 32

    def test_section_17_no_default_states_on_bench_grammars(self):
        # §17: "On the four bench grammars that is currently zero
        # states" — the strict fully-uniform-row guard admits no default
        # reduction on expr/json/mini_c/toy_java.
        from repro.tables import build_lalr_table, specialize

        for name in ("expr", "json", "mini_c", "toy_java"):
            table = build_lalr_table(corpus.load(name, augment=True))
            stats = specialize(table).specialization_stats()
            assert stats["default_states"] == 0, name

    def test_section_17_action_encoding(self):
        # §17 quotes §14's shared encoding: 0 error, (s<<2)|1 shift,
        # (p<<2)|2 reduce, 3 accept.
        from repro.tables.displace import (
            ACTION_ACCEPT,
            ACTION_ERROR,
            ACTION_REDUCE,
            ACTION_SHIFT,
        )

        assert ACTION_ERROR == 0
        assert ACTION_SHIFT == 1
        assert ACTION_REDUCE == 2
        assert ACTION_ACCEPT == 3

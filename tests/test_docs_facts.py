"""Doc-drift guard: every concrete number/set in docs/ALGORITHM.md is
asserted here against the implementation, so the walkthrough cannot rot."""

import pytest

from repro.automaton import LR0Automaton, LR1Automaton
from repro.core import LalrAnalysis
from repro.grammars import corpus


@pytest.fixture(scope="module")
def lvalue():
    grammar = corpus.load("lvalue", augment=True)
    automaton = LR0Automaton(grammar)
    return grammar, automaton, LalrAnalysis(grammar, automaton)


def names(symbols):
    return sorted(s.name for s in symbols)


class TestAlgorithmDoc:
    def test_state_counts(self, lvalue):
        grammar, automaton, _ = lvalue
        assert len(automaton) == 11
        assert len(LR1Automaton(grammar)) == 15

    def test_seven_nonterminal_transitions(self, lvalue):
        _, _, analysis = lvalue
        rendered = {(p, s.name) for p, s in analysis.relations.transitions}
        assert rendered == {
            (0, "S"), (0, "L"), (0, "R"), (4, "L"), (4, "R"), (8, "L"), (8, "R")
        }

    def test_dr_sets(self, lvalue):
        grammar, _, analysis = lvalue
        sym = grammar.symbols
        assert names(analysis.dr_set((0, sym["S"]))) == ["$end"]
        assert names(analysis.dr_set((0, sym["L"]))) == ["="]
        assert names(analysis.dr_set((4, sym["L"]))) == []

    def test_reads_empty(self, lvalue):
        _, _, analysis = lvalue
        assert all(not e for e in analysis.relations.reads.values())

    def test_includes_edges(self, lvalue):
        grammar, _, analysis = lvalue
        sym = grammar.symbols
        inc = {
            (t[0], t[1].name): {(q, s.name) for q, s in targets}
            for t, targets in analysis.relations.includes.items()
        }
        assert inc[(0, "L")] == {(0, "R")}
        assert inc[(0, "R")] == {(0, "S")}
        assert inc[(8, "R")] == {(0, "S")}
        assert inc[(4, "R")] == {(0, "L"), (4, "L"), (8, "L")}
        assert inc[(4, "L")] == {(4, "R")}
        assert inc[(8, "L")] == {(8, "R")}

    def test_includes_scc(self, lvalue):
        _, _, analysis = lvalue
        assert len(analysis.includes_sccs) == 1
        members = {(p, s.name) for p, s in analysis.includes_sccs[0]}
        assert members == {(4, "L"), (4, "R")}

    def test_follow_sets(self, lvalue):
        grammar, _, analysis = lvalue
        sym = grammar.symbols
        expected = {
            (0, "S"): ["$end"],
            (0, "R"): ["$end"],
            (0, "L"): ["$end", "="],
            (8, "R"): ["$end"],
            (8, "L"): ["$end"],
            (4, "L"): ["$end", "="],
            (4, "R"): ["$end", "="],
        }
        for (state, name), follow in expected.items():
            assert names(analysis.follow_set((state, sym[name]))) == follow, (state, name)

    def test_punchline_la_cells(self, lvalue):
        grammar, _, analysis = lvalue
        r_to_l = next(p for p in grammar.productions if str(p) == "R -> L")
        las = {
            state: names(analysis.lookahead(state, production_index))
            for (state, production_index) in analysis.la_masks
            if production_index == r_to_l.index
        }
        assert las == {2: ["$end"], 6: ["$end", "="]}

    def test_nqlalr_merges_exactly_one_pair(self, lvalue):
        from repro.baselines import NqlalrAnalysis

        grammar, automaton, _ = lvalue
        nq = NqlalrAnalysis(grammar, automaton)
        nodes, transitions = nq.merged_node_count()
        assert (nodes, transitions) == (6, 7)

    def test_toy_java_state_ratio(self):
        grammar = corpus.load("toy_java", augment=True)
        assert len(LR0Automaton(grammar)) == 178
        assert len(LR1Automaton(grammar)) == 722

    def test_section_14_expr_displacement_numbers(self):
        # §14: "the dense 130 cells pack into 75 stored slots (1.73x)".
        from repro.tables import build_lalr_table
        from repro.tables.displace import displace

        table = build_lalr_table(corpus.load("expr", augment=True))
        stats = displace(table).packing_stats()
        assert stats["dense_cells"] == 130
        assert stats["stored_cells"] == 75
        assert round(stats["dense_cells"] / stats["stored_cells"], 2) == 1.73

    def test_section_14_header_layout(self):
        # §14's offset table: 32-byte fixed header + 64-char fingerprint.
        from repro.tables.binfmt import _HEADER

        assert _HEADER.size == 32

    def test_section_17_no_default_states_on_bench_grammars(self):
        # §17: "On the four bench grammars that is currently zero
        # states" — the strict fully-uniform-row guard admits no default
        # reduction on expr/json/mini_c/toy_java.
        from repro.tables import build_lalr_table, specialize

        for name in ("expr", "json", "mini_c", "toy_java"):
            table = build_lalr_table(corpus.load(name, augment=True))
            stats = specialize(table).specialization_stats()
            assert stats["default_states"] == 0, name

    def test_section_17_action_encoding(self):
        # §17 quotes §14's shared encoding: 0 error, (s<<2)|1 shift,
        # (p<<2)|2 reduce, 3 accept.
        from repro.tables.displace import (
            ACTION_ACCEPT,
            ACTION_ERROR,
            ACTION_REDUCE,
            ACTION_SHIFT,
        )

        assert ACTION_ERROR == 0
        assert ACTION_SHIFT == 1
        assert ACTION_REDUCE == 2
        assert ACTION_ACCEPT == 3


class TestSection18GlrFacts:
    """§18 + README "General parsing": every concrete claim, pinned."""

    def test_corpus_split_14_deterministic_6_conflicted(self):
        from repro.tables import build_lalr_table

        split = {True: 0, False: 0}
        for name in corpus.names():
            table = build_lalr_table(corpus.load(name, augment=True))
            split[table.is_deterministic] += 1
        assert split[True] == 14
        assert split[False] == 6

    def test_artifact_format_versions(self):
        # §18: "JSON format 4 and binary format 3 carry the full
        # unresolved-conflict log."
        from repro.tables.binfmt import BINARY_FORMAT_VERSION
        from repro.tables.serialize import FORMAT_VERSION

        assert FORMAT_VERSION == 4
        assert BINARY_FORMAT_VERSION == 3

    def test_dangling_else_two_trees_and_shift_reading(self):
        # §18: "if if other else other yields exactly 2 trees (the
        # yacc-default shift reading is one of them)."
        from repro.parser import GlrParser, Parser
        from repro.tables import build_lalr_table

        table = build_lalr_table(corpus.load("dangling_else", augment=True))
        words = "if if other else other".split()
        forest = GlrParser(table).parse_forest(words)
        assert forest.tree_count() == 2
        lalr = Parser(table, allow_conflicts=True).parse(words)
        assert lalr.sexpr() in {tree.sexpr() for tree in forest.trees()}

    def test_catalan_42_trees_for_aaaaaa(self):
        # §18: "S -> S S | a packs the Catalan numbers (42 trees for
        # aaaaaa) into linearly many SPPF nodes."
        from repro.grammar import load_grammar
        from repro.parser import GlrParser
        from repro.tables import build_lalr_table

        grammar = load_grammar("S -> S S | a").augmented()
        forest = GlrParser(build_lalr_table(grammar)).parse_forest(["a"] * 6)
        assert forest.tree_count(limit=100) == 42
        assert forest.stats["sppf_nodes"] < 42

    def test_glr_parity_oracle_in_default_stack(self):
        from repro.fuzz.oracles import default_oracle_names

        assert "glr-parity" in default_oracle_names()

    def test_cyk_budget_phase_name(self):
        # §18: CykRecognizer is budget-governed under phase "cyk".
        from repro.core.budget import Budget, BudgetExceeded
        from repro.parser import CykRecognizer

        with pytest.raises(BudgetExceeded) as info:
            CykRecognizer(corpus.load("palindrome")).accepts(
                ["a"] * 8, budget=Budget(max_tokens=2)
            )
        assert info.value.phase == "cyk"

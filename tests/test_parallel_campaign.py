"""Satellite: parallel campaign/batch determinism.

``repro fuzz run --workers N`` must produce the same report, the same
corpus directory (byte for byte) and the same exit code as
``--workers 1``; likewise ``repro batch --workers N``.  On platforms
without ``fork`` the executor falls back to serial, so these tests hold
everywhere (they just stop exercising true parallelism).
"""

import io
import os
from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.fuzz.corpus import FailureCorpus
from repro.fuzz.oracles import ORACLES

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "grammars"
)


def run(argv):
    captured = io.StringIO()
    with redirect_stdout(captured):
        code = main(argv)
    return code, captured.getvalue()


@pytest.fixture
def tiny_state_oracle():
    """A deterministic oracle that fails on a subset of draws, so the
    dedup/corpus paths get exercised without a real bug."""

    def tiny(ctx):
        if len(ctx.automaton) <= 5:
            return f"synthetic: only {len(ctx.automaton)} states"
        return None

    ORACLES["test-tiny-state"] = tiny
    yield "test-tiny-state"
    del ORACLES["test-tiny-state"]


def corpus_bytes(directory):
    """{relative path: file bytes} for every file under *directory*."""
    snapshot = {}
    for root, _dirs, files in os.walk(directory):
        for name in sorted(files):
            path = os.path.join(root, name)
            with open(path, "rb") as handle:
                snapshot[os.path.relpath(path, directory)] = handle.read()
    return snapshot


class TestCampaignDeterminism:
    def test_reports_match_workers_1_vs_4(self, tiny_state_oracle):
        config = CampaignConfig(
            seed=11, count=60, oracles=[tiny_state_oracle]
        )
        serial = run_campaign(config, workers=1)
        fanned = run_campaign(config, workers=4)
        assert fanned.grammars_run == serial.grammars_run
        assert fanned.per_bucket == serial.per_bucket
        assert fanned.generation_errors == serial.generation_errors
        assert fanned.duplicate_failures == serial.duplicate_failures
        assert [f.fingerprint for f in fanned.failures] == [
            f.fingerprint for f in serial.failures
        ]
        assert [f.describe() for f in fanned.failures] == [
            f.describe() for f in serial.failures
        ]

    def test_corpus_dirs_byte_identical(self, tiny_state_oracle, tmp_path):
        config = CampaignConfig(
            seed=11, count=60, oracles=[tiny_state_oracle]
        )
        serial_dir = tmp_path / "serial"
        fanned_dir = tmp_path / "fanned"
        serial = run_campaign(
            config, corpus=FailureCorpus(str(serial_dir)), workers=1
        )
        fanned = run_campaign(
            config, corpus=FailureCorpus(str(fanned_dir)), workers=4
        )
        assert serial.new_corpus_entries == fanned.new_corpus_entries > 0
        assert corpus_bytes(str(serial_dir)) == corpus_bytes(str(fanned_dir))

    def test_cli_exit_code_and_output_match(self, tiny_state_oracle):
        base = ["fuzz", "run", "--seed", "11", "--count", "40",
                "--oracles", tiny_state_oracle]
        code1, out1 = run(base + ["--workers", "1"])
        code4, out4 = run(base + ["--workers", "4"])
        assert code1 == code4 == 1

        def stable(text):
            return [line for line in text.splitlines()
                    if not line.startswith("elapsed:")]

        assert stable(out1) == stable(out4)

    def test_clean_campaign_parallel_exits_zero(self):
        code, output = run(["fuzz", "run", "--seed", "1", "--count", "20",
                            "--workers", "2"])
        assert code == 0
        assert "verdict: clean" in output


class TestBatchVerb:
    def test_compiles_examples_directory(self):
        code, output = run(["batch", EXAMPLES_DIR])
        assert code == 1  # statements.y has a dangling-else conflict
        assert "calc.y" in output and "lvalue.cfg" in output
        assert "conflicted statements.y" in output

    def test_workers_output_identical(self):
        code1, out1 = run(["batch", EXAMPLES_DIR, "--workers", "1"])
        code2, out2 = run(["batch", EXAMPLES_DIR, "--workers", "2"])
        assert code1 == code2
        assert out1.replace("workers=1", "") == out2.replace("workers=2", "")

    def test_pattern_filters_files(self):
        code, output = run(["batch", EXAMPLES_DIR, "--pattern", "calc.y"])
        assert code == 0
        assert "lvalue.cfg" not in output
        assert "batch: 1 grammars" in output

    def test_missing_directory_is_usage_error(self, capsys):
        code, _ = run(["batch", "/no/such/dir"])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_empty_match_is_usage_error(self, tmp_path, capsys):
        code, _ = run(["batch", str(tmp_path)])
        assert code == 2
        assert "no grammar files" in capsys.readouterr().err

    def test_unreadable_grammar_counts_as_error(self, tmp_path):
        good = tmp_path / "good.y"
        good.write_text("%token a\n%%\ns : a ;\n")
        bad = tmp_path / "bad.y"
        bad.write_text("%% : : garbage ( ;\n")
        code, output = run(["batch", str(tmp_path)])
        assert code == 1
        assert "ERROR bad.y" in output
        assert "1 errors" in output

    def test_cache_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code1, _ = run(["batch", EXAMPLES_DIR, "--pattern", "calc.y",
                        "--cache", cache_dir])
        code2, out2 = run(["batch", EXAMPLES_DIR, "--pattern", "calc.y",
                           "--cache", cache_dir, "--workers", "2"])
        assert code1 == code2 == 0
        assert "17 states" in out2


class TestBatchExitContract:
    """The exit-code contract callers script against: 0 = every grammar
    compiled clean, 1 = any compile failure or conflict (including
    *unexpected* internal errors — one bad grammar is an ERROR row, not
    a traceback that kills the batch), 2 = usage error."""

    def test_all_clean_exits_zero(self, tmp_path):
        (tmp_path / "a.cfg").write_text("S -> a S | a\n")
        (tmp_path / "b.cfg").write_text("E -> E + id | id\n")
        code, output = run(["batch", str(tmp_path)])
        assert code == 0
        assert "2 clean, 0 conflicted, 0 errors" in output

    def test_any_failed_compile_exits_nonzero(self, tmp_path):
        (tmp_path / "good.cfg").write_text("S -> a\n")
        (tmp_path / "broken.cfg").write_text("S -> -> ;;\n")
        code, output = run(["batch", str(tmp_path)])
        assert code == 1
        assert "ERROR broken.cfg" in output
        assert "ok" in output  # the good grammar still compiled and printed

    def test_unexpected_exception_is_an_error_row_not_a_crash(
        self, tmp_path, monkeypatch
    ):
        import repro.cli as cli

        def explode(grammar, **kwargs):
            raise RuntimeError("simulated builder bug")

        monkeypatch.setitem(cli._BUILDERS, "lalr1", explode)
        (tmp_path / "g.cfg").write_text("S -> a\n")
        code, output = run(["batch", str(tmp_path)])
        assert code == 1
        assert "ERROR g.cfg" in output
        assert "internal error (RuntimeError: simulated builder bug)" in output
        assert "1 errors" in output

    def test_usage_errors_exit_two_not_one(self, tmp_path, capsys):
        assert run(["batch", str(tmp_path / "missing")])[0] == 2
        capsys.readouterr()

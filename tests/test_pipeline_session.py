"""Integration tests: the incremental analysis session.

The contract under test is absolute: whatever strategy ``update`` picks
(noop, memo restore, delta-scoped splice, full rebuild), the session's
artifacts afterwards are **bit-identical** to what a fresh session on
the same grammar would hold — same LA masks in the same insertion
order, same table rows, same conflict reports, same automaton shape.
Incremental mode may only ever change latency.
"""

import pytest

from repro.automaton.lr0 import LR0Automaton
from repro.core import instrument
from repro.core.lalr import LalrAnalysis
from repro.grammar import load_grammar
from repro.grammar.delta import DeltaKind, add_production, replace_rhs
from repro.grammars import corpus
from repro.pipeline import AnalysisSession, SESSION_PHASES
from repro.tables.build import build_lalr_table

EXPR = """
E -> E + T | T
T -> T * F | F
F -> ( E ) | id
"""


def assert_matches_scratch(session):
    """The session's artifacts equal a from-scratch build, bit for bit."""
    grammar = session.grammar
    automaton = LR0Automaton(grammar)
    analysis = LalrAnalysis(grammar, automaton)
    table = build_lalr_table(grammar, automaton, la_masks=analysis.la_masks)

    assert len(session.automaton.states) == len(automaton.states)
    for ours, reference in zip(session.automaton.states, automaton.states):
        assert ours.kernel_codes == reference.kernel_codes
        assert list(ours.targets) == list(reference.targets)
        assert ours.reductions == reference.reductions

    # Dict equality *and* key order: downstream consumers (serialisers,
    # diffing tools) see insertion order.
    assert session.analysis.la_masks == analysis.la_masks
    assert list(session.analysis.la_masks) == list(analysis.la_masks)
    assert session.analysis._read_masks == analysis._read_masks
    assert session.analysis._follow_masks == analysis._follow_masks
    assert set(session.analysis.reads_sccs) == set(analysis.reads_sccs)
    assert set(session.analysis.includes_sccs) == set(analysis.includes_sccs)

    assert session.table.actions == table.actions
    assert session.table.gotos == table.gotos
    assert session.table.action_rows == table.action_rows
    assert [list(row) for row in session.table.goto_rows] == [
        list(row) for row in table.goto_rows
    ]
    assert [c.describe(grammar) for c in session.table.conflicts] == [
        c.describe(grammar) for c in table.conflicts
    ]


@pytest.fixture
def grammar():
    return load_grammar(EXPR, name="expr").augmented()


class TestStrategies:
    def test_identical_grammar_is_a_noop(self, grammar):
        session = AnalysisSession(grammar)
        report = session.update(grammar)
        assert report.strategy == "noop"
        assert report.kind == DeltaKind.IDENTICAL

    def test_rhs_edit_splices(self, grammar):
        session = AnalysisSession(grammar)
        report = session.update(replace_rhs(grammar, 1, ["E", "*", "T"]))
        assert report.strategy == "splice"
        assert not report.fell_back
        assert 0 < report.dirty_states < report.total_states
        assert_matches_scratch(session)

    def test_structural_edit_rebuilds(self, grammar):
        session = AnalysisSession(grammar)
        report = session.update(add_production(grammar, "F", ["id", "id"]))
        assert report.strategy == "rebuild"
        assert report.kind == DeltaKind.ADD_REMOVE
        assert not report.fell_back
        assert_matches_scratch(session)

    def test_guard_failure_falls_back_to_rebuild(self, grammar):
        # E -> E ) T re-shapes the automaton: the splice must detect it
        # and rebuild rather than produce a wrong table.
        session = AnalysisSession(grammar)
        report = session.update(replace_rhs(grammar, 1, ["E", ")", "T"]))
        assert report.strategy == "rebuild"
        assert report.kind == DeltaKind.RHS
        assert report.fell_back
        assert_matches_scratch(session)

    def test_memo_restores_the_exact_bundle(self, grammar):
        session = AnalysisSession(grammar)
        original = session.artifacts
        edited = replace_rhs(grammar, 1, ["E", "*", "T"])
        session.update(edited)
        report = session.update(grammar)
        assert report.strategy == "memo"
        assert session.artifacts is original

    def test_memo_disabled_splices_both_ways(self, grammar):
        session = AnalysisSession(grammar, memo_size=0)
        edited = replace_rhs(grammar, 1, ["E", "*", "T"])
        assert session.update(edited).strategy == "splice"
        assert session.update(grammar).strategy == "splice"
        assert_matches_scratch(session)

    def test_describe_mentions_the_dirty_region(self, grammar):
        session = AnalysisSession(grammar)
        report = session.update(replace_rhs(grammar, 1, ["E", "*", "T"]))
        assert "states recomputed" in report.describe()


class TestCounters:
    def test_splice_counts_reuse_not_recompute(self, grammar):
        session = AnalysisSession(grammar)
        edited = replace_rhs(grammar, 1, ["E", "*", "T"])
        with instrument.profile() as collector:
            session.update(edited)
        assert collector.counters.get("phase.reuse") == len(SESSION_PHASES)
        assert not collector.counters.get("phase.recompute")
        assert not collector.counters.get("phase.fallback")

    def test_rebuild_counts_recompute(self, grammar):
        session = AnalysisSession(grammar)
        edited = add_production(grammar, "F", ["id", "id"])
        with instrument.profile() as collector:
            session.update(edited)
        assert collector.counters.get("phase.recompute") == len(SESSION_PHASES)
        assert not collector.counters.get("phase.fallback")

    def test_fallback_is_counted(self, grammar):
        session = AnalysisSession(grammar)
        edited = replace_rhs(grammar, 1, ["E", ")", "T"])
        with instrument.profile() as collector:
            session.update(edited)
        assert collector.counters.get("phase.fallback") == 1
        assert collector.counters.get("phase.recompute") == len(SESSION_PHASES)


class TestCorpusEditChains:
    """Chained edits across real grammars stay bit-identical throughout."""

    @pytest.mark.parametrize("name", ["expr", "json", "mini_pascal_det"])
    def test_edit_chain_matches_scratch(self, name):
        base = corpus.load(name).augmented()
        session = AnalysisSession(base)
        terminals = [t for t in base.terminals if t is not base.eof]
        current = base
        spliced = 0
        for index, production in enumerate(base.productions):
            if index == 0 or not production.rhs:
                continue
            for position, symbol in enumerate(production.rhs):
                if not symbol.is_terminal:
                    continue
                edited = replace_rhs(
                    current,
                    index,
                    tuple(
                        terminals[0] if i == position else s
                        for i, s in enumerate(production.rhs)
                    ),
                )
                report = session.update(edited)
                assert report.strategy in ("splice", "rebuild", "noop")
                spliced += report.strategy == "splice"
                assert_matches_scratch(session)
                current = edited
                break  # one terminal position per production keeps this fast
        assert session.updates > 0

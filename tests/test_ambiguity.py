"""Unit + integration tests: bounded ambiguity detection."""

import pytest

from repro.analysis.ambiguity import (
    AmbiguityWitness,
    TreeCounter,
    ambiguity_report,
    find_ambiguity,
)
from repro.grammar import GrammarValidationError, load_grammar
from repro.grammars import corpus
from repro.tables import GrammarClass, classify


class TestTreeCounter:
    def test_unambiguous_sentence_counts_one(self):
        counter = TreeCounter(load_grammar("S -> a S b | c"))
        assert counter.count("a c b".split()) == 1
        assert counter.count(["c"]) == 1

    def test_non_sentence_counts_zero(self):
        counter = TreeCounter(load_grammar("S -> a S b | c"))
        assert counter.count("a c".split()) == 0
        assert counter.count([]) == 0
        assert counter.count(["zzz"]) == 0

    def test_classic_double_count(self):
        # S -> S S | a: 'a a a' has 2 trees (left- and right-nested).
        counter = TreeCounter(load_grammar("S -> S S | a"))
        assert counter.count(["a"]) == 1
        assert counter.count(["a", "a"]) == 1
        assert counter.count(["a", "a", "a"]) == 2
        # Catalan numbers: 5 trees for 4 leaves.
        assert counter.count(["a"] * 4) == 5

    def test_ambiguous_expression_grammar(self):
        counter = TreeCounter(load_grammar("E -> E + E | id"))
        assert counter.count("id + id".split()) == 1
        assert counter.count("id + id + id".split()) == 2

    def test_epsilon_sentence(self):
        counter = TreeCounter(load_grammar("S -> a | %empty"))
        assert counter.count([]) == 1

    def test_nullable_double_derivation(self):
        # S -> A A; A -> a | %empty: 'a' derives via (a, eps) and (eps, a).
        counter = TreeCounter(load_grammar("S -> A A\nA -> a | %empty"))
        assert counter.count(["a"]) == 2

    def test_cyclic_grammar_rejected(self):
        with pytest.raises(GrammarValidationError, match="cycle"):
            TreeCounter(load_grammar("A -> B | a\nB -> A"))

    def test_augmented_rejected(self):
        with pytest.raises(GrammarValidationError):
            TreeCounter(load_grammar("S -> a").augmented())


class TestFindAmbiguity:
    def test_dangling_else_witness(self):
        grammar = corpus.load("dangling_else")
        witness = find_ambiguity(grammar, 6)
        assert witness is not None
        assert witness.tree_count >= 2
        # The witness must truly be ambiguous per the counter.
        assert TreeCounter(grammar).count(witness.sentence) == witness.tree_count

    def test_witness_is_shortest(self):
        grammar = load_grammar("S -> S S | a")
        witness = find_ambiguity(grammar, 5)
        assert len(witness.sentence) == 3

    def test_unambiguous_grammar_none(self):
        assert find_ambiguity(load_grammar("S -> a S b | c"), 7) is None

    def test_palindrome_unambiguous(self):
        # Not LR(1), yet unambiguous: the counting oracle can tell.
        assert find_ambiguity(corpus.load("palindrome"), 6) is None

    def test_expr_prec_raw_grammar_ambiguous(self):
        witness = find_ambiguity(corpus.load("expr_prec"), 5)
        assert witness is not None


class TestReport:
    def test_cyclic_verdict(self):
        report = ambiguity_report(load_grammar("A -> B | a\nB -> A"))
        assert report.verdict == "cyclic"
        assert report.witness is None

    def test_ambiguous_verdict(self):
        report = ambiguity_report(corpus.load("dangling_else"), 6)
        assert report.verdict == "ambiguous"
        assert isinstance(report.witness, AmbiguityWitness)
        assert report.witness.words()

    def test_unambiguous_within_verdict(self):
        report = ambiguity_report(corpus.load("expr"), 5)
        assert report.verdict == "unambiguous-within"
        assert report.sentences_checked > 0


class TestCorpusConsistency:
    """Ambiguity oracle vs the LR classification, across the corpus."""

    @pytest.mark.parametrize(
        "name", [e.name for e in corpus.all_entries() if "pathological" not in e.tags]
    )
    def test_lr_grammars_are_unambiguous_within_bound(self, name):
        grammar = corpus.load(name)
        verdict = classify(grammar)
        if verdict.grammar_class is GrammarClass.NOT_LR1:
            return  # may be ambiguous or deterministic-hard; no obligation
        bound = 5 if len(grammar.productions) < 40 else 3
        report = ambiguity_report(grammar, bound)
        # Every LR(1) grammar is unambiguous — the oracle must agree.
        assert report.verdict == "unambiguous-within", name

    def test_ambiguous_entries_have_witnesses(self):
        # (mini_pascal is also ambiguous, but its shortest witness carries
        # the whole program/begin/end scaffolding and exceeds any bound
        # this test could enumerate quickly.)
        for name in ("dangling_else", "expr_prec"):
            grammar = corpus.load(name)
            report = ambiguity_report(grammar, 7)
            assert report.verdict == "ambiguous", name

    def test_bounded_verdict_is_not_a_proof_beyond_bound(self):
        # mini_pascal IS ambiguous, but within tiny bounds it looks clean:
        # the report's verdict name says "-within" for exactly this reason.
        report = ambiguity_report(corpus.load("mini_pascal"), 7)
        assert report.verdict == "unambiguous-within"
        assert report.sentences_checked == 2  # the bound sees almost nothing

"""The service's functional contract over the whole grammar corpus.

One live server (a :class:`ServiceThread` on an ephemeral port, backed
by a real on-disk table cache) serves every test in this module; the
clients speak actual HTTP.  The load-bearing assertion throughout is
**bit-identity**: a served response body must equal
``canonical_json(<pure result function>(...))`` byte for byte — for
every corpus grammar, and under concurrent clients.  The service path
additionally round-trips tables through the shared artifact store, so
identity here also proves cache serialization fidelity.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis.derive import SentenceGenerator
from repro.grammars import corpus
from repro.service import (
    Client,
    ServiceThread,
    analyze_result,
    canonical_json,
    compile_result,
    parse_result,
)

CORPUS = corpus.names()


def corpus_tokens(name: str):
    """A deterministic input for *name*: its seed-0 generated sentence,
    or a single ``id`` token for grammars the generator cannot reach."""
    grammar = corpus.load(name)
    sentences = SentenceGenerator(grammar, seed=0).sentences(1, budget=30)
    if sentences:
        return [symbol.name for symbol in sentences[0]]
    return ["id"]


def _engine_for(name: str) -> str:
    """glr for conflicted corpus grammars (the lr engine refuses them)."""
    from repro.tables import build_lalr_table

    table = build_lalr_table(corpus.load(name).augmented())
    return "lr" if table.is_deterministic else "glr"


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("service-cache")
    with ServiceThread(cache_dir=str(cache_dir), hot_capacity=8) as thread:
        yield thread


@pytest.fixture(scope="module")
def client(service):
    return Client(service.port)


def poll_job(client, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        body = client.get(f"/jobs/{job_id}").json()
        if body["status"] in ("done", "failed"):
            return body
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class TestEndpointsMatchPipeline:
    """Every corpus grammar, every synchronous endpoint, byte for byte."""

    @pytest.mark.parametrize("name", CORPUS)
    def test_compile_is_bit_identical(self, client, name):
        response = client.post("/compile", {"corpus": name})
        assert response.status == 200
        expected = canonical_json(compile_result(corpus.load(name), "lalr1"))
        assert response.body == expected

    @pytest.mark.parametrize("name", CORPUS)
    def test_parse_is_bit_identical(self, client, name):
        # Conflicted grammars are served by the GLR engine (the lr
        # engine 422s on them — pinned below); deterministic ones by
        # the default deterministic hot loop.
        engine = _engine_for(name)
        tokens = corpus_tokens(name)
        response = client.post(
            "/parse",
            {"corpus": name, "input": tokens, "tree": True, "engine": engine},
        )
        assert response.status == 200
        expected = canonical_json(
            parse_result(
                corpus.load(name), tokens, "lalr1", tree=True, engine=engine
            )
        )
        assert response.body == expected

    @pytest.mark.parametrize("name", CORPUS)
    def test_glr_engine_serves_every_grammar(self, client, name):
        tokens = corpus_tokens(name)
        response = client.post(
            "/parse", {"corpus": name, "input": tokens, "engine": "glr"}
        )
        assert response.status == 200
        body = response.json()
        assert body["valid"] in (True, False)
        if body["valid"]:
            assert body["trees"] >= 1

    def test_lr_engine_rejects_conflicted_table(self, client):
        response = client.post(
            "/parse", {"corpus": "dangling_else", "input": ["other"]}
        )
        assert response.status == 422
        assert response.json()["error"] == "conflicted_table"

    def test_unknown_engine_rejected(self, client):
        response = client.post(
            "/parse",
            {"corpus": "expr", "input": ["id"], "engine": "turbo"},
        )
        assert response.status == 400
        assert response.json()["error"] == "bad_engine"

    @pytest.mark.parametrize("name", CORPUS)
    def test_analyze_is_bit_identical(self, client, name):
        response = client.post("/analyze", {"corpus": name})
        assert response.status == 200
        expected = canonical_json(analyze_result(corpus.load(name)))
        assert response.body == expected

    def test_compile_methods_differ_but_each_matches(self, client):
        for method in ("lr0", "slr1", "lalr1", "clr1"):
            response = client.post("/compile", {"corpus": "expr", "method": method})
            expected = canonical_json(compile_result(corpus.load("expr"), method))
            assert response.body == expected

    def test_inline_grammar_text_matches_corpus(self, client):
        entry = corpus.entry("expr")
        response = client.post(
            "/compile", {"grammar": entry.text, "name": "expr"}
        )
        assert response.body == canonical_json(
            compile_result(corpus.load("expr"), "lalr1")
        )


class TestConcurrentClients:
    """Many clients, interleaved endpoints — answers never change."""

    def test_concurrent_compiles_are_bit_identical(self, service):
        names = CORPUS * 3
        expected = {
            name: canonical_json(compile_result(corpus.load(name), "lalr1"))
            for name in CORPUS
        }

        def hit(name):
            response = Client(service.port).post("/compile", {"corpus": name})
            return name, response.status, response.body

        with ThreadPoolExecutor(max_workers=8) as pool:
            for name, status, body in pool.map(hit, names):
                assert status == 200
                assert body == expected[name]

    def test_mixed_endpoints_under_concurrency(self, service):
        picks = ["expr", "json", "dangling_else", "lr0_demo", "mini_pascal"]
        tokens = {name: corpus_tokens(name) for name in picks}
        engines = {name: _engine_for(name) for name in picks}
        expected = {}
        for name in picks:
            grammar = corpus.load(name)
            expected[("compile", name)] = canonical_json(
                compile_result(grammar, "lalr1")
            )
            expected[("parse", name)] = canonical_json(
                parse_result(
                    corpus.load(name), tokens[name], "lalr1",
                    engine=engines[name],
                )
            )

        def hit(task):
            kind, name = task
            client = Client(service.port)
            if kind == "compile":
                response = client.post("/compile", {"corpus": name})
            else:
                response = client.post(
                    "/parse",
                    {"corpus": name, "input": tokens[name],
                     "engine": engines[name]},
                )
            return task, response.body

        tasks = [(kind, name) for name in picks for kind in ("compile", "parse")] * 2
        with ThreadPoolExecutor(max_workers=6) as pool:
            for task, body in pool.map(hit, tasks):
                assert body == expected[task]


class TestJobsAndSessions:
    def test_fuzz_job_roundtrip(self, client):
        response = client.post("/fuzz", {"seed": 11, "count": 5})
        assert response.status == 202
        submitted = response.json()
        assert submitted["status"] in ("queued", "running", "done")
        body = poll_job(client, submitted["job"])
        assert body["status"] == "done"
        assert body["result"]["grammars_run"] == 5
        assert body["result"]["seed"] == 11

    def test_batch_job_graduates_repro_batch(self, client):
        specs = ["corpus:expr", "corpus:dangling_else", {"grammar": "S -> ;"}]
        response = client.post("/compile", {"batch": specs, "workers": 2})
        assert response.status == 202
        body = poll_job(client, response.json()["job"])
        result = body["result"]
        assert result["total"] == 3
        assert result["errors"] == 1  # the unparsable inline grammar
        assert result["conflicted"] == 1  # dangling_else
        assert result["clean"] == 1
        assert result["ok"] is False

    def test_async_compile_job(self, client):
        response = client.post("/compile", {"corpus": "json", "async": True})
        assert response.status == 202
        body = poll_job(client, response.json()["job"])
        assert body["status"] == "done"
        assert body["result"] == compile_result(corpus.load("json"), "lalr1")

    def test_unknown_job_is_404(self, client):
        response = client.get("/jobs/job-999999")
        assert response.status == 404
        assert response.json()["error"] == "unknown_job"

    def test_session_affinity_takes_incremental_paths(self, client):
        entry = corpus.entry("expr")
        opened = client.post(
            "/analyze", {"session": "affinity", "grammar": entry.text}
        )
        assert opened.status == 200
        # E -> E * T is the canonical spliceable edit on the expression
        # grammar (production 1 of the augmented grammar).
        edit = {"op": "set", "index": 1, "rhs": "E * T"}
        first = client.post(
            "/analyze", {"session": "affinity", "edits": [edit]}
        ).json()
        assert first["strategies"]["splice"] == 1
        assert len(first["updates"]) == 1
        # The identical edit again: the session sees an identical grammar.
        second = client.post(
            "/analyze", {"session": "affinity", "edits": [edit]}
        ).json()
        assert second["strategies"]["noop"] == 1
        assert second["strategies"]["splice"] == 1

    def test_unknown_session_is_404(self, client):
        response = client.post("/analyze", {"session": "never-opened"})
        assert response.status == 404
        assert response.json()["error"] == "unknown_session"


class TestMetricsAndErrors:
    def test_metrics_text_exposes_instrument_counters(self, client):
        client.post("/compile", {"corpus": "expr"})
        text = client.get("/metrics").body.decode("utf-8")
        lines = dict(
            line.rsplit(" ", 1) for line in text.strip().splitlines()
        )
        assert int(lines["repro_service_requests"]) > 0
        # Pipeline-phase counters flow through per-request profiling.
        assert "repro_lr0_states" in lines
        assert "repro_cache_stores" in lines

    def test_metrics_json_sections(self, client):
        client.post("/compile", {"corpus": "expr"})
        body = client.get("/metrics?format=json").json()
        assert set(body) >= {"counters", "cache", "jobs", "sessions"}
        assert body["cache"]["stores"] >= 1
        assert body["jobs"]["capacity"] == 16
        assert body["counters"]["service.requests"] >= 1

    def test_metrics_requests_counter_is_monotonic(self, client):
        before = client.get("/metrics?format=json").json()["counters"]
        client.get("/healthz")
        after = client.get("/metrics?format=json").json()["counters"]
        assert after["service.requests"] >= before["service.requests"] + 2

    def test_repeat_compile_hits_the_hot_lru(self, client):
        for _ in range(3):
            client.post("/compile", {"corpus": "lvalue"})
        counters = client.get("/metrics?format=json").json()["cache"]
        assert counters["hot_hits"] >= 2

    def test_unknown_endpoint_is_404(self, client):
        response = client.get("/definitely-not-an-endpoint")
        assert response.status == 404
        assert response.json()["error"] == "not_found"

    def test_wrong_method_is_405(self, client):
        assert client.get("/compile").status == 405
        assert client.post("/metrics", {}).status == 405

    def test_bad_json_is_400(self, client):
        response = client.request(
            "POST", "/compile", None, {"Content-Type": "application/json"}
        )
        # empty body parses as {} -> missing grammar, still a clean 400
        assert response.status == 400
        assert response.json()["error"] == "missing_grammar"

    def test_unknown_corpus_is_422(self, client):
        response = client.post("/compile", {"corpus": "no-such-grammar"})
        assert response.status == 422
        assert response.json()["error"] == "unknown_corpus"

    def test_unparsable_grammar_is_422(self, client):
        response = client.post("/compile", {"grammar": "S -> ;;; ->"})
        assert response.status == 422
        assert response.json()["error"] == "grammar_error"

    def test_healthz_and_index(self, client):
        assert client.get("/healthz").json() == {"ok": True}
        index = client.get("/").json()
        assert "POST /compile" in index["endpoints"]

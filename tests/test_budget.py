"""Tests for cooperative resource governance (repro.core.budget).

One Budget instance governs one request end to end; these tests pin
down each limit (states, digraph steps, tokens, parse steps, wall
clock) at the layer that charges it, plus the diagnostics carried by
BudgetExceeded, the instrument counters, the parallel executor's
deadline enforcement, and the CLI surface.
"""

import io
import time
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.automaton import LR0Automaton
from repro.core import Budget, BudgetExceeded, LalrAnalysis, instrument
from repro.core.parallel import fork_available, parallel_imap
from repro.grammar import load_grammar
from repro.grammars import corpus, state_explosion_family
from repro.parser import Parser
from repro.tables import build_lalr_table


def expr():
    return corpus.load("expr", augment=True)


class TestBudgetBasics:
    def test_no_limits_is_a_pass_through(self):
        budget = Budget()
        budget.enter_phase("anything")
        budget.charge_states(10**9)
        budget.charge_digraph(10**9)
        budget.charge_tokens(10**9)
        for _ in range(200):
            budget.charge_parse_step()
            budget.tick()
        assert budget.remaining() is None
        assert not budget.expired()
        assert not budget.exceeded

    @pytest.mark.parametrize("kwargs", [
        {"timeout": -1},
        {"max_states": 0},
        {"max_digraph_steps": 0},
        {"max_tokens": -3},
        {"max_parse_steps": 0},
    ])
    def test_limits_validated(self, kwargs):
        with pytest.raises(ValueError):
            Budget(**kwargs)

    def test_remaining_and_elapsed(self):
        budget = Budget(timeout=100.0)
        assert 0.0 <= budget.elapsed() < 10.0
        assert 0.0 < budget.remaining() <= 100.0
        assert Budget().remaining() is None

    def test_expired_poll_does_not_raise(self):
        assert Budget(timeout=0.0).expired()
        assert not Budget().expired()
        assert not Budget(timeout=60.0).expired()

    def test_exception_carries_diagnostics(self):
        budget = Budget(max_states=3)
        budget.enter_phase("lr0")
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_states(4)
        error = info.value
        assert error.phase == "lr0"
        assert error.resource == "max_states"
        assert error.limit == 3
        assert error.elapsed >= 0.0
        assert error.progress["states"] == 4
        assert "phase 'lr0'" in error.describe()
        assert "max_states limit of 3" in error.describe()
        assert budget.exceeded


class TestAutomatonBudget:
    def test_max_states_caps_lr0_construction(self):
        with pytest.raises(BudgetExceeded) as info:
            LR0Automaton(expr(), budget=Budget(max_states=5))
        assert info.value.resource == "max_states"
        assert info.value.phase == "lr0"
        assert info.value.progress["states"] == 6

    def test_generous_cap_builds_identically(self):
        governed = LR0Automaton(expr(), budget=Budget(max_states=10_000))
        plain = LR0Automaton(expr())
        assert len(governed.states) == len(plain.states)

    def test_timeout_stops_pathological_grammar_promptly(self):
        # The tier-1 timeout-regression check: an exponential-state
        # grammar must raise within the deadline's order of magnitude,
        # not run the build to completion (~2^18 states here).
        grammar = state_explosion_family(18).augmented()
        start = time.perf_counter()
        with pytest.raises(BudgetExceeded) as info:
            LR0Automaton(grammar, budget=Budget(timeout=0.05))
        wall = time.perf_counter() - start
        assert info.value.resource == "timeout"
        assert info.value.phase == "lr0"
        assert info.value.progress["states"] > 0  # partial progress reported
        assert wall < 2.0  # strided clock checks stay responsive


class TestAnalysisBudget:
    def test_max_digraph_steps(self):
        with pytest.raises(BudgetExceeded) as info:
            LalrAnalysis(expr(), budget=Budget(max_digraph_steps=5))
        assert info.value.resource == "max_digraph_steps"
        assert info.value.phase.startswith("digraph.")

    def test_generous_budget_matches_ungoverned_lookaheads(self):
        grammar = expr()  # symbols are interned per load: share the grammar
        governed = LalrAnalysis(grammar, budget=Budget(timeout=60.0,
                                                       max_states=10_000))
        plain = LalrAnalysis(grammar)
        assert governed.lookahead_table() == plain.lookahead_table()

    def test_table_build_respects_budget(self):
        with pytest.raises(BudgetExceeded):
            build_lalr_table(expr(), budget=Budget(max_states=3))
        governed = build_lalr_table(expr(), budget=Budget(max_states=10_000))
        assert governed.n_states == build_lalr_table(expr()).n_states


class TestEngineBudget:
    @pytest.fixture
    def parser(self):
        grammar = load_grammar("S -> S a | a").augmented()
        return Parser(build_lalr_table(grammar))

    def test_max_tokens_guards_unbounded_streams(self, parser):
        def endless():
            while True:
                yield "a"

        with pytest.raises(BudgetExceeded) as info:
            parser.parse(endless(), budget=Budget(max_tokens=100))
        assert info.value.resource == "max_tokens"
        assert info.value.phase == "parse"
        assert info.value.progress["tokens"] == 101

    def test_max_parse_steps(self, parser):
        with pytest.raises(BudgetExceeded) as info:
            parser.parse(["a"] * 50, budget=Budget(max_parse_steps=10))
        assert info.value.resource == "max_parse_steps"

    def test_generous_budget_parses_normally(self, parser):
        budget = Budget(max_tokens=100, max_parse_steps=1000, timeout=60.0)
        tree = parser.parse(["a", "a", "a"], budget=budget)
        assert tree is not None
        assert budget.tokens == 3


class TestParallelBudget:
    def test_serial_path_stops_at_deadline(self):
        seen = list(parallel_imap(abs, [1, -2, 3], workers=1,
                                  budget=Budget(timeout=0.0)))
        assert seen == []

    def test_serial_path_without_budget_unchanged(self):
        assert list(parallel_imap(abs, [1, -2, 3], workers=1)) == [1, 2, 3]

    @pytest.mark.skipif(not fork_available(), reason="needs fork workers")
    def test_deadline_cancels_in_flight_workers(self):
        start = time.perf_counter()
        seen = list(parallel_imap(_sleep_and_return, [0.0, 30.0, 30.0],
                                  workers=2, budget=Budget(timeout=0.5)))
        wall = time.perf_counter() - start
        # The 30s sleepers must be terminated, not waited for.
        assert wall < 10.0
        assert seen in ([], [0.0])


def _sleep_and_return(seconds):
    """Module-level so the fork pool can pickle it."""
    time.sleep(seconds)
    return seconds


class TestCampaignBudget:
    def test_sweep_stops_early_and_reports_it(self):
        from repro.fuzz import CampaignConfig, run_campaign

        config = CampaignConfig(seed=3, count=100_000, time_budget=0.2)
        start = time.perf_counter()
        report = run_campaign(config)
        wall = time.perf_counter() - start
        assert report.stopped_early
        assert report.grammars_run < config.count
        assert wall < 30.0
        assert any("stopped early" in line for line in report.summary_lines())


class TestInstrumentCounters:
    def test_budget_checks_published_under_profile(self):
        with instrument.profile() as collector:
            build_lalr_table(expr(), budget=Budget(max_states=10_000))
        assert collector.counters.get("budget.checks", 0) > 0
        assert "budget.exceeded" not in collector.counters

    def test_exceeded_counter(self):
        with instrument.profile() as collector:
            with pytest.raises(BudgetExceeded):
                build_lalr_table(expr(), budget=Budget(max_states=3))
        assert collector.counters.get("budget.exceeded") == 1

    def test_no_budget_publishes_nothing(self):
        with instrument.profile() as collector:
            build_lalr_table(expr())
        assert "budget.checks" not in collector.counters


class TestCliBudget:
    def run(self, argv):
        from repro.cli import main

        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            code = main(argv)
        return code, out.getvalue(), err.getvalue()

    def test_max_states_flag(self):
        code, _, err = self.run(["table", "corpus:expr", "--max-states", "5"])
        assert code == 1
        assert "budget exceeded" in err
        assert "phase 'lr0'" in err and "max_states limit of 5" in err
        assert "states:" in err  # partial progress is reported

    def test_timeout_flag(self):
        code, _, err = self.run(["la", "corpus:expr", "--timeout", "1e-9"])
        assert code == 1
        assert "timeout limit" in err

    def test_generous_budget_is_invisible(self):
        code, out, err = self.run(
            ["pipeline", "corpus:expr", "--timeout", "60",
             "--max-states", "10000", "--input", "id + id"]
        )
        assert code == 0
        assert "input: valid" in out
        assert err == ""

    def test_profile_shows_governance_counters(self):
        code, out, _ = self.run(
            ["table", "corpus:expr", "--max-states", "10000", "--profile"]
        )
        assert code == 0
        assert "budget.checks" in out


class TestBenchBudget:
    def test_pathological_grammar_reports_not_hangs(self, tmp_path):
        from repro.bench.harness import main as bench_main

        out = io.StringIO()
        with redirect_stdout(out):
            code = bench_main(["corpus:expr", "--repeats", "1",
                               "--budget", "1e-9"])
        assert code == 0
        assert "budget exceeded" in out.getvalue()

    def test_budget_marker_rows_surface_as_drift(self):
        from repro.bench.harness import compare_baseline

        baseline = {"grammars": {"g": {"lookahead_seconds": 0.1,
                                       "phases": {}, "counters": {}}}}
        current = {"grammars": {"g": {"budget_exceeded": "blew the deadline"}}}
        rows, drift = compare_baseline(current, baseline)
        assert rows == []
        assert drift == ["g: blew the deadline"]

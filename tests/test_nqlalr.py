"""Unit tests: the NQLALR(1) baseline (paper §7 — why the shortcut fails)."""

import pytest

from repro.automaton import LR0Automaton
from repro.baselines.nqlalr import NqlalrAnalysis, nqlalr_overapproximation_sites
from repro.core import LalrAnalysis
from repro.grammars import corpus, random_grammar
from repro.tables import build_lalr_table


class TestSuperset:
    def test_nq_superset_of_exact_on_corpus(self, corpus_entry):
        grammar = corpus.load(corpus_entry.name).augmented()
        automaton = LR0Automaton(grammar)
        exact = LalrAnalysis(grammar, automaton).lookahead_table()
        loose = NqlalrAnalysis(grammar, automaton).lookahead_table()
        assert exact.keys() == loose.keys()
        for site in exact:
            assert exact[site] <= loose[site], (corpus_entry.name, site)

    def test_nq_superset_on_random_grammars(self):
        for seed in range(25):
            grammar = random_grammar(seed, epsilon_weight=0.3).augmented()
            automaton = LR0Automaton(grammar)
            exact = LalrAnalysis(grammar, automaton).lookahead_table()
            loose = NqlalrAnalysis(grammar, automaton).lookahead_table()
            for site in exact:
                assert exact[site] <= loose[site], seed

    def test_exact_on_expression_grammar(self):
        # Where no goto-target merging collapses distinct contexts, NQLALR
        # agrees with LALR exactly.
        grammar = corpus.load("expr").augmented()
        automaton = LR0Automaton(grammar)
        assert (
            LalrAnalysis(grammar, automaton).lookahead_table()
            == NqlalrAnalysis(grammar, automaton).lookahead_table()
        )


class TestTrapGrammar:
    """The corpus `nqlalr_trap` grammar: LALR(1)-clean, NQLALR-conflicted."""

    @pytest.fixture
    def setting(self):
        grammar = corpus.load("nqlalr_trap").augmented()
        return grammar, LR0Automaton(grammar)

    def test_exact_table_clean(self, setting):
        grammar, automaton = setting
        assert build_lalr_table(grammar, automaton).is_deterministic

    def test_nq_table_conflicted(self, setting):
        grammar, automaton = setting
        loose = NqlalrAnalysis(grammar, automaton).lookahead_table()
        table = build_lalr_table(grammar, automaton, loose)
        assert not table.is_deterministic
        kinds = {c.kind for c in table.unresolved_conflicts}
        assert "reduce/reduce" in kinds

    def test_overapproximation_sites_nonempty(self, setting):
        grammar, automaton = setting
        sites = nqlalr_overapproximation_sites(grammar, automaton)
        assert sites
        for _, extra in sites:
            assert extra  # strictly spurious terminals

    def test_merging_actually_happened(self, setting):
        grammar, automaton = setting
        analysis = NqlalrAnalysis(grammar, automaton)
        nq_nodes, transitions = analysis.merged_node_count()
        assert nq_nodes < transitions


class TestOverapproximationReport:
    def test_lua_like_has_loose_sites_but_no_conflicts(self):
        grammar = corpus.load("lua_like_chunks").augmented()
        automaton = LR0Automaton(grammar)
        sites = nqlalr_overapproximation_sites(grammar, automaton)
        assert sites  # looseness exists...
        loose = NqlalrAnalysis(grammar, automaton).lookahead_table()
        table = build_lalr_table(grammar, automaton, loose)
        assert table.is_deterministic  # ...but happens not to conflict here

    def test_no_overapproximation_without_merging_opportunities(self):
        grammar = corpus.load("lr0_demo").augmented()
        assert nqlalr_overapproximation_sites(grammar) == []

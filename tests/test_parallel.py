"""Unit tests for the deterministic parallel executor.

The executor's contract is that ``workers=N`` is observationally
identical to ``workers=1`` for pure task functions: same results, same
order, same exceptions.  Worker functions here are module-level so they
pickle across the fork boundary.
"""

import multiprocessing
import subprocess
import sys
import time

import pytest

from repro.core import instrument
from repro.core.budget import Budget
from repro.core.parallel import (
    chunked,
    derive_seed,
    effective_workers,
    fork_available,
    parallel_imap,
    parallel_map,
)


def _square(x):
    return x * x


def _boom(x):
    if x == 3:
        raise ValueError(f"task {x} exploded")
    return x


def _slow(x):
    time.sleep(0.2)
    return x


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 7) == derive_seed(42, 7)

    def test_distinct_per_index(self):
        seeds = [derive_seed(42, i) for i in range(100)]
        assert len(set(seeds)) == 100

    def test_in_31_bit_range(self):
        for base in (0, 1, 2**30, 2**62):
            assert 0 <= derive_seed(base, 999) < 2**31


class TestChunked:
    def test_splits_evenly(self):
        assert chunked(range(6), 2) == [[0, 1], [2, 3], [4, 5]]

    def test_last_chunk_is_short(self):
        assert chunked(range(5), 2) == [[0, 1], [2, 3], [4]]

    def test_empty_input(self):
        assert chunked([], 3) == []

    def test_bad_size_raises(self):
        with pytest.raises(ValueError):
            chunked(range(3), 0)


class TestEffectiveWorkers:
    def test_serial_when_one_worker(self):
        assert effective_workers(1, 100) == 1

    def test_serial_when_one_task(self):
        assert effective_workers(8, 1) == 1

    def test_clamped_to_task_count(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        assert effective_workers(8, 3) == 3


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        tasks = list(range(20))
        assert parallel_map(_square, tasks, workers=1) == [x * x for x in tasks]

    def test_parallel_matches_serial_in_order(self):
        tasks = list(range(50))
        serial = parallel_map(_square, tasks, workers=1)
        fanned = parallel_map(_square, tasks, workers=4)
        assert fanned == serial

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="task 3 exploded"):
            parallel_map(_boom, range(6), workers=2)

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="task 3 exploded"):
            parallel_map(_boom, range(6), workers=1)

    def test_records_instrument_counters(self):
        with instrument.profile() as collector:
            parallel_map(_square, range(7), workers=1)
        assert collector.counters["parallel.tasks"] == 7


class TestParallelImap:
    def test_yields_in_task_order(self):
        tasks = list(range(40))
        assert list(parallel_imap(_square, tasks, workers=4)) == [
            x * x for x in tasks
        ]

    def test_early_close_abandons_tail(self):
        sweep = parallel_imap(_square, range(100), workers=2)
        first = [next(sweep) for _ in range(3)]
        sweep.close()
        assert first == [0, 1, 4]

    def test_serial_generator(self):
        assert list(parallel_imap(_square, range(5), workers=1)) == [
            0, 1, 4, 9, 16,
        ]

    def test_deadline_stops_mid_sweep(self):
        budget = Budget(timeout=0.05)
        results = list(parallel_imap(_slow, range(64), workers=2, budget=budget))
        assert len(results) < 64


class TestTeardown:
    """Cancelled pools must not leak processes or tracked semaphores."""

    def test_deadline_cancel_reaps_all_children(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        budget = Budget(timeout=0.05)
        list(parallel_imap(_slow, range(64), workers=2, budget=budget))
        assert multiprocessing.active_children() == []

    def test_early_close_reaps_all_children(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        sweep = parallel_imap(_slow, range(64), workers=2)
        next(sweep)
        sweep.close()
        assert multiprocessing.active_children() == []

    def test_parallel_map_reaps_all_children(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        parallel_map(_square, range(8), workers=2)
        assert multiprocessing.active_children() == []

    def test_no_resource_tracker_warnings_at_exit(self):
        """Run a deadline-cancelled sweep in a fresh interpreter and
        assert the multiprocessing resource tracker stays silent at
        interpreter exit (leaked semaphores print there, not here)."""
        if not fork_available():
            pytest.skip("no fork on this platform")
        script = (
            "import time\n"
            "from repro.core.budget import Budget\n"
            "from repro.core.parallel import parallel_imap\n"
            "def _slow(x):\n"
            "    time.sleep(0.2)\n"
            "    return x\n"
            "list(parallel_imap(_slow, range(64), workers=2,\n"
            "                   budget=Budget(timeout=0.05)))\n"
            "sweep = parallel_imap(_slow, range(64), workers=2)\n"
            "next(sweep)\n"
            "sweep.close()\n"
            "print('swept')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-W", "error::ResourceWarning", "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "swept" in proc.stdout
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr

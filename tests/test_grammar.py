"""Unit tests: Production, Grammar, augmentation, precedence container."""

import pytest

from repro.grammar import (
    Assoc,
    GrammarBuilder,
    GrammarValidationError,
    Precedence,
    ProductionError,
    grammar_from_rules,
)
from repro.grammar.grammar import Grammar
from repro.grammar.production import Production
from repro.grammar.symbols import EOF_NAME, SymbolTable


def simple_grammar():
    return grammar_from_rules(
        [("S", ["A", "b"]), ("A", ["a"]), ("A", [])], start="S", name="simple"
    )


class TestProduction:
    def test_lhs_must_be_nonterminal(self):
        table = SymbolTable()
        a = table.terminal("a")
        with pytest.raises(ProductionError):
            Production(0, a, ())

    def test_epsilon_flag(self):
        table = SymbolTable()
        s = table.nonterminal("S")
        assert Production(0, s, ()).is_epsilon
        assert not Production(0, s, (table.terminal("a"),)).is_epsilon

    def test_str_epsilon(self):
        table = SymbolTable()
        s = table.nonterminal("S")
        assert str(Production(0, s, ())) == "S -> %empty"

    def test_str_symbols(self):
        table = SymbolTable()
        s = table.nonterminal("S")
        a, b = table.terminal("a"), table.terminal("b")
        assert str(Production(0, s, (a, b))) == "S -> a b"

    def test_default_prec_symbol_is_rightmost_terminal(self):
        table = SymbolTable()
        s = table.nonterminal("S")
        a, b = table.terminal("a"), table.terminal("b")
        production = Production(0, s, (a, s, b, s))
        assert production.prec_symbol is b

    def test_no_terminal_means_no_prec(self):
        table = SymbolTable()
        s = table.nonterminal("S")
        assert Production(0, s, (s, s)).prec_symbol is None

    def test_len(self):
        table = SymbolTable()
        s = table.nonterminal("S")
        assert len(Production(0, s, (table.terminal("a"),) * 3)) == 3


class TestGrammar:
    def test_productions_for(self):
        grammar = simple_grammar()
        a = grammar.symbols["A"]
        assert len(grammar.productions_for(a)) == 2

    def test_productions_for_start(self):
        grammar = simple_grammar()
        assert len(grammar.productions_for(grammar.start)) == 1

    def test_empty_grammar_rejected(self):
        table = SymbolTable()
        s = table.nonterminal("S")
        with pytest.raises(GrammarValidationError):
            Grammar(table, [], s)

    def test_terminal_start_rejected(self):
        table = SymbolTable()
        s = table.nonterminal("S")
        a = table.terminal("a")
        production = Production(0, s, (a,))
        with pytest.raises(GrammarValidationError):
            Grammar(table, [production], a)

    def test_foreign_symbol_rejected(self):
        table = SymbolTable()
        s = table.nonterminal("S")
        other = SymbolTable()
        foreign = other.terminal("x")
        production = Production(0, s, (foreign,))
        with pytest.raises(ProductionError):
            Grammar(table, [production], s)

    def test_stats(self):
        stats = simple_grammar().stats()
        assert stats == {
            "terminals": 2,
            "nonterminals": 2,
            "productions": 3,
            "rhs_symbols": 3,
        }

    def test_iter_and_len(self):
        grammar = simple_grammar()
        assert len(grammar) == 3
        assert len(list(grammar)) == 3

    def test_str_contains_start_and_rules(self):
        text = str(simple_grammar())
        assert "start: S" in text
        assert "S -> A b" in text


class TestAugmentation:
    def test_not_augmented_initially(self):
        assert not simple_grammar().is_augmented

    def test_augmented_shape(self):
        grammar = simple_grammar().augmented()
        assert grammar.is_augmented
        p0 = grammar.productions[0]
        assert p0.lhs is grammar.start
        assert p0.rhs[0].name == "S"
        assert p0.rhs[1].name == EOF_NAME

    def test_augmenting_twice_is_identity(self):
        grammar = simple_grammar().augmented()
        assert grammar.augmented() is grammar

    def test_indices_shift_by_one(self):
        original = simple_grammar()
        augmented = original.augmented()
        assert [str(p) for p in augmented.productions[1:]] == [
            str(p) for p in original.productions
        ]
        assert [p.index for p in augmented.productions] == [0, 1, 2, 3]

    def test_original_start(self):
        original = simple_grammar()
        augmented = original.augmented()
        assert augmented.original_start is original.start
        assert original.original_start is original.start

    def test_eof_property(self):
        augmented = simple_grammar().augmented()
        assert augmented.eof.is_eof

    def test_fresh_start_collision_avoided(self):
        builder = GrammarBuilder()
        builder.rule("S", ["S'", "a"])
        builder.rule("S'", ["b"])
        grammar = builder.build(start="S").augmented()
        assert grammar.start.name == "S''"


class TestPrecedenceContainer:
    def test_precedence_levels_assigned_in_order(self):
        builder = GrammarBuilder()
        builder.left("+", "-")
        builder.left("*")
        builder.rule("E", ["E", "+", "E"])
        builder.rule("E", ["E", "*", "E"])
        builder.rule("E", ["x"])
        grammar = builder.build(start="E")
        plus = grammar.symbols["+"]
        star = grammar.symbols["*"]
        assert grammar.precedence[plus].level < grammar.precedence[star].level
        assert grammar.precedence[plus].assoc is Assoc.LEFT

    def test_precedence_equality(self):
        assert Precedence(1, Assoc.LEFT) == Precedence(1, Assoc.LEFT)
        assert Precedence(1, Assoc.LEFT) != Precedence(2, Assoc.LEFT)
        assert Precedence(1, Assoc.LEFT) != Precedence(1, Assoc.RIGHT)

    def test_production_set_ignores_indices(self):
        g1 = simple_grammar()
        g2 = simple_grammar()
        names1 = {(l.name, tuple(s.name for s in r)) for l, r in g1.production_set()}
        names2 = {(l.name, tuple(s.name for s in r)) for l, r in g2.production_set()}
        assert names1 == names2

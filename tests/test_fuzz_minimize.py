"""Unit tests: the hypothesis-independent delta-debugging shrinker."""

import pytest

from repro.fuzz.corpus import FailureCorpus, FailureEntry
from repro.fuzz.minimize import (
    build_rules,
    grammar_rules,
    minimize_grammar,
    oracle_predicate,
)
from repro.fuzz.oracles import ORACLES, failure_fingerprint
from repro.grammar.writer import write_arrow
from repro.grammars import corpus
from repro.grammars.random_gen import random_grammar


class TestRulesRoundTrip:
    def test_grammar_rules_strip_augmentation(self):
        grammar = corpus.load("expr", augment=True)
        rules = grammar_rules(grammar)
        assert all(lhs != grammar.start.name for lhs, _ in rules)

    def test_build_rules_reduces(self):
        rules = [("S", ("a",)), ("S", ("Dead",)), ("Dead", ("Dead",))]
        grammar = build_rules(rules, "S")
        assert grammar is not None
        assert [str(p) for p in grammar.productions] == ["S -> a"]

    def test_build_rules_rejects_start_loss_and_empty_language(self):
        assert build_rules([("A", ("a",))], "S") is None
        assert build_rules([("S", ("S",))], "S") is None


class TestSyntheticFailureShrinks:
    """Acceptance: a deliberately broken oracle's failure must shrink to
    at most 4 productions."""

    def test_shrinks_to_at_most_four_productions(self):
        # A rich grammar (many nonterminals, alternatives, long rhs)...
        grammar = random_grammar(
            42, n_nonterminals=6, n_terminals=5, max_alternatives=3, max_rhs_len=5
        )
        assert len(grammar.productions) >= 8
        # ...and a broken "oracle" that disagrees whenever the grammar
        # still derives anything mentioning terminal t1.
        def still_fails(g):
            return any(any(s.name == "t1" for s in p.rhs) for p in g.productions)

        assert still_fails(grammar)
        result = minimize_grammar(grammar, still_fails)
        assert still_fails(result.grammar)  # the failure survived shrinking
        assert result.final_productions <= 4
        assert result.final_productions < result.initial_productions
        assert result.steps_applied > 0

    def test_minimum_is_one_minimal(self):
        # Removing anything else from the result must kill the failure.
        grammar = random_grammar(77, n_nonterminals=5, n_terminals=4)

        def still_fails(g):
            return any(len(p.rhs) >= 2 for p in g.productions)

        if not still_fails(grammar):
            pytest.skip("draw has no long rhs")
        result = minimize_grammar(grammar, still_fails)
        rules = result.rules
        for index in range(len(rules)):
            candidate = build_rules(
                rules[:index] + rules[index + 1 :],
                result.grammar.start.name,
            )
            assert candidate is None or not still_fails(candidate)

    def test_broken_oracle_end_to_end_via_registry(self):
        def broken(ctx):
            if any(any(s.name == "t0" for s in p.rhs)
                   for p in ctx.grammar.productions):
                return "t0 still derivable"
            return None

        ORACLES["test-minimize-broken"] = broken
        try:
            grammar = random_grammar(11, n_nonterminals=5, n_terminals=4)
            predicate = oracle_predicate("test-minimize-broken")
            assert predicate(grammar)
            result = minimize_grammar(grammar, predicate)
            assert result.final_productions <= 4
            assert predicate(result.grammar)
        finally:
            del ORACLES["test-minimize-broken"]


class TestNoReproduction:
    def test_passing_grammar_is_returned_unchanged(self):
        grammar = corpus.load("expr")
        result = minimize_grammar(grammar, lambda g: False)
        assert result.steps_applied == 0 and result.rounds == 0
        assert result.rules == grammar_rules(grammar)


class TestMinimizedEntryFlow:
    """Corpus entry -> minimize -> minimized text stored and loadable."""

    def test_minimize_updates_the_entry(self, tmp_path):
        def broken(ctx):
            return (
                "has-plus"
                if any(any(s.name == "+" for s in p.rhs)
                       for p in ctx.grammar.productions)
                else None
            )

        ORACLES["test-entry-broken"] = broken
        try:
            grammar = corpus.load("expr")
            store = FailureCorpus(str(tmp_path / "corpus"))
            entry = FailureEntry(
                fingerprint=failure_fingerprint("test-entry-broken", grammar),
                oracle="test-entry-broken",
                detail="has-plus",
                grammar_text=write_arrow(grammar),
            )
            store.add(entry)

            predicate = oracle_predicate("test-entry-broken")
            result = minimize_grammar(entry.grammar(), predicate)
            entry.minimized_text = write_arrow(result.grammar)
            store.update(entry)

            reloaded = store.get(entry.fingerprint[:12])
            minimized = reloaded.grammar(minimized=True)
            assert len(minimized.productions) <= 4
            assert predicate(minimized)
        finally:
            del ORACLES["test-entry-broken"]

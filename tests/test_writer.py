"""Unit tests: grammar serialisation round-trips with the reader."""

import pytest

from repro.grammar import load_grammar, write_arrow, write_yacc
from repro.grammars import corpus


def normalised(grammar):
    """A text-level fingerprint of a grammar, for round-trip comparison."""
    rules = sorted(
        (p.lhs.name, tuple(s.name for s in p.rhs)) for p in grammar.productions
    )
    precedence = sorted(
        (s.name, prec.level, prec.assoc.value) for s, prec in grammar.precedence.items()
    )
    start = grammar.original_start.name
    return (start, tuple(rules), tuple(precedence))


SAMPLES = [
    "S -> a S | b",
    "S -> A B\nA -> a | %empty\nB -> b",
    "%left '+'\n%left '*'\nE -> E + E | E * E | ( E ) | x",
    "%token HANGING\nS -> a",
    "%right NEG\nE -> - E %prec NEG | n",
]


class TestArrowRoundTrip:
    @pytest.mark.parametrize("text", SAMPLES)
    def test_round_trip(self, text):
        original = load_grammar(text)
        rendered = write_arrow(original)
        reparsed = load_grammar(rendered)
        assert normalised(original) == normalised(reparsed)

    def test_epsilon_written_explicitly(self):
        rendered = write_arrow(load_grammar("S -> a | %empty"))
        assert "%empty" in rendered

    def test_quotes_odd_terminal_names(self):
        rendered = write_arrow(load_grammar("S -> '|' a"))
        assert "'|'" in rendered

    def test_augmentation_stripped(self):
        grammar = load_grammar("S -> a").augmented()
        rendered = write_arrow(grammar)
        assert "$end" not in rendered
        assert "S'" not in rendered
        reparsed = load_grammar(rendered)
        assert reparsed.start.name == "S"


class TestYaccRoundTrip:
    @pytest.mark.parametrize("text", SAMPLES)
    def test_round_trip(self, text):
        original = load_grammar(text)
        rendered = write_yacc(original)
        assert "%%" in rendered
        reparsed = load_grammar(rendered)
        assert normalised(original) == normalised(reparsed)

    def test_alternatives_grouped(self):
        rendered = write_yacc(load_grammar("S -> a\nS -> b\nT -> t\nS -> c"))
        # All three S alternatives under one head.
        assert rendered.count("S :") == 1
        assert rendered.count("|") == 2

    def test_prec_emitted_only_when_nondefault(self):
        rendered = write_yacc(load_grammar("%right NEG\nE -> - E %prec NEG | n"))
        assert "%prec NEG" in rendered
        rendered_plain = write_yacc(load_grammar("E -> E + n | n"))
        assert "%prec" not in rendered_plain


class TestCorpusRoundTrip:
    @pytest.mark.parametrize("name", [e.name for e in corpus.all_entries()])
    def test_both_formats(self, name):
        original = corpus.load(name)
        for renderer in (write_arrow, write_yacc):
            reparsed = load_grammar(renderer(original))
            assert normalised(original) == normalised(reparsed), renderer.__name__

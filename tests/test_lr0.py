"""Unit tests: LR(0) items and the LR(0) automaton."""

import pytest

from repro.automaton import (
    Item,
    Item1,
    LR0Automaton,
    format_item,
    is_final,
    next_symbol,
)
from repro.grammar import load_grammar


class TestItems:
    def test_advanced(self):
        assert Item(3, 1).advanced() == Item(3, 2)

    def test_item1_core(self):
        grammar = load_grammar("S -> a").augmented()
        a = grammar.symbols["a"]
        assert Item1(1, 0, a).core == Item(1, 0)

    def test_next_symbol(self):
        grammar = load_grammar("S -> a B\nB -> b").augmented()
        assert next_symbol(grammar, Item(1, 0)).name == "a"
        assert next_symbol(grammar, Item(1, 1)).name == "B"
        assert next_symbol(grammar, Item(1, 2)) is None

    def test_is_final(self):
        grammar = load_grammar("S -> a | %empty").augmented()
        assert not is_final(grammar, Item(1, 0))
        assert is_final(grammar, Item(1, 1))
        assert is_final(grammar, Item(2, 0))  # epsilon production

    def test_format_item(self):
        grammar = load_grammar("S -> a B\nB -> b").augmented()
        assert format_item(grammar, Item(1, 1)) == "S -> a · B"

    def test_format_item1_shows_lookahead(self):
        grammar = load_grammar("S -> a").augmented()
        a = grammar.symbols["a"]
        assert format_item(grammar, Item1(1, 1, a)).endswith(", a")

    def test_format_epsilon_item(self):
        grammar = load_grammar("S -> %empty").augmented()
        assert format_item(grammar, Item(1, 0)) == "S -> ·"


class TestConstruction:
    def test_expr_grammar_state_count(self, expr_automaton):
        # 12 classic states + the state reached by shifting $end.
        assert len(expr_automaton) == 13

    def test_start_state_kernel(self, expr_automaton):
        assert expr_automaton.states[0].kernel == frozenset((Item(0, 0),))

    def test_closure_of_start(self, expr_automaton):
        # S' -> .E$ pulls in all E, T, F productions.
        assert len(expr_automaton.states[0].closure) == 7

    def test_kernels_unique(self, expr_automaton):
        kernels = [s.kernel for s in expr_automaton.states]
        assert len(set(kernels)) == len(kernels)

    def test_deterministic_numbering(self, expr_augmented):
        first = LR0Automaton(expr_augmented)
        second = LR0Automaton(expr_augmented)
        assert [s.kernel for s in first.states] == [s.kernel for s in second.states]

    def test_auto_augments(self):
        grammar = load_grammar("S -> a")
        automaton = LR0Automaton(grammar)
        assert automaton.grammar.is_augmented

    def test_lr0_demo_matches_textbook(self):
        # S -> A A; A -> a A | b: 6 core states (0, A, AA, a·A, b, aA·)
        # plus the S-kernel state and the $end-shift state = 8 total.
        automaton = LR0Automaton(load_grammar("S -> A A\nA -> a A | b"))
        assert len(automaton) == 8

    def test_reductions_listed(self, expr_automaton):
        grammar = expr_automaton.grammar
        total = sum(len(s.reductions) for s in expr_automaton.states)
        # One final item per production (expr grammar has no sharing).
        assert total == len(grammar.productions)


class TestGoto:
    def test_goto_defined(self, expr_automaton):
        grammar = expr_automaton.grammar
        assert expr_automaton.goto(0, grammar.symbols["E"]) is not None

    def test_goto_undefined(self, expr_automaton):
        grammar = expr_automaton.grammar
        assert expr_automaton.goto(0, grammar.symbols["+"]) is None

    def test_goto_sequence_full_production(self, expr_automaton):
        grammar = expr_automaton.grammar
        production = grammar.productions[1]  # E -> E + T
        state = expr_automaton.goto_sequence(0, production.rhs)
        assert state is not None
        assert Item(1, 3) in expr_automaton.states[state].kernel

    def test_goto_sequence_dead_path(self, expr_automaton):
        grammar = expr_automaton.grammar
        plus = grammar.symbols["+"]
        assert expr_automaton.goto_sequence(0, (plus, plus)) is None

    def test_accept_state(self, expr_automaton):
        accept = expr_automaton.accept_state
        assert Item(0, 2) in expr_automaton.states[accept].kernel


class TestPredecessors:
    def test_inverse_of_goto(self, expr_automaton):
        for state in expr_automaton.states:
            for symbol, successor in state.transitions.items():
                assert state.state_id in expr_automaton.predecessors(
                    successor, symbol
                )

    def test_predecessors_complete(self, expr_automaton):
        # Every predecessor relation entry corresponds to a real transition.
        for state in expr_automaton.states:
            for symbol in expr_automaton.grammar.symbols:
                for p in expr_automaton.predecessors(state.state_id, symbol):
                    assert expr_automaton.goto(p, symbol) == state.state_id

    def test_predecessors_along_empty_is_self(self, expr_automaton):
        assert expr_automaton.predecessors_along(5, ()) == (5,)

    def test_predecessors_along_inverts_goto_sequence(self, expr_automaton):
        grammar = expr_automaton.grammar
        production = grammar.productions[1]  # E -> E + T
        end = expr_automaton.goto_sequence(0, production.rhs)
        sources = expr_automaton.predecessors_along(end, production.rhs)
        assert 0 in sources
        for source in sources:
            assert expr_automaton.goto_sequence(source, production.rhs) == end


class TestQueriesAndFormat:
    def test_nonterminal_transitions(self, expr_automaton):
        pairs = expr_automaton.nonterminal_transitions
        assert all(symbol.is_nonterminal for _, symbol in pairs)
        assert (0, expr_automaton.grammar.symbols["E"]) in pairs

    def test_stats_keys(self, expr_automaton):
        stats = expr_automaton.stats()
        assert stats["states"] == 13
        assert stats["transitions"] >= stats["nonterminal_transitions"]

    def test_format_state(self, expr_automaton):
        text = expr_automaton.format_state(0)
        assert "state 0" in text
        assert "·" in text

    def test_format_state_kernel_only(self, expr_automaton):
        full = expr_automaton.format_state(0)
        kernel = expr_automaton.format_state(0, kernel_only=True)
        assert len(kernel.splitlines()) < len(full.splitlines())

"""Unit tests: the deterministic fuzz campaign driver."""

import pytest

from repro.core.instrument import profile
from repro.fuzz.campaign import (
    DEFAULT_BUCKETS,
    CampaignConfig,
    ShapeBucket,
    bucket_grammars,
    grammar_seed,
    run_campaign,
)
from repro.fuzz.corpus import FailureCorpus
from repro.fuzz.oracles import ORACLES, default_oracle_names


@pytest.fixture
def broken_oracle():
    """Registers an oracle that fails on every grammar; auto-unregisters."""

    def broken(ctx):
        return "synthetic disagreement"

    ORACLES["test-broken"] = broken
    yield "test-broken"
    del ORACLES["test-broken"]


class TestDeterminism:
    def test_same_seed_same_campaign(self):
        config = CampaignConfig(seed=5, count=30)
        first = run_campaign(config)
        second = run_campaign(CampaignConfig(seed=5, count=30))
        assert first.grammars_run == second.grammars_run == 30
        assert first.per_bucket == second.per_bucket
        assert [f.fingerprint for f in first.failures] == [
            f.fingerprint for f in second.failures
        ]

    def test_different_seed_different_draws(self):
        assert grammar_seed(1, 0) != grammar_seed(2, 0)

    def test_failure_carries_reproduction_recipe(self, broken_oracle):
        report = run_campaign(
            CampaignConfig(seed=3, count=2, oracles=[broken_oracle])
        )
        failure = report.failures[0]
        assert failure.seed == grammar_seed(3, 0)
        assert failure.bucket == DEFAULT_BUCKETS[0].label
        assert failure.knobs == DEFAULT_BUCKETS[0].knobs
        assert "N0" in failure.grammar_text  # the grammar itself travels along


class TestSweepShape:
    def test_buckets_round_robin(self):
        report = run_campaign(CampaignConfig(seed=0, count=10))
        assert report.per_bucket == {b.label: 2 for b in DEFAULT_BUCKETS}

    def test_default_sweep_has_at_least_four_buckets(self):
        assert len(DEFAULT_BUCKETS) >= 4
        labels = [b.label for b in DEFAULT_BUCKETS]
        assert len(set(labels)) == len(labels)

    def test_custom_bucket_subset(self):
        bucket = ShapeBucket("tiny", dict(n_nonterminals=2, n_terminals=2))
        report = run_campaign(CampaignConfig(seed=0, count=4, buckets=[bucket]))
        assert report.per_bucket == {"tiny": 4}

    def test_bucket_grammars_matches_campaign_seeding(self):
        bucket = DEFAULT_BUCKETS[0]
        [grammar] = bucket_grammars(bucket, 1, campaign_seed=9)
        assert grammar.name == f"random_{grammar_seed(9, 0)}"


class TestTimeBudget:
    def test_budget_stops_early_and_reports_it(self):
        report = run_campaign(
            CampaignConfig(seed=0, count=100_000, time_budget=0.15)
        )
        assert report.stopped_early
        assert 0 < report.grammars_run < 100_000

    def test_no_budget_runs_to_completion(self):
        report = run_campaign(CampaignConfig(seed=0, count=10))
        assert not report.stopped_early
        assert report.grammars_run == 10


class TestFailureHandling:
    def test_clean_campaign(self):
        report = run_campaign(CampaignConfig(seed=1, count=20))
        assert report.clean
        assert report.failures == [] and report.duplicate_failures == 0

    def test_broken_oracle_fails_every_draw(self, broken_oracle):
        report = run_campaign(
            CampaignConfig(seed=1, count=6, oracles=[broken_oracle])
        )
        assert not report.clean
        assert len(report.failures) == 6  # six distinct grammars

    def test_duplicate_fingerprints_counted_once(self, broken_oracle):
        # One bucket with one seed's worth of shape diversity can still
        # collide; force it by running the same seed range twice within
        # one campaign via a single-bucket, repeated-seed config.
        bucket = ShapeBucket("tiny", dict(n_nonterminals=1, n_terminals=1,
                                          max_alternatives=1, max_rhs_len=1))
        report = run_campaign(
            CampaignConfig(seed=1, count=40, buckets=[bucket],
                           oracles=[broken_oracle])
        )
        distinct = {f.fingerprint for f in report.failures}
        assert len(distinct) == len(report.failures)
        assert report.duplicate_failures == 40 - len(distinct)
        assert report.duplicate_failures > 0

    def test_failures_persist_to_corpus(self, broken_oracle, tmp_path):
        corpus_store = FailureCorpus(str(tmp_path / "corpus"))
        report = run_campaign(
            CampaignConfig(seed=1, count=4, oracles=[broken_oracle]),
            corpus=corpus_store,
        )
        assert report.new_corpus_entries == len(report.failures) == 4
        assert len(corpus_store) == 4
        # Second campaign over the same seeds: all already on disk.
        repeat = run_campaign(
            CampaignConfig(seed=1, count=4, oracles=[broken_oracle]),
            corpus=corpus_store,
        )
        assert repeat.new_corpus_entries == 0
        assert len(corpus_store) == 4


class TestInstrumentation:
    def test_campaign_spans_and_counters_flow(self):
        with profile() as collector:
            run_campaign(CampaignConfig(seed=0, count=5))
        assert "fuzz.campaign" in collector.phase_totals()
        assert "fuzz.generate" in collector.phase_totals()
        assert any(
            phase.startswith("fuzz.oracle.") for phase in collector.phase_totals()
        )
        assert collector.counters["fuzz.grammars"] == 5
        # Campaigns run the default stack; opt-in oracles (the
        # incremental-edit one) are excluded unless requested.
        assert collector.counters["fuzz.oracle_runs"] == 5 * len(
            default_oracle_names()
        )

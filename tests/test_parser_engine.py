"""Unit + integration tests: the LR parsing engine."""

import itertools

import pytest

from repro.grammar import load_grammar
from repro.grammars import corpus
from repro.parser import ParseError, Parser, Token
from repro.tables import build_clr_table, build_lalr_table, build_lr0_table, build_slr_table


def parser_for(text_or_grammar, build=build_lalr_table):
    grammar = (
        load_grammar(text_or_grammar) if isinstance(text_or_grammar, str) else text_or_grammar
    ).augmented()
    return Parser(build(grammar)), grammar


class TestAcceptance:
    def test_accepts_simple(self):
        parser, grammar = parser_for("S -> a b")
        assert parser.accepts(["a", "b"])

    def test_rejects_truncated(self):
        parser, _ = parser_for("S -> a b")
        assert not parser.accepts(["a"])

    def test_rejects_extended(self):
        parser, _ = parser_for("S -> a b")
        assert not parser.accepts(["a", "b", "a"])

    def test_rejects_empty_when_not_nullable(self):
        parser, _ = parser_for("S -> a")
        assert not parser.accepts([])

    def test_accepts_empty_for_nullable_start(self):
        parser, _ = parser_for("S -> a S | %empty")
        assert parser.accepts([])
        assert parser.accepts(["a", "a", "a"])

    def test_expression_sentences(self, expr_augmented):
        parser = Parser(build_lalr_table(expr_augmented))
        good = [
            "id",
            "id + id",
            "id * id + id",
            "( id )",
            "( id + id ) * id",
            "id + id + id + id",
        ]
        bad = ["", "id +", "+ id", "( id", "id )", "id id", "* id"]
        for sentence in good:
            assert parser.accepts(sentence.split()), sentence
        for sentence in bad:
            assert not parser.accepts(sentence.split()), sentence

    @pytest.mark.parametrize("build", [build_slr_table, build_lalr_table, build_clr_table])
    def test_all_strong_tables_agree(self, build, expr_augmented):
        parser = Parser(build(expr_augmented))
        assert parser.accepts("id + id * id".split())
        assert not parser.accepts("id + * id".split())


class TestTokens:
    def test_symbol_tokens(self):
        parser, grammar = parser_for("S -> a")
        a = grammar.symbols["a"]
        assert parser.accepts([a])

    def test_token_objects_carry_values(self):
        parser, grammar = parser_for("S -> NUM")
        num = grammar.symbols["NUM"]
        tree = parser.parse([Token(num, 42)])
        assert tree.children[0].value == 42

    def test_unknown_terminal_rejected(self):
        parser, _ = parser_for("S -> a")
        with pytest.raises(ParseError, match="unknown terminal"):
            parser.parse(["zzz"])

    def test_nonterminal_name_rejected_as_token(self):
        parser, _ = parser_for("S -> a")
        with pytest.raises(ParseError):
            parser.parse(["S"])

    def test_bad_token_type(self):
        parser, _ = parser_for("S -> a")
        with pytest.raises(TypeError):
            parser.parse([3.14])

    def test_nonterminal_symbol_object_rejected(self):
        # A Symbol for a *nonterminal* in the token stream is a caller
        # bug (e.g. a lexer wired to the wrong vocabulary); it must fail
        # with a clear ParseError, not a confusing table lookup miss.
        parser, grammar = parser_for("S -> A\nA -> a")
        nonterminal = grammar.symbols["A"]
        with pytest.raises(ParseError, match="nonterminal 'A'") as info:
            parser.parse([nonterminal])
        assert info.value.position == 0

    def test_nonterminal_token_object_rejected(self):
        parser, grammar = parser_for("S -> A\nA -> a")
        token = Token(grammar.symbols["A"], None)
        with pytest.raises(ParseError, match="only terminals"):
            parser.parse([grammar.symbols["a"], token])


class TestTrees:
    def test_tree_root_is_start(self, expr_augmented):
        parser = Parser(build_lalr_table(expr_augmented))
        tree = parser.parse("id + id".split())
        assert tree.symbol.name == "E"

    def test_tree_fringe_reproduces_input(self, expr_augmented):
        parser = Parser(build_lalr_table(expr_augmented))
        sentence = "( id + id ) * id".split()
        tree = parser.parse(sentence)
        assert [s.name for s in tree.fringe()] == sentence

    def test_tree_structure(self):
        parser, _ = parser_for("S -> S a | b")
        tree = parser.parse(["b", "a", "a"])
        assert tree.sexpr() == "(S (S (S b) a) a)"

    def test_epsilon_node_has_no_children(self):
        parser, _ = parser_for("S -> A a\nA -> %empty")
        tree = parser.parse(["a"])
        a_node = tree.children[0]
        assert a_node.symbol.name == "A"
        assert a_node.children == []

    def test_production_recorded_on_nodes(self, expr_augmented):
        parser = Parser(build_lalr_table(expr_augmented))
        tree = parser.parse(["id"])
        for node in tree.walk():
            if not node.is_leaf:
                assert node.production is not None
                assert node.production.lhs is node.symbol


class TestActions:
    def test_semantic_fold(self):
        parser, grammar = parser_for("E -> E + T | T\nT -> NUM")
        num = grammar.symbols["NUM"]

        def act(production, children):
            if len(children) == 3:
                return children[0] + children[2]
            return children[0]

        tokens = [Token(num, 1), Token(grammar.symbols["+"], None), Token(num, 2),
                  Token(grammar.symbols["+"], None), Token(num, 3)]
        assert parser.parse_with_actions(tokens, act) == 6

    def test_shift_fn_customises_leaves(self):
        parser, grammar = parser_for("S -> a a")

        def act(production, children):
            return sum(children)

        result = parser.parse_with_actions(
            ["a", "a"], act, shift_fn=lambda token: 10
        )
        assert result == 20

    def test_trace(self):
        parser, _ = parser_for("S -> a b")
        log = parser.trace(["a", "b"])
        assert log == ["shift a", "shift b", "reduce S -> a b", "accept"]


class TestErrors:
    def test_error_position(self):
        parser, _ = parser_for("S -> a b c")
        with pytest.raises(ParseError) as info:
            parser.parse(["a", "c"])
        assert info.value.position == 1
        assert info.value.token.name == "c"

    def test_error_expected_set(self):
        parser, _ = parser_for("S -> a b")
        with pytest.raises(ParseError) as info:
            parser.parse(["a", "a"])
        assert [t.name for t in info.value.expected] == ["b"]

    def test_premature_eof_reported(self):
        parser, _ = parser_for("S -> a b")
        with pytest.raises(ParseError, match="end of input"):
            parser.parse(["a"])

    def test_error_message_mentions_expected(self):
        parser, _ = parser_for("S -> a b")
        with pytest.raises(ParseError, match="expected one of: b"):
            parser.parse(["a", "a"])

    def test_non_augmented_table_rejected(self):
        grammar = load_grammar("S -> a")
        with pytest.raises(Exception):
            # build_lalr_table augments internally, so fake a bad table by
            # constructing the parser with a table whose grammar is raw.
            from repro.tables.table import ParseTable

            Parser(ParseTable(grammar, "lalr1", [{}], [{}], []))


class TestStreaming:
    """The engine pulls tokens lazily from the iterator: one token of
    look-ahead, never ``list(tokens)``.  Peak memory is O(parse stack)."""

    def test_error_on_infinite_stream_terminates(self):
        # Regression: the old engine materialised the whole stream first,
        # so an unbounded generator hung before the parse even started.
        parser, _ = parser_for("S -> a b")
        with pytest.raises(ParseError) as info:
            parser.parse(itertools.repeat("a"))
        assert info.value.position == 1  # second 'a' is the offender

    def test_only_lookahead_consumed_before_error(self):
        parser, _ = parser_for("S -> a b")
        pulled = []

        def stream():
            for name in itertools.repeat("a"):
                pulled.append(name)
                yield name

        with pytest.raises(ParseError):
            parser.parse(stream())
        # One shifted token plus the erroring look-ahead; no read-ahead.
        assert len(pulled) == 2

    def test_huge_stream_with_actions(self):
        # Left recursion keeps the stack O(1), so a token stream far too
        # large to comfortably materialise parses in constant memory when
        # reductions fold values eagerly.
        parser, _ = parser_for("S -> S a | a")
        n = 300_000
        count = parser.parse_with_actions(
            itertools.repeat("a", n),
            lambda production, children: sum(
                c for c in children if isinstance(c, int)
            ),
            shift_fn=lambda token: 1,
        )
        assert count == n

    def test_accepts_generator_input(self):
        parser, _ = parser_for("S -> a b")
        assert parser.accepts(iter(["a", "b"]))
        assert not parser.accepts(iter(["a"]))


class TestLr0TableParsing:
    def test_lr0_parser_works_on_lr0_grammar(self):
        grammar = corpus.load("lr0_demo").augmented()
        parser = Parser(build_lr0_table(grammar))
        assert parser.accepts("a a b b".split())
        assert parser.accepts("b b".split())
        assert not parser.accepts("a b".split())

    def test_round_trip_with_generator(self):
        from repro.analysis import SentenceGenerator

        grammar = corpus.load("lr0_demo").augmented()
        parser = Parser(build_lr0_table(grammar))
        generator = SentenceGenerator(grammar, seed=11)
        for sentence in generator.sentences(30, budget=15):
            assert parser.accepts(sentence)

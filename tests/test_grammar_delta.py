"""Unit tests: edit classification and the grammar edit constructors.

``repro.grammar.delta`` is the gatekeeper of the incremental pipeline:
an ``rhs`` verdict licenses the splice chain to reuse bitmasks, packed
items and dense symbol IDs object-for-object, so the classifier must
never report ``rhs`` when the symbol layout moved — and the edit
constructors must produce grammars that share the original's symbols.
"""

import pytest

from repro.grammar import load_grammar
from repro.grammar.delta import (
    DeltaKind,
    add_production,
    classify,
    remove_production,
    replace_rhs,
)

EXPR = """
E -> E + T | T
T -> T * F | F
F -> ( E ) | id
"""


@pytest.fixture
def grammar():
    return load_grammar(EXPR, name="expr").augmented()


class TestClassify:
    def test_same_object_is_identical(self, grammar):
        delta = classify(grammar, grammar)
        assert delta.kind == DeltaKind.IDENTICAL
        assert delta.is_identical

    def test_rhs_edit(self, grammar):
        edited = replace_rhs(grammar, 6, ["("])  # F -> id  =>  F -> (
        delta = classify(grammar, edited)
        assert delta.kind == DeltaKind.RHS
        assert delta.is_incremental
        assert delta.changed == (6,)
        assert {s.name for s in delta.dirty_nonterminals} == {"F"}

    def test_rhs_edit_shares_symbol_objects(self, grammar):
        edited = replace_rhs(grammar, 6, ["("])
        assert edited.symbols is grammar.symbols
        assert all(
            a is b for a, b in zip(grammar.ids.by_sid, edited.ids.by_sid)
        )

    def test_unchanged_rebuild_is_identical(self, grammar):
        # Replacing a rhs with itself produces a fresh Grammar object
        # whose content is unchanged: identical, not rhs.
        production = grammar.productions[6]
        edited = replace_rhs(grammar, 6, [s.name for s in production.rhs])
        assert classify(grammar, edited).kind == DeltaKind.IDENTICAL

    def test_add_production_is_add_remove(self, grammar):
        edited = add_production(grammar, "F", ["id", "id"])
        assert classify(grammar, edited).kind == DeltaKind.ADD_REMOVE

    def test_remove_production_is_add_remove(self, grammar):
        edited = remove_production(grammar, 6)
        assert classify(grammar, edited).kind == DeltaKind.ADD_REMOVE

    def test_new_terminal_is_terminal_set(self, grammar):
        # A name never seen as an lhs interns as a fresh terminal; the
        # layout grows and the delta must demand a full rebuild.
        edited = replace_rhs(grammar, 6, ["brand_new_terminal"])
        assert classify(grammar, edited).kind == DeltaKind.TERMINALS

    def test_prec_pin_is_rhs(self, grammar):
        production = grammar.productions[3]  # T -> T * F
        edited = replace_rhs(
            grammar, 3, [s.name for s in production.rhs], prec_symbol="+"
        )
        delta = classify(grammar, edited)
        assert delta.kind == DeltaKind.RHS
        assert delta.changed == (3,)

    def test_independent_loads_are_structural(self):
        # Two independent parses intern distinct Symbol objects: never
        # spliceable, whatever the text says.
        first = load_grammar(EXPR).augmented()
        second = load_grammar(EXPR).augmented()
        delta = classify(first, second)
        assert delta.kind in (DeltaKind.STRUCTURAL, DeltaKind.TERMINALS)

    def test_multi_edit_lists_every_changed_index(self, grammar):
        edited = replace_rhs(grammar, 6, ["("])
        edited = replace_rhs(edited, 4, ["F", "*", "F"])
        delta = classify(grammar, edited)
        assert delta.kind == DeltaKind.RHS
        assert delta.changed == (4, 6)
        assert {s.name for s in delta.dirty_nonterminals} == {"T", "F"}


class TestEditConstructors:
    def test_replace_refuses_augmented_start(self, grammar):
        with pytest.raises(ValueError):
            replace_rhs(grammar, 0, ["E"])

    def test_remove_refuses_augmented_start(self, grammar):
        with pytest.raises(ValueError):
            remove_production(grammar, 0)

    def test_add_refuses_terminal_lhs(self, grammar):
        with pytest.raises(ValueError):
            add_production(grammar, "id", ["E"])

    def test_untouched_productions_survive_verbatim(self, grammar):
        edited = replace_rhs(grammar, 6, ["("])
        for index, (p, q) in enumerate(
            zip(grammar.productions, edited.productions)
        ):
            if index == 6:
                continue
            assert p.lhs is q.lhs and p.rhs == q.rhs
            assert p.prec_symbol is q.prec_symbol

    def test_add_appends_at_the_end(self, grammar):
        edited = add_production(grammar, "F", ["id", "id"])
        assert len(edited.productions) == len(grammar.productions) + 1
        appended = edited.productions[-1]
        assert appended.lhs.name == "F"
        assert [s.name for s in appended.rhs] == ["id", "id"]

    def test_remove_reindexes(self, grammar):
        edited = remove_production(grammar, 3)
        assert len(edited.productions) == len(grammar.productions) - 1
        assert [p.index for p in edited.productions] == list(
            range(len(edited.productions))
        )

"""Unit tests: displacement (comb) parse-table compression."""

import pytest

from repro.grammars import corpus
from repro.parser import Parser
from repro.tables import build_lalr_table
from repro.tables.displace import (
    ACTION_ACCEPT,
    ACTION_ERROR,
    ActionDecoder,
    DisplacedTable,
    displace,
    displacement_ratio,
    encode_action,
    pack_rows,
)
from repro.tables.table import ACCEPT, Reduce, Shift


class TestActionEncoding:
    def test_round_trip_all_kinds(self):
        decoder = ActionDecoder()
        for action in [Shift(7), Reduce(3), ACCEPT, None]:
            assert decoder.decode(encode_action(action)) == action

    def test_error_is_zero(self):
        assert encode_action(None) == ACTION_ERROR == 0

    def test_accept_is_bare_tag(self):
        assert encode_action(ACCEPT) == ACTION_ACCEPT

    def test_decoder_interns(self):
        decoder = ActionDecoder()
        code = encode_action(Shift(5))
        assert decoder.decode(code) is decoder.decode(code)

    def test_decoder_rejects_garbage(self):
        with pytest.raises(ValueError):
            ActionDecoder().decode(-1)


class TestPackRows:
    def lookup(self, packed, row, col, n_cols, empty):
        displacements, check, values = packed
        slot = displacements[row] + col
        if 0 <= slot < len(check) and check[slot] == row:
            return values[slot]
        return empty

    def assert_faithful(self, rows, empty):
        packed = pack_rows(rows, empty=empty)
        for r, row in enumerate(rows):
            for c, cell in enumerate(row):
                assert self.lookup(packed, r, c, len(row), empty) == cell, (r, c)

    def test_disjoint_rows_interleave(self):
        # Rows populate disjoint columns; the comb can overlay them.
        rows = [[5, 0, 0, 0], [0, 6, 0, 0], [0, 0, 7, 0]]
        displacements, check, values = pack_rows(rows)
        assert len(values) <= 4  # fully interleaved, no growth
        self.assert_faithful(rows, 0)

    def test_identical_dense_rows_cannot_share(self):
        rows = [[1, 2], [3, 4]]
        self.assert_faithful(rows, 0)
        _, check, _ = pack_rows(rows)
        assert len(check) >= 4

    def test_empty_rows(self):
        self.assert_faithful([[0, 0], [0, 0]], 0)
        displacements, check, values = pack_rows([[0, 0], [0, 0]])
        assert len(check) == 0 and len(values) == 0

    def test_no_rows(self):
        displacements, check, values = pack_rows([])
        assert len(displacements) == len(check) == len(values) == 0

    def test_custom_empty_sentinel(self):
        rows = [[-1, 3, -1], [2, -1, -1]]
        self.assert_faithful(rows, -1)

    def test_deterministic(self):
        rows = [[0, 2, 0, 3], [4, 0, 0, 0], [0, 2, 0, 3], [0, 0, 5, 0]]
        first = pack_rows(rows)
        second = pack_rows(rows)
        assert [list(a) for a in first] == [list(a) for a in second]

    @pytest.mark.parametrize("name", ["expr", "json", "algol_like", "toy_java"])
    def test_faithful_on_corpus_tables(self, name):
        table = build_lalr_table(corpus.load(name, augment=True))
        rows = [[encode_action(cell) for cell in row] for row in table.action_rows]
        self.assert_faithful(rows, 0)
        self.assert_faithful([list(row) for row in table.goto_rows], -1)


class TestDisplacedTable:
    @pytest.fixture
    def expr_table(self):
        return build_lalr_table(corpus.load("expr", augment=True))

    def test_rows_match_dense(self, expr_table):
        displaced = displace(expr_table)
        for state in range(expr_table.n_states):
            dense = expr_table.action_rows[state]
            packed = displaced.action_rows[state]
            assert len(packed) == len(dense)
            assert [packed[t] for t in range(len(dense))] == list(dense)
            dense_goto = expr_table.goto_rows[state]
            packed_goto = displaced.goto_rows[state]
            assert [packed_goto[n] for n in range(len(dense_goto))] == list(dense_goto)

    def test_row_views_raise_on_out_of_range(self, expr_table):
        displaced = displace(expr_table)
        with pytest.raises(IndexError):
            displaced.action_rows[0][displaced.num_terminals]
        with pytest.raises(IndexError):
            displaced.goto_rows[0][-1]

    def test_symbol_lookups_delegate(self, expr_table):
        displaced = displace(expr_table)
        for state in range(expr_table.n_states):
            for terminal, action in expr_table.actions[state].items():
                assert displaced.action(state, terminal) == action
            for nonterminal, target in expr_table.gotos[state].items():
                assert displaced.goto(state, nonterminal) == target

    def test_metadata_preserved(self, expr_table):
        displaced = displace(expr_table)
        assert displaced.method == "lalr1+displacement"
        assert displaced.n_states == expr_table.n_states
        assert displaced.is_deterministic
        assert displaced.conflict_summary() == expr_table.conflict_summary()

    def test_engine_drives_displaced_table(self, expr_table):
        parser = Parser(displace(expr_table))
        assert parser.accepts(["id", "+", "id", "*", "id"])
        assert not parser.accepts(["id", "+"])

    def test_packing_stats_consistent(self, expr_table):
        stats = displace(expr_table).packing_stats()
        assert stats["comb_slots"] == (
            stats["action_comb_slots"] + stats["goto_comb_slots"]
        )
        assert stats["populated_cells"] + stats["comb_gaps"] == stats["comb_slots"]
        assert stats["stored_cells"] < stats["dense_cells"]

    @pytest.mark.parametrize("name", ["expr", "json", "algol_like", "toy_java"])
    def test_ratio_above_one_on_corpus(self, name):
        table = build_lalr_table(corpus.load(name, augment=True))
        assert displacement_ratio(table) > 1.0

    def test_conflicted_table_still_packs(self):
        # Displacement is a storage transform; it carries the conflict
        # metadata through rather than refusing (serialisers refuse).
        table = build_lalr_table(corpus.load("dangling_else", augment=True))
        displaced = DisplacedTable(table)
        assert not displaced.is_deterministic
        assert displaced.unresolved_conflicts == table.unresolved_conflicts

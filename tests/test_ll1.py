"""Unit tests: LL(1) analysis and the predictive parser."""

import pytest

from repro.grammar import load_grammar
from repro.ll import Ll1Analysis, LlParser, predict_set
from repro.parser import ParseError, Parser
from repro.tables import build_lalr_table

LL_EXPR = """
E -> T Etail
Etail -> + T Etail | %empty
T -> F Ttail
Ttail -> * F Ttail | %empty
F -> ( E ) | id
"""


def analysis_for(text):
    return Ll1Analysis(load_grammar(text).augmented())


class TestPredictSets:
    def test_non_nullable_is_first(self):
        analysis = analysis_for("S -> a b | c")
        predicts = [
            sorted(t.name for t in analysis.predict[p.index])
            for p in analysis.grammar.productions[1:]
        ]
        assert predicts == [["a"], ["c"]]

    def test_nullable_adds_follow(self):
        analysis = analysis_for("S -> A b\nA -> a | %empty")
        epsilon = next(
            p for p in analysis.grammar.productions if p.is_epsilon
        )
        assert sorted(t.name for t in analysis.predict[epsilon.index]) == ["b"]

    def test_predict_set_function(self):
        grammar = load_grammar("S -> A b\nA -> a | %empty").augmented()
        from repro.analysis import FirstSets, FollowSets

        first = FirstSets(grammar)
        follow = FollowSets(grammar, first)
        epsilon = next(p for p in grammar.productions if p.is_epsilon)
        assert {t.name for t in predict_set(epsilon, first, follow)} == {"b"}


class TestConflicts:
    def test_ll1_grammar_clean(self):
        analysis = analysis_for(LL_EXPR)
        assert analysis.is_ll1
        assert analysis.conflicts == []

    def test_left_recursion_conflicts(self):
        analysis = analysis_for("E -> E + T | T\nT -> id")
        assert not analysis.is_ll1
        kinds = {c.kind for c in analysis.conflicts}
        assert "FIRST/FIRST" in kinds

    def test_first_first_conflict(self):
        analysis = analysis_for("S -> a b | a c")
        (conflict,) = analysis.conflicts
        assert conflict.kind == "FIRST/FIRST"
        assert {t.name for t in conflict.terminals} == {"a"}

    def test_first_follow_conflict(self):
        # The thesis demo (section 5.8 shape): S -> A | A b; A -> a | eps.
        analysis = analysis_for("S -> A | A b\nA -> a | %empty")
        kinds = {c.kind for c in analysis.conflicts}
        assert "FIRST/FIRST" in kinds  # both alternatives can start with a
        # and the nullable A makes S's alternatives overlap via FOLLOW too.
        assert not analysis.is_ll1

    def test_classic_first_follow(self):
        analysis = analysis_for("S -> A b\nA -> b | %empty")
        (conflict,) = analysis.conflicts
        assert conflict.kind == "FIRST/FOLLOW"
        assert conflict.nonterminal.name == "A"

    def test_describe_mentions_kind(self):
        analysis = analysis_for("S -> a | a")
        text = analysis.conflicts[0].describe()
        assert "FIRST/FIRST" in text and "S" in text

    def test_dangling_else_not_ll1(self):
        from repro.grammars import corpus

        analysis = Ll1Analysis(corpus.load("dangling_else", augment=True))
        assert not analysis.is_ll1


class TestTable:
    def test_cells_reference_productions(self):
        analysis = analysis_for(LL_EXPR)
        grammar = analysis.grammar
        e = grammar.symbols["E"]
        lparen = grammar.symbols["("]
        production = analysis.production_for(e, lparen)
        assert production is not None and production.lhs is e

    def test_empty_cell_is_none(self):
        analysis = analysis_for(LL_EXPR)
        grammar = analysis.grammar
        assert analysis.production_for(grammar.symbols["E"], grammar.symbols["+"]) is None

    def test_format_table(self):
        analysis = analysis_for(LL_EXPR)
        text = analysis.format_table()
        assert "nonterminal" in text
        assert "Etail" in text


class TestLlParser:
    @pytest.fixture
    def parser(self):
        return LlParser(analysis_for(LL_EXPR))

    def test_accepts(self, parser):
        assert parser.accepts("id + id * id".split())
        assert parser.accepts("( id + id ) * id".split())

    def test_rejects(self, parser):
        for bad in ("", "id +", "+ id", "( id", "id id"):
            assert not parser.accepts(bad.split()), bad

    def test_tree_fringe(self, parser):
        sentence = "id * ( id + id )".split()
        tree = parser.parse(sentence)
        fringe = [s.name for s in tree.fringe() if s.name != "%never"]
        # Nullable tails contribute no leaves.
        assert [n for n in fringe] == sentence

    def test_tree_root(self, parser):
        assert parser.parse(["id"]).symbol.name == "E"

    def test_error_reports_expected(self, parser):
        with pytest.raises(ParseError, match="expected one of"):
            parser.parse("+ id".split())

    def test_rejects_conflicted_grammar(self):
        analysis = analysis_for("S -> a b | a c")
        with pytest.raises(ValueError, match="not LL"):
            LlParser(analysis)

    def test_allow_conflicts_override(self):
        analysis = analysis_for("S -> a b | a c")
        parser = LlParser(analysis, allow_conflicts=True)
        assert parser.accepts(["a", "b"])  # first-writer-wins picks a b

    def test_agrees_with_lr_engine(self):
        grammar = load_grammar(LL_EXPR).augmented()
        ll = LlParser(Ll1Analysis(grammar))
        lr = Parser(build_lalr_table(grammar))
        from repro.analysis import SentenceGenerator

        generator = SentenceGenerator(grammar, seed=8)
        for sentence in generator.sentences(25, budget=12):
            assert ll.accepts(sentence) and lr.accepts(sentence)
            assert ll.parse(sentence).fringe() == lr.parse(sentence).fringe()

    def test_unknown_terminal(self, parser):
        with pytest.raises(ParseError, match="unknown terminal"):
            parser.parse(["zzz"])


class TestCorpusLlStatus:
    def test_lr0_demo_is_ll1(self):
        from repro.grammars import corpus

        analysis = Ll1Analysis(corpus.load("lr0_demo", augment=True))
        assert analysis.is_ll1

    def test_left_recursive_corpus_grammars_are_not_ll1(self):
        from repro.grammars import corpus

        for name in ("expr", "json", "unit_chain", "mini_c"):
            analysis = Ll1Analysis(corpus.load(name, augment=True))
            assert not analysis.is_ll1, name

    def test_ll1_and_lalr_are_incomparable_axes(self):
        # lr0_demo: LL(1) and LR(0).  lvalue: LALR(1) but not LL(1)
        # (left recursion via R -> L, L -> * R).  Both facts hold at once.
        from repro.grammars import corpus
        from repro.tables import classify, GrammarClass

        assert Ll1Analysis(corpus.load("lr0_demo", augment=True)).is_ll1
        assert classify(corpus.load("lr0_demo")).grammar_class is GrammarClass.LR0
        assert not Ll1Analysis(corpus.load("lvalue", augment=True)).is_ll1
        assert classify(corpus.load("lvalue")).grammar_class is GrammarClass.LALR1

"""Baseline 1 — SLR(1) lookaheads (DeRemer's "Simple LR", 1971).

SLR approximates LA(q, A -> ω) by the grammar-global FOLLOW(A), ignoring
the state ``q`` entirely.  It is the cheapest method (one FOLLOW
computation, no relations) and the weakest: whenever the same nonterminal
is reduced in two left contexts with different viable lookaheads, FOLLOW
smears them together and may manufacture conflicts that LALR(1) avoids.
The paper positions its algorithm as giving LALR precision at close to SLR
cost; Table 2/Table 4 of EXPERIMENTS.md quantify both halves of that claim.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..analysis.first import FirstSets
from ..analysis.follow import FollowSets
from ..automaton.lr0 import LR0Automaton
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from ..core import instrument
from ..core.relations import ReductionSite


class SlrAnalysis:
    """FOLLOW-based lookaheads arranged site-by-site like LalrAnalysis."""

    def __init__(self, grammar: Grammar, automaton: "LR0Automaton | None" = None):
        if automaton is None:
            automaton = LR0Automaton(grammar)
        self.automaton = automaton
        self.grammar = automaton.grammar
        with instrument.span("baseline.slr.follow"):
            self.first_sets = FirstSets(self.grammar)
            self.follow_sets = FollowSets(self.grammar, self.first_sets)

    def lookahead(self, state_id: int, production_index: int) -> FrozenSet[Symbol]:
        """LA_SLR(q, A -> ω) = FOLLOW(A), independent of q."""
        production = self.grammar.productions[production_index]
        return self.follow_sets[production.lhs]

    def lookahead_table(self) -> Dict[ReductionSite, FrozenSet[Symbol]]:
        """FOLLOW lookaheads for every reduction site of the automaton,
        shaped identically to ``LalrAnalysis.lookahead_table()`` so the
        two can be diffed directly."""
        table: Dict[ReductionSite, FrozenSet[Symbol]] = {}
        for state in self.automaton.states:
            for item in state.reductions:
                if item.production == 0:
                    continue  # the augmented production reduces via accept
                table[(state.state_id, item.production)] = self.lookahead(
                    state.state_id, item.production
                )
        return table


def compute_slr_lookaheads(
    grammar: Grammar, automaton: "LR0Automaton | None" = None
) -> Dict[ReductionSite, FrozenSet[Symbol]]:
    """Convenience one-shot mirror of :func:`repro.core.lalr.compute_lookaheads`."""
    return SlrAnalysis(grammar, automaton).lookahead_table()

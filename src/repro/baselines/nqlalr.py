"""Baseline 4 — NQLALR(1), the "Not Quite LALR" approximation.

Section 7 of DeRemer & Pennello analyses a shortcut several contemporary
generators took: attach Follow sets to *goto target states* instead of to
nonterminal transitions.  Where the exact method keeps ``Follow(p, A)``
and ``Follow(p', A)`` apart, NQLALR merges them whenever
``goto(p, A) == goto(p', A)`` — i.e. its node set is
``{(goto(p, A), A)}`` instead of ``{(p, A)}``.

The merged sets are always **supersets** of the true LALR(1) look-aheads
(never unsound-in-the-accept-direction, but imprecise), so NQLALR can
report conflicts on perfectly good LALR(1) grammars — the paper's reason
for rejecting the shortcut despite its simplicity.  This module exists to
reproduce that finding (Table 5 in EXPERIMENTS.md).

Implementation: project the exact relations through the node merge and
run the same Digraph machinery — which makes the comparison pure: same
traversal, same set representation, only the node identification differs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..automaton.lr0 import LR0Automaton
from ..core import instrument
from ..core.digraph import DigraphStats, digraph
from ..core.relations import LalrRelations, ReductionSite, Transition
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol

#: An NQLALR node: (goto target state, nonterminal).
NqNode = Tuple[int, Symbol]


class NqlalrAnalysis:
    """NQLALR(1) look-ahead sets (a strict superset approximation)."""

    def __init__(self, grammar: Grammar, automaton: "LR0Automaton | None" = None):
        if automaton is None:
            automaton = LR0Automaton(grammar)
        self.automaton = automaton
        self.grammar = automaton.grammar
        self.relations = LalrRelations(automaton)
        self.vocabulary = self.relations.vocabulary
        self.stats = DigraphStats()

        with instrument.span("baseline.nqlalr.merge"):
            # Node merge: transition (p, A) -> nq node (goto(p, A), A).
            self._node_of: Dict[Transition, NqNode] = {}
            for transition in self.relations.transitions:
                state, symbol = transition
                target = automaton.goto(state, symbol)
                self._node_of[transition] = (target, symbol)

            nodes = sorted(set(self._node_of.values()), key=lambda n: (n[0], n[1].index))

            # Project DR and the relations through the merge (unioning edges
            # and initial sets of merged transitions).
            dr: Dict[NqNode, int] = {node: 0 for node in nodes}
            reads_edges: Dict[NqNode, "set[NqNode]"] = {node: set() for node in nodes}
            includes_edges: Dict[NqNode, "set[NqNode]"] = {node: set() for node in nodes}
            for transition in self.relations.transitions:
                node = self._node_of[transition]
                dr[node] |= self.relations.dr[transition]
                for successor in self.relations.reads[transition]:
                    reads_edges[node].add(self._node_of[successor])
                for successor in self.relations.includes[transition]:
                    includes_edges[node].add(self._node_of[successor])

            read_sets, _ = digraph(
                nodes, lambda n: reads_edges[n], lambda n: dr[n], self.stats
            )
            self.follow_sets, self.includes_sccs = digraph(
                nodes, lambda n: includes_edges[n], lambda n: read_sets[n], self.stats
            )

            self.la_masks: Dict[ReductionSite, int] = {}
            for site, lookbacks in self.relations.lookback.items():
                mask = 0
                for transition in lookbacks:
                    mask |= self.follow_sets[self._node_of[transition]]
                self.la_masks[site] = mask

    def lookahead(self, state_id: int, production_index: int) -> FrozenSet[Symbol]:
        return self.vocabulary.symbols(self.la_masks[(state_id, production_index)])

    def lookahead_table(self) -> Dict[ReductionSite, FrozenSet[Symbol]]:
        return {
            site: self.vocabulary.symbols(mask)
            for site, mask in self.la_masks.items()
        }

    def merged_node_count(self) -> Tuple[int, int]:
        """(nq nodes, exact transitions) — how much merging happened."""
        return len(set(self._node_of.values())), len(self.relations.transitions)


def nqlalr_overapproximation_sites(
    grammar: Grammar, automaton: "LR0Automaton | None" = None
) -> "List[Tuple[ReductionSite, FrozenSet[Symbol]]]":
    """Reduction sites where NQLALR's LA strictly exceeds the exact LA,
    with the spurious terminals — the paper's §7 evidence, computable."""
    from ..core.lalr import LalrAnalysis

    if automaton is None:
        automaton = LR0Automaton(grammar)
    exact = LalrAnalysis(grammar, automaton).lookahead_table()
    loose = NqlalrAnalysis(grammar, automaton).lookahead_table()
    out = []
    for site, exact_la in exact.items():
        extra = loose[site] - exact_la
        if extra:
            out.append((site, frozenset(extra)))
    return out

"""Baseline LALR(1)/SLR(1) lookahead methods the paper compares against."""

from .nqlalr import NqlalrAnalysis, nqlalr_overapproximation_sites
from .merge_lr1 import MergedLr1Analysis, compute_merged_lookaheads
from .propagation import PropagationAnalysis, compute_propagated_lookaheads
from .slr import SlrAnalysis, compute_slr_lookaheads

__all__ = [
    "MergedLr1Analysis",
    "NqlalrAnalysis",
    "PropagationAnalysis",
    "SlrAnalysis",
    "compute_merged_lookaheads",
    "compute_propagated_lookaheads",
    "compute_slr_lookaheads",
    "nqlalr_overapproximation_sites",
]

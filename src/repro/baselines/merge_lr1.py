"""Baseline 2 — LALR(1) by merging the canonical LR(1) automaton.

This is the *defining* construction of LALR(1) (Anderson/Eve/Horning's
"conversion method" in the paper's terminology): build Knuth's full LR(1)
collection, then merge states with identical LR(0) cores, unioning their
item lookaheads.  It is exact but expensive — the LR(1) collection can be
dramatically larger than the LR(0) one (exponentially, in the worst case),
which is precisely the cost DeRemer & Pennello's method avoids.

Because merging is the definition, this module doubles as the ground-truth
oracle in the test suite: for every grammar and every reduction site,
``MergedLr1Analysis.lookahead_table() == LalrAnalysis.lookahead_table()``
must hold exactly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from ..automaton.lr0 import LR0Automaton
from ..automaton.lr1 import LR1Automaton
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from ..core import instrument
from ..core.relations import ReductionSite


class MergedLr1Analysis:
    """LALR(1) lookaheads obtained by the LR(1)-merging construction."""

    def __init__(
        self,
        grammar: Grammar,
        automaton: "LR0Automaton | None" = None,
        lr1: "LR1Automaton | None" = None,
    ):
        if automaton is None:
            automaton = LR0Automaton(grammar)
        self.automaton = automaton
        self.grammar = automaton.grammar
        self.lr1 = lr1 or LR1Automaton(self.grammar)
        with instrument.span("baseline.merge_lr1.merge"):
            self._core_to_lr0 = self._map_cores()
            self._lookaheads = self._merge()

    def _map_cores(self) -> Dict[int, int]:
        """Map each LR(1) state to the LR(0) state with the same core.

        The canonical property "the LR(0) cores of the LR(1) collection are
        exactly the LR(0) collection" is asserted here — it doubles as an
        integration check between the two automaton constructions.
        """
        kernel_index = {
            state.kernel: state.state_id for state in self.automaton.states
        }
        mapping: Dict[int, int] = {}
        for state in self.lr1.states:
            core = state.core
            lr0_id = kernel_index.get(core)
            assert lr0_id is not None, (
                f"LR(1) state {state.state_id} has a core unknown to the LR(0) "
                f"automaton — automaton constructions disagree"
            )
            mapping[state.state_id] = lr0_id
        assert len(set(mapping.values())) == len(self.automaton.states), (
            "some LR(0) state has no LR(1) counterpart"
        )
        return mapping

    def _merge(self) -> Dict[ReductionSite, FrozenSet[Symbol]]:
        collected: Dict[ReductionSite, Set[Symbol]] = {}
        for lr1_state in self.lr1.states:
            lr0_id = self._core_to_lr0[lr1_state.state_id]
            for production_index, lookaheads in self.lr1.reductions(
                lr1_state.state_id
            ):
                if production_index == 0:
                    continue  # accept action, not a lookahead-driven reduce
                site = (lr0_id, production_index)
                collected.setdefault(site, set()).update(lookaheads)
        return {site: frozenset(las) for site, las in collected.items()}

    def lookahead(self, state_id: int, production_index: int) -> FrozenSet[Symbol]:
        return self._lookaheads[(state_id, production_index)]

    def lookahead_table(self) -> Dict[ReductionSite, FrozenSet[Symbol]]:
        return dict(self._lookaheads)

    def merged_state_count(self) -> Tuple[int, int]:
        """(LR(1) states, LR(0)/LALR states) — the size blow-up figure."""
        return len(self.lr1), len(self.automaton)


def compute_merged_lookaheads(
    grammar: Grammar, automaton: "LR0Automaton | None" = None
) -> Dict[ReductionSite, FrozenSet[Symbol]]:
    """Convenience one-shot mirror of :func:`repro.core.lalr.compute_lookaheads`."""
    return MergedLr1Analysis(grammar, automaton).lookahead_table()

"""Baseline 3 — lookahead propagation (the yacc / Aho-Sethi-Ullman method).

This is the pre-DeRemer–Pennello technique that practical generators used
(Aho & Ullman's Algorithm 4.63; LaLonde's and Johnson's yacc variants).
It also works on the LR(0) automaton, but instead of building explicit
relations and traversing each once, it:

1. runs a *dummy-lookahead* LR(1) closure over every kernel item to
   discover which lookaheads are generated **spontaneously** and which
   **propagate** from kernel item to kernel item, then
2. iterates propagation over those links until nothing changes.

Step 2 is the inefficiency the paper attacks: each sweep rescans all
propagation links, so the work is O(links × propagation-diameter), versus
the Digraph's single traversal per relation.  The equivalence of results
(tested exhaustively in the suite) with a measurable cost gap (Table 2,
Figure 1) is the reproduction's central comparison.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..analysis.first import FirstSets
from ..automaton.items import Item, next_symbol
from ..automaton.lr0 import LR0Automaton
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from ..core import instrument
from ..core.relations import ReductionSite

#: A kernel slot: (state id, kernel item).
KernelSlot = Tuple[int, Item]


class _Dummy:
    """The out-of-grammar dummy lookahead ``#`` used during discovery."""

    name = "#"
    is_terminal = True
    is_nonterminal = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "#"


class PropagationAnalysis:
    """LALR(1) lookaheads via spontaneous generation + iterated propagation."""

    def __init__(self, grammar: Grammar, automaton: "LR0Automaton | None" = None):
        if automaton is None:
            automaton = LR0Automaton(grammar)
        self.automaton = automaton
        self.grammar = automaton.grammar
        self.first_sets = FirstSets(self.grammar)
        #: number of link-sweep iterations step 2 needed (cost metric).
        self.sweeps = 0
        #: number of set unions performed during propagation (cost metric).
        self.unions = 0
        #: set operations spent in the dummy-lookahead discovery closures
        #: and the final per-state reduce closures — the dominant cost of
        #: this method, which the relation-based DP approach never pays.
        self.closure_ops = 0

        self._lookaheads: Dict[KernelSlot, Set[Symbol]] = {}
        self._links: List[Tuple[KernelSlot, KernelSlot]] = []
        with instrument.span("baseline.propagation.discover"):
            self._discover()
        with instrument.span("baseline.propagation.propagate"):
            self._propagate()
        with instrument.span("baseline.propagation.reduce_sites"):
            self._site_table = self._reduce_sites()
        if instrument.enabled():
            instrument.absorb("propagation", self.cost_summary())

    # -- step 1: discovery ---------------------------------------------------

    def _dummy_closure(
        self, state_id: int, kernel_item: Item
    ) -> Dict[Item, Set[object]]:
        """LR(1) closure of ``[kernel_item, #]`` inside one state."""
        grammar = self.grammar
        first = self.first_sets
        dummy = _DUMMY
        lookaheads: Dict[Item, Set[object]] = {kernel_item: {dummy}}
        worklist = [kernel_item]
        while worklist:
            item = worklist.pop()
            symbol = next_symbol(grammar, item)
            if symbol is None or symbol.is_terminal:
                continue
            production = grammar.productions[item.production]
            tail = production.rhs[item.dot + 1 :]
            terminals, all_nullable = first.of_sequence(tail)
            spawned: Set[object] = set(terminals)
            if all_nullable:
                spawned |= lookaheads[item]
            for target in grammar.productions_for(symbol):
                fresh = Item(target.index, 0)
                self.closure_ops += 1
                existing = lookaheads.get(fresh)
                if existing is None:
                    lookaheads[fresh] = set(spawned)
                    worklist.append(fresh)
                elif not spawned <= existing:
                    existing.update(spawned)
                    worklist.append(fresh)
        return lookaheads

    def _discover(self) -> None:
        automaton = self.automaton
        grammar = self.grammar
        lookaheads = self._lookaheads

        for state in automaton.states:
            for item in state.kernel:
                lookaheads.setdefault((state.state_id, item), set())

        # Seed: production 0 ends in the explicit $end marker, so the start
        # item needs no external lookahead; nothing to seed.
        for state in automaton.states:
            for kernel_item in state.kernel:
                source: KernelSlot = (state.state_id, kernel_item)
                closure = self._dummy_closure(state.state_id, kernel_item)
                for item, las in closure.items():
                    symbol = next_symbol(grammar, item)
                    if symbol is None:
                        continue
                    successor = state.transitions[symbol]
                    target: KernelSlot = (successor, item.advanced())
                    bucket = lookaheads.setdefault(target, set())
                    for la in las:
                        if la is _DUMMY:
                            self._links.append((source, target))
                        else:
                            bucket.add(la)

    # -- step 2: propagation to fixpoint -------------------------------------

    def _propagate(self) -> None:
        lookaheads = self._lookaheads
        changed = True
        while changed:
            changed = False
            self.sweeps += 1
            for source, target in self._links:
                source_set = lookaheads[source]
                target_set = lookaheads[target]
                self.unions += 1
                if not source_set <= target_set:
                    target_set |= source_set
                    changed = True

    # -- step 3: per-site lookaheads ------------------------------------------

    def _reduce_sites(self) -> Dict[ReductionSite, FrozenSet[Symbol]]:
        """Fold kernel lookaheads down to reduction sites.

        Final *kernel* items contribute directly.  Final *closure* items
        (epsilon productions) get the lookaheads a full LR(1) closure of
        the state's now-known kernel lookaheads assigns them.
        """
        grammar = self.grammar
        first = self.first_sets
        table: Dict[ReductionSite, Set[Symbol]] = {}

        for state in self.automaton.states:
            closure_las: Dict[Item, Set[Symbol]] = {}
            worklist: List[Item] = []
            for item in state.kernel:
                las = {
                    la
                    for la in self._lookaheads[(state.state_id, item)]
                    if la is not _DUMMY
                }
                closure_las[item] = set(las)
                worklist.append(item)
            while worklist:
                item = worklist.pop()
                symbol = next_symbol(grammar, item)
                if symbol is None or symbol.is_terminal:
                    continue
                production = grammar.productions[item.production]
                tail = production.rhs[item.dot + 1 :]
                terminals, all_nullable = first.of_sequence(tail)
                spawned: Set[Symbol] = set(terminals)
                if all_nullable:
                    spawned |= closure_las[item]
                for target in grammar.productions_for(symbol):
                    fresh = Item(target.index, 0)
                    self.closure_ops += 1
                    existing = closure_las.get(fresh)
                    if existing is None:
                        closure_las[fresh] = set(spawned)
                        worklist.append(fresh)
                    elif not spawned <= existing:
                        existing.update(spawned)
                        worklist.append(fresh)
            for item, las in closure_las.items():
                if next_symbol(grammar, item) is not None:
                    continue
                if item.production == 0:
                    continue
                site = (state.state_id, item.production)
                table.setdefault(site, set()).update(las)
        return {site: frozenset(las) for site, las in table.items()}

    # -- queries ---------------------------------------------------------

    def lookahead(self, state_id: int, production_index: int) -> FrozenSet[Symbol]:
        return self._site_table[(state_id, production_index)]

    def lookahead_table(self) -> Dict[ReductionSite, FrozenSet[Symbol]]:
        return dict(self._site_table)

    def cost_summary(self) -> Dict[str, int]:
        return {
            "kernel_slots": len(self._lookaheads),
            "propagation_links": len(self._links),
            "sweeps": self.sweeps,
            "unions": self.unions,
            "closure_ops": self.closure_ops,
            "total_ops": self.unions + self.closure_ops,
        }


_DUMMY = _Dummy()


def compute_propagated_lookaheads(
    grammar: Grammar, automaton: "LR0Automaton | None" = None
) -> Dict[ReductionSite, FrozenSet[Symbol]]:
    """Convenience one-shot mirror of :func:`repro.core.lalr.compute_lookaheads`."""
    return PropagationAnalysis(grammar, automaton).lookahead_table()

"""Per-phase input fingerprints for the incremental pipeline.

Every phase of the pipeline is a pure function of (part of) the grammar
plus upstream phase outputs.  This module names each phase's *input*
with a content hash composed from the fine-grained hashes of
:mod:`repro.grammar.fingerprint` — per-production digests, rolled into
per-nonterminal digests, rolled into per-phase digests along the
pipeline's dependency chain::

    grammar ──> lr0 ──> relations ──> digraph.reads ──> digraph.includes ──> la ──> table

Two grammars with equal ``phase_fingerprints()[p]`` necessarily produce
identical phase-``p`` artifacts (the converse does not hold: phases also
reuse artifacts under the finer delta analysis of
:mod:`repro.grammar.delta`, which proves reusability fingerprints alone
cannot).  :class:`~repro.pipeline.session.AnalysisSession` keys its
artifact memo on these, and they are what an on-disk phase store should
key entries on — the ``table`` digest in particular extends the
:func:`~repro.grammar.fingerprint.grammar_fingerprint` scheme the
:class:`~repro.tables.cache.TableCache` already uses.

All digests are hex sha256 strings and depend only on symbol *names*
(never on object identity or interning order), so they are stable
across processes and sessions.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..analysis.nullable import nullable_nonterminals
from ..grammar.fingerprint import (
    grammar_fingerprint,
    production_fingerprints,
    text_fingerprint,
)
from ..grammar.grammar import Grammar
from ..grammar.symbols import ID_LAYOUT_VERSION

__all__ = ["PHASES", "nonterminal_fingerprints", "phase_fingerprints"]

#: The fingerprinted phases, in pipeline order.
PHASES = (
    "grammar",
    "lr0",
    "relations",
    "digraph.reads",
    "digraph.includes",
    "la",
    "table",
)


def nonterminal_fingerprints(grammar: Grammar) -> Dict[str, str]:
    """Per-nonterminal content digest: the nonterminal's name plus its
    productions' digests, in declaration order.

    A nonterminal whose digest is unchanged by an edit contributed the
    same rules before and after — the per-nonterminal unit of change the
    delta machinery dirties closures by.
    """
    per_production = production_fingerprints(grammar)
    buckets: Dict[str, List[str]] = {}
    for production, digest in zip(grammar.productions, per_production):
        buckets.setdefault(production.lhs.name, []).append(digest)
    return {
        name: text_fingerprint(name, *digests)
        for name, digests in buckets.items()
    }


def phase_fingerprints(grammar: Grammar) -> Dict[str, str]:
    """The per-phase input digests for *grammar*, keyed by :data:`PHASES`.

    Each phase digest chains its upstream phase's digest with exactly
    the extra grammar facts that phase consumes:

    - ``lr0``: ID-layout version, start symbol, every production digest
      (the automaton reads productions and the symbol layout);
    - ``relations``: ``lr0`` plus the nullable set (DR/reads/includes
      walks branch on nullability);
    - ``digraph.reads`` / ``digraph.includes``: the chained relation
      passes;
    - ``la``: the ``digraph.includes`` digest (LA is a pure union over
      Follow and lookback);
    - ``table``: ``la`` plus the precedence declarations (conflict
      resolution is the one later consumer of precedence).

    The result is cached on the grammar instance — grammars are immutable
    after construction (every edit helper builds a new object), and a
    session touching the same version repeatedly (classify, memo key,
    artifact bundle) must not re-hash every production each time.
    """
    cached = grammar.__dict__.get("_phase_fingerprints")
    if cached is not None:
        return cached
    productions = production_fingerprints(grammar)
    fingerprints = {"grammar": grammar_fingerprint(grammar)}
    fingerprints["lr0"] = text_fingerprint(
        "lr0", str(ID_LAYOUT_VERSION), grammar.start.name, *productions
    )
    nullable = sorted(symbol.name for symbol in nullable_nonterminals(grammar))
    fingerprints["relations"] = text_fingerprint(
        "relations", fingerprints["lr0"], *nullable
    )
    fingerprints["digraph.reads"] = text_fingerprint(
        "digraph.reads", fingerprints["relations"]
    )
    fingerprints["digraph.includes"] = text_fingerprint(
        "digraph.includes", fingerprints["digraph.reads"]
    )
    fingerprints["la"] = text_fingerprint("la", fingerprints["digraph.includes"])
    precedence = json.dumps(
        sorted(
            (symbol.name, prec.level, prec.assoc.value)
            for symbol, prec in grammar.precedence.items()
        )
    )
    fingerprints["table"] = text_fingerprint(
        "table", fingerprints["la"], precedence
    )
    grammar._phase_fingerprints = fingerprints
    return fingerprints

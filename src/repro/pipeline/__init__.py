"""The fingerprinted phase-graph pipeline with incremental recomputation.

This package turns the one-shot pipeline (grammar → LR(0) → relations →
Digraph → LA → table) into a **session**: phase artifacts are typed,
keyed by composed content fingerprints, and kept current across grammar
edits by recomputing only what an edit invalidated (see
:mod:`repro.pipeline.session` for the full strategy taxonomy).

Quick start::

    from repro.grammar.delta import replace_rhs
    from repro.pipeline import AnalysisSession

    session = AnalysisSession(grammar)
    session.table                      # full build, as usual
    edited = replace_rhs(session.grammar, 5, ["expr", "PLUS", "term"])
    report = session.update(edited)    # delta-scoped: only dirty work
    report.describe()                  # e.g. "splice (rhs): ... [3/41 states recomputed]"
    session.table                      # bit-identical to a fresh build

The one-shot entry points (:class:`repro.core.lalr.LalrAnalysis`,
:func:`repro.tables.build.build_lalr_table`, the CLI builders) are
unchanged and remain bit-for-bit identical; sessions are a strictly
additive layer on top of the same phase functions.
"""

from .fingerprint import PHASES, nonterminal_fingerprints, phase_fingerprints
from .session import (
    SESSION_PHASES,
    AnalysisSession,
    PhaseArtifacts,
    UpdateReport,
)

__all__ = [
    "PHASES",
    "SESSION_PHASES",
    "AnalysisSession",
    "PhaseArtifacts",
    "UpdateReport",
    "nonterminal_fingerprints",
    "phase_fingerprints",
]

"""Long-lived analysis sessions with delta-scoped recomputation.

:class:`AnalysisSession` owns the whole pipeline for one grammar — LR(0)
automaton, DeRemer–Pennello relations, both Digraph passes, LA sets and
the LALR(1) :class:`~repro.tables.table.ParseTable` — as one
:class:`PhaseArtifacts` bundle, and keeps it **current across edits**:

- :meth:`AnalysisSession.update` classifies the edit with
  :func:`repro.grammar.delta.classify`;
- an rhs-only delta runs the splice chain
  (:func:`~repro.automaton.lr0_delta.splice_lr0` →
  :func:`~repro.core.relations_delta.splice_relations` →
  :meth:`~repro.core.lalr.LalrAnalysis.spliced_from` →
  :func:`~repro.tables.build.refill_lalr_table`), recomputing only dirty
  states, relation rows, digraph regions and table rows;
- any structural delta (productions added/removed, terminals changed,
  start or precedence changed, different symbol layout) — or a splice
  guard tripping :class:`~repro.automaton.lr0_delta.IncrementalFallback`
  — rebuilds from scratch instead.  Incremental mode never changes
  results, only latency: every artifact is bit-identical to a
  from-scratch build (the edit-fuzz oracle and the corpus tests assert
  exactly this).

Superseded artifact bundles go into a bounded in-memory memo keyed by
:func:`~repro.pipeline.fingerprint.phase_fingerprints`, so toggling
between grammar versions (undo/redo, A/B experiments) restores whole
bundles without recomputing anything.  When the session is given a
:class:`~repro.tables.cache.TableCache`, full rebuilds read/write the
on-disk table store as well (enable the cache's ``hot_capacity`` to keep
hot tables in memory across sessions).

Reuse decisions surface through :mod:`repro.core.instrument` counters:

- ``phase.reuse`` — phases served by reuse (identical grammar, memo
  hit, or delta-scoped splice);
- ``phase.recompute`` — phases rebuilt from scratch;
- ``phase.fallback`` — updates that attempted a splice and fell back.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..automaton.lr0 import LR0Automaton
from ..automaton.lr0_delta import IncrementalFallback, splice_lr0
from ..core import instrument
from ..core.lalr import LalrAnalysis
from ..core.relations import LalrRelations
from ..core.relations_delta import splice_relations
from ..grammar.delta import GrammarDelta, classify
from ..grammar.grammar import Grammar
from ..tables.build import build_lalr_table, refill_lalr_table
from ..tables.cache import TableCache
from ..tables.table import ParseTable
from .fingerprint import phase_fingerprints

__all__ = ["AnalysisSession", "PhaseArtifacts", "UpdateReport", "SESSION_PHASES"]

#: The artifact-producing phases a session accounts for in its
#: ``phase.*`` counters (the two digraph passes share the ``digraph``
#: entry — they are patched or rebuilt together).
SESSION_PHASES = ("lr0", "relations", "digraph", "la", "table")


class PhaseArtifacts:
    """One grammar version's complete set of typed phase artifacts.

    Attributes:
        grammar: The (augmented) grammar the artifacts belong to.
        fingerprints: Its per-phase input digests
            (:func:`~repro.pipeline.fingerprint.phase_fingerprints`).
        automaton: The LR(0) automaton.
        relations: The DeRemer–Pennello relations, with walk memos.
        analysis: The full look-ahead analysis (Read/Follow masks, SCC
            condensation diagnostics, LA sets).
        table: The LALR(1) parse table.
    """

    __slots__ = (
        "grammar",
        "fingerprints",
        "automaton",
        "relations",
        "analysis",
        "table",
    )

    def __init__(
        self,
        grammar: Grammar,
        fingerprints: Dict[str, str],
        automaton: LR0Automaton,
        relations: LalrRelations,
        analysis: LalrAnalysis,
        table: ParseTable,
    ):
        self.grammar = grammar
        self.fingerprints = fingerprints
        self.automaton = automaton
        self.relations = relations
        self.analysis = analysis
        self.table = table


class UpdateReport:
    """What one :meth:`AnalysisSession.update` call actually did.

    Attributes:
        kind: The classified delta kind (:class:`repro.grammar.delta
            .DeltaKind` constant).
        strategy: ``"noop"`` (identical grammar), ``"memo"`` (bundle
            restored from the in-memory memo), ``"splice"`` (delta-scoped
            recomputation) or ``"rebuild"`` (full pipeline).
        fell_back: True when a splice was attempted and a verification
            guard forced the rebuild.
        reason: One line saying why this strategy was taken.
        dirty_states: States recomputed by the splice (0 otherwise).
        total_states: State count of the automaton after the update.
    """

    __slots__ = (
        "kind",
        "strategy",
        "fell_back",
        "reason",
        "dirty_states",
        "total_states",
    )

    def __init__(
        self,
        kind: str,
        strategy: str,
        fell_back: bool,
        reason: str,
        dirty_states: int = 0,
        total_states: int = 0,
    ):
        self.kind = kind
        self.strategy = strategy
        self.fell_back = fell_back
        self.reason = reason
        self.dirty_states = dirty_states
        self.total_states = total_states

    def describe(self) -> str:
        line = f"{self.strategy} ({self.kind}): {self.reason}"
        if self.strategy == "splice":
            line += f" [{self.dirty_states}/{self.total_states} states recomputed]"
        return line

    def __repr__(self) -> str:
        return f"UpdateReport({self.strategy!r}, kind={self.kind!r}, fell_back={self.fell_back})"


class AnalysisSession:
    """A live pipeline over one evolving grammar.

    Args:
        grammar: The initial grammar (augmented on the way in if needed).
        table_cache: Optional on-disk :class:`TableCache`; full rebuilds
            then load/store the table there.
        memo_size: How many superseded artifact bundles to keep for
            instant restore (0 disables the memo).

    Note:
        For an edit to be delta-scoped it must share the original
        grammar's :class:`~repro.grammar.symbols.SymbolTable` and
        augmentation — exactly what the edit constructors in
        :mod:`repro.grammar.delta` produce.  A grammar re-augmented from
        scratch interns a fresh start symbol and classifies as a
        structural delta (correct, just never incremental).
    """

    def __init__(
        self,
        grammar: Grammar,
        table_cache: "Optional[TableCache]" = None,
        memo_size: int = 8,
    ):
        if not grammar.is_augmented:
            grammar = grammar.augmented()
        self._table_cache = table_cache
        self._memo: "OrderedDict[str, PhaseArtifacts]" = OrderedDict()
        self._memo_size = memo_size
        self.updates = 0
        #: How many updates took each strategy — the session-affinity
        #: evidence the service surfaces per session and in /metrics.
        self.strategy_counts: Dict[str, int] = {
            "noop": 0, "memo": 0, "splice": 0, "rebuild": 0,
        }
        self.artifacts = self._build_full(grammar)

    # -- current-artifact accessors ------------------------------------

    @property
    def grammar(self) -> Grammar:
        return self.artifacts.grammar

    @property
    def automaton(self) -> LR0Automaton:
        return self.artifacts.automaton

    @property
    def relations(self) -> LalrRelations:
        return self.artifacts.relations

    @property
    def analysis(self) -> LalrAnalysis:
        return self.artifacts.analysis

    @property
    def table(self) -> ParseTable:
        return self.artifacts.table

    @property
    def fingerprints(self) -> Dict[str, str]:
        return self.artifacts.fingerprints

    # -- updates -------------------------------------------------------

    def update(self, grammar: Grammar) -> UpdateReport:
        """Bring the session's artifacts up to date with *grammar*.

        Returns an :class:`UpdateReport`; afterwards every accessor
        serves artifacts for *grammar*, bit-identical to what a fresh
        session on *grammar* would hold.
        """
        if not grammar.is_augmented:
            grammar = grammar.augmented()
        self.updates += 1
        report = self._update(grammar)
        self.strategy_counts[report.strategy] += 1
        return report

    def _update(self, grammar: Grammar) -> UpdateReport:
        delta = classify(self.grammar, grammar)
        if delta.is_identical:
            instrument.count("phase.reuse", len(SESSION_PHASES))
            return UpdateReport(delta.kind, "noop", False, delta.detail)

        key = phase_fingerprints(grammar)["grammar"]
        memoized = self._memo.get(key)
        if memoized is not None and _same_layout(memoized.grammar, grammar):
            self._memo.move_to_end(key)
            self._remember(self.artifacts)
            self.artifacts = memoized
            instrument.count("phase.reuse", len(SESSION_PHASES))
            return UpdateReport(
                delta.kind, "memo", False, "restored memoized artifact bundle"
            )

        if delta.is_incremental:
            try:
                return self._splice(grammar, delta)
            except IncrementalFallback as exc:
                instrument.count("phase.fallback", 1)
                report = self._rebuild(grammar, delta, fell_back=True, reason=str(exc))
                return report
        return self._rebuild(
            grammar, delta, fell_back=False, reason=delta.detail
        )

    def _splice(self, grammar: Grammar, delta: GrammarDelta) -> UpdateReport:
        old = self.artifacts
        with instrument.span("session.splice"):
            automaton, dirty, dirty_ids = splice_lr0(
                old.automaton, grammar, delta.changed, delta.dirty_nonterminals
            )
            relations, changed_reads, changed_includes = splice_relations(
                old.relations, automaton, dirty, delta.dirty_nonterminals
            )
            analysis = LalrAnalysis.spliced_from(
                old.analysis, automaton, relations, changed_reads, changed_includes
            )
            table = refill_lalr_table(
                old.table, automaton, analysis.la_masks, old.analysis.la_masks, dirty
            )
        self._remember(old)
        self.artifacts = PhaseArtifacts(
            grammar, phase_fingerprints(grammar), automaton, relations, analysis, table
        )
        instrument.count("phase.reuse", len(SESSION_PHASES))
        return UpdateReport(
            delta.kind,
            "splice",
            False,
            delta.detail,
            dirty_states=len(dirty_ids),
            total_states=len(automaton.states),
        )

    def _rebuild(
        self, grammar: Grammar, delta: GrammarDelta, fell_back: bool, reason: str
    ) -> UpdateReport:
        self._remember(self.artifacts)
        self.artifacts = self._build_full(grammar)
        return UpdateReport(
            delta.kind,
            "rebuild",
            fell_back,
            reason,
            total_states=len(self.artifacts.automaton.states),
        )

    # -- internals -----------------------------------------------------

    def _build_full(self, grammar: Grammar) -> PhaseArtifacts:
        with instrument.span("session.rebuild"):
            automaton = LR0Automaton(grammar)
            analysis = LalrAnalysis(grammar, automaton, record_walks=True)
            if self._table_cache is not None:
                table = self._table_cache.load_or_build(
                    grammar,
                    "lalr1",
                    lambda g: build_lalr_table(
                        g, automaton, la_masks=analysis.la_masks
                    ),
                )
            else:
                table = build_lalr_table(
                    grammar, automaton, la_masks=analysis.la_masks
                )
        instrument.count("phase.recompute", len(SESSION_PHASES))
        return PhaseArtifacts(
            grammar,
            phase_fingerprints(grammar),
            automaton,
            analysis.relations,
            analysis,
            table,
        )

    def _remember(self, artifacts: PhaseArtifacts) -> None:
        if not self._memo_size:
            return
        key = artifacts.fingerprints["grammar"]
        self._memo[key] = artifacts
        self._memo.move_to_end(key)
        while len(self._memo) > self._memo_size:
            self._memo.popitem(last=False)


def _same_layout(old: Grammar, new: Grammar) -> bool:
    """True when the two grammars share their Symbol objects and layout —
    the precondition for serving one's artifacts as the other's (the
    name-based fingerprint alone cannot see object identity)."""
    old_ids, new_ids = old.ids, new.ids
    return old_ids.num_symbols == new_ids.num_symbols and all(
        a is b for a, b in zip(old_ids.by_sid, new_ids.by_sid)
    )

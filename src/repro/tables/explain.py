"""Conflict explanation: concrete inputs that reach a conflict.

A conflict report like "state 41, lookahead `else`: shift/reduce" is
useless to a grammar author who cannot see state 41.  This module turns
it into evidence: a **terminal prefix** that drives the parser exactly
into the conflicted state, followed by the conflicting lookahead.  For
the dangling-else grammar the explanation reads::

    if other · else        (shift/reduce on 'else')

Construction: breadth-first search over the LR(0) automaton's transitions
from the start state, expanding nonterminal edges into their *minimal
terminal yields* (via :func:`repro.analysis.derive.min_yield_lengths`),
taking the first (hence shortest-by-symbols) path to the target state.
Because the path follows real automaton transitions, replaying the
returned prefix through the engine provably reaches the state — a fact
the test suite checks by instrumenting the engine.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, NamedTuple, Optional

from ..analysis.derive import min_yield_lengths, minimal_production_map
from ..automaton.lr0 import LR0Automaton
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from .conflicts import Conflict
from .table import ParseTable


class ConflictExample(NamedTuple):
    """A concrete witness for one conflict.

    Attributes:
        conflict: The conflict being explained.
        prefix: Terminals that drive the parser into the conflict state.
        lookahead: The conflicted terminal (comes next in the input).
    """

    conflict: Conflict
    prefix: List[Symbol]
    lookahead: Symbol

    def describe(self) -> str:
        words = " ".join(s.name for s in self.prefix)
        return (
            f"{self.conflict.kind} on {self.lookahead.name!r} after reading: "
            f"{words or '<nothing>'} · {self.lookahead.name}"
        )


def symbol_path_to_state(automaton: LR0Automaton, target: int) -> "Optional[List[Symbol]]":
    """The shortest symbol sequence (grammar symbols, not yet terminals)
    from state 0 to *target*, or None if unreachable."""
    if target == 0:
        return []
    parents: Dict[int, "tuple[int, Symbol]"] = {}
    queue = deque([0])
    while queue:
        state = queue.popleft()
        for symbol, successor in automaton.states[state].transitions.items():
            if successor in parents or successor == 0:
                continue
            parents[successor] = (state, symbol)
            if successor == target:
                path: List[Symbol] = []
                current = target
                while current != 0:
                    current, symbol = parents[current]
                    path.append(symbol)
                path.reverse()
                return path
            queue.append(successor)
    return None


def terminalise(grammar: Grammar, symbols: List[Symbol]) -> List[Symbol]:
    """Expand each nonterminal of *symbols* into its minimal terminal yield."""
    lengths = min_yield_lengths(grammar)
    minimal = minimal_production_map(grammar, lengths)
    output: List[Symbol] = []
    for symbol in symbols:
        if symbol.is_terminal:
            output.append(symbol)
            continue
        pending = [symbol]
        while pending:
            current = pending.pop(0)
            if current.is_terminal:
                output.append(current)
            else:
                pending[0:0] = list(minimal[current].rhs)
    return output


def explain_conflict(
    automaton: LR0Automaton, conflict: Conflict
) -> Optional[ConflictExample]:
    """Build a witness input for *conflict*, or None when the conflict
    state is unreachable (cannot happen for conflicts reported by the
    table builders, but the API stays total)."""
    grammar = automaton.grammar
    path = symbol_path_to_state(automaton, conflict.state)
    if path is None:
        return None
    prefix = terminalise(grammar, path)
    return ConflictExample(conflict, prefix, conflict.terminal)


def explain_table_conflicts(
    table: ParseTable, automaton: "LR0Automaton | None" = None
) -> List[ConflictExample]:
    """Witnesses for every *unresolved* conflict of an LR(0)-based table.

    (CLR tables live on LR(1) states, which this explainer does not walk;
    classify first and explain on the LALR table, where the same conflicts
    surface with LR(0)-state coordinates.)
    """
    if automaton is None:
        automaton = LR0Automaton(table.grammar)
    examples = []
    for conflict in table.unresolved_conflicts:
        example = explain_conflict(automaton, conflict)
        if example is not None:
            examples.append(example)
    return examples

"""Parse-table representation shared by all four constructions.

A :class:`ParseTable` is the classic ACTION/GOTO pair:

- ``actions[state][terminal]`` is a :class:`Shift`, :class:`Reduce`,
  :class:`Accept` (absent = syntax error);
- ``gotos[state][nonterminal]`` is the successor state.

Alongside the Symbol-keyed dict rows, every table carries **dense
ID-indexed rows** (``action_rows[state][terminal_id]``,
``goto_rows[state][nt_id]``) built from the grammar's
:class:`~repro.grammar.symbols.SymbolIds` layout — the parse engine's
hot loop indexes these flat lists instead of hashing Symbols.

Conflicts found while filling a cell are recorded (see
:mod:`repro.tables.conflicts`), a deterministic winner is kept in the
table (yacc's tie-breaks), and ``table.is_deterministic`` tells whether the
grammar was conflict-free for the construction used.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional

from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from .conflicts import Conflict


class Action:
    """Base class for parse actions (sum type: Shift | Reduce | Accept)."""

    __slots__ = ()

    kind = "action"


class Shift(Action):
    """Shift the lookahead and move to ``state``."""

    __slots__ = ("state",)

    kind = "shift"

    def __init__(self, state: int):
        self.state = state

    def __repr__(self) -> str:
        return f"s{self.state}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Shift) and other.state == self.state

    def __hash__(self) -> int:
        return hash(("shift", self.state))


class Reduce(Action):
    """Reduce by production ``production`` (an index into the grammar)."""

    __slots__ = ("production",)

    kind = "reduce"

    def __init__(self, production: int):
        self.production = production

    def __repr__(self) -> str:
        return f"r{self.production}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Reduce) and other.production == self.production

    def __hash__(self) -> int:
        return hash(("reduce", self.production))


class Accept(Action):
    """Accept the input."""

    __slots__ = ()

    kind = "accept"

    def __repr__(self) -> str:
        return "acc"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Accept)

    def __hash__(self) -> int:
        return hash("accept")


ACCEPT = Accept()


class ParseTable:
    """ACTION/GOTO tables plus conflict metadata for one construction."""

    def __init__(
        self,
        grammar: Grammar,
        method: str,
        actions: List[Dict[Symbol, Action]],
        gotos: List[Dict[Symbol, int]],
        conflicts: List[Conflict],
    ):
        self.grammar = grammar
        #: Which construction produced the table: "lr0", "slr1", "lalr1", "clr1".
        self.method = method
        self.actions = actions
        self.gotos = gotos
        self.conflicts = conflicts

        # Dense ID-indexed twins of the dict rows: the engine's fast path.
        ids = grammar.ids
        terminal_id = ids.terminal_id
        nonterminal_id = ids.nonterminal_id
        num_terminals = ids.num_terminals
        empty_goto_row = array("i", [-1]) * ids.num_nonterminals
        self.action_rows: List[List[Optional[Action]]] = []
        for row in actions:
            dense: List[Optional[Action]] = [None] * num_terminals
            for terminal, action in row.items():
                dense[terminal_id(terminal)] = action
            self.action_rows.append(dense)
        self.goto_rows: List["array"] = []
        for row in gotos:
            goto_dense = array(empty_goto_row.typecode, empty_goto_row)
            for nonterminal, target in row.items():
                goto_dense[nonterminal_id(nonterminal)] = target
            self.goto_rows.append(goto_dense)

    @classmethod
    def from_rows(
        cls,
        grammar: Grammar,
        method: str,
        actions: List[Dict[Symbol, Action]],
        gotos: List[Dict[Symbol, int]],
        conflicts: List[Conflict],
        action_rows: "List[List[Optional[Action]]]",
        goto_rows: "List[array]",
    ) -> "ParseTable":
        """Assemble a table from prebuilt dict *and* dense rows.

        The incremental refill path uses this to share the untouched
        rows of a previous table object-for-object instead of paying
        ``__init__``'s dense-row reconstruction for every state.  The
        caller guarantees the dense rows mirror the dict rows.
        """
        self = object.__new__(cls)
        self.grammar = grammar
        self.method = method
        self.actions = actions
        self.gotos = gotos
        self.conflicts = conflicts
        self.action_rows = action_rows
        self.goto_rows = goto_rows
        return self

    @property
    def n_states(self) -> int:
        return len(self.actions)

    @property
    def is_deterministic(self) -> bool:
        """True iff no *unresolved* conflicts remain.

        Conflicts settled by precedence/associativity declarations do not
        count against determinism (they are resolutions, as in yacc).
        """
        return not self.unresolved_conflicts

    @property
    def unresolved_conflicts(self) -> List[Conflict]:
        return [c for c in self.conflicts if not c.resolved_by_precedence]

    def action(self, state: int, terminal: Symbol) -> Optional[Action]:
        """The parse action for (state, lookahead), or None (error)."""
        return self.actions[state].get(terminal)

    def goto(self, state: int, nonterminal: Symbol) -> Optional[int]:
        return self.gotos[state].get(nonterminal)

    def action_by_id(self, state: int, terminal_id: int) -> Optional[Action]:
        """The parse action for (state, terminal ID) — no Symbol hashing."""
        return self.action_rows[state][terminal_id]

    def goto_by_id(self, state: int, nt_id: int) -> int:
        """The goto target for (state, nonterminal ID), or -1."""
        return self.goto_rows[state][nt_id]

    def conflict_summary(self) -> Dict[str, int]:
        """Counts by conflict kind (shift/reduce vs reduce/reduce)."""
        summary = {"shift_reduce": 0, "reduce_reduce": 0, "resolved": 0}
        for conflict in self.conflicts:
            if conflict.resolved_by_precedence:
                summary["resolved"] += 1
            elif conflict.kind == "shift/reduce":
                summary["shift_reduce"] += 1
            else:
                summary["reduce_reduce"] += 1
        return summary

    def size_cells(self) -> int:
        """Number of populated table cells (actions + gotos)."""
        return sum(len(row) for row in self.actions) + sum(
            len(row) for row in self.gotos
        )

    def format(self, max_states: int = 0) -> str:
        """Render the table as aligned text (like the tables in parsing
        textbooks); *max_states* truncates large tables for display."""
        terminals = [t for t in self.grammar.terminals]
        nonterminals = [
            nt for nt in self.grammar.nonterminals if nt is not self.grammar.start
        ]
        header = ["state"] + [t.name for t in terminals] + [
            nt.name for nt in nonterminals
        ]
        rows: List[List[str]] = [header]
        states = range(self.n_states if not max_states else min(self.n_states, max_states))
        for state in states:
            row = [str(state)]
            for terminal in terminals:
                action = self.actions[state].get(terminal)
                row.append(repr(action) if action is not None else "")
            for nonterminal in nonterminals:
                target = self.gotos[state].get(nonterminal)
                row.append(str(target) if target is not None else "")
            rows.append(row)
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
            for row in rows
        ]
        if max_states and self.n_states > max_states:
            lines.append(f"... ({self.n_states - max_states} more states)")
        return "\n".join(lines)

"""Hot-loop specialization of parse tables: default reductions + fusion.

The interpreted engine pays, per action, two list indexings, an
attribute load and a string compare (``action.kind``).  This module
precomputes a :class:`SpecializedTable` the engine can drive with plain
integer arithmetic instead:

- ``action_codes`` — the dense ACTION matrix flattened row-major into
  one Python list of encoded ints (the shared encoding from
  :mod:`repro.tables.displace`: ``0`` error, ``(s << 2) | 1`` shift,
  ``(p << 2) | 2`` reduce, ``3`` accept), so a lookup is
  ``codes[state * num_terminals + tid]`` and dispatch is ``code & 3``;
- ``goto_codes`` — the GOTO matrix flattened the same way (``-1``
  absent);
- ``arities`` / ``lhs_nts`` — per-production RHS length and LHS
  nonterminal index, so a reduction never touches the Production object
  until the semantic callback needs it;
- ``default_codes`` — per-state *default reduction* entries in the
  yacc/bison tradition, but under a strict guard: a state gets a default
  only when **every** terminal column (including the end marker) holds
  the *same* reduce action.  Classic generators also default-reduce
  states whose rows still contain error cells and accept the resulting
  delayed error detection; this repo pins error positions, messages and
  expected sets byte-identical across representations, so only the
  fully-uniform rows — where consulting the look-ahead provably cannot
  change the outcome — qualify.  ``default_codes[state]`` is the encoded
  reduce, or ``-1``.

The engine's specialized loop (:meth:`repro.parser.engine.Parser`)
additionally *fuses* reduce→goto chains: after a reduction lands in a
new state it dispatches again immediately — through ``default_codes``
when the state qualifies, through a real ``action_codes`` lookup
otherwise — without bouncing through the generic outer loop.  Every step
still charges the budget and checks the token exactly like the plain
loop, so parses, budget exhaustion points, instrument counters and
diagnostics are byte-identical (the representation-parity suite and the
fuzz oracle pin this corpus-wide).

``SpecializedTable`` keeps the full ParseTable-compatible surface —
lazy ``action_rows``/``goto_rows`` views decode the flat codes back into
shared :class:`~repro.tables.table.Action` objects — so ``_syntax_error``
expected sets and :class:`~repro.parser.recovery.RecoveringParser` work
unchanged on top of it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..grammar.symbols import Symbol
from .displace import (
    ACTION_ACCEPT,
    ACTION_ERROR,
    ACTION_REDUCE,
    ACTION_SHIFT,
    ActionDecoder,
    encode_action,
)
from .table import Action, ParseTable

__all__ = ["SpecializedTable", "specialize", "specialized_view"]


class _CodedActionRow:
    """One state's ACTION row, viewed through the flat code list.

    Supports what ``_syntax_error`` and panic-mode recovery drive:
    ``row[tid]`` (an :class:`Action` or None) and ``len(row)``.
    """

    __slots__ = ("_codes", "_base", "_width", "_decoder")

    def __init__(self, codes: "List[int]", base: int, width: int,
                 decoder: ActionDecoder):
        self._codes = codes
        self._base = base
        self._width = width
        self._decoder = decoder

    def __len__(self) -> int:
        return self._width

    def __getitem__(self, terminal_id: int) -> "Optional[Action]":
        if not 0 <= terminal_id < self._width:
            raise IndexError(terminal_id)
        return self._decoder.decode(self._codes[self._base + terminal_id])


class _CodedGotoRow:
    """One state's GOTO row over the flat code list (``-1`` absent)."""

    __slots__ = ("_codes", "_base", "_width")

    def __init__(self, codes: "List[int]", base: int, width: int):
        self._codes = codes
        self._base = base
        self._width = width

    def __len__(self) -> int:
        return self._width

    def __getitem__(self, nt_id: int) -> int:
        if not 0 <= nt_id < self._width:
            raise IndexError(nt_id)
        return self._codes[self._base + nt_id]


class SpecializedTable:
    """A ParseTable recompiled into flat integer arrays for the engine.

    A drop-in row *representation* like :class:`DisplacedTable` and
    :class:`BinaryTable` — same grammar, same conflicts, same
    ``action_rows``/``goto_rows`` surface — plus the specialized-loop
    extras (``action_codes``/``goto_codes``/``default_codes``/
    ``arities``/``lhs_nts``) that :class:`~repro.parser.engine.Parser`
    detects via ``is_specialized``.
    """

    is_specialized = True

    def __init__(self, table: ParseTable):
        self.grammar = table.grammar
        self.method = table.method + "+specialized"
        self.actions = table.actions
        self.gotos = table.gotos
        self.conflicts = table.conflicts
        ids = self.grammar.ids
        self.num_terminals = ids.num_terminals
        self.num_nonterminals = ids.num_nonterminals
        self.decoder = ActionDecoder()

        width = self.num_terminals
        # Plain Python lists, not array('i'): the hot loop reads these
        # constantly and list indexing returns the stored int without a
        # per-read box.
        action_codes: "List[int]" = []
        default_codes: "List[int]" = []
        for row in table.action_rows:
            coded = [encode_action(cell) for cell in row]
            action_codes.extend(coded)
            first = coded[0] if coded else ACTION_ERROR
            uniform = (
                (first & 3) == ACTION_REDUCE
                and all(code == first for code in coded)
            )
            default_codes.append(first if uniform else -1)
        self.action_codes = action_codes
        self.default_codes = default_codes

        goto_codes: "List[int]" = []
        for goto_row in table.goto_rows:
            goto_codes.extend(goto_row)
        self.goto_codes = goto_codes

        productions = self.grammar.productions
        self.arities = [len(p.rhs_sids) for p in productions]
        self.lhs_nts = [p.lhs_sid - width for p in productions]

        self.action_rows: "List[_CodedActionRow]" = [
            _CodedActionRow(action_codes, state * width, width, self.decoder)
            for state in range(len(table.actions))
        ]
        self.goto_rows: "List[_CodedGotoRow]" = [
            _CodedGotoRow(goto_codes, state * self.num_nonterminals,
                          self.num_nonterminals)
            for state in range(len(table.gotos))
        ]

    # -- ParseTable-compatible surface ---------------------------------

    @property
    def n_states(self) -> int:
        return len(self.action_rows)

    @property
    def is_deterministic(self) -> bool:
        return not self.unresolved_conflicts

    @property
    def unresolved_conflicts(self):
        return [c for c in self.conflicts if not c.resolved_by_precedence]

    def action(self, state: int, terminal: Symbol) -> "Optional[Action]":
        return self.actions[state].get(terminal)

    def goto(self, state: int, nonterminal: Symbol) -> "Optional[int]":
        return self.gotos[state].get(nonterminal)

    def action_by_id(self, state: int, terminal_id: int) -> "Optional[Action]":
        return self.action_rows[state][terminal_id]

    def goto_by_id(self, state: int, nt_id: int) -> int:
        return self.goto_rows[state][nt_id]

    def conflict_summary(self) -> "Dict[str, int]":
        summary = {"shift_reduce": 0, "reduce_reduce": 0, "resolved": 0}
        for conflict in self.conflicts:
            if conflict.resolved_by_precedence:
                summary["resolved"] += 1
            elif conflict.kind == "shift/reduce":
                summary["shift_reduce"] += 1
            else:
                summary["reduce_reduce"] += 1
        return summary

    # -- accounting -----------------------------------------------------

    def specialization_stats(self) -> "Dict[str, int]":
        """Machine-independent figures, pure functions of the table (the
        hot-loop bench drift-checks these)."""
        populated = sum(1 for code in self.action_codes if code != ACTION_ERROR)
        return {
            "states": self.n_states,
            "action_cells": len(self.action_codes),
            "populated_cells": populated,
            "default_states": sum(1 for c in self.default_codes if c >= 0),
            "shift_cells": sum(
                1 for c in self.action_codes if (c & 3) == ACTION_SHIFT
            ),
            "reduce_cells": sum(
                1 for c in self.action_codes
                if (c & 3) == ACTION_REDUCE and c != ACTION_ERROR
            ),
            "accept_cells": sum(
                1 for c in self.action_codes if c == ACTION_ACCEPT
            ),
        }


def specialize(table: ParseTable) -> SpecializedTable:
    """Recompile *table* (any dense-row representation) for the hot loop."""
    return SpecializedTable(table)


def specialized_view(table) -> SpecializedTable:
    """A memoized :func:`specialize` of *table*.

    The service parse path calls this per request on tables that come off
    the hot LRU; recompiling once per table object (not per request) keeps
    the specialization cost off the steady-state path.  Safe under the
    service's thread executor: the build is idempotent and the attribute
    publish is atomic.
    """
    if getattr(table, "is_specialized", False):
        return table
    cached = getattr(table, "_specialized_view", None)
    if cached is None:
        cached = SpecializedTable(table)
        try:
            table._specialized_view = cached
        except AttributeError:  # slotted/frozen table: recompile per call
            pass
    return cached

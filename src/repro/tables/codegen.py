"""Standalone-parser code generation.

What makes a library a parser *generator*: emit a self-contained Python
module — tables plus a driver, no ``repro`` import — from any
:class:`~repro.tables.table.ParseTable`.  The emitted module exposes:

- ``parse(tokens, reduce_fn=None, shift_fn=None)`` — the LR driver;
  tokens are ``(terminal_name, value)`` pairs or bare terminal names.
  Without callbacks it returns nested ``(production_index, children...)``
  tuples; leaves are the token values.
- ``PRODUCTIONS`` — ``(lhs_name, rhs_length, rhs_names)`` per production,
  so reduce callbacks can dispatch.
- ``ACTIONS`` / ``GOTOS`` — the raw tables (dicts keyed by terminal /
  nonterminal name).
- ``SyntaxErrorLR`` — the error type, carrying position and expected set.

The emitted text is deterministic for a given table, making generated
parsers diff-friendly — and letting the test suite assert reproducibility.
"""

from __future__ import annotations

import io
from typing import List

from .table import ParseTable

_DRIVER = '''
class SyntaxErrorLR(Exception):
    """Raised on invalid input: position, offending name, expected names."""

    def __init__(self, position, token_name, expected):
        super().__init__(
            "syntax error at position %d: unexpected %s; expected one of: %s"
            % (position, token_name, ", ".join(sorted(expected)) or "<nothing>")
        )
        self.position = position
        self.token_name = token_name
        self.expected = expected


def parse(tokens, reduce_fn=None, shift_fn=None):
    """Parse a token iterable; see the module docstring for conventions."""
    if reduce_fn is None:
        reduce_fn = lambda production_index, children: tuple(
            [production_index] + list(children)
        )
    if shift_fn is None:
        shift_fn = lambda name, value: value

    stream = []
    for token in tokens:
        if isinstance(token, str):
            stream.append((token, token))
        else:
            name, value = token
            stream.append((name, value))
    stream.append((END, None))

    state_stack = [0]
    value_stack = []
    position = 0
    while True:
        name, value = stream[position]
        action = ACTIONS[state_stack[-1]].get(name)
        if action is None:
            raise SyntaxErrorLR(
                position,
                name if name != END else "end of input",
                set(ACTIONS[state_stack[-1]]),
            )
        kind = action[0]
        if kind == "s":
            value_stack.append(shift_fn(name, value))
            state_stack.append(action[1])
            position += 1
        elif kind == "r":
            production_index = action[1]
            _, arity, _ = PRODUCTIONS[production_index]
            if arity:
                children = value_stack[-arity:]
                del value_stack[-arity:]
                del state_stack[-arity:]
            else:
                children = []
            value_stack.append(reduce_fn(production_index, children))
            state_stack.append(GOTOS[state_stack[-1]][PRODUCTIONS[production_index][0]])
        else:  # accept
            return value_stack[0]


def accepts(tokens):
    """True iff the token iterable is a sentence of the grammar."""
    try:
        parse(tokens)
    except SyntaxErrorLR:
        return False
    return True
'''


def generate_parser_module(table: ParseTable, name: str = "") -> str:
    """Render *table* as standalone Python source text."""
    grammar = table.grammar
    if not grammar.is_augmented:
        raise ValueError("code generation expects a table over an augmented grammar")
    if table.unresolved_conflicts:
        raise ValueError(
            f"refusing to generate from a table with "
            f"{len(table.unresolved_conflicts)} unresolved conflicts"
        )

    out = io.StringIO()
    title = name or grammar.name or "grammar"
    out.write(f'"""LR parser for {title!r} — GENERATED, do not edit.\n\n')
    out.write(f"method: {table.method}; states: {table.n_states}; ")
    out.write(f"productions: {len(grammar.productions)}.\n")
    out.write('"""\n\n')
    out.write(f"END = {grammar.eof.name!r}\n\n")

    out.write("PRODUCTIONS = [\n")
    for production in grammar.productions:
        rhs_names = tuple(s.name for s in production.rhs)
        out.write(
            f"    ({production.lhs.name!r}, {len(production.rhs)}, {rhs_names!r}),\n"
        )
    out.write("]\n\n")

    out.write("ACTIONS = [\n")
    for state in range(table.n_states):
        cells: List[str] = []
        for terminal, action in sorted(
            table.actions[state].items(), key=lambda kv: kv[0].name
        ):
            if action.kind == "shift":
                cells.append(f"{terminal.name!r}: ('s', {action.state})")
            elif action.kind == "reduce":
                cells.append(f"{terminal.name!r}: ('r', {action.production})")
            else:
                cells.append(f"{terminal.name!r}: ('a',)")
        out.write("    {" + ", ".join(cells) + "},\n")
    out.write("]\n\n")

    out.write("GOTOS = [\n")
    for state in range(table.n_states):
        cells = [
            f"{nonterminal.name!r}: {target}"
            for nonterminal, target in sorted(
                table.gotos[state].items(), key=lambda kv: kv[0].name
            )
        ]
        out.write("    {" + ", ".join(cells) + "},\n")
    out.write("]\n\n")

    out.write(_DRIVER.lstrip("\n"))
    return out.getvalue()


def write_parser_module(table: ParseTable, path: str, name: str = "") -> None:
    """Generate and write the module to *path*."""
    source = generate_parser_module(table, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(source)

"""Standalone-parser code generation.

What makes a library a parser *generator*: emit a self-contained Python
module — tables plus a driver, no ``repro`` import — from any
:class:`~repro.tables.table.ParseTable`.  The emitted module exposes:

- ``parse(tokens, reduce_fn=None, shift_fn=None)`` — the LR driver;
  tokens are ``(terminal_name, value)`` pairs or bare terminal names,
  consumed **lazily** from the iterable (unbounded generators work;
  memory stays O(parse stack)).  Without callbacks it returns nested
  ``(production_index, children...)`` tuples; leaves are token values.
- ``PRODUCTIONS`` — ``(lhs_name, rhs_length, rhs_names)`` per production,
  so reduce callbacks can dispatch (identical across styles).
- ``SyntaxErrorLR`` — the error type, carrying position and expected
  set.  Expected sets hold *display* names: the end marker is spelled
  ``"end of input"``, matching the engine's diagnostics exactly (the
  test suite asserts message parity on the corpus).
- ``accepts(tokens)`` — True iff the input is a sentence.

Three table **styles** (``generate_parser_module(..., style=...)``):

- ``"dict"`` — per-state dicts keyed by symbol name (``ACTIONS`` /
  ``GOTOS``), the most readable output;
- ``"dense"`` — flat ``array('i')`` ACTION/GOTO matrices indexed by
  ``state * width + id`` with the integer action encoding of
  :mod:`repro.tables.displace`;
- ``"displace"`` — the dense matrices comb-packed into shared
  check/value arrays with per-state displacements (the smallest output
  on large grammars).

The emitted text is deterministic for a given (table, style), making
generated parsers diff-friendly — and letting the test suite assert
reproducibility.
"""

from __future__ import annotations

import io
from array import array
from typing import List

from .displace import encode_action, pack_rows
from .table import ParseTable

#: Styles accepted by :func:`generate_parser_module`.
STYLES = ("dict", "dense", "displace")

_COMMON = '''
class SyntaxErrorLR(Exception):
    """Raised on invalid input: position, offending name, expected names.

    ``expected`` holds display names: the end marker is spelled
    "end of input", never the internal terminal name.
    """

    def __init__(self, position, token_name, expected):
        super().__init__(
            "syntax error at position %d: unexpected %s; expected one of: %s"
            % (position, token_name, ", ".join(sorted(expected)) or "<nothing>")
        )
        self.position = position
        self.token_name = token_name
        self.expected = expected


def _display(name):
    return "end of input" if name == END else name


def _stream(tokens):
    # Lazily normalise the token iterable: tokens are pulled one at a
    # time, so unbounded generators work and peak memory stays
    # O(parse stack), never O(input length).  The end marker is appended
    # without materialising the input.
    for token in tokens:
        if isinstance(token, str):
            yield token, token
        else:
            name, value = token
            yield name, value
    yield END, None


def accepts(tokens):
    """True iff the token iterable is a sentence of the grammar."""
    try:
        parse(tokens)
    except SyntaxErrorLR:
        return False
    return True
'''

_DICT_DRIVER = '''
def _expected(state):
    return set(map(_display, ACTIONS[state]))


def parse(tokens, reduce_fn=None, shift_fn=None):
    """Parse a token iterable; see the module docstring for conventions."""
    if reduce_fn is None:
        reduce_fn = lambda production_index, children: tuple(
            [production_index] + list(children)
        )
    if shift_fn is None:
        shift_fn = lambda name, value: value

    stream = _stream(tokens)
    state_stack = [0]
    value_stack = []
    position = 0
    name, value = next(stream)
    while True:
        action = ACTIONS[state_stack[-1]].get(name)
        if action is None:
            raise SyntaxErrorLR(
                position, _display(name), _expected(state_stack[-1])
            )
        kind = action[0]
        if kind == "s":
            value_stack.append(shift_fn(name, value))
            state_stack.append(action[1])
            position += 1
            name, value = next(stream)
        elif kind == "r":
            production_index = action[1]
            lhs_name, arity, _ = PRODUCTIONS[production_index]
            if arity:
                children = value_stack[-arity:]
                del value_stack[-arity:]
                del state_stack[-arity:]
            else:
                children = []
            value_stack.append(reduce_fn(production_index, children))
            state_stack.append(GOTOS[state_stack[-1]][lhs_name])
        else:  # accept
            return value_stack[0]
'''

_DENSE_LOOKUPS = '''
def _action(state, tid):
    return ACTIONS[state * T_COUNT + tid]


def _goto(state, nt_id):
    return GOTOS[state * N_COUNT + nt_id]
'''

_DISPLACE_LOOKUPS = '''
def _action(state, tid):
    slot = ACTION_DISP[state] + tid
    if 0 <= slot < ACTION_SLOTS and ACTION_CHECK[slot] == state:
        return ACTION_VALUE[slot]
    return 0


def _goto(state, nt_id):
    slot = GOTO_DISP[state] + nt_id
    if 0 <= slot < GOTO_SLOTS and GOTO_CHECK[slot] == state:
        return GOTO_VALUE[slot]
    return -1
'''

_PACKED_DRIVER = '''
def _expected(state):
    return {
        _display(TERMINALS[t]) for t in range(T_COUNT) if _action(state, t)
    }


def parse(tokens, reduce_fn=None, shift_fn=None):
    """Parse a token iterable; see the module docstring for conventions."""
    if reduce_fn is None:
        reduce_fn = lambda production_index, children: tuple(
            [production_index] + list(children)
        )
    if shift_fn is None:
        shift_fn = lambda name, value: value

    stream = _stream(tokens)
    state_stack = [0]
    value_stack = []
    position = 0
    name, value = next(stream)
    tid = TERMINAL_ID.get(name)
    while True:
        code = _action(state_stack[-1], tid) if tid is not None else 0
        if not code:
            raise SyntaxErrorLR(
                position, _display(name), _expected(state_stack[-1])
            )
        tag = code & 3
        if tag == 1:  # shift
            value_stack.append(shift_fn(name, value))
            state_stack.append(code >> 2)
            position += 1
            name, value = next(stream)
            tid = TERMINAL_ID.get(name)
        elif tag == 2:  # reduce
            production_index = code >> 2
            arity = PRODUCTIONS[production_index][1]
            if arity:
                children = value_stack[-arity:]
                del value_stack[-arity:]
                del state_stack[-arity:]
            else:
                children = []
            value_stack.append(reduce_fn(production_index, children))
            state_stack.append(_goto(state_stack[-1], LHS_NT[production_index]))
        else:  # accept
            return value_stack[0]
'''


def _emit_int_array(out: "io.StringIO", name: str, values: "array | List[int]") -> None:
    cells = list(values)
    if not cells:
        out.write(f"{name} = array('i', [])\n")
        return
    out.write(f"{name} = array('i', [\n")
    for start in range(0, len(cells), 12):
        chunk = ", ".join(str(v) for v in cells[start : start + 12])
        out.write(f"    {chunk},\n")
    out.write("])\n")


def _emit_productions(out: "io.StringIO", table: ParseTable) -> None:
    out.write("PRODUCTIONS = [\n")
    for production in table.grammar.productions:
        rhs_names = tuple(s.name for s in production.rhs)
        out.write(
            f"    ({production.lhs.name!r}, {len(production.rhs)}, {rhs_names!r}),\n"
        )
    out.write("]\n\n")


def _emit_dict_tables(out: "io.StringIO", table: ParseTable) -> None:
    out.write("ACTIONS = [\n")
    for state in range(table.n_states):
        cells: List[str] = []
        for terminal, action in sorted(
            table.actions[state].items(), key=lambda kv: kv[0].name
        ):
            if action.kind == "shift":
                cells.append(f"{terminal.name!r}: ('s', {action.state})")
            elif action.kind == "reduce":
                cells.append(f"{terminal.name!r}: ('r', {action.production})")
            else:
                cells.append(f"{terminal.name!r}: ('a',)")
        out.write("    {" + ", ".join(cells) + "},\n")
    out.write("]\n\n")

    out.write("GOTOS = [\n")
    for state in range(table.n_states):
        cells = [
            f"{nonterminal.name!r}: {target}"
            for nonterminal, target in sorted(
                table.gotos[state].items(), key=lambda kv: kv[0].name
            )
        ]
        out.write("    {" + ", ".join(cells) + "},\n")
    out.write("]\n\n")


def _emit_packed_prelude(out: "io.StringIO", table: ParseTable) -> None:
    """The symbol/production metadata both packed styles share."""
    ids = table.grammar.ids
    out.write("from array import array\n\n")
    out.write(f"T_COUNT = {ids.num_terminals}\n")
    out.write(f"N_COUNT = {ids.num_nonterminals}\n\n")
    names = ", ".join(repr(t.name) for t in ids.terminals)
    out.write(f"TERMINALS = [{names}]\n")
    out.write(
        "TERMINAL_ID = {name: tid for tid, name in enumerate(TERMINALS)}\n\n"
    )
    num_terminals = ids.num_terminals
    lhs_nt = [p.lhs_sid - num_terminals for p in table.grammar.productions]
    _emit_int_array(out, "LHS_NT", lhs_nt)
    out.write("\n")


def _encoded_action_rows(table: ParseTable) -> "List[List[int]]":
    return [[encode_action(cell) for cell in row] for row in table.action_rows]


def _emit_dense_tables(out: "io.StringIO", table: ParseTable) -> None:
    actions = array("i")
    for row in _encoded_action_rows(table):
        actions.extend(row)
    gotos = array("i")
    for row in table.goto_rows:
        gotos.extend(row)
    _emit_int_array(out, "ACTIONS", actions)
    out.write("\n")
    _emit_int_array(out, "GOTOS", gotos)
    out.write("\n")


def _emit_displaced_tables(out: "io.StringIO", table: ParseTable) -> None:
    action_disp, action_check, action_value = pack_rows(
        _encoded_action_rows(table), empty=0
    )
    goto_disp, goto_check, goto_value = pack_rows(
        [list(row) for row in table.goto_rows], empty=-1
    )
    for label, section in [
        ("ACTION_DISP", action_disp),
        ("ACTION_CHECK", action_check),
        ("ACTION_VALUE", action_value),
        ("GOTO_DISP", goto_disp),
        ("GOTO_CHECK", goto_check),
        ("GOTO_VALUE", goto_value),
    ]:
        _emit_int_array(out, label, section)
        out.write("\n")
    out.write(f"ACTION_SLOTS = {len(action_check)}\n")
    out.write(f"GOTO_SLOTS = {len(goto_check)}\n\n")


def generate_parser_module(
    table: ParseTable, name: str = "", style: str = "dict"
) -> str:
    """Render *table* as standalone Python source text.

    *style* selects the table representation: ``"dict"`` (per-state
    dicts), ``"dense"`` (flat ``array('i')`` matrices) or ``"displace"``
    (comb-packed arrays).  Parse results and diagnostics are identical
    across styles; only storage and lookup mechanics differ.
    """
    if style not in STYLES:
        raise ValueError(f"unknown codegen style {style!r} (known: {STYLES})")
    grammar = table.grammar
    if not grammar.is_augmented:
        raise ValueError("code generation expects a table over an augmented grammar")
    if table.unresolved_conflicts:
        raise ValueError(
            f"refusing to generate from a table with "
            f"{len(table.unresolved_conflicts)} unresolved conflicts"
        )

    out = io.StringIO()
    title = name or grammar.name or "grammar"
    out.write(f'"""LR parser for {title!r} — GENERATED, do not edit.\n\n')
    out.write(f"method: {table.method}; states: {table.n_states}; ")
    out.write(f"productions: {len(grammar.productions)}; style: {style}.\n")
    out.write('"""\n\n')
    out.write(f"END = {grammar.eof.name!r}\n\n")

    if style == "dict":
        _emit_productions(out, table)
        _emit_dict_tables(out, table)
        out.write(_COMMON.lstrip("\n"))
        out.write("\n")
        out.write(_DICT_DRIVER.lstrip("\n"))
    else:
        _emit_packed_prelude(out, table)
        _emit_productions(out, table)
        if style == "dense":
            _emit_dense_tables(out, table)
            lookups = _DENSE_LOOKUPS
        else:
            _emit_displaced_tables(out, table)
            lookups = _DISPLACE_LOOKUPS
        out.write(_COMMON.lstrip("\n"))
        out.write("\n")
        out.write(lookups.lstrip("\n"))
        out.write("\n")
        out.write(_PACKED_DRIVER.lstrip("\n"))
    return out.getvalue()


def write_parser_module(
    table: ParseTable, path: str, name: str = "", style: str = "dict"
) -> None:
    """Generate and write the module to *path*."""
    source = generate_parser_module(table, name, style=style)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(source)

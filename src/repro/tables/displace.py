"""Displacement (comb / double-offset) parse-table compression.

The classic table-compaction scheme used by real generators (yacc's
``yytable``/``yycheck``, bison, and booze-tools' compaction pass): all
ACTION rows are merged into one shared ``value`` array by sliding each
row to a per-row *displacement* where its populated columns fall into
slots no other row claimed.  A parallel ``check`` array records which row
owns each slot, so a lookup is::

    slot = displacement[state] + column
    hit  = 0 <= slot < len(check) and check[slot] == state

Storage drops from ``n_states * n_columns`` dense cells to roughly the
number of *populated* cells (plus comb gaps), while lookup stays O(1).
GOTO rows are packed the same way into their own comb.

Everything observable is unchanged: :class:`DisplacedTable` exposes the
same ``action_rows``/``goto_rows`` dense-row interface the parse engine
drives (rows are lazy views over the packed arrays), so parses, error
positions, messages and expected sets are byte-identical to the plain
:class:`~repro.tables.table.ParseTable` — the representation-parity
tests and the fuzz oracle pin this down.

The integer **action encoding** shared with the binary table format
(:mod:`repro.tables.binfmt`) and the array-backed generated parsers
(:mod:`repro.tables.codegen`)::

    0                    error / absent cell
    (state << 2) | 1     shift to ``state``
    (production << 2) | 2reduce by ``production``
    3                    accept

Packing is deterministic: rows are placed densest-first (ties by row
index) with first-fit displacement search, so the packed arrays — and
any artifact serialised from them — are a pure function of the table.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from ..grammar.symbols import Symbol
from .table import ACCEPT, Action, ParseTable, Reduce, Shift

__all__ = [
    "ACTION_ERROR",
    "ACTION_SHIFT",
    "ACTION_REDUCE",
    "ACTION_ACCEPT",
    "ActionDecoder",
    "DisplacedTable",
    "displace",
    "encode_action",
    "pack_rows",
]

#: Tag bits of the shared integer action encoding.
ACTION_ERROR = 0
ACTION_SHIFT = 1
ACTION_REDUCE = 2
ACTION_ACCEPT = 3


def encode_action(action: "Optional[Action]") -> int:
    """The integer encoding of *action* (0 for an empty/error cell)."""
    if action is None:
        return ACTION_ERROR
    kind = action.kind
    if kind == "shift":
        return (action.state << 2) | ACTION_SHIFT
    if kind == "reduce":
        return (action.production << 2) | ACTION_REDUCE
    if kind == "accept":
        return ACTION_ACCEPT
    raise ValueError(f"cannot encode action {action!r}")


class ActionDecoder:
    """Decode encoded action ints back to shared :class:`Action` objects.

    Shift/Reduce instances are interned per target/production so decoding
    the same cell twice yields the identical object — row views stay as
    cheap as the eager dense rows after first touch.
    """

    __slots__ = ("_shifts", "_reduces")

    def __init__(self) -> None:
        self._shifts: Dict[int, Shift] = {}
        self._reduces: Dict[int, Reduce] = {}

    def decode(self, encoded: int) -> "Optional[Action]":
        if encoded == ACTION_ERROR:
            return None
        tag = encoded & 3
        arg = encoded >> 2
        if tag == ACTION_SHIFT:
            action = self._shifts.get(arg)
            if action is None:
                action = self._shifts[arg] = Shift(arg)
            return action
        if tag == ACTION_REDUCE:
            action = self._reduces.get(arg)
            if action is None:
                action = self._reduces[arg] = Reduce(arg)
            return action
        if encoded == ACTION_ACCEPT:
            return ACCEPT
        raise ValueError(f"invalid encoded action {encoded!r}")


def pack_rows(
    rows: "Sequence[Sequence[int]]", empty: int = 0
) -> "Tuple[array, array, array]":
    """Comb-pack dense integer *rows* (cells equal to *empty* are absent).

    Returns ``(displacements, check, values)`` — three ``array('i')``:
    ``values[displacements[r] + c]`` holds row *r*'s cell *c* whenever
    ``check`` at that slot equals *r*; any other slot is a miss (the cell
    is *empty*).  Placement is densest-row-first with a first-fit
    displacement scan, which keeps the comb short and is deterministic.
    """
    n_rows = len(rows)
    displacements = array("i", [0]) * n_rows if n_rows else array("i")
    check: List[int] = []
    values: List[int] = []
    populated = [
        [(col, cell) for col, cell in enumerate(row) if cell != empty]
        for row in rows
    ]
    order = sorted(range(n_rows), key=lambda r: (-len(populated[r]), r))
    for row_id in order:
        cells = populated[row_id]
        if not cells:
            displacements[row_id] = 0
            continue
        cols = [col for col, _ in cells]
        displacement = 0
        limit = len(check)
        while True:
            if all(
                displacement + col >= limit or check[displacement + col] == -1
                for col in cols
            ):
                break
            displacement += 1
        displacements[row_id] = displacement
        need = displacement + cols[-1] + 1
        if need > limit:
            check.extend([-1] * (need - limit))
            values.extend([empty] * (need - len(values)))
        for col, cell in cells:
            check[displacement + col] = row_id
            values[displacement + col] = cell
    return displacements, array("i", check), array("i", values)


class _PackedActionRow:
    """One state's ACTION row, viewed through the packed comb arrays.

    Supports exactly what the engine's hot loop and ``_syntax_error``
    use: ``row[tid]`` (an :class:`Action` or None) and ``len(row)``.
    """

    __slots__ = ("_table", "_state", "_displacement")

    def __init__(self, table: "DisplacedTable", state: int):
        self._table = table
        self._state = state
        self._displacement = table.action_displacements[state]

    def __len__(self) -> int:
        return self._table.num_terminals

    def __getitem__(self, terminal_id: int) -> "Optional[Action]":
        table = self._table
        if not 0 <= terminal_id < table.num_terminals:
            raise IndexError(terminal_id)
        slot = self._displacement + terminal_id
        check = table.action_check
        if 0 <= slot < len(check) and check[slot] == self._state:
            return table.decoder.decode(table.action_values[slot])
        return None


class _PackedGotoRow:
    """One state's GOTO row over the packed comb (``-1`` means absent)."""

    __slots__ = ("_table", "_state", "_displacement")

    def __init__(self, table: "DisplacedTable", state: int):
        self._table = table
        self._state = state
        self._displacement = table.goto_displacements[state]

    def __len__(self) -> int:
        return self._table.num_nonterminals

    def __getitem__(self, nt_id: int) -> int:
        table = self._table
        if not 0 <= nt_id < table.num_nonterminals:
            raise IndexError(nt_id)
        slot = self._displacement + nt_id
        check = table.goto_check
        if 0 <= slot < len(check) and check[slot] == self._state:
            return table.goto_values[slot]
        return -1


class DisplacedTable:
    """A ParseTable repacked into shared displacement (comb) arrays.

    Exposes the full table interface the engine and the diagnostics
    paths drive — ``action_rows``/``goto_rows`` (lazy views over the
    packed arrays), the Symbol-keyed ``action``/``goto`` lookups, and the
    conflict metadata of the source table — so it is a drop-in row
    *representation*, never a semantics change.
    """

    def __init__(self, table: ParseTable):
        self.grammar = table.grammar
        self.method = table.method + "+displacement"
        self.actions = table.actions
        self.gotos = table.gotos
        self.conflicts = table.conflicts
        ids = self.grammar.ids
        self.num_terminals = ids.num_terminals
        self.num_nonterminals = ids.num_nonterminals
        self.decoder = ActionDecoder()

        encoded_actions = [
            [encode_action(cell) for cell in row] for row in table.action_rows
        ]
        (
            self.action_displacements,
            self.action_check,
            self.action_values,
        ) = pack_rows(encoded_actions, empty=ACTION_ERROR)
        (
            self.goto_displacements,
            self.goto_check,
            self.goto_values,
        ) = pack_rows([list(row) for row in table.goto_rows], empty=-1)

        self.action_rows: List[_PackedActionRow] = [
            _PackedActionRow(self, state) for state in range(len(table.actions))
        ]
        self.goto_rows: List[_PackedGotoRow] = [
            _PackedGotoRow(self, state) for state in range(len(table.gotos))
        ]
        #: Dense cells of the source table, for the compression report.
        self._dense_cells = len(table.actions) * self.num_terminals + len(
            table.gotos
        ) * self.num_nonterminals
        self._populated_cells = table.size_cells()

    # -- ParseTable-compatible surface ---------------------------------

    @property
    def n_states(self) -> int:
        return len(self.action_rows)

    @property
    def is_deterministic(self) -> bool:
        return not self.unresolved_conflicts

    @property
    def unresolved_conflicts(self):
        return [c for c in self.conflicts if not c.resolved_by_precedence]

    def action(self, state: int, terminal: Symbol) -> "Optional[Action]":
        return self.actions[state].get(terminal)

    def goto(self, state: int, nonterminal: Symbol) -> "Optional[int]":
        return self.gotos[state].get(nonterminal)

    def action_by_id(self, state: int, terminal_id: int) -> "Optional[Action]":
        return self.action_rows[state][terminal_id]

    def goto_by_id(self, state: int, nt_id: int) -> int:
        return self.goto_rows[state][nt_id]

    def conflict_summary(self) -> Dict[str, int]:
        summary = {"shift_reduce": 0, "reduce_reduce": 0, "resolved": 0}
        for conflict in self.conflicts:
            if conflict.resolved_by_precedence:
                summary["resolved"] += 1
            elif conflict.kind == "shift/reduce":
                summary["shift_reduce"] += 1
            else:
                summary["reduce_reduce"] += 1
        return summary

    # -- compression accounting ----------------------------------------

    def size_cells(self) -> int:
        """Slots the packed representation stores (combs + displacements)."""
        return (
            len(self.action_values)
            + len(self.goto_values)
            + len(self.action_displacements)
            + len(self.goto_displacements)
        )

    def packing_stats(self) -> Dict[str, int]:
        """Machine-independent packing figures (bench drift asserts on
        these): dense cells, populated cells, comb slots, wasted gaps."""
        comb_slots = len(self.action_values) + len(self.goto_values)
        gaps = sum(1 for c in self.action_check if c == -1) + sum(
            1 for c in self.goto_check if c == -1
        )
        return {
            "dense_cells": self._dense_cells,
            "populated_cells": self._populated_cells,
            "action_comb_slots": len(self.action_values),
            "goto_comb_slots": len(self.goto_values),
            "comb_slots": comb_slots,
            "comb_gaps": gaps,
            "stored_cells": self.size_cells(),
        }


def displace(table: ParseTable) -> DisplacedTable:
    """Apply displacement (comb) compression to *table*."""
    return DisplacedTable(table)


def displacement_ratio(table: ParseTable) -> float:
    """Dense cells / displacement-stored cells (>1 means savings)."""
    stored = DisplacedTable(table).size_cells()
    dense = len(table.actions) * table.grammar.ids.num_terminals + len(
        table.gotos
    ) * table.grammar.ids.num_nonterminals
    return dense / stored if stored else 1.0

"""Fingerprint-keyed on-disk parse-table cache — the fast startup path.

Production parser generators never rebuild tables on every run; they
persist them and key the cache on a hash of the grammar, so application
startup is a single file read.  :class:`TableCache` is that layer:

- **Keying**: ``<method>-<grammar fingerprint><suffix>`` — a changed
  grammar changes the fingerprint, so stale entries are simply never
  looked up (and a fingerprint mismatch inside the file is treated as a
  miss too).  The suffix selects the **backend**: ``.json`` (readable)
  or ``.rtb`` (versioned binary, mmap-loaded without a JSON parse on
  the hot path).
- **Crash safety**: writes go through :func:`~repro.tables.serialize
  .save_table` (temp file + ``os.replace``), so the cache never holds a
  torn file.  Reads that hit a corrupt or truncated entry (a crash from
  a pre-atomic writer, disk damage, a concurrent truncation) count a
  ``table.cache.corrupt`` event, delete the bad entry, and **rebuild
  instead of crashing** — the cache is an accelerator, never a new
  failure mode.
- **Observability**: every hit/miss/corrupt/store event both increments
  instance counters and flows through :mod:`repro.core.instrument`, so a
  ``--profile`` run shows cache behaviour next to phase timings.

Tables with unresolved conflicts are cacheable like any other (JSON
format 4 / binary format 3 carry the full conflict log), so GLR-bound
tables get the same warm-start path as deterministic ones.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..core import instrument
from ..grammar.grammar import Grammar
from .binfmt import BINARY_SUFFIX, load_binary_table, save_binary_table
from .serialize import TableCacheError, grammar_fingerprint, load_table, save_table
from .table import ParseTable

__all__ = ["TableCache", "default_cache_dir"]

#: Cache storage backends mapped to their file suffix.  ``json`` is the
#: readable debugging-friendly format; ``bin`` is the versioned binary
#: artifact of :mod:`repro.tables.binfmt`, loaded zero-copy via mmap.
BACKENDS = {"json": ".json", "bin": BINARY_SUFFIX}

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_TABLE_CACHE"


def default_cache_dir() -> str:
    """The cache directory examples and the CLI use by default:
    ``$REPRO_TABLE_CACHE`` if set, else ``<tmp>/repro-table-cache``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    import tempfile

    return os.path.join(tempfile.gettempdir(), "repro-table-cache")


class TableCache:
    """An on-disk cache of serialised parse tables for one directory.

    Args:
        directory: Where entries live; created lazily on first store.
        backend: ``"json"`` (default) or ``"bin"`` — which serialisation
            new entries use.  Loads dispatch on the *file* extension, so
            a cache directory can hold a mix of both.

    Attributes:
        hits / misses / corrupt / stores: Event counters for this
            instance (the same events are emitted through the
            instrumentation layer as ``table.cache.*``).
    """

    def __init__(self, directory: str, backend: str = "json", hot_capacity: int = 0):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown cache backend {backend!r} (known: {sorted(BACKENDS)})"
            )
        self.directory = directory
        self.backend = backend
        self.suffix = BACKENDS[backend]
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0
        # Bounded in-memory LRU of hot ParseTable objects, keyed like the
        # disk entries.  Opt-in (capacity 0 = off): a deserialised table
        # is cheap next to a rebuild but the in-memory object bypasses
        # the disk entirely, which long-lived sessions want and one-shot
        # CLI runs don't need.
        self.hot_capacity = hot_capacity
        self._hot: "OrderedDict[Tuple[str, str], ParseTable]" = OrderedDict()
        # The disk layer is process-safe by construction (atomic
        # os.replace writes); the hot LRU is the only shared mutable
        # structure, so it gets its own lock — the grammar service hits
        # one cache instance from many worker threads at once.
        self._hot_lock = threading.Lock()
        self.hot_hits = 0
        self.hot_evictions = 0

    # -- keying --------------------------------------------------------

    def path_for(self, grammar: Grammar, method: str) -> str:
        """The cache file for *grammar*/*method* (may not exist)."""
        return self._path(method, grammar_fingerprint(grammar))

    def _path(self, method: str, fingerprint: str) -> str:
        # Entries shard into two-hex-char fingerprint-prefix
        # subdirectories so huge caches never produce one flat directory
        # with tens of thousands of entries (pathological on several
        # filesystems and unwieldy for humans).
        return os.path.join(
            self.directory,
            fingerprint[:2],
            f"{method}-{fingerprint[:32]}{self.suffix}",
        )

    def _flat_path(self, method: str, fingerprint: str) -> str:
        """The pre-sharding location — read-fallback for caches written
        by earlier versions; new entries are never stored here."""
        return os.path.join(
            self.directory, f"{method}-{fingerprint[:32]}{self.suffix}"
        )

    # -- read / write ---------------------------------------------------

    def load(self, grammar: Grammar, method: str) -> Optional[ParseTable]:
        """The cached table, or None on miss/corruption (never raises
        for a damaged entry — it is deleted and counted instead)."""
        fingerprint = grammar_fingerprint(grammar)
        hot_key = (method, fingerprint)
        if self.hot_capacity:
            with self._hot_lock:
                table = self._hot.get(hot_key)
                if table is not None:
                    self._hot.move_to_end(hot_key)
                    self.hot_hits += 1
            if table is not None:
                instrument.count("table.cache.hot_hits")
                return table
        path = self._path(method, fingerprint)
        loader = load_binary_table if path.endswith(BINARY_SUFFIX) else load_table
        started = time.perf_counter_ns()
        with instrument.span("table.cache.load"):
            try:
                try:
                    table = loader(path, grammar)
                except FileNotFoundError:
                    # Transparent fallback: entries written before the
                    # sharded layout live directly in the directory.
                    path = self._flat_path(method, fingerprint)
                    table = loader(path, grammar)
            except FileNotFoundError:
                self.misses += 1
                instrument.count("table.cache.misses")
                return None
            except (TableCacheError, OSError):
                self.corrupt += 1
                self.misses += 1
                instrument.count("table.cache.corrupt")
                instrument.count("table.cache.misses")
                self._evict(path)
                return None
        self.hits += 1
        instrument.count("table.cache.hits")
        if instrument.enabled():
            instrument.count("table.cache.load_ns", time.perf_counter_ns() - started)
            try:
                instrument.count("table.bytes", os.path.getsize(path))
            except OSError:
                pass
        self._hot_put(hot_key, table)
        return table

    def store(self, table: ParseTable) -> bool:
        """Persist *table*; False (not an exception) when the disk
        write fails."""
        fingerprint = grammar_fingerprint(table.grammar)
        path = self._path(table.method, fingerprint)
        with instrument.span("table.cache.store"):
            try:
                os.makedirs(os.path.dirname(path), exist_ok=True)
                if path.endswith(BINARY_SUFFIX):
                    written = save_binary_table(table, path)
                else:
                    save_table(table, path)
                    written = os.path.getsize(path)
            except OSError:
                return False
        self.stores += 1
        instrument.count("table.cache.stores")
        if instrument.enabled():
            instrument.count("table.bytes", written)
        self._hot_put((table.method, fingerprint), table)
        return True

    def _hot_put(self, key: "Tuple[str, str]", table: ParseTable) -> None:
        if not self.hot_capacity:
            return
        evictions = 0
        with self._hot_lock:
            self._hot[key] = table
            self._hot.move_to_end(key)
            while len(self._hot) > self.hot_capacity:
                self._hot.popitem(last=False)
                self.hot_evictions += 1
                evictions += 1
        for _ in range(evictions):
            instrument.count("table.cache.hot_evictions")

    def load_or_build(
        self,
        grammar: Grammar,
        method: str,
        builder: Callable[[Grammar], ParseTable],
    ) -> ParseTable:
        """The cached table if present and intact, else ``builder(grammar)``
        (storing the fresh result for the next run)."""
        cached = self.load(grammar, method)
        if cached is not None:
            return cached
        table = builder(grammar)
        self.store(table)
        return table

    # -- maintenance -----------------------------------------------------

    def entry_paths(self) -> "List[str]":
        """Every entry file currently on disk, across both layouts —
        how tests assert an aborted build stored nothing."""
        suffixes = tuple(BACKENDS.values())
        paths: "List[str]" = []
        try:
            names = os.listdir(self.directory)
        except (FileNotFoundError, NotADirectoryError):
            return paths
        for name in sorted(names):
            path = os.path.join(self.directory, name)
            if name.endswith(suffixes):
                paths.append(path)
            elif len(name) == 2 and os.path.isdir(path):
                paths.extend(
                    os.path.join(path, entry)
                    for entry in sorted(os.listdir(path))
                    if entry.endswith(suffixes)
                )
        return paths

    def clear(self) -> int:
        """Delete every cache entry (sharded and legacy flat layouts,
        plus the hot LRU); returns how many files were removed."""
        with self._hot_lock:
            self._hot.clear()
        removed = 0
        suffixes = tuple(BACKENDS.values())
        try:
            names = os.listdir(self.directory)
        except (FileNotFoundError, NotADirectoryError):
            return 0
        for name in names:
            path = os.path.join(self.directory, name)
            if name.endswith(suffixes):
                self._evict(path)
                removed += 1
            elif len(name) == 2 and os.path.isdir(path):
                # A fingerprint-prefix shard: clear its entries, then the
                # (now empty) directory itself.
                for entry in os.listdir(path):
                    if entry.endswith(suffixes):
                        self._evict(os.path.join(path, entry))
                        removed += 1
                try:
                    os.rmdir(path)
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, int]:
        stats = {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stores": self.stores,
        }
        if self.hot_capacity:
            stats["hot_hits"] = self.hot_hits
            stats["hot_evictions"] = self.hot_evictions
        return stats

    @staticmethod
    def _evict(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

"""Grammar classification within the LR hierarchy.

``LR(0) ⊂ SLR(1) ⊂ LALR(1) ⊂ LR(1)`` — a grammar's class is the weakest
construction whose table is conflict-free (precedence declarations are
deliberately ignored here: classification is a property of the grammar,
not of its disambiguation hints).

The classifier also surfaces the DeRemer–Pennello quick negative: a
nontrivial SCC in the `reads` relation proves the grammar is not LR(k)
for *any* k, without building any LR(1) machinery.
"""

from __future__ import annotations

import enum
from typing import Dict, List, NamedTuple

from ..automaton.lr0 import LR0Automaton
from ..automaton.lr1 import LR1Automaton
from ..core.lalr import LalrAnalysis
from ..grammar.grammar import Grammar
from .build import build_clr_table, build_lalr_table, build_lr0_table, build_slr_table
from .table import ParseTable


class GrammarClass(enum.Enum):
    """The weakest LR construction that handles the grammar without
    conflicts (NOT_LR1 = none of them do)."""

    LR0 = "LR(0)"
    SLR1 = "SLR(1)"
    LALR1 = "LALR(1)"
    LR1 = "LR(1)"
    NOT_LR1 = "not LR(1)"

    def __str__(self) -> str:
        return self.value


_ORDER = [
    GrammarClass.LR0,
    GrammarClass.SLR1,
    GrammarClass.LALR1,
    GrammarClass.LR1,
    GrammarClass.NOT_LR1,
]


def class_at_most(lower: GrammarClass, upper: GrammarClass) -> bool:
    """True iff *lower* is at-or-below *upper* in the hierarchy."""
    return _ORDER.index(lower) <= _ORDER.index(upper)


class Classification(NamedTuple):
    """Full classification result.

    Attributes:
        grammar_class: The weakest conflict-free construction.
        is_lr0 / is_slr1 / is_lalr1 / is_lr1: Individual verdicts.
        not_lr_k: True when the reads-SCC theorem proves the grammar
            cannot be LR(k) for any k.
        conflict_counts: Per-method unresolved-conflict counts.
    """

    grammar_class: GrammarClass
    is_lr0: bool
    is_slr1: bool
    is_lalr1: bool
    is_lr1: bool
    not_lr_k: bool
    conflict_counts: Dict[str, int]


def _strip_precedence(grammar: Grammar) -> Grammar:
    """A copy of *grammar* with precedence declarations removed, so that
    classification reflects raw conflicts."""
    if not grammar.precedence and not any(
        p.prec_symbol is not None for p in grammar.productions
    ):
        return grammar
    from ..grammar.production import Production

    productions = [
        Production(p.index, p.lhs, p.rhs, prec_symbol=None) for p in grammar.productions
    ]
    # Zeroing prec_symbol would re-derive the rightmost terminal; build
    # Production with an explicit override instead.
    for original, rebuilt in zip(grammar.productions, productions):
        rebuilt.prec_symbol = None
    stripped = Grammar(
        grammar.symbols, productions, grammar.start, precedence=None, name=grammar.name
    )
    return stripped


def classify(grammar: Grammar, ignore_precedence: bool = True) -> Classification:
    """Classify *grammar* in the LR hierarchy.

    With *ignore_precedence* (the default) the grammar's %left/%right
    declarations are stripped first; pass False to classify the grammar
    as disambiguated (useful to confirm a precedence scheme removes all
    conflicts).
    """
    working = _strip_precedence(grammar) if ignore_precedence else grammar
    working = working.augmented()
    automaton = LR0Automaton(working)
    lalr_analysis = LalrAnalysis(working, automaton)

    tables: List[ParseTable] = [
        build_lr0_table(working, automaton),
        build_slr_table(working, automaton),
        build_lalr_table(working, automaton, lalr_analysis.lookahead_table()),
    ]
    verdicts = [table.is_deterministic for table in tables]
    conflict_counts = {
        table.method: len(table.unresolved_conflicts) for table in tables
    }

    is_lalr1 = verdicts[2]
    if is_lalr1:
        # LALR(1) implies LR(1); skip the expensive canonical construction.
        is_lr1 = True
        conflict_counts["clr1"] = 0
    elif lalr_analysis.not_lr_k:
        is_lr1 = False
        conflict_counts["clr1"] = -1  # not constructed; provably conflicted
    else:
        clr_table = build_clr_table(working, LR1Automaton(working))
        is_lr1 = clr_table.is_deterministic
        conflict_counts["clr1"] = len(clr_table.unresolved_conflicts)

    flags = [verdicts[0], verdicts[1], is_lalr1, is_lr1]
    grammar_class = GrammarClass.NOT_LR1
    for flag, cls in zip(flags, _ORDER):
        if flag:
            grammar_class = cls
            break

    return Classification(
        grammar_class=grammar_class,
        is_lr0=verdicts[0],
        is_slr1=verdicts[1],
        is_lalr1=is_lalr1,
        is_lr1=is_lr1,
        not_lr_k=lalr_analysis.not_lr_k,
        conflict_counts=conflict_counts,
    )

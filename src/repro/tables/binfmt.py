"""Versioned binary parse-table format — the zero-copy startup path.

JSON table entries (:mod:`repro.tables.serialize`) pay a full parse +
Symbol-dict reconstruction on every load.  This module stores the same
information — dense rows plus the full conflict log, resolved and
unresolved alike — as a **packed binary artifact** that a service worker
can attach to instantly:

- a fixed header (magic, format version, ID-layout version, dimensions,
  a CRC-32 of the payload) plus the grammar fingerprint and method name;
- two ``int32`` sections — the dense ACTION matrix (``n_states x
  num_terminals`` encoded action ints, see
  :mod:`repro.tables.displace`) and the dense GOTO matrix (``n_states x
  num_nonterminals`` targets, ``-1`` = absent) — written little-endian.

Loading ``mmap``\\ s the file and casts the sections to flat int views
(`memoryview.cast`) without parsing anything; per-state rows are decoded
lazily, on first touch, into the same dense rows a
:class:`~repro.tables.table.ParseTable` carries, so the engine drives a
:class:`BinaryTable` unchanged and diagnostics stay byte-identical.

Every defect — bad magic, foreign format or ID-layout version, grammar
fingerprint mismatch, truncation, payload corruption (CRC), dimension
mismatch — raises :class:`~repro.tables.serialize.TableCacheError`, so
the cache layer treats binary entries exactly like JSON ones: evict and
rebuild, never crash.
"""

from __future__ import annotations

import mmap
import os
import struct
import sys
import tempfile
import zlib
from array import array
from typing import Dict, List, Optional

from ..grammar.grammar import Grammar
from ..grammar.symbols import ID_LAYOUT_VERSION, Symbol
from .conflicts import Conflict
from .displace import ACTION_ERROR, ActionDecoder, encode_action
from .serialize import TableCacheError, grammar_fingerprint
from .table import Action, ParseTable

__all__ = [
    "BINARY_FORMAT_VERSION",
    "BINARY_SUFFIX",
    "BinaryTable",
    "load_binary_table",
    "save_binary_table",
    "table_from_bytes",
    "table_to_bytes",
]

#: Bump on any layout change; readers reject foreign versions outright.
#: Bumped to 2 when the payload grew the trailing resolved-conflicts
#: section: version-1 artifacts reload precedence-resolved tables with
#: ``conflict_summary()["resolved"] == 0`` — evict and rebuild.
#: Bumped to 3 when the trailing section started carrying *unresolved*
#: conflicts too (each record gained a resolved flag), making conflicted
#: tables — the GLR engine's input — cacheable; version-2 artifacts
#: cannot represent them, so both directions evict and rebuild.
BINARY_FORMAT_VERSION = 3

#: File extension the cache uses to select the binary backend.
BINARY_SUFFIX = ".rtb"

_MAGIC = b"RPTB"
#: magic, format version, id-layout version, n_states, num_terminals,
#: num_nonterminals, n_productions, method length, payload CRC-32.
_HEADER = struct.Struct("<4sHHiiiiiI")
_FINGERPRINT_LEN = 64


def _section_to_le_bytes(section: array) -> bytes:
    """*section* (``array('i')``) as little-endian bytes."""
    if sys.byteorder == "big":  # pragma: no cover - exercised on BE hosts
        section = array("i", section)
        section.byteswap()
    return section.tobytes()


def table_to_bytes(table: ParseTable) -> bytes:
    """Serialise *table* into the binary artifact format."""
    ids = table.grammar.ids
    actions = array("i")
    for row in table.action_rows:
        actions.extend(encode_action(cell) for cell in row)
    gotos = array("i")
    for row in table.goto_rows:
        gotos.extend(row)
    # Trailing variable-length section: the full conflict log, one
    # record each — [state, terminal_id, kind_tag, resolved_flag,
    # chosen, n, *actions] (kind_tag 0 = shift/reduce, 1 =
    # reduce/reduce; resolved_flag 1 = settled by precedence; chosen 0 =
    # the cell was erased, %nonassoc-style).  Unresolved records are
    # what let the GLR engine's nondet view rebuild its forked cells
    # from a cache hit.  Empty for conflict-free tables, so their
    # artifacts keep their exact bytes.
    conflict_section = array("i")
    for conflict in table.conflicts:
        conflict_section.append(conflict.state)
        conflict_section.append(ids.terminal_id(conflict.terminal))
        conflict_section.append(0 if conflict.kind == "shift/reduce" else 1)
        conflict_section.append(1 if conflict.resolved_by_precedence else 0)
        conflict_section.append(encode_action(conflict.chosen))
        conflict_section.append(len(conflict.actions))
        conflict_section.extend(
            encode_action(action) for action in conflict.actions
        )
    payload = (
        _section_to_le_bytes(actions)
        + _section_to_le_bytes(gotos)
        + _section_to_le_bytes(conflict_section)
    )
    method = table.method.encode("utf-8")
    fingerprint = grammar_fingerprint(table.grammar).encode("ascii")
    assert len(fingerprint) == _FINGERPRINT_LEN
    header = _HEADER.pack(
        _MAGIC,
        BINARY_FORMAT_VERSION,
        ID_LAYOUT_VERSION,
        table.n_states,
        ids.num_terminals,
        ids.num_nonterminals,
        len(table.grammar.productions),
        len(method),
        zlib.crc32(payload),
    )
    return header + fingerprint + method + payload


class _LazyActionRows:
    """Sequence of per-state ACTION rows decoded lazily from the flat
    int section.  First touch of a state materialises (and caches) the
    same dense ``[Action | None]`` row a ParseTable carries."""

    __slots__ = ("_flat", "_width", "_decoder", "_cache")

    def __init__(self, flat, width: int, n_states: int, decoder: ActionDecoder):
        self._flat = flat
        self._width = width
        self._decoder = decoder
        self._cache: List[Optional[List[Optional[Action]]]] = [None] * n_states

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, state: int) -> "List[Optional[Action]]":
        row = self._cache[state]
        if row is None:
            decode = self._decoder.decode
            start = state * self._width
            row = [decode(cell) for cell in self._flat[start : start + self._width]]
            self._cache[state] = row
        return row


class _LazyGotoRows:
    """Sequence of per-state GOTO rows: zero-copy slices of the flat
    section (``-1`` = absent), cached per state."""

    __slots__ = ("_flat", "_width", "_cache")

    def __init__(self, flat, width: int, n_states: int):
        self._flat = flat
        self._width = width
        self._cache: List[Optional[object]] = [None] * n_states

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, state: int):
        row = self._cache[state]
        if row is None:
            start = state * self._width
            row = self._flat[start : start + self._width]
            self._cache[state] = row
        return row


class BinaryTable:
    """A parse table attached to a binary artifact — rows decode lazily.

    Duck-compatible with :class:`~repro.tables.table.ParseTable`
    everywhere the engine and the diagnostics paths look: ``grammar``,
    ``method``, ``action_rows``/``goto_rows``, Symbol-keyed
    ``actions``/``gotos`` (materialised on first use), the full
    ``conflicts`` log (resolved and unresolved — a conflicted table off
    the cache drives the GLR engine exactly like a fresh build), and the
    summary helpers.
    """

    def __init__(
        self,
        grammar: Grammar,
        method: str,
        actions_flat,
        gotos_flat,
        n_states: int,
        backing: "Optional[object]" = None,
        conflicts: "Optional[list]" = None,
    ):
        self.grammar = grammar
        self.method = method
        self.conflicts: list = list(conflicts or [])
        self._n_states = n_states
        self._actions_flat = actions_flat
        self._gotos_flat = gotos_flat
        # Keep the mmap (and its file) alive as long as the table: the
        # flat sections are views straight into it.
        self._backing = backing
        ids = grammar.ids
        self.num_terminals = ids.num_terminals
        self.num_nonterminals = ids.num_nonterminals
        self.action_rows = _LazyActionRows(
            actions_flat, ids.num_terminals, n_states, ActionDecoder()
        )
        self.goto_rows = _LazyGotoRows(gotos_flat, ids.num_nonterminals, n_states)
        self._actions_dicts: "Optional[List[Dict[Symbol, Action]]]" = None
        self._gotos_dicts: "Optional[List[Dict[Symbol, int]]]" = None

    # -- ParseTable-compatible surface ---------------------------------

    @property
    def n_states(self) -> int:
        return self._n_states

    @property
    def is_deterministic(self) -> bool:
        return not self.unresolved_conflicts

    @property
    def unresolved_conflicts(self) -> list:
        return [
            conflict
            for conflict in self.conflicts
            if not conflict.resolved_by_precedence
        ]

    @property
    def actions(self) -> "List[Dict[Symbol, Action]]":
        if self._actions_dicts is None:
            terminals = self.grammar.ids.terminals
            self._actions_dicts = [
                {
                    terminals[tid]: action
                    for tid, action in enumerate(self.action_rows[state])
                    if action is not None
                }
                for state in range(self._n_states)
            ]
        return self._actions_dicts

    @property
    def gotos(self) -> "List[Dict[Symbol, int]]":
        if self._gotos_dicts is None:
            nonterminals = self.grammar.ids.nonterminals
            self._gotos_dicts = [
                {
                    nonterminals[nt_id]: target
                    for nt_id, target in enumerate(self.goto_rows[state])
                    if target >= 0
                }
                for state in range(self._n_states)
            ]
        return self._gotos_dicts

    def action(self, state: int, terminal: Symbol) -> "Optional[Action]":
        return self.action_rows[state][self.grammar.ids.terminal_id(terminal)]

    def goto(self, state: int, nonterminal: Symbol) -> "Optional[int]":
        target = self.goto_rows[state][self.grammar.ids.nonterminal_id(nonterminal)]
        return target if target >= 0 else None

    def action_by_id(self, state: int, terminal_id: int) -> "Optional[Action]":
        return self.action_rows[state][terminal_id]

    def goto_by_id(self, state: int, nt_id: int) -> int:
        return self.goto_rows[state][nt_id]

    def conflict_summary(self) -> Dict[str, int]:
        summary = {"shift_reduce": 0, "reduce_reduce": 0, "resolved": 0}
        for conflict in self.conflicts:
            if conflict.resolved_by_precedence:
                summary["resolved"] += 1
            elif conflict.kind == "shift/reduce":
                summary["shift_reduce"] += 1
            else:
                summary["reduce_reduce"] += 1
        return summary

    def size_cells(self) -> int:
        return sum(len(row) for row in self.actions) + sum(
            len(row) for row in self.gotos
        )

    def close(self) -> None:
        """Detach from the backing mmap (the table becomes unusable for
        states not yet decoded); idempotent."""
        backing = self._backing
        self._backing = None
        if backing is not None:
            backing.close()


def _flat_int_view(buffer: "memoryview"):
    """*buffer* (little-endian int32 bytes) as an indexable int sequence.

    On little-endian hosts this is a zero-copy ``memoryview.cast('i')``;
    big-endian hosts fall back to one byte-swapped ``array('i')`` copy.
    """
    if sys.byteorder == "little":
        return buffer.cast("i")
    section = array("i")  # pragma: no cover - exercised on BE hosts
    section.frombytes(buffer.tobytes())
    section.byteswap()
    return section


def table_from_bytes(
    data: "bytes | memoryview",
    grammar: Grammar,
    backing: "Optional[object]" = None,
) -> BinaryTable:
    """Attach a :class:`BinaryTable` to *data*, verifying every header
    field against *grammar*.  Raises :class:`TableCacheError` on any
    structural defect; *backing* (an open mmap) is kept alive by the
    returned table."""
    view = memoryview(data)
    if len(view) < _HEADER.size + _FINGERPRINT_LEN:
        raise TableCacheError(
            f"truncated binary table: {len(view)} bytes is smaller than the header"
        )
    (
        magic,
        format_version,
        id_layout,
        n_states,
        num_terminals,
        num_nonterminals,
        n_productions,
        method_len,
        payload_crc,
    ) = _HEADER.unpack_from(view, 0)
    if magic != _MAGIC:
        raise TableCacheError(f"not a binary parse table (magic {magic!r})")
    if format_version != BINARY_FORMAT_VERSION:
        raise TableCacheError(
            f"unsupported binary table format {format_version!r}"
        )
    if id_layout != ID_LAYOUT_VERSION:
        raise TableCacheError(
            f"binary table uses ID layout {id_layout}, current is {ID_LAYOUT_VERSION}"
        )
    offset = _HEADER.size
    fingerprint = bytes(view[offset : offset + _FINGERPRINT_LEN]).decode(
        "ascii", "replace"
    )
    if fingerprint != grammar_fingerprint(grammar):
        raise TableCacheError(
            "grammar fingerprint mismatch: the binary table was built from "
            "a different grammar (rebuild instead of loading the cache)"
        )
    offset += _FINGERPRINT_LEN
    ids = grammar.ids
    if (
        n_states < 0
        or num_terminals != ids.num_terminals
        or num_nonterminals != ids.num_nonterminals
        or n_productions != len(grammar.productions)
    ):
        raise TableCacheError(
            f"binary table dimensions ({n_states} states, "
            f"{num_terminals}x{num_nonterminals} symbols, "
            f"{n_productions} productions) do not match the grammar"
        )
    if method_len < 0 or len(view) < offset + method_len:
        raise TableCacheError("truncated binary table: method name cut short")
    method = bytes(view[offset : offset + method_len]).decode("utf-8", "replace")
    offset += method_len
    action_bytes = 4 * n_states * num_terminals
    goto_bytes = 4 * n_states * num_nonterminals
    conflict_bytes = len(view) - offset - action_bytes - goto_bytes
    if conflict_bytes < 0 or conflict_bytes % 4:
        raise TableCacheError(
            f"truncated binary table: expected at least "
            f"{offset + action_bytes + goto_bytes} bytes, have {len(view)}"
        )
    payload = view[offset:]
    if zlib.crc32(payload) != payload_crc:
        raise TableCacheError("corrupt binary table: payload CRC mismatch")
    actions_flat = _flat_int_view(payload[:action_bytes])
    gotos_flat = _flat_int_view(payload[action_bytes : action_bytes + goto_bytes])
    conflicts = _decode_conflict_section(
        _flat_int_view(payload[action_bytes + goto_bytes :]), grammar
    )
    return BinaryTable(
        grammar, method, actions_flat, gotos_flat, n_states, backing, conflicts
    )


def _decode_conflict_section(flat, grammar: Grammar) -> "List[Conflict]":
    """The trailing conflict records back into Conflict objects."""
    terminals = grammar.ids.terminals
    decoder = ActionDecoder()
    conflicts: "List[Conflict]" = []
    index = 0
    try:
        while index < len(flat):
            state, terminal_id, kind_tag, resolved, chosen, count = flat[
                index : index + 6
            ]
            index += 6
            if count < 2 or resolved not in (0, 1) or index + count > len(flat):
                raise TableCacheError(
                    "corrupt binary table: malformed conflict record"
                )
            conflicts.append(
                Conflict(
                    state,
                    terminals[terminal_id],
                    "shift/reduce" if kind_tag == 0 else "reduce/reduce",
                    [decoder.decode(flat[index + i]) for i in range(count)],
                    decoder.decode(chosen),
                    resolved_by_precedence=bool(resolved),
                )
            )
            index += count
    except (ValueError, IndexError) as error:
        raise TableCacheError(
            f"corrupt binary table: bad conflict section ({error})"
        ) from error
    return conflicts


def save_binary_table(table: ParseTable, path: str) -> int:
    """Write *table* to *path* in the binary format, atomically (temp
    file + ``os.replace``, mirroring the JSON writer).  Returns the
    artifact size in bytes."""
    blob = table_to_bytes(table)
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(blob)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return len(blob)


class _MmapBacking:
    """Owns the (file, mmap) pair a loaded table reads through."""

    __slots__ = ("_file", "map")

    def __init__(self, path: str):
        self._file = open(path, "rb")
        try:
            self.map = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            # Empty or unmappable file: fall back to an in-memory read so
            # the format checks produce the usual TableCacheError.
            self.map = self._file.read()

    def close(self) -> None:
        if isinstance(self.map, mmap.mmap):
            try:
                self.map.close()
            except BufferError:  # pragma: no cover - exported views alive
                pass
        self._file.close()


def load_binary_table(path: str, grammar: Grammar) -> BinaryTable:
    """Load a table written by :func:`save_binary_table` for *grammar*.

    The file is mapped, not parsed: beyond one CRC pass over the payload,
    load cost is independent of table size.  Raises
    :class:`TableCacheError` for a damaged or foreign file;
    ``FileNotFoundError`` propagates unchanged so callers can distinguish
    "missing" from "damaged".
    """
    backing = _MmapBacking(path)
    try:
        return table_from_bytes(backing.map, grammar, backing=backing)
    except TableCacheError:
        backing.close()
        raise

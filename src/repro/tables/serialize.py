"""Parse-table (de)serialisation — the generator's cache format.

Real parser generators persist their tables so application startup skips
the construction.  :func:`table_to_dict` / :func:`table_from_dict` give a
JSON-safe round-trip for any LR(0)-based table, guarded by a **grammar
fingerprint**: loading against a grammar whose rules changed raises
instead of silently mis-parsing.

Only deterministic information is stored (actions, gotos, method); the
conflict log is reconstruction metadata and is not carried — serialise
conflict-free tables (the normal case for a cached production parser).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from ..grammar.grammar import Grammar
from .table import ACCEPT, Action, ParseTable, Reduce, Shift

FORMAT_VERSION = 1


def grammar_fingerprint(grammar: Grammar) -> str:
    """A stable hash of the grammar's rules, start symbol and precedence."""
    payload = {
        "start": grammar.start.name,
        "productions": [
            [p.lhs.name, [s.name for s in p.rhs],
             p.prec_symbol.name if p.prec_symbol else None]
            for p in grammar.productions
        ],
        "precedence": sorted(
            (s.name, prec.level, prec.assoc.value)
            for s, prec in grammar.precedence.items()
        ),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _encode_action(action: Action) -> "List":
    if action.kind == "shift":
        return ["s", action.state]
    if action.kind == "reduce":
        return ["r", action.production]
    return ["a"]


def _decode_action(encoded: "List") -> Action:
    kind = encoded[0]
    if kind == "s":
        return Shift(encoded[1])
    if kind == "r":
        return Reduce(encoded[1])
    if kind == "a":
        return ACCEPT
    raise ValueError(f"unknown action encoding {encoded!r}")


def table_to_dict(table: ParseTable) -> Dict:
    """A JSON-safe dict capturing *table* (conflicts must be resolved)."""
    if table.unresolved_conflicts:
        raise ValueError(
            f"refusing to serialise a table with "
            f"{len(table.unresolved_conflicts)} unresolved conflicts"
        )
    return {
        "format": FORMAT_VERSION,
        "method": table.method,
        "fingerprint": grammar_fingerprint(table.grammar),
        "actions": [
            {terminal.name: _encode_action(action) for terminal, action in row.items()}
            for row in table.actions
        ],
        "gotos": [
            {nonterminal.name: target for nonterminal, target in row.items()}
            for row in table.gotos
        ],
    }


def table_from_dict(data: Dict, grammar: Grammar) -> ParseTable:
    """Rebuild a ParseTable against *grammar*, verifying the fingerprint."""
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported table format {data.get('format')!r}")
    fingerprint = grammar_fingerprint(grammar)
    if data.get("fingerprint") != fingerprint:
        raise ValueError(
            "grammar fingerprint mismatch: the table was built from a "
            "different grammar (rebuild instead of loading the cache)"
        )
    symbols = grammar.symbols
    actions = [
        {symbols[name]: _decode_action(encoded) for name, encoded in row.items()}
        for row in data["actions"]
    ]
    gotos = [
        {symbols[name]: target for name, target in row.items()}
        for row in data["gotos"]
    ]
    return ParseTable(grammar, data["method"], actions, gotos, conflicts=[])


def save_table(table: ParseTable, path: str) -> None:
    """Serialise *table* as JSON to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(table_to_dict(table), handle)


def load_table(path: str, grammar: Grammar) -> ParseTable:
    """Load a table cached by :func:`save_table` for *grammar*."""
    with open(path, "r", encoding="utf-8") as handle:
        return table_from_dict(json.load(handle), grammar)

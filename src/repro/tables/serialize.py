"""Parse-table (de)serialisation — the generator's cache format.

Real parser generators persist their tables so application startup skips
the construction.  :func:`table_to_dict` / :func:`table_from_dict` give a
JSON-safe round-trip for any LR(0)-based table, guarded by a **grammar
fingerprint**: loading against a grammar whose rules changed raises
instead of silently mis-parsing.

The format carries the table's full conflict log — precedence-resolved
cells (part of ``conflict_summary()["resolved"]``) *and* unresolved
conflicts, which the GLR engine's :func:`~repro.tables.nondet
.nondet_view` re-expands into nondeterministic cells.  The section is
omitted entirely for conflict-free tables, so the common artifact keeps
its exact bytes.  The dense rows always store the single yacc-default
winner per cell; the conflict section is what preserves the losers.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List

from ..grammar.errors import SymbolError
from ..grammar.fingerprint import grammar_fingerprint
from ..grammar.grammar import Grammar
from .conflicts import Conflict
from .table import ACCEPT, Action, ParseTable, Reduce, Shift

#: Bumped to 2 with the integer-interned symbol core: tables now carry
#: dense ID-indexed rows derived from the grammar's ID layout, so
#: format-1 entries (pre-ID era) must be evicted and rebuilt.
#: Bumped to 3 when the format grew the ``resolved`` conflict section:
#: format-2 entries would reload precedence-resolved tables with an
#: empty conflict log (``conflict_summary()["resolved"] == 0``), a
#: round-trip infidelity the serving layer's bit-identity contract
#: surfaced — evict and rebuild those too.
#: Bumped to 4 when the ``resolved`` section became the ``conflicts``
#: section carrying *unresolved* conflicts too (each record gains a
#: resolved flag), so conflicted tables — the GLR engine's input — are
#: cacheable at all.  Format-3 readers must not see format-4 artifacts
#: (they would reject the unknown section silently-absent) and format-3
#: artifacts under-report conflicted tables, so both directions evict.
FORMAT_VERSION = 4


class TableCacheError(ValueError):
    """A cached table is unusable: corrupt, truncated, from another
    format version, or built from a different grammar.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    callers keep working; cache layers catch this type specifically and
    fall back to rebuilding the table instead of crashing.
    """


# grammar_fingerprint now lives in repro.grammar.fingerprint (shared with
# the incremental pipeline and the fuzz corpus); re-exported here because
# this module has always been its public home for cache users.
__all__ = [
    "FORMAT_VERSION",
    "TableCacheError",
    "grammar_fingerprint",
    "table_to_dict",
    "table_from_dict",
    "save_table",
    "load_table",
]


def _encode_action(action: Action) -> "List":
    if action.kind == "shift":
        return ["s", action.state]
    if action.kind == "reduce":
        return ["r", action.production]
    return ["a"]


def _decode_action(encoded: "List") -> Action:
    kind = encoded[0] if encoded else None
    if kind == "s" and len(encoded) == 2 and isinstance(encoded[1], int):
        return Shift(encoded[1])
    if kind == "r" and len(encoded) == 2 and isinstance(encoded[1], int):
        return Reduce(encoded[1])
    if kind == "a" and len(encoded) == 1:
        return ACCEPT
    # Anything else — including a *list* of actions, the way a future
    # format might carry a conflicted cell — is rejected outright: a
    # loaded table must never claim conflict-freedom it does not have.
    raise TableCacheError(f"unknown action encoding {encoded!r}")


def _decode_conflict(encoded: "List", symbols) -> Conflict:
    """One ``conflicts`` record back into a Conflict (resolved or not)."""
    if not isinstance(encoded, list) or len(encoded) != 6:
        raise TableCacheError(f"malformed conflict record {encoded!r}")
    state, terminal_name, kind, actions, chosen, resolved = encoded
    if (
        kind not in ("shift/reduce", "reduce/reduce")
        or not isinstance(state, int)
        or not isinstance(resolved, bool)
    ):
        raise TableCacheError(f"malformed conflict record {encoded!r}")
    return Conflict(
        state,
        symbols[terminal_name],
        kind,
        [_decode_action(action) for action in actions],
        None if chosen is None else _decode_action(chosen),
        resolved_by_precedence=resolved,
    )


def table_to_dict(table: ParseTable) -> Dict:
    """A JSON-safe dict capturing *table*, conflicts and all."""
    payload = {
        "format": FORMAT_VERSION,
        "method": table.method,
        "fingerprint": grammar_fingerprint(table.grammar),
        "actions": [
            {terminal.name: _encode_action(action) for terminal, action in row.items()}
            for row in table.actions
        ],
        "gotos": [
            {nonterminal.name: target for nonterminal, target in row.items()}
            for row in table.gotos
        ],
    }
    if table.conflicts:
        # The full conflict log, in discovery order, so the loaded table
        # reports the same conflict_summary() — and re-expands the same
        # nondeterministic cells for the GLR engine — as the freshly
        # built one.  Omitted when empty: the common conflict-free
        # artifact keeps its exact bytes.
        payload["conflicts"] = [
            [
                conflict.state,
                conflict.terminal.name,
                conflict.kind,
                [_encode_action(action) for action in conflict.actions],
                None if conflict.chosen is None else _encode_action(conflict.chosen),
                conflict.resolved_by_precedence,
            ]
            for conflict in table.conflicts
        ]
    return payload


def table_from_dict(data: Dict, grammar: Grammar) -> ParseTable:
    """Rebuild a ParseTable against *grammar*, verifying the fingerprint.

    Raises :class:`TableCacheError` on any structural defect (wrong
    format version, fingerprint mismatch, truncated or malformed rows) so
    callers can treat every failure mode uniformly as "rebuild".
    """
    if not isinstance(data, dict):
        raise TableCacheError(f"table payload is {type(data).__name__}, not an object")
    if data.get("format") != FORMAT_VERSION:
        raise TableCacheError(f"unsupported table format {data.get('format')!r}")
    fingerprint = grammar_fingerprint(grammar)
    if data.get("fingerprint") != fingerprint:
        raise TableCacheError(
            "grammar fingerprint mismatch: the table was built from a "
            "different grammar (rebuild instead of loading the cache)"
        )
    symbols = grammar.symbols
    try:
        actions = [
            {symbols[name]: _decode_action(encoded) for name, encoded in row.items()}
            for row in data["actions"]
        ]
        gotos = [
            {symbols[name]: target for name, target in row.items()}
            for row in data["gotos"]
        ]
        method = data["method"]
        conflicts = [
            _decode_conflict(encoded, symbols)
            for encoded in data.get("conflicts", [])
        ]
    except TableCacheError:
        raise
    except (KeyError, TypeError, AttributeError, IndexError, SymbolError) as error:
        raise TableCacheError(f"truncated or malformed table payload: {error}") from error
    _validate_rows(actions, gotos, grammar)
    # The dense rows stay single-winner (_validate_rows just proved at
    # most one action per terminal); unresolved entries in the carried
    # conflict log are what make the loaded table report
    # is_deterministic=False and fuel the GLR engine's nondet view.
    return ParseTable(grammar, method, actions, gotos, conflicts=conflicts)


def _validate_rows(
    actions: "List[Dict]", gotos: "List[Dict]", grammar: Grammar
) -> None:
    """Reject structurally invalid rows a syntactically well-formed
    payload can still carry: symbols of the wrong kind in a row,
    out-of-range targets, duplicate actions folded onto one terminal.

    Each check raises :class:`TableCacheError` so every failure mode
    stays uniformly "evict and rebuild" for the cache layers.
    """
    if len(actions) != len(gotos):
        raise TableCacheError(
            f"malformed table payload: {len(actions)} ACTION rows but "
            f"{len(gotos)} GOTO rows"
        )
    n_states = len(actions)
    n_productions = len(grammar.productions)
    for state, row in enumerate(actions):
        for symbol, action in row.items():
            if symbol.is_nonterminal:
                raise TableCacheError(
                    f"malformed table payload: nonterminal {symbol.name!r} "
                    f"in ACTION row {state}"
                )
            if action.kind == "shift" and not 0 <= action.state < n_states:
                raise TableCacheError(
                    f"malformed table payload: shift target {action.state} "
                    f"out of range in ACTION row {state}"
                )
            if action.kind == "reduce" and not 0 <= action.production < n_productions:
                raise TableCacheError(
                    f"malformed table payload: reduce production "
                    f"{action.production} out of range in ACTION row {state}"
                )
    for state, row in enumerate(gotos):
        for symbol, target in row.items():
            if symbol.is_terminal:
                raise TableCacheError(
                    f"malformed table payload: terminal {symbol.name!r} "
                    f"in GOTO row {state}"
                )
            if not isinstance(target, int) or isinstance(target, bool) or not (
                0 <= target < n_states
            ):
                raise TableCacheError(
                    f"malformed table payload: GOTO target {target!r} "
                    f"out of range in row {state}"
                )


def save_table(table: ParseTable, path: str) -> None:
    """Serialise *table* as JSON to *path*, atomically.

    The payload is written to a temporary file in the destination
    directory and moved into place with :func:`os.replace`, so a crash
    mid-write leaves either the old file or no file — never a truncated
    one readers would choke on.
    """
    payload = table_to_dict(table)
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def load_table(path: str, grammar: Grammar) -> ParseTable:
    """Load a table cached by :func:`save_table` for *grammar*.

    Raises :class:`TableCacheError` (not a raw ``JSONDecodeError``) when
    the file is corrupt or truncated; ``FileNotFoundError`` propagates
    unchanged so callers can distinguish "missing" from "damaged".
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise TableCacheError(f"corrupt table file {path!r}: {error}") from error
    return table_from_dict(data, grammar)

"""Parse-table (de)serialisation — the generator's cache format.

Real parser generators persist their tables so application startup skips
the construction.  :func:`table_to_dict` / :func:`table_from_dict` give a
JSON-safe round-trip for any LR(0)-based table, guarded by a **grammar
fingerprint**: loading against a grammar whose rules changed raises
instead of silently mis-parsing.

Only deterministic information is stored (actions, gotos, method); the
conflict log is reconstruction metadata and is not carried — serialise
conflict-free tables (the normal case for a cached production parser).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List

from ..grammar.grammar import Grammar
from ..grammar.symbols import ID_LAYOUT_VERSION
from .table import ACCEPT, Action, ParseTable, Reduce, Shift

#: Bumped to 2 with the integer-interned symbol core: tables now carry
#: dense ID-indexed rows derived from the grammar's ID layout, so
#: format-1 entries (pre-ID era) must be evicted and rebuilt.
FORMAT_VERSION = 2


class TableCacheError(ValueError):
    """A cached table is unusable: corrupt, truncated, from another
    format version, or built from a different grammar.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    callers keep working; cache layers catch this type specifically and
    fall back to rebuilding the table instead of crashing.
    """


def grammar_fingerprint(grammar: Grammar) -> str:
    """A stable hash of the grammar's rules, start symbol and precedence.

    The symbol-ID layout version is part of the payload: a change to how
    dense IDs are assigned re-keys every cached table, because the
    ID-indexed rows rebuilt at load time must match the layout the table
    was validated under.
    """
    payload = {
        "id_layout": ID_LAYOUT_VERSION,
        "start": grammar.start.name,
        "productions": [
            [p.lhs.name, [s.name for s in p.rhs],
             p.prec_symbol.name if p.prec_symbol else None]
            for p in grammar.productions
        ],
        "precedence": sorted(
            (s.name, prec.level, prec.assoc.value)
            for s, prec in grammar.precedence.items()
        ),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _encode_action(action: Action) -> "List":
    if action.kind == "shift":
        return ["s", action.state]
    if action.kind == "reduce":
        return ["r", action.production]
    return ["a"]


def _decode_action(encoded: "List") -> Action:
    kind = encoded[0] if encoded else None
    if kind == "s":
        return Shift(encoded[1])
    if kind == "r":
        return Reduce(encoded[1])
    if kind == "a":
        return ACCEPT
    raise TableCacheError(f"unknown action encoding {encoded!r}")


def table_to_dict(table: ParseTable) -> Dict:
    """A JSON-safe dict capturing *table* (conflicts must be resolved)."""
    if table.unresolved_conflicts:
        raise ValueError(
            f"refusing to serialise a table with "
            f"{len(table.unresolved_conflicts)} unresolved conflicts"
        )
    return {
        "format": FORMAT_VERSION,
        "method": table.method,
        "fingerprint": grammar_fingerprint(table.grammar),
        "actions": [
            {terminal.name: _encode_action(action) for terminal, action in row.items()}
            for row in table.actions
        ],
        "gotos": [
            {nonterminal.name: target for nonterminal, target in row.items()}
            for row in table.gotos
        ],
    }


def table_from_dict(data: Dict, grammar: Grammar) -> ParseTable:
    """Rebuild a ParseTable against *grammar*, verifying the fingerprint.

    Raises :class:`TableCacheError` on any structural defect (wrong
    format version, fingerprint mismatch, truncated or malformed rows) so
    callers can treat every failure mode uniformly as "rebuild".
    """
    if not isinstance(data, dict):
        raise TableCacheError(f"table payload is {type(data).__name__}, not an object")
    if data.get("format") != FORMAT_VERSION:
        raise TableCacheError(f"unsupported table format {data.get('format')!r}")
    fingerprint = grammar_fingerprint(grammar)
    if data.get("fingerprint") != fingerprint:
        raise TableCacheError(
            "grammar fingerprint mismatch: the table was built from a "
            "different grammar (rebuild instead of loading the cache)"
        )
    symbols = grammar.symbols
    try:
        actions = [
            {symbols[name]: _decode_action(encoded) for name, encoded in row.items()}
            for row in data["actions"]
        ]
        gotos = [
            {symbols[name]: target for name, target in row.items()}
            for row in data["gotos"]
        ]
        method = data["method"]
    except TableCacheError:
        raise
    except (KeyError, TypeError, AttributeError, IndexError) as error:
        raise TableCacheError(f"truncated or malformed table payload: {error}") from error
    return ParseTable(grammar, method, actions, gotos, conflicts=[])


def save_table(table: ParseTable, path: str) -> None:
    """Serialise *table* as JSON to *path*, atomically.

    The payload is written to a temporary file in the destination
    directory and moved into place with :func:`os.replace`, so a crash
    mid-write leaves either the old file or no file — never a truncated
    one readers would choke on.
    """
    payload = table_to_dict(table)
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def load_table(path: str, grammar: Grammar) -> ParseTable:
    """Load a table cached by :func:`save_table` for *grammar*.

    Raises :class:`TableCacheError` (not a raw ``JSONDecodeError``) when
    the file is corrupt or truncated; ``FileNotFoundError`` propagates
    unchanged so callers can distinguish "missing" from "damaged".
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise TableCacheError(f"corrupt table file {path!r}: {error}") from error
    return table_from_dict(data, grammar)

"""Parse tables, conflicts, precedence resolution, and classification."""

from .build import build_clr_table, build_lalr_table, build_lr0_table, build_slr_table
from .cache import TableCache, default_cache_dir
from .serialize import (
    TableCacheError,
    load_table,
    save_table,
    table_from_dict,
    table_to_dict,
)
from .explain import ConflictExample, explain_conflict, explain_table_conflicts
from .codegen import generate_parser_module, write_parser_module
from .compress import CompressedTable, compress, compression_ratio
from .classify import Classification, GrammarClass, class_at_most, classify
from .conflicts import Conflict, resolve_shift_reduce
from .table import ACCEPT, Accept, Action, ParseTable, Reduce, Shift

__all__ = [
    "ACCEPT",
    "Accept",
    "Action",
    "Classification",
    "CompressedTable",
    "ConflictExample",
    "explain_conflict",
    "explain_table_conflicts",
    "TableCache",
    "TableCacheError",
    "default_cache_dir",
    "load_table",
    "save_table",
    "table_from_dict",
    "table_to_dict",
    "generate_parser_module",
    "write_parser_module",
    "compress",
    "compression_ratio",
    "Conflict",
    "GrammarClass",
    "ParseTable",
    "Reduce",
    "Shift",
    "build_clr_table",
    "build_lalr_table",
    "build_lr0_table",
    "build_slr_table",
    "class_at_most",
    "classify",
    "resolve_shift_reduce",
]

"""Parse tables, conflicts, precedence resolution, and classification."""

from .build import build_clr_table, build_lalr_table, build_lr0_table, build_slr_table
from .cache import BACKENDS, TableCache, default_cache_dir
from .serialize import (
    TableCacheError,
    load_table,
    save_table,
    table_from_dict,
    table_to_dict,
)
from .binfmt import (
    BINARY_FORMAT_VERSION,
    BINARY_SUFFIX,
    BinaryTable,
    load_binary_table,
    save_binary_table,
    table_from_bytes,
    table_to_bytes,
)
from .displace import DisplacedTable, displace, displacement_ratio
from .nondet import NondeterministicTable, nondet_view
from .specialize import SpecializedTable, specialize, specialized_view
from .explain import ConflictExample, explain_conflict, explain_table_conflicts
from .codegen import STYLES, generate_parser_module, write_parser_module
from .compress import CompressedTable, compress, compression_ratio
from .classify import Classification, GrammarClass, class_at_most, classify
from .conflicts import Conflict, resolve_shift_reduce
from .table import ACCEPT, Accept, Action, ParseTable, Reduce, Shift

__all__ = [
    "ACCEPT",
    "Accept",
    "Action",
    "BACKENDS",
    "BINARY_FORMAT_VERSION",
    "BINARY_SUFFIX",
    "BinaryTable",
    "Classification",
    "CompressedTable",
    "ConflictExample",
    "DisplacedTable",
    "explain_conflict",
    "explain_table_conflicts",
    "STYLES",
    "TableCache",
    "TableCacheError",
    "default_cache_dir",
    "displace",
    "displacement_ratio",
    "load_binary_table",
    "load_table",
    "save_binary_table",
    "save_table",
    "table_from_bytes",
    "table_from_dict",
    "table_to_bytes",
    "table_to_dict",
    "generate_parser_module",
    "write_parser_module",
    "compress",
    "compression_ratio",
    "Conflict",
    "GrammarClass",
    "NondeterministicTable",
    "nondet_view",
    "ParseTable",
    "Reduce",
    "Shift",
    "SpecializedTable",
    "specialize",
    "specialized_view",
    "build_clr_table",
    "build_lalr_table",
    "build_lr0_table",
    "build_slr_table",
    "class_at_most",
    "classify",
    "resolve_shift_reduce",
]

"""Parse-table compression: default reductions.

A classic generator optimisation (yacc, Bison): in each ACTION row, the
most common reduce action becomes the row's *default*; its explicit cells
are dropped, and the parser takes the default whenever the lookahead has
no entry.  Rows that contain only one distinct reduce shrink to a single
default cell.

Consequence (and the reason it is safe): erroneous input may trigger a
few extra reductions before the error is detected — but never an extra
*shift*, so no input is ever wrongly accepted, and the error position can
move only past reductions, never past consumed tokens.  This is the same
contract Bison documents; the test suite checks both halves (acceptance
unchanged; detection possibly delayed but consumption identical).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from ..grammar.symbols import Symbol
from .table import Action, ParseTable, Reduce


class CompressedTable:
    """A ParseTable plus per-state default reduce actions.

    Exposes the same ``action``/``goto`` interface as ParseTable, so the
    parse engine can drive either interchangeably.
    """

    def __init__(self, table: ParseTable):
        self.grammar = table.grammar
        self.method = table.method + "+default-reductions"
        self.gotos = table.gotos
        self.conflicts = table.conflicts
        self.defaults: List[Optional[Reduce]] = []
        self.actions: List[Dict[Symbol, Action]] = []
        self._compress(table)
        # Dense ID-indexed rows for the engine's fast path.  The default
        # reduce fills every cell the explicit row leaves empty — exactly
        # the lookup semantics of :meth:`action`.
        ids = self.grammar.ids
        terminal_id = ids.terminal_id
        num_terminals = ids.num_terminals
        self.action_rows: List[List[Optional[Action]]] = []
        for row, default in zip(self.actions, self.defaults):
            dense: List[Optional[Action]] = [default] * num_terminals
            for terminal, action in row.items():
                dense[terminal_id(terminal)] = action
            self.action_rows.append(dense)
        self.goto_rows = table.goto_rows

    def _compress(self, table: ParseTable) -> None:
        for row in table.actions:
            reduces = Counter(
                action for action in row.values() if action.kind == "reduce"
            )
            if not reduces:
                self.defaults.append(None)
                self.actions.append(dict(row))
                continue
            default, _count = reduces.most_common(1)[0]
            kept = {
                terminal: action
                for terminal, action in row.items()
                if action != default
            }
            self.defaults.append(default)
            self.actions.append(kept)

    @property
    def n_states(self) -> int:
        return len(self.actions)

    @property
    def is_deterministic(self) -> bool:
        return not self.unresolved_conflicts

    @property
    def unresolved_conflicts(self):
        return [c for c in self.conflicts if not c.resolved_by_precedence]

    def action(self, state: int, terminal: Symbol) -> Optional[Action]:
        explicit = self.actions[state].get(terminal)
        if explicit is not None:
            return explicit
        return self.defaults[state]

    def goto(self, state: int, nonterminal: Symbol) -> Optional[int]:
        return self.gotos[state].get(nonterminal)

    def size_cells(self) -> int:
        """Populated cells after compression (defaults count as one each)."""
        return (
            sum(len(row) for row in self.actions)
            + sum(len(row) for row in self.gotos)
            + sum(1 for default in self.defaults if default is not None)
        )


def compress(table: ParseTable) -> CompressedTable:
    """Apply default-reduction compression to *table*."""
    return CompressedTable(table)


def compression_ratio(table: ParseTable) -> float:
    """Original cells / compressed cells (>1 means savings)."""
    compressed = compress(table)
    original = table.size_cells()
    return original / compressed.size_cells() if compressed.size_cells() else 1.0

"""Parse-table compression: default reductions.

A classic generator optimisation (yacc, Bison): in each ACTION row, the
most common reduce action becomes the row's *default*; its explicit cells
are dropped, and the parser takes the default whenever the lookahead has
no entry.  Rows that contain only one distinct reduce shrink to a single
default cell.

Consequence (and the reason it is safe): under the classic lookup
scheme erroneous input may trigger a few extra reductions before the
error is detected — but never an extra *shift*, so no input is ever
wrongly accepted, and the error position can move only past reductions,
never past consumed tokens.  This is the same contract Bison documents.
Here that deferred-detection behaviour lives only in the Symbol-keyed
:meth:`CompressedTable.action` lookup; the dense rows the engine drives
resolve every default back into the cells it was folded from, so engine
error *messages and positions* are identical to the uncompressed table
(the expected-set regression tests pin this down).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from ..grammar.symbols import Symbol
from .table import Action, ParseTable, Reduce


class CompressedTable:
    """A ParseTable plus per-state default reduce actions.

    Exposes the same ``action``/``goto`` interface as ParseTable, so the
    parse engine can drive either interchangeably.

    Two lookup surfaces with deliberately different default semantics:

    - :meth:`action` (the Symbol-keyed slow path) consults the row
      default on any miss — the classic yacc storage scheme, where
      erroneous lookaheads may trigger a few extra reductions before
      the error surfaces.
    - ``action_rows`` (the engine's dense fast path) resolves each
      default into exactly the cells it was folded *from* at
      construction time; genuine error cells stay empty.  The engine
      therefore detects errors in the identical state, at the identical
      position, with the identical expected set as the uncompressed
      table — compression is a storage measure (:meth:`size_cells`),
      never a diagnostics change.
    """

    def __init__(self, table: ParseTable):
        self.grammar = table.grammar
        self.method = table.method + "+default-reductions"
        self.gotos = table.gotos
        self.conflicts = table.conflicts
        eof = self.grammar.eof
        if not any(
            action is not None and action.kind == "accept"
            for row in table.actions
            for terminal, action in row.items()
            if terminal is eof
        ):
            # Without this guard a default reduce in the $end column
            # would silently stand in for the missing accept and the
            # parser would reduce forever at end of input.
            raise ValueError(
                "cannot compress a table with no accept action on "
                f"{eof.name}: a column default would mask the missing accept"
            )
        self.defaults: List[Optional[Reduce]] = []
        self.actions: List[Dict[Symbol, Action]] = []
        self._compress(table)
        # Dense ID-indexed rows for the engine's fast path: identical to
        # the source table's rows, i.e. every folded default already
        # resolved into its original cells and nothing else.
        self.action_rows: List[List[Optional[Action]]] = [
            list(row) for row in table.action_rows
        ]
        self.goto_rows = table.goto_rows

    def _compress(self, table: ParseTable) -> None:
        for row in table.actions:
            reduces = Counter(
                action for action in row.values() if action.kind == "reduce"
            )
            if not reduces:
                self.defaults.append(None)
                self.actions.append(dict(row))
                continue
            default, _count = reduces.most_common(1)[0]
            kept = {
                terminal: action
                for terminal, action in row.items()
                if action != default
            }
            self.defaults.append(default)
            self.actions.append(kept)

    @property
    def n_states(self) -> int:
        return len(self.actions)

    @property
    def is_deterministic(self) -> bool:
        return not self.unresolved_conflicts

    @property
    def unresolved_conflicts(self):
        return [c for c in self.conflicts if not c.resolved_by_precedence]

    def action(self, state: int, terminal: Symbol) -> Optional[Action]:
        explicit = self.actions[state].get(terminal)
        if explicit is not None:
            return explicit
        return self.defaults[state]

    def goto(self, state: int, nonterminal: Symbol) -> Optional[int]:
        return self.gotos[state].get(nonterminal)

    def size_cells(self) -> int:
        """Populated cells after compression (defaults count as one each)."""
        return (
            sum(len(row) for row in self.actions)
            + sum(len(row) for row in self.gotos)
            + sum(1 for default in self.defaults if default is not None)
        )


def compress(table: ParseTable) -> CompressedTable:
    """Apply default-reduction compression to *table*."""
    return CompressedTable(table)


def compression_ratio(table: ParseTable) -> float:
    """Original cells / compressed cells (>1 means savings)."""
    compressed_cells = compress(table).size_cells()
    return table.size_cells() / compressed_cells if compressed_cells else 1.0

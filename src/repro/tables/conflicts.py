"""Conflict records and precedence-based resolution (yacc semantics).

When two actions land in one ACTION cell the builder consults the
grammar's precedence declarations:

shift/reduce on terminal ``t`` against production ``P``:
    - ``prec(P) > prec(t)``  -> reduce
    - ``prec(P) < prec(t)``  -> shift
    - equal level, %left     -> reduce
    - equal level, %right    -> shift
    - equal level, %nonassoc -> error (the cell is emptied)
    - either side unprecedented -> unresolved; shift wins (yacc default)

reduce/reduce:
    never resolved by precedence; the production declared first wins and
    the conflict is reported.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from ..grammar.grammar import Assoc, Grammar
from ..grammar.symbols import Symbol

if TYPE_CHECKING:  # pragma: no cover
    from .table import Action


class Conflict:
    """One conflicted ACTION cell.

    Attributes:
        state: State id of the cell.
        terminal: Lookahead terminal of the cell.
        kind: ``"shift/reduce"`` or ``"reduce/reduce"``.
        actions: The competing actions, in discovery order.
        chosen: The action kept in the table (None = cell erased, which
            happens only for %nonassoc resolutions).
        resolved_by_precedence: True when precedence/associativity settled
            the cell (not counted as a real conflict, as in yacc).
    """

    def __init__(
        self,
        state: int,
        terminal: Symbol,
        kind: str,
        actions: "List[Action]",
        chosen: "Optional[Action]",
        resolved_by_precedence: bool,
    ):
        self.state = state
        self.terminal = terminal
        self.kind = kind
        self.actions = actions
        self.chosen = chosen
        self.resolved_by_precedence = resolved_by_precedence

    def describe(self, grammar: Grammar) -> str:
        parts = []
        for action in self.actions:
            if action.kind == "reduce":
                production = grammar.productions[action.production]
                parts.append(f"reduce {production}")
            elif action.kind == "shift":
                parts.append(f"shift -> {action.state}")
            else:  # pragma: no cover - accept never conflicts in practice
                parts.append("accept")
        status = "resolved by precedence" if self.resolved_by_precedence else "UNRESOLVED"
        return (
            f"state {self.state}, lookahead {self.terminal.name!r}: "
            f"{self.kind} between {' and '.join(parts)} ({status})"
        )

    def __repr__(self) -> str:
        return f"Conflict(state={self.state}, terminal={self.terminal.name!r}, kind={self.kind!r})"


def resolve_shift_reduce(
    grammar: Grammar,
    terminal: Symbol,
    shift_action: "Action",
    reduce_action: "Action",
) -> "tuple[Optional[Action], bool]":
    """Apply yacc precedence rules to a shift/reduce pair.

    Returns ``(winner_or_None, resolved_by_precedence)``.  ``None`` means
    the cell must be erased (%nonassoc at equal level).
    """
    production = grammar.productions[reduce_action.production]
    token_prec = grammar.precedence.get(terminal)
    production_prec = (
        grammar.precedence.get(production.prec_symbol)
        if production.prec_symbol is not None
        else None
    )
    if token_prec is None or production_prec is None:
        return shift_action, False  # yacc default: shift, report conflict
    if production_prec.level > token_prec.level:
        return reduce_action, True
    if production_prec.level < token_prec.level:
        return shift_action, True
    if token_prec.assoc is Assoc.LEFT:
        return reduce_action, True
    if token_prec.assoc is Assoc.RIGHT:
        return shift_action, True
    return None, True  # NONASSOC: sequence is a syntax error

"""Conflict-list view of a parse table — the GLR engine's fuel.

A :class:`~repro.tables.table.ParseTable` keeps exactly one action per
ACTION cell (the yacc-default winner) and records the losers in its
``conflicts`` log.  :class:`NondeterministicTable` merges the two back
together: every cell becomes a *tuple of actions* — a 1-tuple for the
clean cells, the full competing set for cells with unresolved conflicts
— plus the unchanged dense GOTO rows.  The RNGLR engine
(:mod:`repro.parser.glr`) forks its graph-structured stack on exactly
these tuples.

Two deliberate choices:

- **Precedence resolutions stay resolved.**  A cell settled by
  ``%left``/``%right``/``%nonassoc`` keeps only its winner (or stays
  empty for a %nonassoc erasure): the user *declared* that resolution,
  so the GLR engine honours it exactly like the deterministic engine.
  Only *unresolved* conflicts fork.
- **Canonical cell order.**  Within a conflicted cell the actions are
  ordered accept, shift, then reduces by ascending production index —
  a pure function of the action set, independent of conflict-discovery
  order, so a table reloaded from an artifact drives the GLR engine
  identically to a freshly built one.

The view works over any table object carrying ``grammar``,
``action_rows``/``goto_rows`` and ``conflicts`` — a ParseTable, a
:class:`~repro.tables.binfmt.BinaryTable`, or a table loaded from the
JSON format.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .table import Action

__all__ = ["NondeterministicTable", "nondet_view"]


def _cell_order(action: Action) -> "Tuple[int, int]":
    """Canonical within-cell sort key: accept, shift, reduces ascending."""
    if action.kind == "accept":
        return (0, 0)
    if action.kind == "shift":
        return (1, action.state)
    return (2, action.production)


class NondeterministicTable:
    """Per-cell action *tuples* merged from a table's rows + conflicts.

    Attributes:
        table: The underlying single-winner table.
        grammar: The (augmented) grammar the table was built for.
        rows: ``rows[state][terminal_id]`` is a tuple of actions (empty
            = syntax error); at most one cell per unresolved conflict
            holds more than one.
        goto_rows: The underlying table's dense GOTO rows, unchanged.
        conflict_cells: How many cells hold more than one action.
    """

    def __init__(self, table):
        self.table = table
        self.grammar = table.grammar
        self.method = table.method
        ids = self.grammar.ids
        terminal_id = ids.terminal_id

        merged: "Dict[Tuple[int, int], List[Action]]" = {}
        for conflict in table.conflicts:
            if conflict.resolved_by_precedence:
                continue
            key = (conflict.state, terminal_id(conflict.terminal))
            bucket = merged.setdefault(key, [])
            for action in conflict.actions:
                if action not in bucket:
                    bucket.append(action)

        rows: "List[List[tuple]]" = []
        for state in range(table.n_states):
            source = table.action_rows[state]
            rows.append([
                () if action is None else (action,) for action in source
            ])
        for (state, tid), bucket in merged.items():
            # The cell's winner is one of the competing actions by
            # construction, but fold it in defensively (a %nonassoc
            # erasure followed by a later conflict could drift).
            winner = table.action_rows[state][tid]
            if winner is not None and winner not in bucket:
                bucket.append(winner)
            rows[state][tid] = tuple(sorted(bucket, key=_cell_order))
        self.rows = rows
        self.goto_rows = table.goto_rows
        self.conflict_cells = len(merged)

    @property
    def n_states(self) -> int:
        return len(self.rows)

    @property
    def is_deterministic(self) -> bool:
        """True iff no cell forks (every tuple has at most one action)."""
        return self.conflict_cells == 0

    def actions_for(self, state: int, terminal_id: int) -> tuple:
        """The competing actions for (state, lookahead id); () = error."""
        return self.rows[state][terminal_id]


def nondet_view(table) -> NondeterministicTable:
    """The memoized :class:`NondeterministicTable` for *table*.

    Mirrors :func:`repro.tables.specialize.specialized_view`: the view is
    built once per table object and cached on it, so tables coming off
    the service's hot LRU pay the merge exactly once.
    """
    view = getattr(table, "_nondet_view", None)
    if view is None or view.table is not table:
        view = NondeterministicTable(table)
        try:
            table._nondet_view = view
        except AttributeError:  # pragma: no cover - exotic table objects
            pass
    return view

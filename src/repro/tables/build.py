"""Parse-table construction for the four LR variants.

All four builders share one cell-filling engine and differ only in *which
lookaheads gate each reduction*:

- **LR(0)**: every terminal (reduce regardless of lookahead);
- **SLR(1)**: FOLLOW(lhs) — :class:`repro.baselines.slr.SlrAnalysis`;
- **LALR(1)**: the DeRemer–Pennello LA sets (default) or any baseline's
  equivalent table;
- **CLR(1)**: per-LR(1)-state item lookaheads (the table lives on the
  canonical LR(1) automaton, so it is typically much larger).

The accept action is installed on ``$end`` in any state containing the
item ``S' -> S . $end``; the reduction by production 0 therefore never
fires and carries no lookaheads anywhere in the library.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from ..automaton.lr0 import LR0Automaton
from ..automaton.lr1 import LR1Automaton
from ..baselines.slr import SlrAnalysis
from ..core import instrument
from ..core.lalr import LalrAnalysis
from ..core.relations import ReductionSite
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from .conflicts import Conflict, resolve_shift_reduce
from .table import ACCEPT, Action, ParseTable, Reduce, Shift


def build_lr0_table(
    grammar: Grammar, automaton: "LR0Automaton | None" = None
) -> ParseTable:
    """The LR(0) table: final items reduce on *every* terminal."""
    with instrument.span("table.build.lr0"):
        if automaton is None:
            automaton = LR0Automaton(grammar)
        all_terminals = frozenset(automaton.grammar.terminals)

        def lookaheads(site: ReductionSite) -> FrozenSet[Symbol]:
            return all_terminals

        return _fill_lr0_based(automaton, "lr0", lookaheads)


def build_slr_table(
    grammar: Grammar, automaton: "LR0Automaton | None" = None
) -> ParseTable:
    """The SLR(1) table: reduce on FOLLOW of the production's lhs."""
    with instrument.span("table.build.slr1"):
        if automaton is None:
            automaton = LR0Automaton(grammar)
        analysis = SlrAnalysis(grammar, automaton)

        def lookaheads(site: ReductionSite) -> FrozenSet[Symbol]:
            return analysis.lookahead(*site)

        return _fill_lr0_based(automaton, "slr1", lookaheads)


def build_lalr_table(
    grammar: Grammar,
    automaton: "LR0Automaton | None" = None,
    lookahead_table: "Dict[ReductionSite, FrozenSet[Symbol]] | None" = None,
) -> ParseTable:
    """The LALR(1) table.

    By default lookaheads come from the DeRemer–Pennello analysis; pass
    *lookahead_table* (e.g. from a baseline) to build from other sources —
    the classifier and the equivalence tests use this hook.
    """
    with instrument.span("table.build.lalr1"):
        if automaton is None:
            automaton = LR0Automaton(grammar)
        if lookahead_table is None:
            lookahead_table = LalrAnalysis(grammar, automaton).lookahead_table()

        def lookaheads(site: ReductionSite) -> FrozenSet[Symbol]:
            return lookahead_table.get(site, frozenset())

        return _fill_lr0_based(automaton, "lalr1", lookaheads)


def _fill_lr0_based(
    automaton: LR0Automaton,
    method: str,
    lookaheads_for: "callable",
) -> ParseTable:
    grammar = automaton.grammar
    eof = grammar.eof
    actions: List[Dict[Symbol, Action]] = []
    gotos: List[Dict[Symbol, int]] = []
    conflicts: List[Conflict] = []

    with instrument.span("table.fill"):
        for state in automaton.states:
            action_row: Dict[Symbol, Action] = {}
            goto_row: Dict[Symbol, int] = {}
            for symbol, successor in state.transitions.items():
                if symbol.is_nonterminal:
                    goto_row[symbol] = successor
                elif symbol is eof:
                    # goto on $end exists only from the item S' -> S . $end.
                    action_row[eof] = ACCEPT
                else:
                    action_row[symbol] = Shift(successor)
            for item in state.reductions:
                if item.production == 0:
                    continue
                reduce_action = Reduce(item.production)
                for terminal in lookaheads_for((state.state_id, item.production)):
                    _place(
                        grammar,
                        actions_row=action_row,
                        state_id=state.state_id,
                        terminal=terminal,
                        new_action=reduce_action,
                        conflicts=conflicts,
                    )
            actions.append(action_row)
            gotos.append(goto_row)
    if instrument.enabled():
        instrument.count("table.states", len(actions))
        instrument.count("table.action_cells", sum(len(row) for row in actions))
        instrument.count("table.conflicts", len(conflicts))
    return ParseTable(grammar, method, actions, gotos, conflicts)


def build_clr_table(
    grammar: Grammar, lr1: "LR1Automaton | None" = None
) -> ParseTable:
    """The canonical LR(1) table (Knuth), on the LR(1) automaton's states."""
    with instrument.span("table.build.clr1"):
        if lr1 is None:
            lr1 = LR1Automaton(grammar.augmented() if not grammar.is_augmented else grammar)
        grammar = lr1.grammar
        eof = grammar.eof
        actions: List[Dict[Symbol, Action]] = []
        gotos: List[Dict[Symbol, int]] = []
        conflicts: List[Conflict] = []

        with instrument.span("table.fill"):
            for state in lr1.states:
                action_row: Dict[Symbol, Action] = {}
                goto_row: Dict[Symbol, int] = {}
                for symbol, successor in state.transitions.items():
                    if symbol.is_nonterminal:
                        goto_row[symbol] = successor
                    elif symbol is eof:
                        action_row[eof] = ACCEPT
                    else:
                        action_row[symbol] = Shift(successor)
                for production_index, lookahead_set in lr1.reductions(state.state_id):
                    if production_index == 0:
                        continue
                    reduce_action = Reduce(production_index)
                    for terminal in lookahead_set:
                        _place(
                            grammar,
                            actions_row=action_row,
                            state_id=state.state_id,
                            terminal=terminal,
                            new_action=reduce_action,
                            conflicts=conflicts,
                        )
                actions.append(action_row)
                gotos.append(goto_row)
        if instrument.enabled():
            instrument.count("table.states", len(actions))
            instrument.count("table.action_cells", sum(len(row) for row in actions))
            instrument.count("table.conflicts", len(conflicts))
        return ParseTable(grammar, "clr1", actions, gotos, conflicts)


def _place(
    grammar: Grammar,
    actions_row: Dict[Symbol, Action],
    state_id: int,
    terminal: Symbol,
    new_action: Action,
    conflicts: List[Conflict],
) -> None:
    """Install *new_action* into a cell, resolving/recording conflicts."""
    existing = actions_row.get(terminal)
    if existing is None:
        actions_row[terminal] = new_action
        return
    if existing == new_action:
        return
    if existing.kind == "shift" and new_action.kind == "reduce":
        winner, resolved = resolve_shift_reduce(grammar, terminal, existing, new_action)
        conflicts.append(
            Conflict(state_id, terminal, "shift/reduce", [existing, new_action], winner, resolved)
        )
        if winner is None:
            del actions_row[terminal]
        else:
            actions_row[terminal] = winner
        return
    if existing.kind == "reduce" and new_action.kind == "reduce":
        # yacc rule: the earlier production wins; never precedence-resolved.
        winner = existing if existing.production <= new_action.production else new_action
        conflicts.append(
            Conflict(state_id, terminal, "reduce/reduce", [existing, new_action], winner, False)
        )
        actions_row[terminal] = winner
        return
    # reduce placed first, then shift discovered — normalise the ordering.
    if existing.kind == "reduce" and new_action.kind == "shift":
        winner, resolved = resolve_shift_reduce(grammar, terminal, new_action, existing)
        conflicts.append(
            Conflict(state_id, terminal, "shift/reduce", [new_action, existing], winner, resolved)
        )
        if winner is None:
            del actions_row[terminal]
        else:
            actions_row[terminal] = winner
        return
    if existing.kind == "accept" or new_action.kind == "accept":
        # Only cyclic grammars (S =>+ S) can pit accept against a reduce;
        # keep accept and report it as an unresolved shift/reduce-style
        # conflict so the classifier rejects such grammars.
        winner = existing if existing.kind == "accept" else new_action
        conflicts.append(
            Conflict(state_id, terminal, "shift/reduce", [existing, new_action], winner, False)
        )
        actions_row[terminal] = winner
        return
    raise AssertionError(
        f"impossible action pair in state {state_id}: {existing!r} vs {new_action!r}"
    )

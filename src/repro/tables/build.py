"""Parse-table construction for the four LR variants.

All four builders share one cell-filling engine and differ only in *which
lookaheads gate each reduction*:

- **LR(0)**: every terminal (reduce regardless of lookahead);
- **SLR(1)**: FOLLOW(lhs) — :class:`repro.baselines.slr.SlrAnalysis`;
- **LALR(1)**: the DeRemer–Pennello LA sets (default) or any baseline's
  equivalent table;
- **CLR(1)**: per-LR(1)-state item lookaheads (the table lives on the
  canonical LR(1) automaton, so it is typically much larger).

The accept action is installed on ``$end`` in any state containing the
item ``S' -> S . $end``; the reduction by production 0 therefore never
fires and carries no lookaheads anywhere in the library.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, List

from ..automaton.lr0 import LR0Automaton
from ..automaton.lr1 import LR1Automaton
from ..baselines.slr import SlrAnalysis
from ..core import instrument
from ..core.lalr import LalrAnalysis
from ..core.relations import ReductionSite
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from .conflicts import Conflict, resolve_shift_reduce
from .table import ACCEPT, Action, ParseTable, Reduce, Shift


def build_lr0_table(
    grammar: Grammar, automaton: "LR0Automaton | None" = None, budget=None
) -> ParseTable:
    """The LR(0) table: final items reduce on *every* terminal."""
    with instrument.span("table.build.lr0"):
        if automaton is None:
            automaton = LR0Automaton(grammar, budget=budget)
        all_mask = (1 << automaton.ids.num_terminals) - 1

        def lookahead_mask(site: ReductionSite) -> int:
            return all_mask

        return _fill_lr0_based(automaton, "lr0", lookahead_mask, budget)


def build_slr_table(
    grammar: Grammar, automaton: "LR0Automaton | None" = None, budget=None
) -> ParseTable:
    """The SLR(1) table: reduce on FOLLOW of the production's lhs."""
    with instrument.span("table.build.slr1"):
        if automaton is None:
            automaton = LR0Automaton(grammar, budget=budget)
        analysis = SlrAnalysis(grammar, automaton)
        mask_of = _symbol_set_masker(automaton)

        def lookahead_mask(site: ReductionSite) -> int:
            return mask_of(analysis.lookahead(*site))

        return _fill_lr0_based(automaton, "slr1", lookahead_mask, budget)


def build_lalr_table(
    grammar: Grammar,
    automaton: "LR0Automaton | None" = None,
    lookahead_table: "Dict[ReductionSite, FrozenSet[Symbol]] | None" = None,
    budget=None,
    la_masks: "Dict[ReductionSite, int] | None" = None,
) -> ParseTable:
    """The LALR(1) table.

    By default lookaheads come straight from the DeRemer–Pennello
    analysis's LA bitmasks (no Symbol round-trip); pass *lookahead_table*
    (e.g. from a baseline) to build from other sources — the classifier
    and the equivalence tests use this hook — or *la_masks* to reuse an
    already-computed analysis's masks without paying for a second one
    (the session pipeline's path).  A *budget* governs the whole build
    (automaton, analysis and fill share one deadline).
    """
    with instrument.span("table.build.lalr1"):
        if automaton is None:
            automaton = LR0Automaton(grammar, budget=budget)
        if lookahead_table is None:
            if la_masks is None:
                la_masks = LalrAnalysis(grammar, automaton, budget=budget).la_masks
            site_masks = la_masks

            def lookahead_mask(site: ReductionSite) -> int:
                return site_masks.get(site, 0)

        else:
            mask_of = _symbol_set_masker(automaton)

            def lookahead_mask(site: ReductionSite) -> int:
                return mask_of(lookahead_table.get(site, frozenset()))

        return _fill_lr0_based(automaton, "lalr1", lookahead_mask, budget)


def _symbol_set_masker(automaton: LR0Automaton) -> "callable":
    """Symbol-set -> terminal-ID bitmask converter (memoised per set).

    Follow/LA sets are shared objects (one per lhs or site), so the
    memoisation makes the conversion one pass per distinct set.
    """
    terminal_id = automaton.ids.terminal_id
    cache: Dict[int, int] = {}

    def mask_of(terminals: FrozenSet[Symbol]) -> int:
        key = id(terminals)
        mask = cache.get(key)
        if mask is None:
            mask = 0
            for terminal in terminals:
                mask |= 1 << terminal_id(terminal)
            cache[key] = mask
        return mask

    return mask_of


def _fill_lr0_based(
    automaton: LR0Automaton,
    method: str,
    lookahead_mask_for: "callable",
    budget=None,
) -> ParseTable:
    """Fill ACTION/GOTO walking the automaton's integer core.

    Shift/goto cells come from each state's ID row; reduce lookaheads
    arrive as terminal-ID bitmasks and are widened to Symbols only at
    the cell boundary (where conflict resolution reasons about
    precedence declarations, which are Symbol-keyed).
    """
    grammar = automaton.grammar
    ids = automaton.ids
    num_terminals = ids.num_terminals
    symbol_of = ids.by_sid
    eof_sid = ids.terminal_id(grammar.eof)
    eof = grammar.eof
    actions: List[Dict[Symbol, Action]] = []
    gotos: List[Dict[Symbol, int]] = []
    conflicts: List[Conflict] = []

    if budget is not None:
        budget.enter_phase("table.fill")
    with instrument.span("table.fill"):
        for state in automaton.states:
            if budget is not None:
                budget.tick()
            action_row, goto_row = _fill_state_row(
                grammar,
                state,
                lookahead_mask_for,
                conflicts,
                symbol_of,
                num_terminals,
                eof_sid,
                eof,
            )
            actions.append(action_row)
            gotos.append(goto_row)
    if budget is not None:
        budget.publish()
    if instrument.enabled():
        instrument.count("table.states", len(actions))
        instrument.count("table.action_cells", sum(len(row) for row in actions))
        instrument.count("table.conflicts", len(conflicts))
    return ParseTable(grammar, method, actions, gotos, conflicts)


def _fill_state_row(
    grammar: Grammar,
    state,
    lookahead_mask_for: "callable",
    conflicts: List[Conflict],
    symbol_of,
    num_terminals: int,
    eof_sid: int,
    eof: Symbol,
) -> "tuple[Dict[Symbol, Action], Dict[Symbol, int]]":
    """One state's ACTION/GOTO dict rows (the fill engine's inner body).

    Shared between the from-scratch fill and the incremental refill so a
    refilled row is computed by the exact same code path.  Conflicts
    discovered in this state are appended to *conflicts* in discovery
    order.
    """
    action_row: Dict[Symbol, Action] = {}
    goto_row: Dict[Symbol, int] = {}
    targets = state.targets
    for sid in state.out_sids:
        successor = targets[sid]
        if sid >= num_terminals:
            goto_row[symbol_of[sid]] = successor
        elif sid == eof_sid:
            # goto on $end exists only from the item S' -> S . $end.
            action_row[eof] = ACCEPT
        else:
            action_row[symbol_of[sid]] = Shift(successor)
    for item in state.reductions:
        if item.production == 0:
            continue
        reduce_action = Reduce(item.production)
        mask = lookahead_mask_for((state.state_id, item.production))
        while mask:
            low_bit = mask & -mask
            mask ^= low_bit
            _place(
                grammar,
                actions_row=action_row,
                state_id=state.state_id,
                terminal=symbol_of[low_bit.bit_length() - 1],
                new_action=reduce_action,
                conflicts=conflicts,
            )
    return action_row, goto_row


def refill_lalr_table(
    old_table: ParseTable,
    automaton: LR0Automaton,
    la_masks: Dict[ReductionSite, int],
    old_la_masks: Dict[ReductionSite, int],
    dirty: bytearray,
) -> ParseTable:
    """Rebuild only the table rows an rhs edit can have changed.

    A state's ACTION/GOTO row is a function of its transition row, its
    reduction items' LA masks, and the grammar's precedence
    declarations.  After a splice, a state that is not *dirty* shares
    its transition row object with the old automaton, and rhs-delta
    eligibility keeps grammar-level precedence fixed; so its row can be
    reused verbatim iff none of its reduction sites' LA masks changed.
    (A changed production's ``%prec`` cannot affect a clean state either:
    any state reducing by that production contains one of its items and
    is dirty by definition.)  Everything is assembled in state order, so
    rows, dense rows and the conflict list come out ordered exactly as a
    from-scratch fill — reused rows shared object-for-object.
    """
    grammar = automaton.grammar
    states = automaton.states
    n_states = len(states)
    refill = bytearray(dirty)
    # Sites that appear or disappear belong to recomputed (dirty, hence
    # already marked) states, so scanning the old site list is enough.
    la_get = la_masks.get
    for site, old_mask in old_la_masks.items():
        if la_get(site) != old_mask:
            refill[site[0]] = 1

    ids = grammar.ids
    symbol_of = ids.by_sid
    num_terminals = ids.num_terminals
    eof = grammar.eof
    eof_sid = ids.terminal_id(eof)
    terminal_id = ids.terminal_id
    nonterminal_id = ids.nonterminal_id
    empty_goto_row = array("i", [-1]) * ids.num_nonterminals

    def lookahead_mask(site: ReductionSite) -> int:
        return la_masks.get(site, 0)

    actions: List[Dict[Symbol, Action]] = []
    gotos: List[Dict[Symbol, int]] = []
    conflicts: List[Conflict] = []
    action_rows: "List[List[Action | None]]" = []
    goto_rows: "List[array]" = []
    reused = 0
    # ``old_table.conflicts`` is in state order (so is our output), so a
    # single pointer walks it: clean runs copy their slice of old
    # conflicts, a refilled state skips its old entries and regenerates.
    old_conflicts = old_table.conflicts
    n_old_conflicts = len(old_conflicts)
    conflict_ptr = 0
    old_actions = old_table.actions
    old_gotos = old_table.gotos
    old_action_rows = old_table.action_rows
    old_goto_rows = old_table.goto_rows
    with instrument.span("table.refill"):
        state_id = 0
        while state_id < n_states:
            boundary = refill.find(1, state_id)
            if boundary < 0:
                boundary = n_states
            if boundary > state_id:
                # Clean run [state_id, boundary): rows shared verbatim.
                actions.extend(old_actions[state_id:boundary])
                gotos.extend(old_gotos[state_id:boundary])
                action_rows.extend(old_action_rows[state_id:boundary])
                goto_rows.extend(old_goto_rows[state_id:boundary])
                while (
                    conflict_ptr < n_old_conflicts
                    and old_conflicts[conflict_ptr].state < boundary
                ):
                    conflicts.append(old_conflicts[conflict_ptr])
                    conflict_ptr += 1
                reused += boundary - state_id
                state_id = boundary
                if state_id >= n_states:
                    break
            while (
                conflict_ptr < n_old_conflicts
                and old_conflicts[conflict_ptr].state <= state_id
            ):
                conflict_ptr += 1
            action_row, goto_row = _fill_state_row(
                grammar,
                states[state_id],
                lookahead_mask,
                conflicts,
                symbol_of,
                num_terminals,
                eof_sid,
                eof,
            )
            actions.append(action_row)
            gotos.append(goto_row)
            dense: "List[Action | None]" = [None] * num_terminals
            for terminal, action in action_row.items():
                dense[terminal_id(terminal)] = action
            action_rows.append(dense)
            goto_dense = array(empty_goto_row.typecode, empty_goto_row)
            for nonterminal, target in goto_row.items():
                goto_dense[nonterminal_id(nonterminal)] = target
            goto_rows.append(goto_dense)
            state_id += 1
    if instrument.enabled():
        instrument.count("phase.table.rows_reused", reused)
        instrument.count("phase.table.rows_refilled", n_states - reused)
    return ParseTable.from_rows(
        grammar, "lalr1", actions, gotos, conflicts, action_rows, goto_rows
    )


def build_clr_table(
    grammar: Grammar, lr1: "LR1Automaton | None" = None, budget=None
) -> ParseTable:
    """The canonical LR(1) table (Knuth), on the LR(1) automaton's states."""
    with instrument.span("table.build.clr1"):
        if lr1 is None:
            lr1 = LR1Automaton(
                grammar.augmented() if not grammar.is_augmented else grammar,
                budget=budget,
            )
        grammar = lr1.grammar
        eof = grammar.eof
        actions: List[Dict[Symbol, Action]] = []
        gotos: List[Dict[Symbol, int]] = []
        conflicts: List[Conflict] = []

        if budget is not None:
            budget.enter_phase("table.fill")
        with instrument.span("table.fill"):
            for state in lr1.states:
                if budget is not None:
                    budget.tick()
                action_row: Dict[Symbol, Action] = {}
                goto_row: Dict[Symbol, int] = {}
                for symbol, successor in state.transitions.items():
                    if symbol.is_nonterminal:
                        goto_row[symbol] = successor
                    elif symbol is eof:
                        action_row[eof] = ACCEPT
                    else:
                        action_row[symbol] = Shift(successor)
                for production_index, lookahead_set in lr1.reductions(state.state_id):
                    if production_index == 0:
                        continue
                    reduce_action = Reduce(production_index)
                    for terminal in lookahead_set:
                        _place(
                            grammar,
                            actions_row=action_row,
                            state_id=state.state_id,
                            terminal=terminal,
                            new_action=reduce_action,
                            conflicts=conflicts,
                        )
                actions.append(action_row)
                gotos.append(goto_row)
        if budget is not None:
            budget.publish()
        if instrument.enabled():
            instrument.count("table.states", len(actions))
            instrument.count("table.action_cells", sum(len(row) for row in actions))
            instrument.count("table.conflicts", len(conflicts))
        return ParseTable(grammar, "clr1", actions, gotos, conflicts)


def _place(
    grammar: Grammar,
    actions_row: Dict[Symbol, Action],
    state_id: int,
    terminal: Symbol,
    new_action: Action,
    conflicts: List[Conflict],
) -> None:
    """Install *new_action* into a cell, resolving/recording conflicts."""
    existing = actions_row.get(terminal)
    if existing is None:
        actions_row[terminal] = new_action
        return
    if existing == new_action:
        return
    if existing.kind == "shift" and new_action.kind == "reduce":
        winner, resolved = resolve_shift_reduce(grammar, terminal, existing, new_action)
        conflicts.append(
            Conflict(state_id, terminal, "shift/reduce", [existing, new_action], winner, resolved)
        )
        if winner is None:
            del actions_row[terminal]
        else:
            actions_row[terminal] = winner
        return
    if existing.kind == "reduce" and new_action.kind == "reduce":
        # yacc rule: the earlier production wins; never precedence-resolved.
        winner = existing if existing.production <= new_action.production else new_action
        conflicts.append(
            Conflict(state_id, terminal, "reduce/reduce", [existing, new_action], winner, False)
        )
        actions_row[terminal] = winner
        return
    # reduce placed first, then shift discovered — normalise the ordering.
    if existing.kind == "reduce" and new_action.kind == "shift":
        winner, resolved = resolve_shift_reduce(grammar, terminal, new_action, existing)
        conflicts.append(
            Conflict(state_id, terminal, "shift/reduce", [new_action, existing], winner, resolved)
        )
        if winner is None:
            del actions_row[terminal]
        else:
            actions_row[terminal] = winner
        return
    if existing.kind == "accept" or new_action.kind == "accept":
        # Only cyclic grammars (S =>+ S) can pit accept against a reduce;
        # keep accept and report it as an unresolved shift/reduce-style
        # conflict so the classifier rejects such grammars.
        winner = existing if existing.kind == "accept" else new_action
        conflicts.append(
            Conflict(state_id, terminal, "shift/reduce", [existing, new_action], winner, False)
        )
        actions_row[terminal] = winner
        return
    raise AssertionError(
        f"impossible action pair in state {state_id}: {existing!r} vs {new_action!r}"
    )

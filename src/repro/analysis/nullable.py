"""Nullable-nonterminal computation.

``NULLABLE = { A | A =>* epsilon }`` — the foundation of everything else:
FIRST/FOLLOW, and in the DeRemer–Pennello machinery the `reads` and
`includes` relations are both defined in terms of nullable suffixes.

The implementation is the counting algorithm: each production keeps a count
of not-yet-known-nullable rhs symbols; when it hits zero the lhs becomes
nullable and is propagated through an occurrence index.  This is O(total
grammar size), unlike the naive fixpoint which can be quadratic.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol


def nullable_nonterminals(grammar: Grammar) -> FrozenSet[Symbol]:
    """The set of nonterminals deriving the empty string.

    Cached on the grammar instance: grammars are immutable after
    construction, and the incremental session consults nullability on
    every edit classification and relation splice.
    """
    cached = grammar.__dict__.get("_nullable_nonterminals")
    if cached is not None:
        return cached
    # occurrences[B] = productions in which B appears (with multiplicity).
    occurrences: Dict[Symbol, List[int]] = {}
    remaining: List[int] = []
    lhs_of: List[Symbol] = []
    nullable: Set[Symbol] = set()
    worklist: List[Symbol] = []

    for slot, production in enumerate(grammar.productions):
        count = 0
        for symbol in production.rhs:
            if symbol.is_terminal:
                count = -1  # can never become nullable
                break
            count += 1
            occurrences.setdefault(symbol, []).append(slot)
        remaining.append(count)
        lhs_of.append(production.lhs)
        if count == 0 and production.lhs not in nullable:
            nullable.add(production.lhs)
            worklist.append(production.lhs)

    while worklist:
        symbol = worklist.pop()
        for slot in occurrences.get(symbol, ()):
            if remaining[slot] <= 0:
                continue
            remaining[slot] -= 1
            if remaining[slot] == 0:
                lhs = lhs_of[slot]
                if lhs not in nullable:
                    nullable.add(lhs)
                    worklist.append(lhs)

    result = frozenset(nullable)
    grammar._nullable_nonterminals = result
    return result


def is_nullable_sequence(
    symbols: Tuple[Symbol, ...], nullable: "FrozenSet[Symbol] | Set[Symbol]"
) -> bool:
    """True iff every symbol of *symbols* is a nullable nonterminal."""
    return all(s.is_nonterminal and s in nullable for s in symbols)

"""Bounded ambiguity detection by parse-tree counting.

Ambiguity is undecidable in general, but *bounded* ambiguity is not: a
grammar is ambiguous iff some sentence has ≥ 2 parse trees, and for any
length bound k the tree counts of all sentences ≤ k are computable.  This
module does exactly that, giving the corpus a machine-checkable split of
its not-LR(1) entries into "ambiguous (witness attached)" versus
"unambiguous but deterministic-hard" (e.g. palindromes) — a distinction
the LR conflict report alone cannot make.

``count_trees(grammar, sentence)`` runs the classic span DP

    trees(A, w[i:j]) = Σ over productions A -> X1..Xn
                         Σ over split points   Π trees(Xl, piece)

memoised on (symbol, span).  Termination needs the grammar to be
**cycle-free** (``A =>+ A`` would give infinitely many trees); cyclic
grammars are rejected up front — they are infinitely ambiguous by
definition, which :func:`ambiguity_report` reports directly.

Costs are exponential in the length bound, fine for the witness-sized
bounds (≤ 8) this is meant for.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..grammar.errors import GrammarValidationError
from ..grammar.grammar import Grammar
from ..grammar.properties import has_cycles
from ..grammar.symbols import Symbol
from .enumerate import enumerate_language

#: Sentinel depth for "no provisional on-path value was read".
_INFINITY = float("inf")

Sentence = Tuple[Symbol, ...]


class AmbiguityWitness(NamedTuple):
    """An ambiguous sentence and its parse-tree count."""

    sentence: Sentence
    tree_count: int

    def words(self) -> str:
        return " ".join(s.name for s in self.sentence)


class TreeCounter:
    """Parse-tree counting for one (cycle-free) grammar."""

    def __init__(self, grammar: Grammar):
        if grammar.is_augmented:
            # Count over the user's grammar; the augmentation wrapper adds
            # exactly one tree layer and would just offset nothing.
            raise GrammarValidationError("count trees on the user grammar")
        if has_cycles(grammar):
            raise GrammarValidationError(
                "tree counting requires a cycle-free grammar "
                "(A =>+ A makes every count infinite)"
            )
        self.grammar = grammar
        self._memo: Dict[Tuple[Symbol, Sentence], int] = {}

    def count(self, sentence: "Sequence[Symbol | str]") -> int:
        """The number of distinct parse trees of *sentence* from the start."""
        resolved = self._resolve(sentence)
        if resolved is None:
            return 0
        return self._count_symbol(self.grammar.start, resolved)

    def _resolve(self, sentence) -> "Optional[Sentence]":
        out: List[Symbol] = []
        for token in sentence:
            if isinstance(token, str):
                symbol = self.grammar.symbols.get(token)
                if symbol is None or symbol.is_nonterminal:
                    return None
                out.append(symbol)
            else:
                out.append(token)
        return tuple(out)

    def _count_symbol(self, symbol: Symbol, span: Sentence) -> int:
        # Warm the memo bottom-up (all nonterminals over all subspans,
        # shortest first) before reading the answer.  Each warm-up call
        # starts a fresh recursion, so every pair eventually computes at
        # depth 0 — where only *self*-reads can occur and the result is
        # always memoisable (see _symbol) — keeping the whole DP
        # polynomial even on heavily nullable grammars.
        nonterminals = self.grammar.nonterminals
        for length in range(len(span) + 1):
            for start in range(len(span) - length + 1):
                subspan = span[start : start + length]
                for nonterminal in nonterminals:
                    self._symbol(nonterminal, subspan, {})
        return self._symbol(symbol, span, {})[0]

    # The recursion guards against revisiting a (symbol, span) pair that
    # is still being computed: cycle-freeness (checked in __init__)
    # guarantees any derivation revisiting the pair embeds A =>+ αAβ
    # with α, β deriving ε — a cycle — so revisits contribute exactly 0
    # trees and reading the unfinished pair as 0 is sound *for that
    # pair's own total*.  What is NOT sound is memoising a pair computed
    # while such a provisional read of a proper ancestor happened
    # beneath it (its total depends on the ancestor's unfinished value).
    # Each frame therefore reports the minimum stack depth it read
    # provisionally, and a pair is memoised only when nothing *above*
    # it was read — self-reads are fine.  Unmemoised totals are still
    # correct to return (the excluded derivations are impossible); the
    # bottom-up warm-up in _count_symbol guarantees each pair also gets
    # a depth-0 computation that does memoise.

    def _symbol(
        self, symbol: Symbol, span: Sentence, on_path: "Dict"
    ) -> "Tuple[int, float]":
        if symbol.is_terminal:
            return (1 if len(span) == 1 and span[0] is symbol else 0), _INFINITY
        key = (symbol, span)
        cached = self._memo.get(key)
        if cached is not None:
            return cached, _INFINITY
        path_depth = on_path.get(key)
        if path_depth is not None:
            return 0, path_depth
        depth = len(on_path)
        on_path[key] = depth
        total = 0
        min_read = _INFINITY
        for production in self.grammar.productions_for(symbol):
            count, read = self._sequence(production.rhs, span, on_path)
            total += count
            if read < min_read:
                min_read = read
        del on_path[key]
        if min_read >= depth:
            self._memo[key] = total
            return total, _INFINITY
        return total, min_read

    def _sequence(
        self, rhs: Sentence, span: Sentence, on_path: "Dict"
    ) -> "Tuple[int, float]":
        if not rhs:
            return (1 if not span else 0), _INFINITY
        if len(rhs) == 1:
            return self._symbol(rhs[0], span, on_path)
        head, tail = rhs[0], rhs[1:]
        total = 0
        min_read = _INFINITY
        for cut in range(len(span) + 1):
            head_count, read = self._symbol(head, span[:cut], on_path)
            if read < min_read:
                min_read = read
            if head_count:
                tail_count, read = self._sequence(tail, span[cut:], on_path)
                total += head_count * tail_count
                if read < min_read:
                    min_read = read
        return total, min_read


class AmbiguityReport(NamedTuple):
    """Outcome of a bounded ambiguity search.

    ``verdict`` is one of:
        "ambiguous"             — a witness ≤ bound was found;
        "cyclic"                — A =>+ A: infinitely ambiguous, no search
                                  needed (witness is None);
        "unambiguous-within"    — every sentence ≤ bound has exactly one
                                  tree (says nothing beyond the bound).
    """

    verdict: str
    bound: int
    witness: "Optional[AmbiguityWitness]"
    sentences_checked: int


def find_ambiguity(
    grammar: Grammar, max_length: int
) -> "Optional[AmbiguityWitness]":
    """The shortest sentence ≤ *max_length* with ≥ 2 parse trees, or None."""
    counter = TreeCounter(grammar)
    sentences = sorted(enumerate_language(grammar, max_length), key=len)
    for sentence in sentences:
        count = counter._count_symbol(grammar.start, sentence)
        if count > 1:
            return AmbiguityWitness(sentence, count)
    return None


def ambiguity_report(grammar: Grammar, max_length: int = 6) -> AmbiguityReport:
    """Classify *grammar*'s ambiguity status up to *max_length*."""
    if grammar.is_augmented:
        raise GrammarValidationError("report on the user grammar")
    if has_cycles(grammar):
        return AmbiguityReport("cyclic", max_length, None, 0)
    sentences = enumerate_language(grammar, max_length)
    witness = find_ambiguity(grammar, max_length)
    if witness is not None:
        return AmbiguityReport("ambiguous", max_length, witness, len(sentences))
    return AmbiguityReport("unambiguous-within", max_length, None, len(sentences))

"""FOLLOW sets.

``FOLLOW(A) = { t | S =>* alpha A t beta }`` — the terminals that can
appear immediately after A in some sentential form.  For an augmented
grammar the end marker ``$end`` enters FOLLOW naturally through the
production ``S' -> S $end``; for a non-augmented grammar no end marker is
invented (callers that need one should augment first — the SLR baseline
does).

FOLLOW is exactly the *grammar-global* approximation that SLR(1) uses where
LALR(1) uses the per-state Follow(p, A) sets of DeRemer & Pennello; keeping
the two implementations separate makes the SLR-vs-LALR comparison in the
benchmark suite an apples-to-apples one.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from .first import FirstSets


class FollowSets:
    """FOLLOW sets for one grammar, computed eagerly at construction."""

    def __init__(self, grammar: Grammar, first_sets: "FirstSets | None" = None):
        self.grammar = grammar
        self.first_sets = first_sets or FirstSets(grammar)
        self._follow: Dict[Symbol, Set[Symbol]] = {
            nt: set() for nt in grammar.nonterminals
        }
        self._compute()
        self.follow: Dict[Symbol, FrozenSet[Symbol]] = {
            nt: frozenset(terminals) for nt, terminals in self._follow.items()
        }

    def _compute(self) -> None:
        follow = self._follow
        first = self.first_sets
        nullable = first.nullable
        # Constraint graph: follow[A] ⊇ follow[B] edges, discovered once.
        superset_edges: Dict[Symbol, Set[Symbol]] = {
            nt: set() for nt in self.grammar.nonterminals
        }
        for production in self.grammar.productions:
            rhs = production.rhs
            for i, symbol in enumerate(rhs):
                if symbol.is_terminal:
                    continue
                tail = rhs[i + 1 :]
                terminals, all_nullable = first.of_sequence(tail)
                follow[symbol] |= terminals
                if all_nullable:
                    # follow[symbol] ⊇ follow[lhs]
                    superset_edges[production.lhs].add(symbol)
        # Propagate to fixpoint over the (static) constraint graph.
        changed = True
        while changed:
            changed = False
            for source, targets in superset_edges.items():
                source_set = follow[source]
                if not source_set:
                    continue
                for target in targets:
                    before = len(follow[target])
                    follow[target] |= source_set
                    if len(follow[target]) != before:
                        changed = True

    def __getitem__(self, nonterminal: Symbol) -> FrozenSet[Symbol]:
        return self.follow[nonterminal]

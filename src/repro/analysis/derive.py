"""Sentence generation from a grammar.

Used by the parser round-trip tests ("every generated sentence must parse")
and by the throughput benchmarks (which need long, valid token streams).

The generator is budgeted: it picks random productions while a step budget
lasts, then switches to *minimal* productions — the ones with the smallest
finite terminal yield — guaranteeing termination on any reduced grammar.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..grammar.errors import GrammarValidationError
from ..grammar.grammar import Grammar
from ..grammar.production import Production
from ..grammar.symbols import Symbol

_INFINITY = float("inf")


def min_yield_lengths(grammar: Grammar) -> Dict[Symbol, float]:
    """For each nonterminal, the length of its shortest terminal yield
    (inf when the nonterminal generates nothing)."""
    lengths: Dict[Symbol, float] = {nt: _INFINITY for nt in grammar.nonterminals}
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            total = 0.0
            for symbol in production.rhs:
                total += 1 if symbol.is_terminal else lengths[symbol]
                if total == _INFINITY:
                    break
            if total < lengths[production.lhs]:
                lengths[production.lhs] = total
                changed = True
    return lengths


def minimal_production_map(
    grammar: Grammar, lengths: "Dict[Symbol, float] | None" = None
) -> Dict[Symbol, Production]:
    """For each generating nonterminal, a production that (a) achieves its
    minimal terminal yield and (b) always terminates when expanded
    greedily.

    (a) alone is not enough: with a unit cycle ``A -> B; B -> A | t`` both
    ``A -> B`` and ``B -> A`` are yield-minimal, and expanding them in
    alternation loops forever.  Among the yield-minimal productions we
    therefore pick one minimising the *derivation height* ``d``, the
    fixpoint of ``d[A] = min over yield-minimal P of (1 + max d(rhs))``.
    The chosen production's rhs nonterminals all have strictly smaller
    ``d``, so greedy expansion is well-founded.
    """
    if lengths is None:
        lengths = min_yield_lengths(grammar)

    def production_yield(production: Production) -> float:
        total = 0.0
        for symbol in production.rhs:
            total += 1 if symbol.is_terminal else lengths[symbol]
        return total

    # Restrict attention to yield-minimal productions per nonterminal.
    candidates: Dict[Symbol, List[Production]] = {}
    for nonterminal in grammar.nonterminals:
        minimum = lengths[nonterminal]
        if minimum == _INFINITY:
            continue
        candidates[nonterminal] = [
            p
            for p in grammar.productions_for(nonterminal)
            if production_yield(p) == minimum
        ]

    heights: Dict[Symbol, float] = {nt: _INFINITY for nt in candidates}
    chosen: Dict[Symbol, Production] = {}
    changed = True
    while changed:
        changed = False
        for nonterminal, productions in candidates.items():
            for production in productions:
                height = 1.0
                for symbol in production.rhs:
                    if symbol.is_nonterminal:
                        height = max(height, 1 + heights[symbol])
                    if height == _INFINITY:
                        break
                if height < heights[nonterminal]:
                    heights[nonterminal] = height
                    chosen[nonterminal] = production
                    changed = True
    return chosen


def minimal_production(
    grammar: Grammar, nonterminal: Symbol, lengths: Dict[Symbol, float]
) -> Production:
    """A yield-minimal, expansion-safe production of *nonterminal*.

    Thin per-call wrapper over :func:`minimal_production_map`; loops that
    expand many nonterminals should compute the map once instead.
    """
    chosen = minimal_production_map(grammar, lengths).get(nonterminal)
    if chosen is None:
        raise GrammarValidationError(
            f"nonterminal {nonterminal.name!r} generates no terminal string"
        )
    return chosen


class SentenceGenerator:
    """Random sentence sampler for a grammar.

    The sample space is leftmost derivations; probabilities are uniform
    over alternatives while the budget lasts.  Deterministic for a fixed
    seed.
    """

    def __init__(self, grammar: Grammar, seed: int = 0):
        self.grammar = grammar
        self.lengths = min_yield_lengths(grammar)
        if self.lengths.get(grammar.original_start, _INFINITY) == _INFINITY:
            raise GrammarValidationError("start symbol generates no terminal string")
        self._minimal = minimal_production_map(grammar, self.lengths)
        self.rng = random.Random(seed)

    def sentence(self, budget: int = 40) -> List[Symbol]:
        """Generate one sentence (list of terminals, without any end marker).

        *budget* bounds the number of free (random) expansion steps; after
        that every nonterminal is expanded minimally.
        """
        start = self.grammar.original_start
        pending: List[Symbol] = [start]
        output: List[Symbol] = []
        steps = budget
        while pending:
            symbol = pending.pop(0)
            if symbol.is_terminal:
                output.append(symbol)
                continue
            if steps > 0:
                candidates = [
                    p
                    for p in self.grammar.productions_for(symbol)
                    if self._finite(p)
                ]
                production = self.rng.choice(candidates)
                steps -= 1
            else:
                production = self._minimal[symbol]
            pending[0:0] = list(production.rhs)
        return output

    def sentences(self, count: int, budget: int = 40) -> List[List[Symbol]]:
        """Generate *count* sentences (not necessarily distinct)."""
        return [self.sentence(budget) for _ in range(count)]

    def _finite(self, production: Production) -> bool:
        return all(
            s.is_terminal or self.lengths[s] != _INFINITY for s in production.rhs
        )


def shortest_sentence(grammar: Grammar) -> List[Symbol]:
    """A deterministic shortest terminal string derivable from the start."""
    lengths = min_yield_lengths(grammar)
    start = grammar.original_start
    if lengths.get(start, _INFINITY) == _INFINITY:
        raise GrammarValidationError("start symbol generates no terminal string")
    minimal = minimal_production_map(grammar, lengths)
    pending: List[Symbol] = [start]
    output: List[Symbol] = []
    while pending:
        symbol = pending.pop(0)
        if symbol.is_terminal:
            output.append(symbol)
            continue
        pending[0:0] = list(minimal[symbol].rhs)
    return output


def leftmost_derivation(
    grammar: Grammar, choices: Sequence[int]
) -> Tuple[List[Symbol], bool]:
    """Replay a leftmost derivation given production *choices*.

    Each entry of *choices* selects (modulo the number of alternatives) the
    production used at the next leftmost nonterminal.  Once choices run
    out, minimal productions finish the derivation.  Returns the sentence
    and a flag telling whether the choice list was fully consumed.

    This gives hypothesis tests a compact, shrinkable encoding of "some
    sentence of the grammar".
    """
    lengths = min_yield_lengths(grammar)
    minimal = minimal_production_map(grammar, lengths)
    pending: List[Symbol] = [grammar.original_start]
    output: List[Symbol] = []
    used = 0
    while pending:
        symbol = pending.pop(0)
        if symbol.is_terminal:
            output.append(symbol)
            continue
        alternatives = [
            p
            for p in grammar.productions_for(symbol)
            if all(s.is_terminal or lengths[s] != _INFINITY for s in p.rhs)
        ]
        if not alternatives:
            raise GrammarValidationError(
                f"nonterminal {symbol.name!r} generates no terminal string"
            )
        if used < len(choices):
            production = alternatives[choices[used] % len(alternatives)]
            used += 1
        else:
            production = minimal[symbol]
        pending[0:0] = list(production.rhs)
    return output, used == len(choices)

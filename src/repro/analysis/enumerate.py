"""Exhaustive enumeration of L(G) up to a length bound.

Where the random :class:`~repro.analysis.derive.SentenceGenerator` samples
sentences, this module enumerates **all** of them up to a given length —
the strongest possible oracle for language-preservation claims:

- the ε-removal transform must keep ``L ∩ Σ^{≤k}`` intact (minus ε),
- the LR parser must accept exactly the enumerated set and reject every
  other string over the alphabet (exhaustively checkable for tiny k),
- two grammars can be compared for bounded language equality.

The enumeration is a bottom-up fixpoint over "yield sets": for each
nonterminal, the set of terminal strings of length ≤ k it derives.
Sentential concatenation is pruned at the length bound, so the cost is
bounded by the number of distinct short strings, not by derivation count
(ambiguity does not blow it up).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol

#: A sentence as a tuple of terminal symbols.
Sentence = Tuple[Symbol, ...]


def enumerate_language(grammar: Grammar, max_length: int) -> "FrozenSet[Sentence]":
    """All sentences of L(G) with length ≤ *max_length*."""
    yields = yield_sets(grammar, max_length)
    return frozenset(yields.get(grammar.original_start, frozenset()))


def yield_sets(
    grammar: Grammar, max_length: int
) -> "Dict[Symbol, FrozenSet[Sentence]]":
    """For every nonterminal, its derivable terminal strings of length ≤ k."""
    current: Dict[Symbol, Set[Sentence]] = {nt: set() for nt in grammar.nonterminals}
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            target = current[production.lhs]
            for sentence in _concatenations(production.rhs, current, max_length):
                if sentence not in target:
                    target.add(sentence)
                    changed = True
    return {nt: frozenset(strings) for nt, strings in current.items()}


def _concatenations(
    rhs: Tuple[Symbol, ...],
    current: Dict[Symbol, Set[Sentence]],
    max_length: int,
) -> Iterable[Sentence]:
    """All ≤-max_length terminal strings obtainable from *rhs* using the
    per-nonterminal yield sets accumulated so far."""
    partials: List[Sentence] = [()]
    for symbol in rhs:
        next_partials: List[Sentence] = []
        if symbol.is_terminal:
            for partial in partials:
                if len(partial) + 1 <= max_length:
                    next_partials.append(partial + (symbol,))
        else:
            choices = current[symbol]
            for partial in partials:
                budget = max_length - len(partial)
                for piece in choices:
                    if len(piece) <= budget:
                        next_partials.append(partial + piece)
        if not next_partials:
            return []
        # Deduplicate aggressively: ambiguity can produce each partial
        # many times over.
        partials = list(set(next_partials))
    return partials


def all_strings(terminals: "List[Symbol]", max_length: int) -> Iterable[Sentence]:
    """Every string over *terminals* with length ≤ *max_length* (the
    complement side of exhaustive acceptance checks)."""
    for length in range(max_length + 1):
        for combo in product(terminals, repeat=length):
            yield combo


def bounded_language_equal(
    left: Grammar, right: Grammar, max_length: int, ignore_epsilon: bool = False
) -> bool:
    """Do two grammars generate the same sentences up to *max_length*?

    Symbols are compared **by name** (the grammars own distinct symbol
    tables).  With *ignore_epsilon*, the empty sentence is excluded from
    the comparison — the contract of epsilon-removal.
    """
    left_names = {
        tuple(s.name for s in sentence)
        for sentence in enumerate_language(left, max_length)
    }
    right_names = {
        tuple(s.name for s in sentence)
        for sentence in enumerate_language(right, max_length)
    }
    if ignore_epsilon:
        left_names.discard(())
        right_names.discard(())
    return left_names == right_names

"""FIRST sets.

``FIRST(alpha) = { t | alpha =>* t beta }`` — the terminals that can begin
a string derived from ``alpha``.  The canonical LR(1) baseline needs FIRST
of arbitrary sentential forms (item tails), so :class:`FirstSets` exposes
both per-nonterminal sets and a sequence query.

Nullability is tracked separately (see :mod:`repro.analysis.nullable`)
rather than by putting an epsilon pseudo-symbol inside the sets; the sets
here contain terminals only.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Sequence, Set, Tuple

from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from .nullable import nullable_nonterminals


class FirstSets:
    """FIRST sets for one grammar, computed eagerly at construction."""

    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self.nullable: FrozenSet[Symbol] = nullable_nonterminals(grammar)
        self._first: Dict[Symbol, Set[Symbol]] = {
            nt: set() for nt in grammar.nonterminals
        }
        self._compute()
        self.first: Dict[Symbol, FrozenSet[Symbol]] = {
            nt: frozenset(terminals) for nt, terminals in self._first.items()
        }

    def _compute(self) -> None:
        first = self._first
        nullable = self.nullable
        changed = True
        while changed:
            changed = False
            for production in self.grammar.productions:
                target = first[production.lhs]
                before = len(target)
                for symbol in production.rhs:
                    if symbol.is_terminal:
                        target.add(symbol)
                        break
                    target |= first[symbol]
                    if symbol not in nullable:
                        break
                if len(target) != before:
                    changed = True

    def __getitem__(self, symbol: Symbol) -> FrozenSet[Symbol]:
        """FIRST of a single symbol (a terminal's FIRST is itself)."""
        if symbol.is_terminal:
            return frozenset((symbol,))
        return self.first[symbol]

    def of_sequence(
        self, symbols: Sequence[Symbol]
    ) -> Tuple[FrozenSet[Symbol], bool]:
        """FIRST of a sentential form.

        Returns ``(terminals, all_nullable)`` where *all_nullable* is True
        iff the entire sequence derives epsilon.
        """
        result: Set[Symbol] = set()
        for symbol in symbols:
            if symbol.is_terminal:
                result.add(symbol)
                return frozenset(result), False
            result |= self.first[symbol]
            if symbol not in self.nullable:
                return frozenset(result), False
        return frozenset(result), True

    def first_plus(
        self, symbols: Sequence[Symbol], continuation: Iterable[Symbol]
    ) -> FrozenSet[Symbol]:
        """FIRST(symbols · continuation-terminals): the LR(1) closure helper.

        *continuation* is a set of terminals standing for what may follow;
        it is folded in only when *symbols* is entirely nullable.
        """
        terminals, all_nullable = self.of_sequence(symbols)
        if not all_nullable:
            return terminals
        return frozenset(set(terminals) | set(continuation))

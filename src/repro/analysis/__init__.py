"""Classical grammar analyses: nullable, FIRST, FOLLOW, sentence generation."""

from .ambiguity import AmbiguityReport, AmbiguityWitness, TreeCounter, ambiguity_report, find_ambiguity
from .enumerate import (
    all_strings,
    bounded_language_equal,
    enumerate_language,
    yield_sets,
)
from .derive import SentenceGenerator, leftmost_derivation, min_yield_lengths, shortest_sentence
from .first import FirstSets
from .follow import FollowSets
from .nullable import is_nullable_sequence, nullable_nonterminals

__all__ = [
    "AmbiguityReport",
    "AmbiguityWitness",
    "FirstSets",
    "TreeCounter",
    "ambiguity_report",
    "find_ambiguity",
    "all_strings",
    "bounded_language_equal",
    "enumerate_language",
    "yield_sets",
    "FollowSets",
    "SentenceGenerator",
    "is_nullable_sequence",
    "leftmost_derivation",
    "min_yield_lengths",
    "nullable_nonterminals",
    "shortest_sentence",
]

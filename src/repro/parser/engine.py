"""The LR shift-reduce parsing engine.

Drives any :class:`~repro.tables.table.ParseTable` — LR(0), SLR(1),
LALR(1) or CLR(1) — over a token stream.  The engine is the consumer that
makes look-ahead quality *observable*: identical code, different tables,
and only the reduce decisions differ.

Tokens may be given as :class:`~repro.grammar.symbols.Symbol` objects, as
terminal name strings, or as :class:`Token` (symbol + semantic value).
The end marker must *not* be included; the engine appends it.

Semantic actions: ``parse()`` builds a :class:`~repro.parser.tree.Node`
tree; ``parse_with_actions()`` instead folds a callback over reductions,
which is how the calculator example evaluates on the fly.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, NamedTuple, Sequence, Union

from ..core import instrument
from ..grammar.grammar import Grammar
from ..grammar.production import Production
from ..grammar.symbols import Symbol
from ..tables.table import ParseTable
from .errors import ConflictedTableError, ParseError, syntax_error
from .tree import Node


class Token(NamedTuple):
    """A terminal plus its semantic value (e.g. NUM with value 42)."""

    symbol: Symbol
    value: object = None


TokenLike = Union[Token, Symbol, str]


def _no_semantic_value(production, children):
    """The recognition-only reduce callback (:meth:`Parser.accepts`)."""
    return None


def _no_leaf_value(token):
    """The recognition-only shift callback (:meth:`Parser.accepts`)."""
    return None


def not_a_terminal_error(name: str, position: int) -> ParseError:
    """The engine-standard error for a nonterminal Symbol in the input."""
    return ParseError(
        f"token at position {position} is the nonterminal {name!r}; "
        f"only terminals can appear in the input",
        position,
        None,
        state=-1,
        expected=[],
    )


def normalise_token(grammar: Grammar, token: TokenLike, position: int) -> Token:
    """*token* (Token | Symbol | terminal name) as a :class:`Token`.

    Shared by the deterministic engine and the GLR engine so both reject
    malformed input — nonterminal Symbols, unknown terminal names — with
    byte-identical diagnostics.
    """
    if isinstance(token, Token):
        if token.symbol.is_nonterminal:
            raise not_a_terminal_error(token.symbol.name, position)
        return token
    if isinstance(token, Symbol):
        if token.is_nonterminal:
            raise not_a_terminal_error(token.name, position)
        return Token(token, token.name)
    if isinstance(token, str):
        symbol = grammar.symbols.get(token)
        if symbol is None or symbol.is_nonterminal:
            raise ParseError(
                f"unknown terminal {token!r} at position {position}",
                position,
                None,
                state=-1,
                expected=[],
            )
        return Token(symbol, token)
    raise TypeError(f"cannot interpret token {token!r}")


class Parser:
    """An LR parser for one grammar/table pair.

    Tables with unresolved conflicts are refused by default: parsing one
    deterministically silently commits to the yacc-default winners, so a
    caller must opt in with ``allow_conflicts=True`` (counted via the
    ``parser.conflicted_table`` instrument counter) — or drive the table
    with :class:`repro.parser.glr.GlrParser`, which explores every
    conflicted action instead of picking one.
    """

    def __init__(self, table: ParseTable, allow_conflicts: bool = False):
        self.table = table
        self.grammar: Grammar = table.grammar
        if not self.grammar.is_augmented:
            raise ValueError("parse tables must be built over an augmented grammar")
        unresolved = table.unresolved_conflicts
        if unresolved:
            if not allow_conflicts:
                first = unresolved[0]
                raise ConflictedTableError(
                    f"table for {self.grammar.name!r} has {len(unresolved)} "
                    f"unresolved conflict(s); first: "
                    f"{first.describe(self.grammar)}.  The deterministic "
                    f"engine would silently parse with the yacc-default "
                    f"winners — pass allow_conflicts=True to opt in, or use "
                    f"the GLR engine (repro.parser.glr.GlrParser, "
                    f"`repro parse --engine glr`) to explore every action",
                    unresolved,
                )
            instrument.count("parser.conflicted_table")
        self._eof = self.grammar.eof
        # The hot loop works in the grammar's integer ID layout: tokens
        # are mapped to terminal IDs once each, then every ACTION/GOTO
        # lookup is a flat list index (no Symbol hashing per action).
        self._ids = self.grammar.ids
        self._eof_tid = self._ids.terminal_id(self._eof)
        # SpecializedTable (repro.tables.specialize) carries flat integer
        # code arrays; the engine then runs the fused integer loop below
        # instead of the generic Action-object loop.
        self._specialized = bool(getattr(table, "is_specialized", False))
        # Name-string tokens resolve to the same (Token, tid) pair every
        # time; the specialized loop memoizes that resolution.  Only
        # successful resolutions are cached, so unknown-terminal and
        # nonterminal-name errors still take _normalise's path verbatim.
        self._tok_cache: dict = {}

    # -- public API ---------------------------------------------------

    def parse(self, tokens: Iterable[TokenLike], budget=None) -> Node:
        """Parse *tokens* and return the parse tree rooted at the user's
        start symbol.  Raises ParseError on invalid input.

        A *budget* (:class:`repro.core.budget.Budget`) bounds the parse:
        ``max_tokens`` caps input consumed (the guard for unbounded
        streams), ``max_parse_steps`` caps actions, and a ``timeout``
        bounds wall-clock time; exhaustion raises
        :class:`~repro.core.budget.BudgetExceeded`.
        """

        def build(production: Production, children: Sequence[Node]) -> Node:
            return Node(production.lhs, list(children), production=production)

        def leaf(token: Token) -> Node:
            return Node(token.symbol, value=token.value)

        return self._run(tokens, reduce_fn=build, shift_fn=leaf, budget=budget)

    def parse_with_actions(
        self,
        tokens: Iterable[TokenLike],
        reduce_fn: Callable[[Production, Sequence[object]], object],
        shift_fn: "Callable[[Token], object] | None" = None,
        budget=None,
    ) -> object:
        """Parse, folding *reduce_fn* over reductions (syntax-directed
        translation).  *shift_fn* maps a token to its initial semantic
        value (defaults to the token's own value)."""
        if shift_fn is None:
            shift_fn = lambda token: token.value
        return self._run(tokens, reduce_fn=reduce_fn, shift_fn=shift_fn, budget=budget)

    def accepts(self, tokens: Iterable[TokenLike], budget=None) -> bool:
        """True iff *tokens* is a sentence of the grammar.

        Recognition only: runs the engine with constant semantic
        callbacks, so no parse tree is allocated."""
        try:
            self._run(
                tokens,
                reduce_fn=_no_semantic_value,
                shift_fn=_no_leaf_value,
                budget=budget,
            )
        except ParseError:
            return False
        return True

    def trace(self, tokens: Iterable[TokenLike], budget=None) -> List[str]:
        """Parse while recording one line per action — a teaching aid and
        the fixture for the engine's unit tests."""
        log: List[str] = []

        def build(production: Production, children: Sequence[object]) -> object:
            log.append(f"reduce {production}")
            return None

        def leaf(token: Token) -> object:
            log.append(f"shift {token.symbol.name}")
            return None

        self._run(tokens, reduce_fn=build, shift_fn=leaf, budget=budget)
        log.append("accept")
        return log

    # -- engine ---------------------------------------------------------

    def _normalise(self, token: TokenLike, position: int) -> Token:
        return normalise_token(self.grammar, token, position)

    def _run(
        self,
        tokens: Iterable[TokenLike],
        reduce_fn: Callable[[Production, Sequence[object]], object],
        shift_fn: Callable[[Token], object],
        budget=None,
    ) -> object:
        with instrument.span("parse.run"):
            if self._specialized:
                return self._run_specialized_loop(tokens, reduce_fn, shift_fn, budget)
            return self._run_loop(tokens, reduce_fn, shift_fn, budget)

    def _run_loop(
        self,
        tokens: Iterable[TokenLike],
        reduce_fn: Callable[[Production, Sequence[object]], object],
        shift_fn: Callable[[Token], object],
        budget=None,
    ) -> object:
        if budget is not None:
            budget.enter_phase("parse")
        state_stack: List[int] = [0]
        value_stack: List[object] = []

        ids = self._ids
        sid_or_none = ids.sid_or_none
        num_terminals = ids.num_terminals
        action_rows = self.table.action_rows
        goto_rows = self.table.goto_rows
        productions = self.grammar.productions

        # Pull tokens lazily: the stream may be an unbounded generator, so
        # peak memory must stay O(parse stack), never O(input length).
        stream = iter(tokens)
        eof_token = Token(self._eof, None)
        position = 0
        shifts = 0
        reduces = 0

        try:
            raw = next(stream)
        except StopIteration:
            token, tid = eof_token, self._eof_tid
        else:
            token = self._normalise(raw, position)
            # None for symbols outside this grammar: the action lookup
            # below then takes the ordinary syntax-error path.
            tid = sid_or_none(token.symbol)

        try:
            while True:
                if budget is not None:
                    budget.charge_parse_step()
                action = action_rows[state_stack[-1]][tid] if tid is not None else None
                if action is None:
                    raise self._syntax_error(position, token, state_stack[-1])
                if action.kind == "shift":
                    value_stack.append(shift_fn(token))
                    state_stack.append(action.state)
                    position += 1
                    shifts += 1
                    if budget is not None:
                        budget.charge_tokens(1)
                    try:
                        raw = next(stream)
                    except StopIteration:
                        token, tid = eof_token, self._eof_tid
                    else:
                        token = self._normalise(raw, position)
                        tid = sid_or_none(token.symbol)
                    continue
                if action.kind == "reduce":
                    production = productions[action.production]
                    arity = len(production.rhs_sids)
                    if arity:
                        children = value_stack[-arity:]
                        del value_stack[-arity:]
                        del state_stack[-arity:]
                    else:
                        children = []
                    value_stack.append(reduce_fn(production, children))
                    goto = goto_rows[state_stack[-1]][production.lhs_sid - num_terminals]
                    if goto < 0:  # pragma: no cover - tables are consistent
                        raise self._syntax_error(position, token, state_stack[-1])
                    state_stack.append(goto)
                    reduces += 1
                    continue
                # accept: the value stack holds exactly the start symbol's value.
                assert action.kind == "accept"
                if tid != self._eof_tid:  # pragma: no cover - table invariant
                    raise self._syntax_error(position, token, state_stack[-1])
                if len(value_stack) != 1:  # pragma: no cover - table invariant
                    raise ParseError(
                        "internal error: value stack not a singleton at accept",
                        position,
                        token.symbol,
                        state_stack[-1],
                        [],
                    )
                return value_stack[0]
        finally:
            if budget is not None:
                budget.publish()
            if instrument.enabled():
                instrument.count("parse.tokens", position)
                instrument.count("parse.shifts", shifts)
                instrument.count("parse.reduces", reduces)
                instrument.count("parse.actions", shifts + reduces)

    def _run_specialized_loop(
        self,
        tokens: Iterable[TokenLike],
        reduce_fn: Callable[[Production, Sequence[object]], object],
        shift_fn: Callable[[Token], object],
        budget=None,
    ) -> object:
        """The integer hot loop over a SpecializedTable.

        Semantically a line-for-line mirror of :meth:`_run_loop` — same
        budget charges in the same order, same instrument counters, same
        error states — but dispatch is ``code & 3`` over flat
        local-variable-bound lists, reduce→goto chains are fused into the
        inner loop, and states whose rows reduce identically on every
        terminal skip the look-ahead consultation entirely
        (``default_codes``).  Byte-identity vs the plain loop is pinned
        corpus-wide by tests/test_specialize.py and the fuzz
        representation-parity oracle.
        """
        if budget is not None:
            budget.enter_phase("parse")
        table = self.table
        state_stack: List[int] = [0]
        value_stack: List[object] = []

        sid_or_none = self._ids.sid_or_none
        normalise = self._normalise
        tok_cache = self._tok_cache
        tok_cache_get = tok_cache.get
        width = table.num_terminals
        n_nts = table.num_nonterminals
        action_codes = table.action_codes
        goto_codes = table.goto_codes
        default_codes = table.default_codes
        arities = table.arities
        lhs_nts = table.lhs_nts
        productions = self.grammar.productions

        stream = iter(tokens)
        eof_token = Token(self._eof, None)
        eof_tid = self._eof_tid
        position = 0
        shifts = 0
        reduces = 0
        state = 0

        try:
            raw = next(stream)
        except StopIteration:
            token, tid = eof_token, eof_tid
        else:
            entry = tok_cache_get(raw) if type(raw) is str else None
            if entry is not None:
                token, tid = entry
            else:
                token = normalise(raw, position)
                tid = sid_or_none(token.symbol)
                if type(raw) is str:
                    tok_cache[raw] = (token, tid)

        try:
            while True:
                if budget is not None:
                    budget.charge_parse_step()
                if tid is None:
                    raise self._syntax_error(position, token, state)
                code = action_codes[state * width + tid]
                while (code & 3) == 2:
                    # Fused reduce→goto chain: keep reducing without
                    # bouncing through the outer dispatch.
                    prod_index = code >> 2
                    arity = arities[prod_index]
                    if arity:
                        children = value_stack[-arity:]
                        del value_stack[-arity:]
                        del state_stack[-arity:]
                    else:
                        children = []
                    value_stack.append(reduce_fn(productions[prod_index], children))
                    state = goto_codes[state_stack[-1] * n_nts + lhs_nts[prod_index]]
                    if state < 0:  # pragma: no cover - tables are consistent
                        raise self._syntax_error(position, token, state_stack[-1])
                    state_stack.append(state)
                    reduces += 1
                    if budget is not None:
                        budget.charge_parse_step()
                    # tid cannot be None here: it only changes on shift,
                    # and the outer dispatch already rejected None.
                    code = default_codes[state]
                    if code < 0:
                        code = action_codes[state * width + tid]
                if code & 1:
                    if code == 3:
                        # accept
                        if tid != eof_tid:  # pragma: no cover - table invariant
                            raise self._syntax_error(position, token, state)
                        if len(value_stack) != 1:  # pragma: no cover - table invariant
                            raise ParseError(
                                "internal error: value stack not a singleton at accept",
                                position,
                                token.symbol,
                                state,
                                [],
                            )
                        return value_stack[0]
                    # shift
                    value_stack.append(shift_fn(token))
                    state = code >> 2
                    state_stack.append(state)
                    position += 1
                    shifts += 1
                    if budget is not None:
                        budget.charge_tokens(1)
                    try:
                        raw = next(stream)
                    except StopIteration:
                        token, tid = eof_token, eof_tid
                    else:
                        entry = tok_cache_get(raw) if type(raw) is str else None
                        if entry is not None:
                            token, tid = entry
                        else:
                            token = normalise(raw, position)
                            tid = sid_or_none(token.symbol)
                            if type(raw) is str:
                                tok_cache[raw] = (token, tid)
                    continue
                # code == 0: error cell
                raise self._syntax_error(position, token, state)
        finally:
            if budget is not None:
                budget.publish()
            if instrument.enabled():
                instrument.count("parse.tokens", position)
                instrument.count("parse.shifts", shifts)
                instrument.count("parse.reduces", reduces)
                instrument.count("parse.actions", shifts + reduces)

    def _syntax_error(self, position: int, token: Token, state: int) -> ParseError:
        # The expected set comes from the dense row, not the Symbol-keyed
        # `actions` dict: on a CompressedTable the dict holds only the
        # cells not folded into the row's default reduce, which would
        # understate what the parser actually accepts in this state.
        row = self.table.action_rows[state]
        by_sid = self._ids.by_sid
        expected = sorted(
            (by_sid[tid] for tid in range(len(row)) if row[tid] is not None),
            key=lambda s: s.name,
        )
        # The end marker is an augmentation artifact; the shared formatter
        # spells it the same way the offending-token text does instead of
        # leaking "$end".  Generated standalone parsers and the GLR engine
        # render identically (parity-tested).
        return syntax_error(position, token.symbol, state, expected, self._eof)

"""Parse-time errors."""

from __future__ import annotations

from typing import List, Optional

from ..grammar.symbols import Symbol


class ParseError(Exception):
    """Raised when the input is not a sentence of the grammar.

    Attributes:
        position: 0-based index of the offending token in the input.
        token: The offending terminal (the end marker for premature EOF).
        state: The parser state in which the error was detected.
        expected: Terminals that would have been acceptable.
    """

    def __init__(
        self,
        message: str,
        position: int,
        token: Optional[Symbol],
        state: int,
        expected: "List[Symbol]",
    ):
        super().__init__(message)
        self.position = position
        self.token = token
        self.state = state
        self.expected = expected


class ConflictedTableError(ValueError):
    """A deterministic :class:`~repro.parser.engine.Parser` was built
    over a table with unresolved conflicts without opting in.

    Parsing such a table deterministically silently commits to the
    yacc-default winners (shift over reduce, earlier production over
    later), which is rarely what a caller who never declared precedence
    wants.  Pass ``allow_conflicts=True`` to accept that behaviour
    explicitly, or drive the table with the GLR engine
    (:class:`repro.parser.glr.GlrParser`), which explores every
    conflicted action instead of picking one.

    Attributes:
        conflicts: The table's unresolved :class:`~repro.tables.conflicts
            .Conflict` records, in discovery order.
    """

    def __init__(self, message: str, conflicts: list):
        super().__init__(message)
        self.conflicts = conflicts


def syntax_error(
    position: int,
    token: Optional[Symbol],
    state: int,
    expected: "List[Symbol]",
    eof: Symbol,
) -> ParseError:
    """The engine-standard :class:`ParseError` for an unexpected token.

    Shared by the deterministic engine and the GLR engine so both spell
    syntax errors byte-identically (message text, "end of input" for the
    end marker, sorted expected-set rendering) — the GLR parity suite
    compares the strings directly.
    """
    names = ", ".join(
        sorted("end of input" if t is eof else t.name for t in expected)
    ) or "<nothing>"
    what = token.name if token is not eof else "end of input"
    return ParseError(
        f"syntax error at position {position}: unexpected {what}; "
        f"expected one of: {names}",
        position,
        token,
        state,
        expected,
    )


class LexError(Exception):
    """Raised by the example lexer on unrecognisable input text."""

    def __init__(self, message: str, position: int):
        super().__init__(message)
        self.position = position

"""Parse-time errors."""

from __future__ import annotations

from typing import List, Optional

from ..grammar.symbols import Symbol


class ParseError(Exception):
    """Raised when the input is not a sentence of the grammar.

    Attributes:
        position: 0-based index of the offending token in the input.
        token: The offending terminal (the end marker for premature EOF).
        state: The parser state in which the error was detected.
        expected: Terminals that would have been acceptable.
    """

    def __init__(
        self,
        message: str,
        position: int,
        token: Optional[Symbol],
        state: int,
        expected: "List[Symbol]",
    ):
        super().__init__(message)
        self.position = position
        self.token = token
        self.state = state
        self.expected = expected


class LexError(Exception):
    """Raised by the example lexer on unrecognisable input text."""

    def __init__(self, message: str, position: int):
        super().__init__(message)
        self.position = position

"""LR parsing engine, parse trees, and a lexer for building token streams."""

from .cyk import CykRecognizer
from .recovery import RecoveringParser
from .engine import Parser, Token
from .errors import LexError, ParseError
from .lexer import Lexer
from .tree import Node, count_nodes

__all__ = ["CykRecognizer", "RecoveringParser", "Lexer", "LexError", "Node", "ParseError", "Parser", "Token", "count_nodes"]

"""LR parsing engines (deterministic + GLR), parse trees, and a lexer."""

from .cyk import CykRecognizer
from .recovery import RecoveringParser
from .engine import Parser, Token
from .errors import ConflictedTableError, LexError, ParseError
from .glr import GlrParser, ParseForest
from .lexer import Lexer
from .tree import Node, count_nodes

__all__ = [
    "ConflictedTableError",
    "CykRecognizer",
    "GlrParser",
    "LexError",
    "Lexer",
    "Node",
    "ParseError",
    "ParseForest",
    "Parser",
    "RecoveringParser",
    "Token",
    "count_nodes",
]

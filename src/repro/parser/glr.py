"""The RNGLR engine — generalized LR parsing over conflicted tables.

Where the deterministic engine (:mod:`repro.parser.engine`) follows the
single action a :class:`~repro.tables.table.ParseTable` keeps per cell,
this engine runs off the :class:`~repro.tables.nondet
.NondeterministicTable` view, which keeps *every* competing action of an
unresolved conflict.  Nondeterminism is handled the Tomita/RNGLR way:

- a **graph-structured stack** (GSS): parse stacks that share a suffix
  share the GSS nodes for it, so the worst case stays polynomial where
  naive stack-copying explodes.  Nodes are keyed (state, input level);
  edges point from newer to older nodes and are labelled with the SPPF
  node for the symbol that was pushed;
- a **shared packed parse forest** (SPPF): derivation trees that share a
  subtree share the node for it.  Nodes are keyed (symbol, start, end);
  an ambiguous node packs one *family* (production, children) per
  distinct derivation;
- a token-synchronized loop: at each input position every pending
  reduction is applied to exhaustion (the *reducer* worklist, including
  ε-reductions and Farshi-style re-reduction when a new GSS edge lands
  on an already-processed node), then all shifts advance together.

On a deterministic table the GSS degenerates to a single chain and the
engine is observationally identical to the LALR engine: same trees, same
error strings/positions/expected sets (via the shared
:func:`~repro.parser.errors.syntax_error` formatter), same ``max_tokens``
budget behaviour.  That parity is pinned corpus-wide by
tests/test_glr.py and the ``glr-parity`` fuzz oracle; on conflicted
grammars the oracle cross-checks GLR recognition against the CYK
ground truth instead.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from ..core import instrument
from ..grammar.grammar import Grammar
from ..grammar.production import Production
from ..grammar.symbols import Symbol
from ..tables.nondet import NondeterministicTable, nondet_view
from .engine import Token, TokenLike, normalise_token
from .errors import ParseError, syntax_error
from .tree import Node

__all__ = ["GlrParser", "ParseForest", "SppfNode"]


class SppfNode:
    """One shared-packed-parse-forest node: *symbol* over [start, end).

    Terminal nodes carry the token's semantic ``value`` and have no
    families; nonterminal nodes pack one (production, children) family
    per distinct derivation — more than one family = local ambiguity.
    """

    __slots__ = ("symbol", "start", "end", "value", "families", "_family_keys")

    def __init__(self, symbol: Symbol, start: int, end: int, value=None):
        self.symbol = symbol
        self.start = start
        self.end = end
        self.value = value
        self.families: "List[Tuple[Production, tuple]]" = []
        self._family_keys: set = set()

    def add_family(self, production: Production, children: tuple) -> bool:
        """Pack one derivation; False if it was already packed."""
        key = (production.index, tuple(id(child) for child in children))
        if key in self._family_keys:
            return False
        self._family_keys.add(key)
        self.families.append((production, children))
        return True

    @property
    def is_ambiguous(self) -> bool:
        return len(self.families) > 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SppfNode({self.symbol.name}, {self.start}..{self.end}, "
            f"{len(self.families)} families)"
        )


class _GssEdge:
    """One GSS edge: the SPPF node for the pushed symbol + the older node."""

    __slots__ = ("label", "target")

    def __init__(self, label: SppfNode, target: "_GssNode"):
        self.label = label
        self.target = target


class _GssNode:
    """One graph-structured-stack node: (parser state, input level).

    ``has_level_parents`` records whether some *same-level* node holds an
    edge into this one — the trigger for the conservative Farshi re-run
    when this node later gains a new edge (a path from another stack top
    may thread through it).
    """

    __slots__ = ("state", "level", "edges", "has_level_parents")

    def __init__(self, state: int, level: int):
        self.state = state
        self.level = level
        self.edges: "List[_GssEdge]" = []
        self.has_level_parents = False


class ParseForest:
    """The SPPF for one accepted input, plus run statistics.

    ``trees()`` / ``tree()`` / ``tree_count()`` enumerate derivations by
    expanding families depth-first.  Enumeration is *saturating*: at most
    ``limit`` trees are materialised (ambiguity can be exponential in the
    input, and cyclic grammars derive infinitely many trees — cyclic
    expansions are skipped, so counts cover the finite derivations only).
    Extracted trees share subtree Node objects where the forest shares
    SPPF nodes; treat them as read-only.
    """

    def __init__(self, root: "Optional[SppfNode]", grammar: Grammar,
                 token_count: int, stats: "Optional[Dict[str, int]]" = None):
        self.root = root
        self.grammar = grammar
        self.token_count = token_count
        self.stats: "Dict[str, int]" = dict(stats or {})

    def trees(self, limit: int = 1000) -> "List[Node]":
        """Up to *limit* derivation trees, in packing (discovery) order."""
        if self.root is None:
            return []
        trees = _tree_list(self.root, {}, set(), limit)
        return trees if trees is not None else []

    def tree(self) -> Node:
        """The first derivation tree — *the* tree when unambiguous."""
        trees = self.trees(limit=1)
        if not trees:
            raise ValueError("forest has no finite derivation tree")
        return trees[0]

    def tree_count(self, limit: int = 1000) -> int:
        """How many distinct derivation trees, saturating at *limit*."""
        return len(self.trees(limit=limit))

    @property
    def is_ambiguous(self) -> bool:
        return self.tree_count(limit=2) > 1


def _tree_list(node: SppfNode, memo: dict, on_path: set, limit: int):
    """All (up to *limit*) trees rooted at *node*; None = cycle guard hit."""
    key = id(node)
    cached = memo.get(key)
    if cached is not None:
        return cached
    if not node.families:
        leaves = [Node(node.symbol, value=node.value)]
        memo[key] = leaves
        return leaves
    if key in on_path:
        return None
    on_path.add(key)
    out: "List[Node]" = []
    clean = True
    for production, children in node.families:
        combos: "List[List[Node]]" = [[]]
        for child in children:
            sub = _tree_list(child, memo, on_path, limit)
            if sub is None:
                clean = False
                combos = []
                break
            if not sub:
                combos = []
                break
            combos = [prefix + [tree] for prefix in combos for tree in sub]
            if len(combos) > limit:
                combos = combos[:limit]
                clean = False
        for combo in combos:
            out.append(Node(production.lhs, combo, production=production))
            if len(out) >= limit:
                clean = False
                break
        if len(out) >= limit:
            break
    on_path.discard(key)
    if clean:
        memo[key] = out
    return out


class GlrParser:
    """A generalized LR parser for one grammar/table pair.

    Accepts any table object (ParseTable, BinaryTable, a loaded JSON
    table) or a prebuilt :class:`NondeterministicTable` view; unresolved
    conflicts fork the GSS instead of being an error or a silent
    tie-break.
    """

    def __init__(self, table):
        view = (
            table
            if isinstance(table, NondeterministicTable)
            else nondet_view(table)
        )
        self.view = view
        self.table = view.table
        self.grammar: Grammar = view.grammar
        if not self.grammar.is_augmented:
            raise ValueError("parse tables must be built over an augmented grammar")
        self._ids = self.grammar.ids
        self._eof = self.grammar.eof
        self._eof_tid = self._ids.terminal_id(self._eof)

    # -- public API ---------------------------------------------------

    def parse_forest(self, tokens: "Iterable[TokenLike]", budget=None) -> ParseForest:
        """Parse *tokens* into a :class:`ParseForest` (raises ParseError
        on invalid input, BudgetExceeded under an exhausted budget)."""
        with instrument.span("parse.glr"):
            return self._run(tokens, budget)

    def parse(self, tokens: "Iterable[TokenLike]", budget=None) -> Node:
        """The forest's first derivation tree — on a deterministic table
        this is exactly the LALR engine's tree."""
        return self.parse_forest(tokens, budget=budget).tree()

    def accepts(self, tokens: "Iterable[TokenLike]", budget=None) -> bool:
        """True iff *tokens* is a sentence of the grammar."""
        try:
            self.parse_forest(tokens, budget=budget)
        except ParseError:
            return False
        return True

    # -- engine -------------------------------------------------------

    def _run(self, tokens: "Iterable[TokenLike]", budget=None) -> ParseForest:
        if budget is not None:
            budget.enter_phase("parse.glr")
        grammar = self.grammar
        ids = self._ids
        sid_or_none = ids.sid_or_none
        num_terminals = ids.num_terminals
        rows = self.view.rows
        goto_rows = self.view.goto_rows
        productions = grammar.productions
        eof_tid = self._eof_tid

        #: (symbol sid, start, end) -> the interned SPPF node.
        sppf: "Dict[Tuple[int, int, int], SppfNode]" = {}
        root = _GssNode(0, 0)
        #: state -> GSS node for the current input level.
        frontier: "Dict[int, _GssNode]" = {0: root}

        stream = iter(tokens)
        eof_token = Token(self._eof, None)
        position = 0
        stats = {
            "gss_nodes": 1,
            "gss_edges": 0,
            "sppf_nodes": 0,
            "sppf_families": 0,
            "reductions": 0,
            "shifts": 0,
            "worklist_pops": 0,
        }

        try:
            raw = next(stream)
        except StopIteration:
            token, tid = eof_token, eof_tid
        else:
            token = normalise_token(grammar, raw, position)
            tid = sid_or_none(token.symbol)

        try:
            while True:
                # ---- reducer: apply every reduction visible under `tid` ----
                worklist: deque = deque()
                if tid is not None:
                    for node in frontier.values():
                        for action in rows[node.state][tid]:
                            if action.kind == "reduce":
                                worklist.append((node, action.production, None))
                while worklist:
                    if budget is not None:
                        budget.charge_parse_step()
                    stats["worklist_pops"] += 1
                    node, prod_index, first_edge = worklist.popleft()
                    production = productions[prod_index]
                    arity = len(production.rhs_sids)
                    lhs_nt = production.lhs_sid - num_terminals
                    paths: "List[Tuple[_GssNode, tuple]]" = []
                    if arity == 0:
                        paths.append((node, ()))
                    elif first_edge is not None:
                        _collect_paths(
                            first_edge.target, arity - 1,
                            (first_edge.label,), paths,
                        )
                    else:
                        _collect_paths(node, arity, (), paths)
                    for base, labels_down in paths:
                        goto = goto_rows[base.state][lhs_nt]
                        if goto < 0:
                            # A losing GSS branch can reduce to a symbol its
                            # base state has no transition for; the branch
                            # simply dies (only *all* branches dying is a
                            # syntax error, detected at shift time).
                            continue
                        key = (production.lhs_sid, base.level, position)
                        packed = sppf.get(key)
                        if packed is None:
                            packed = SppfNode(production.lhs, base.level, position)
                            sppf[key] = packed
                            stats["sppf_nodes"] += 1
                        # Edges are walked top-down, so the collected
                        # labels are the rhs reversed.
                        if packed.add_family(
                            production, tuple(reversed(labels_down))
                        ):
                            stats["sppf_families"] += 1
                        stats["reductions"] += 1
                        target = frontier.get(goto)
                        if target is None:
                            target = _GssNode(goto, position)
                            frontier[goto] = target
                            stats["gss_nodes"] += 1
                            target.edges.append(_GssEdge(packed, base))
                            stats["gss_edges"] += 1
                            if base.level == position:
                                base.has_level_parents = True
                            for action in rows[goto][tid]:
                                if action.kind == "reduce":
                                    worklist.append(
                                        (target, action.production, None)
                                    )
                            continue
                        if any(
                            edge.label is packed and edge.target is base
                            for edge in target.edges
                        ):
                            continue  # already explored through this edge
                        new_edge = _GssEdge(packed, base)
                        target.edges.append(new_edge)
                        stats["gss_edges"] += 1
                        if base.level == position:
                            base.has_level_parents = True
                        # The node was already processed: re-run the
                        # reductions the new edge opens up (Farshi).  When
                        # same-level parents exist, a path from *another*
                        # stack top may thread through the new edge, so
                        # conservatively re-run every frontier node; edge
                        # and family dedup make the re-run idempotent.
                        if target.has_level_parents:
                            for renode in list(frontier.values()):
                                for action in rows[renode.state][tid]:
                                    if (
                                        action.kind == "reduce"
                                        and productions[action.production].rhs_sids
                                    ):
                                        worklist.append(
                                            (renode, action.production, None)
                                        )
                        else:
                            for action in rows[target.state][tid]:
                                if (
                                    action.kind == "reduce"
                                    and productions[action.production].rhs_sids
                                ):
                                    worklist.append(
                                        (target, action.production, new_edge)
                                    )

                # ---- accept -------------------------------------------------
                if tid == eof_tid:
                    accepted = any(
                        action.kind == "accept"
                        for node in frontier.values()
                        for action in rows[node.state][tid]
                    )
                    if accepted:
                        start_sid = sid_or_none(grammar.original_start)
                        forest_root = sppf.get((start_sid, 0, position))
                        return ParseForest(
                            forest_root, grammar, position, stats
                        )
                    raise self._syntax_error(position, token, frontier, tid)

                # ---- shifter: every branch advances over the token ----------
                shift_edges: "List[Tuple[_GssNode, int]]" = []
                if tid is not None:
                    for node in frontier.values():
                        for action in rows[node.state][tid]:
                            if action.kind == "shift":
                                shift_edges.append((node, action.state))
                if not shift_edges:
                    raise self._syntax_error(position, token, frontier, tid)
                if budget is not None:
                    budget.charge_tokens(1)
                leaf = SppfNode(
                    token.symbol, position, position + 1, value=token.value
                )
                stats["sppf_nodes"] += 1
                next_frontier: "Dict[int, _GssNode]" = {}
                for base, state in shift_edges:
                    if budget is not None:
                        budget.charge_parse_step()
                    target = next_frontier.get(state)
                    if target is None:
                        target = _GssNode(state, position + 1)
                        next_frontier[state] = target
                        stats["gss_nodes"] += 1
                    target.edges.append(_GssEdge(leaf, base))
                    stats["gss_edges"] += 1
                    stats["shifts"] += 1
                frontier = next_frontier
                position += 1
                try:
                    raw = next(stream)
                except StopIteration:
                    token, tid = eof_token, eof_tid
                else:
                    token = normalise_token(grammar, raw, position)
                    tid = sid_or_none(token.symbol)
        finally:
            if budget is not None:
                budget.publish()
            if instrument.enabled():
                instrument.count("glr.tokens", position)
                for name, value in stats.items():
                    instrument.count(f"glr.{name}", value)

    def _syntax_error(
        self, position: int, token: Token, frontier, tid: "Optional[int]"
    ) -> ParseError:
        """The error the shared formatter spells — state and expected set
        chosen for byte-parity with the deterministic engine.

        Dead ends (frontier nodes with no action at all on the lookahead)
        are exactly where the LALR engine would have stopped; on a
        deterministic table there is precisely one, so the state and the
        expected set match the LALR error verbatim.
        """
        rows = self.view.rows
        nodes = list(frontier.values())
        if tid is not None:
            dead = [node for node in nodes if not rows[node.state][tid]]
        else:
            dead = nodes
        if not dead:  # pragma: no cover - every error has a dead end
            dead = nodes
        seen: set = set()
        for node in dead:
            row = rows[node.state]
            for terminal_id in range(len(row)):
                if row[terminal_id]:
                    seen.add(terminal_id)
        by_sid = self._ids.by_sid
        expected = sorted(
            (by_sid[terminal_id] for terminal_id in seen),
            key=lambda s: s.name,
        )
        return syntax_error(
            position, token.symbol, dead[0].state, expected, self._eof
        )


def _collect_paths(
    node: _GssNode, remaining: int, acc: tuple, out: list
) -> None:
    """Every GSS path of *remaining* more edges from *node*, collected as
    (base node, labels walked top-down)."""
    if remaining == 0:
        out.append((node, acc))
        return
    for edge in node.edges:
        _collect_paths(edge.target, remaining - 1, acc + (edge.label,), out)

"""Panic-mode error recovery: report many syntax errors in one pass.

The plain engine stops at the first error.  For a batch "check this file"
workflow (every real parser generator grows one), panic mode continues:

1. record the error,
2. discard input up to the next *synchronising* token (e.g. ``;``),
3. pop parser states until one can act on that token again,
4. resume.

Without error productions no parse tree can be produced for invalid
input, so the result is the list of errors (empty = the input parsed).
The recovery is deliberately conservative: if no synchronisation point
works, it stops rather than loop.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..grammar.symbols import Symbol
from .engine import Parser, Token, TokenLike
from .errors import ParseError


class RecoveringParser:
    """Wraps a Parser with panic-mode multi-error checking."""

    def __init__(self, parser: Parser, sync_tokens: Iterable[str]):
        self.parser = parser
        self.grammar = parser.grammar
        self.sync: List[Symbol] = []
        for name in sync_tokens:
            symbol = self.grammar.symbols[name]
            if symbol.is_nonterminal:
                raise ValueError(f"sync token {name!r} must be a terminal")
            self.sync.append(symbol)
        terminal_id = self.grammar.ids.terminal_id
        self._sync_tids = frozenset(terminal_id(symbol) for symbol in self.sync)

    def check(
        self,
        tokens: "Sequence[TokenLike]",
        max_errors: int = 25,
        budget=None,
    ) -> List[ParseError]:
        """Parse *tokens*, recovering at sync points; returns all errors.

        Drives the same dense ``action_rows``/``goto_rows`` fast path as
        the engine, so error detection states, positions and expected
        sets are identical to a plain :meth:`Parser.parse` of the same
        prefix — on compressed tables included.  A *budget* bounds the
        whole check with the engine's token/step/deadline limits.
        """
        parser = self.parser
        ids = parser._ids
        sid_or_none = ids.sid_or_none
        num_terminals = ids.num_terminals
        action_rows = parser.table.action_rows
        goto_rows = parser.table.goto_rows
        productions = self.grammar.productions

        stream = [parser._normalise(t, i) for i, t in enumerate(tokens)]
        stream.append(Token(self.grammar.eof, None))
        # One ID conversion per token up front; None marks symbols
        # outside this grammar's layout (always a syntax error below).
        tids = [sid_or_none(token.symbol) for token in stream]

        if budget is not None:
            budget.enter_phase("parse.check")
        errors: List[ParseError] = []
        state_stack: List[int] = [0]
        position = 0

        try:
            while True:
                if budget is not None:
                    budget.charge_parse_step()
                tid = tids[position]
                action = (
                    action_rows[state_stack[-1]][tid] if tid is not None else None
                )

                if action is None:
                    error = parser._syntax_error(
                        position, stream[position], state_stack[-1]
                    )
                    errors.append(error)
                    if len(errors) >= max_errors:
                        return errors
                    recovered = self._recover(state_stack, tids, position)
                    if recovered is None:
                        return errors
                    position = recovered
                    continue

                if action.kind == "shift":
                    state_stack.append(action.state)
                    position += 1
                    if budget is not None:
                        budget.charge_tokens(1)
                    continue
                if action.kind == "reduce":
                    production = productions[action.production]
                    arity = len(production.rhs_sids)
                    if arity:
                        del state_stack[-arity:]
                    goto = goto_rows[state_stack[-1]][
                        production.lhs_sid - num_terminals
                    ]
                    if goto < 0:
                        # Recovery left the stack in a dead configuration.
                        return errors
                    state_stack.append(goto)
                    continue
                return errors  # accept
        finally:
            if budget is not None:
                budget.publish()

    def _recover(
        self,
        state_stack: List[int],
        tids: "List[Optional[int]]",
        position: int,
    ) -> Optional[int]:
        """Panic: skip to a sync token, pop states until it is actionable.

        Returns the position to resume at, or None when unrecoverable.
        """
        action_rows = self.parser.table.action_rows
        sync_tids = self._sync_tids
        eof_tid = self.parser._eof_tid
        index = position
        while index < len(tids):
            tid = tids[index]
            if tid == eof_tid:
                return None  # nothing left to resynchronise on
            if tid in sync_tids:
                # Resume AFTER the sync token: pop to the shallowest state
                # that can act on the follower (a fresh-context restart);
                # when none can, hard-reset to the start state and let the
                # parser re-derive the next error.  Either way the resume
                # position strictly advances, so recovery always terminates.
                follower_tid = tids[index + 1]
                if follower_tid is not None:
                    for depth in range(len(state_stack)):
                        if action_rows[state_stack[depth]][follower_tid] is not None:
                            del state_stack[depth + 1 :]
                            return index + 1
                del state_stack[1:]
                return index + 1
            index += 1
        return None

"""Panic-mode error recovery: report many syntax errors in one pass.

The plain engine stops at the first error.  For a batch "check this file"
workflow (every real parser generator grows one), panic mode continues:

1. record the error,
2. discard input up to the next *synchronising* token (e.g. ``;``),
3. pop parser states until one can act on that token again,
4. resume.

Without error productions no parse tree can be produced for invalid
input, so the result is the list of errors (empty = the input parsed).
The recovery is deliberately conservative: if no synchronisation point
works, it stops rather than loop.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..grammar.symbols import Symbol
from .engine import Parser, Token, TokenLike
from .errors import ParseError


class RecoveringParser:
    """Wraps a Parser with panic-mode multi-error checking."""

    def __init__(self, parser: Parser, sync_tokens: Iterable[str]):
        self.parser = parser
        self.grammar = parser.grammar
        self.sync: List[Symbol] = []
        for name in sync_tokens:
            symbol = self.grammar.symbols[name]
            if symbol.is_nonterminal:
                raise ValueError(f"sync token {name!r} must be a terminal")
            self.sync.append(symbol)

    def check(self, tokens: "Sequence[TokenLike]", max_errors: int = 25) -> List[ParseError]:
        """Parse *tokens*, recovering at sync points; returns all errors."""
        table = self.parser.table
        eof = self.grammar.eof
        stream = [self.parser._normalise(t, i) for i, t in enumerate(tokens)]
        stream.append(Token(eof, None))

        errors: List[ParseError] = []
        state_stack: List[int] = [0]
        position = 0

        while True:
            token = stream[position]
            action = table.action(state_stack[-1], token.symbol)

            if action is None:
                error = self.parser._syntax_error(position, token, state_stack[-1])
                errors.append(error)
                if len(errors) >= max_errors:
                    return errors
                recovered = self._recover(state_stack, stream, position)
                if recovered is None:
                    return errors
                position = recovered
                continue

            if action.kind == "shift":
                state_stack.append(action.state)
                position += 1
                continue
            if action.kind == "reduce":
                production = self.grammar.productions[action.production]
                if len(production.rhs):
                    del state_stack[-len(production.rhs):]
                goto = table.goto(state_stack[-1], production.lhs)
                if goto is None:
                    # Recovery left the stack in a dead configuration.
                    return errors
                state_stack.append(goto)
                continue
            return errors  # accept

    def _recover(
        self,
        state_stack: List[int],
        stream: "List[Token]",
        position: int,
    ) -> Optional[int]:
        """Panic: skip to a sync token, pop states until it is actionable.

        Returns the position to resume at, or None when unrecoverable.
        """
        table = self.parser.table
        index = position
        while index < len(stream):
            token = stream[index]
            if token.symbol is self.grammar.eof:
                return None  # nothing left to resynchronise on
            if token.symbol in self.sync:
                # Resume AFTER the sync token: pop to the shallowest state
                # that can act on the follower (a fresh-context restart);
                # when none can, hard-reset to the start state and let the
                # parser re-derive the next error.  Either way the resume
                # position strictly advances, so recovery always terminates.
                follower = stream[index + 1]
                for depth in range(len(state_stack)):
                    if table.action(state_stack[depth], follower.symbol) is not None:
                        del state_stack[depth + 1 :]
                        return index + 1
                del state_stack[1:]
                return index + 1
            index += 1
        return None

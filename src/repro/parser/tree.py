"""Parse trees produced by the LR engine."""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..grammar.production import Production
from ..grammar.symbols import Symbol


class Node:
    """A parse-tree node.

    Leaves wrap a shifted terminal (and the token's semantic *value*, when
    the token stream supplied one).  Interior nodes wrap the production
    used for the reduction and the children in left-to-right order.
    """

    __slots__ = ("symbol", "children", "value", "production")

    def __init__(
        self,
        symbol: Symbol,
        children: "Optional[List[Node]]" = None,
        value: object = None,
        production: Optional[Production] = None,
    ):
        self.symbol = symbol
        self.children: List[Node] = children if children is not None else []
        self.value = value
        self.production = production

    @property
    def is_leaf(self) -> bool:
        """True for terminal (token) nodes."""
        return self.symbol.is_terminal

    def leaves(self) -> "Iterator[Node]":
        """Left-to-right terminal leaves (the fringe)."""
        if self.is_leaf:
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def fringe(self) -> List[Symbol]:
        """The terminal symbols of the fringe — re-derives the input."""
        return [leaf.symbol for leaf in self.leaves()]

    def walk(self) -> "Iterator[Node]":
        """Pre-order traversal of all nodes."""
        yield self
        for child in self.children:
            yield from child.walk()

    def derivation(self) -> List[Production]:
        """The rightmost derivation (in forward order) this tree encodes."""
        out: List[Production] = []

        def visit(node: "Node") -> None:
            if node.is_leaf:
                return
            assert node.production is not None
            out.append(node.production)
            # Rightmost derivation expands the rightmost nonterminal first.
            for child in node.children:
                visit(child)

        visit(self)
        return out

    def format(self, indent: str = "") -> str:
        """Multi-line indented rendering."""
        if self.is_leaf:
            label = self.symbol.name
            if self.value is not None and str(self.value) != label:
                label += f" ({self.value!r})"
            return f"{indent}{label}"
        lines = [f"{indent}{self.symbol.name}"]
        lines.extend(child.format(indent + "  ") for child in self.children)
        return "\n".join(lines)

    def sexpr(self) -> str:
        """Compact s-expression rendering, handy in tests."""
        if self.is_leaf:
            return self.symbol.name
        inner = " ".join(child.sexpr() for child in self.children)
        return f"({self.symbol.name} {inner})" if inner else f"({self.symbol.name})"

    def __repr__(self) -> str:
        return f"Node({self.sexpr()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return (
            self.symbol is other.symbol
            and self.value == other.value
            and self.children == other.children
        )

    def __hash__(self) -> int:  # pragma: no cover - trees rarely hashed
        return hash((id(self.symbol), self.value, tuple(map(hash, self.children))))


def count_nodes(node: Node) -> Tuple[int, int]:
    """(interior nodes, leaves) in the tree rooted at *node*."""
    interior = 0
    leaves = 0
    for current in node.walk():
        if current.is_leaf:
            leaves += 1
        else:
            interior += 1
    return interior, leaves

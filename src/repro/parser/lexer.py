"""A small regex-driven lexer for turning text into grammar tokens.

The examples (calculator, JSON, mini-Pascal) need real token streams, and
any downstream user of the library needs the same glue, so it ships as a
proper component.  A :class:`Lexer` is a list of rules; each rule maps a
regex to a terminal of a grammar (or to ``None`` to skip whitespace and
comments).  Literal terminals of the grammar — names like ``+`` or ``(``
— can be auto-registered with :meth:`Lexer.with_literals`.
"""

from __future__ import annotations

import re
from typing import Callable, Iterator, List, NamedTuple, Optional, Pattern

from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from .engine import Token
from .errors import LexError


class Rule(NamedTuple):
    """One lexer rule: regex, target terminal (None = skip), converter."""

    pattern: Pattern
    terminal: Optional[Symbol]
    convert: Optional[Callable[[str], object]]


class Lexer:
    """Longest-declaration-first tokeniser bound to one grammar."""

    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self.rules: List[Rule] = []

    def token(
        self,
        terminal_name: str,
        pattern: str,
        convert: "Callable[[str], object] | None" = None,
    ) -> "Lexer":
        """Map *pattern* to the grammar terminal *terminal_name*.

        *convert* turns the matched text into the token's semantic value
        (e.g. ``int`` for number literals).
        """
        symbol = self.grammar.symbols[terminal_name]
        if symbol.is_nonterminal:
            raise ValueError(f"{terminal_name!r} is a nonterminal")
        self.rules.append(Rule(re.compile(pattern), symbol, convert))
        return self

    def skip(self, pattern: str) -> "Lexer":
        """Skip text matching *pattern* (whitespace, comments)."""
        self.rules.append(Rule(re.compile(pattern), None, None))
        return self

    def with_literals(self, *names: str) -> "Lexer":
        """Register each name as a literal token for the same-named
        terminal; with no arguments, registers every terminal whose name
        is not a word (so ``+``, ``(``, ``==``, ... all match themselves).

        Longer literals are registered first so ``==`` wins over ``=``.
        """
        if names:
            literals = list(names)
        else:
            literals = [
                t.name
                for t in self.grammar.terminals
                if not t.name[0].isalnum() and t.name[0] not in "_$"
            ]
        for name in sorted(literals, key=len, reverse=True):
            self.token(name, re.escape(name))
        return self

    def keywords(self, *names: str) -> "Lexer":
        """Register word-like literal terminals (``if``, ``while``, ...)
        with word-boundary anchoring so ``if`` does not eat ``iffy``."""
        for name in sorted(names, key=len, reverse=True):
            self.token(name, re.escape(name) + r"(?![A-Za-z0-9_])")
        return self

    def tokens(self, text: str) -> Iterator[Token]:
        """Tokenise *text*, yielding :class:`Token` items.

        Rules are tried in declaration order at each position; the first
        match wins.  Raises LexError when nothing matches.
        """
        position = 0
        length = len(text)
        while position < length:
            for rule in self.rules:
                match = rule.pattern.match(text, position)
                if match is None or match.end() == position:
                    continue
                lexeme = match.group()
                position = match.end()
                if rule.terminal is not None:
                    value = rule.convert(lexeme) if rule.convert else lexeme
                    yield Token(rule.terminal, value)
                break
            else:
                raise LexError(
                    f"cannot tokenise input at position {position}: "
                    f"{text[position:position + 10]!r}...",
                    position,
                )

    def tokenize(self, text: str) -> List[Token]:
        """Eager version of :meth:`tokens`."""
        return list(self.tokens(text))

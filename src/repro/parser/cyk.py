"""The CYK recogniser — an LR-independent membership oracle.

Cocke–Younger–Kasami dynamic programming over a Chomsky-normal-form
conversion of the grammar.  O(n³·|G|) and completely indifferent to
ambiguity or LR-class, which is exactly what makes it the right oracle
for cross-validating the LR engine: on any grammar, for any string,
``CykRecognizer.accepts`` is ground truth.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..grammar.cnf import to_cnf
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol


class CykRecognizer:
    """Membership testing for L(G) via CYK on the CNF conversion."""

    def __init__(self, grammar: Grammar):
        if grammar.is_augmented:
            raise ValueError("pass the user grammar, not its augmented form")
        self.source_grammar = grammar
        converted = to_cnf(grammar)
        self.cnf = converted.grammar
        self.accepts_epsilon = converted.accepts_epsilon
        self.start = self.cnf.start if self.cnf is not None else None

        # Indexed rule forms for the DP.
        self._by_terminal_name: Dict[str, List[Symbol]] = {}
        self._by_pair: Dict[Tuple[Symbol, Symbol], List[Symbol]] = {}
        for production in (self.cnf.productions if self.cnf is not None else ()):
            rhs = production.rhs
            if len(rhs) == 1:
                self._by_terminal_name.setdefault(rhs[0].name, []).append(
                    production.lhs
                )
            else:
                self._by_pair.setdefault((rhs[0], rhs[1]), []).append(
                    production.lhs
                )

    def accepts(self, tokens: "Sequence[Symbol | str]", budget=None) -> bool:
        """True iff the token sequence is in L(G).

        Tokens may be Symbols (from any table — matching is by name) or
        bare terminal names.  Unknown names are simply never derivable,
        so they yield False rather than an error.

        The optional cooperative :class:`~repro.core.budget.Budget` runs
        as phase ``"cyk"``: the token cap is charged while the input is
        materialised, and the O(n³) span loop checks the deadline on a
        stride — without it an MB-scale ambiguous input pins a service
        worker for minutes.
        """
        if budget is not None:
            budget.enter_phase("cyk")
        try:
            names: List[str] = []
            for t in tokens:
                if budget is not None:
                    budget.charge_tokens(1)
                names.append(t if isinstance(t, str) else t.name)
            n = len(names)
            if n == 0:
                return self.accepts_epsilon
            if self.cnf is None:  # L(G) ⊆ {ε}: no non-empty sentence exists
                return False

            # chart[i][j] = nonterminals deriving names[i : i + j + 1]
            chart: List[List[Set[Symbol]]] = [
                [set() for _ in range(n - i)] for i in range(n)
            ]
            for i, name in enumerate(names):
                producers = self._by_terminal_name.get(name)
                if not producers:
                    return False
                chart[i][0].update(producers)

            for span in range(2, n + 1):
                for i in range(n - span + 1):
                    if budget is not None:
                        budget.tick()
                    cell = chart[i][span - 1]
                    for split in range(1, span):
                        left_set = chart[i][split - 1]
                        right_set = chart[i + split][span - split - 1]
                        if not left_set or not right_set:
                            continue
                        for left in left_set:
                            for right in right_set:
                                producers = self._by_pair.get((left, right))
                                if producers:
                                    cell.update(producers)
            return self.start in chart[0][n - 1]
        finally:
            if budget is not None:
                budget.publish()

    def accepts_all(self, sentences: "Iterable[Sequence]") -> bool:
        """True iff every sentence in the iterable is in L(G)."""
        return all(self.accepts(sentence) for sentence in sentences)

"""The multi-core execution tier: a process pool behind the asyncio front-end.

A single serving process executes all pipeline work on threads, which the
GIL serializes onto one core.  :class:`WorkerPool` moves that work into
``N`` forked worker processes:

- **Zero-copy table sharing.**  Each worker opens its own
  :class:`~repro.tables.TableCache` over the *same* sharded on-disk
  store the parent uses.  With the ``bin`` backend the RPTB artifacts
  are ``mmap``-loaded (:mod:`repro.tables.binfmt`), so N workers parsing
  the same grammar share one physical copy of the table via the page
  cache instead of N heap copies.
- **Deterministic routing.**  Every worker has its own inbox and the
  parent round-robins requests across them, so K requests land
  ``ceil(K/N)``/``floor(K/N)`` per worker regardless of timing — the
  multi-worker suite asserts *every* worker is counted, not just that
  the total adds up.
- **Counter fold-back.**  Workers run each request under
  ``instrument.profile()`` and ship the counters home with the result;
  a dispatcher thread folds them into the parent's
  :class:`~repro.service.metrics.MetricsRegistry`, so ``GET /metrics``
  aggregates the whole pool exactly like the single-process tier.
- **Typed failure transport.**  :class:`~repro.service.protocol.HttpError`
  and :class:`~repro.core.budget.BudgetExceeded` are reconstructable
  from plain fields; the worker ships the fields and the parent re-raises
  the same exception type, so the service's error handlers produce
  bit-identical responses whether the work ran in-process or pooled.
  Anything else becomes :class:`WorkerCrash` carrying the worker-side
  ``type: message`` rendering the single-process 500 body would show.

The pool handles the *stateless* request kinds (sync compile, parse,
sessionless analyze, ``wait``-mode fuzz, and async compile jobs).
Session-affine analysis stays in-process — an
:class:`~repro.pipeline.AnalysisSession` is mutable server state and
must not be split across processes — and batch/fuzz jobs keep their own
:func:`~repro.core.parallel.parallel_map` fan-out.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional

from ..core import instrument
from ..core.budget import BudgetExceeded
from .protocol import HttpError

__all__ = ["WorkerCrash", "WorkerPool", "fork_available"]


class WorkerCrash(Exception):
    """An unexpected exception inside a pool worker (or a dead pool).

    ``rendered`` is the worker-side ``TypeName: message`` string; the
    service's 500 handler uses it verbatim so the response body matches
    what the in-process executor would have produced.
    """

    def __init__(self, rendered: str):
        self.rendered = rendered
        super().__init__(rendered)


def fork_available() -> bool:
    """True when the ``fork`` start method exists (POSIX)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _execute(kind: str, payload: dict, headers: "Dict[str, str]", cache):
    """One request, executed with the same validation order the
    in-process handlers use — divergence here would break the
    single-vs-multi-worker bit-identity contract."""
    from .app import (
        _engine_of,
        _grammar_from_spec,
        _method_of,
        _tokens_of,
        analyze_result,
        compile_result,
        fuzz_result,
        parse_result,
    )
    from .qos import budget_from_headers

    if kind == "compile":
        budget = budget_from_headers(headers)
        method = _method_of(payload)
        return compile_result(_grammar_from_spec(payload), method, cache, budget)
    if kind == "parse":
        budget = budget_from_headers(headers)
        method = _method_of(payload)
        tokens = _tokens_of(payload)
        tree = bool(payload.get("tree"))
        engine = _engine_of(payload)
        return parse_result(
            _grammar_from_spec(payload), tokens, method, tree, cache, budget, engine
        )
    if kind == "analyze":
        budget = budget_from_headers(headers)
        return analyze_result(_grammar_from_spec(payload), budget)
    if kind == "fuzz":
        return fuzz_result(payload)
    raise HttpError(400, "unknown_job_kind", f"no pool request kind {kind!r}")


def _worker_main(
    worker_id: int,
    inbox,
    outbox,
    cache_dir: str,
    backend: str,
    hot_capacity: int,
) -> None:
    """The forked worker loop: pull, execute, ship (result, counters)."""
    from ..tables import TableCache

    cache = (
        TableCache(cache_dir, backend=backend, hot_capacity=hot_capacity)
        if cache_dir
        else None
    )
    while True:
        try:
            item = inbox.get()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if item is None:
            break
        request_id, kind, payload, headers = item
        prof = instrument.profile()
        collector = prof.__enter__()
        try:
            result = _execute(kind, payload, headers, cache)
            status, body = "ok", result
        except HttpError as error:
            status = "http_error"
            body = {"status": error.status, "code": error.code,
                    "detail": error.detail}
        except BudgetExceeded as error:
            status = "budget_exceeded"
            body = {
                "phase": error.phase,
                "resource": error.resource,
                "limit": error.limit,
                "elapsed": error.elapsed,
                "progress": error.progress,
            }
        except KeyboardInterrupt:
            break
        except Exception as error:  # ship it; never kill the worker
            status = "crash"
            body = {"rendered": f"{type(error).__name__}: {error}"}
        finally:
            prof.__exit__(None, None, None)
        try:
            outbox.put(
                (request_id, worker_id, status, body, dict(collector.counters))
            )
        except (BrokenPipeError, OSError, KeyboardInterrupt):
            break


class WorkerPool:
    """N forked workers over the shared artifact store.

    Args:
        workers: Worker process count (>= 1).
        cache_dir: The shared on-disk table store ("" disables caching
            in the workers; they still execute, just without artifacts).
        cache_backend: ``"json"`` or ``"bin"`` (``bin`` gives the mmap
            zero-copy sharing story).
        hot_capacity: Per-worker in-memory hot-table LRU size.
        absorb: ``absorb(worker_id, counters)`` callback invoked on the
            dispatcher thread for every completed request (the service
            folds these into its metrics registry).
    """

    def __init__(
        self,
        workers: int,
        cache_dir: str = "",
        cache_backend: str = "json",
        hot_capacity: int = 8,
        absorb: "Optional[Callable[[int, Dict[str, int]], None]]" = None,
    ):
        if workers < 1:
            raise ValueError("WorkerPool needs at least one worker")
        self.workers = workers
        self.cache_dir = cache_dir
        self.cache_backend = cache_backend
        self.hot_capacity = hot_capacity
        self._absorb = absorb
        self._ctx = multiprocessing.get_context("fork")
        self._procs: "List[multiprocessing.Process]" = []
        self._inboxes: list = []
        self._outbox = None
        self._dispatcher: "Optional[threading.Thread]" = None
        self._lock = threading.Lock()
        self._pending: "Dict[int, Future]" = {}
        self._next_id = 0
        self._next_worker = 0
        self._started = False
        self._closed = False
        self.dispatched = 0
        self.completed = 0
        self.crashed = 0
        self.served: "List[int]" = [0] * workers

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._started:
            return self
        self._outbox = self._ctx.SimpleQueue()
        for worker_id in range(self.workers):
            inbox = self._ctx.SimpleQueue()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    inbox,
                    self._outbox,
                    self.cache_dir,
                    self.cache_backend,
                    self.hot_capacity,
                ),
                name=f"repro-pool-{worker_id}",
                daemon=True,
            )
            proc.start()
            self._inboxes.append(inbox)
            self._procs.append(proc)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-pool-dispatch", daemon=True
        )
        self._dispatcher.start()
        self._started = True
        return self

    def close(self, timeout: float = 10.0) -> None:
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout)
            if hasattr(proc, "close"):
                try:
                    proc.close()
                except ValueError:
                    pass
        # A None on the outbox stops the dispatcher; then fail whatever
        # was still pending so callers never block on a closed pool.
        try:
            self._outbox.put(None)
        except (BrokenPipeError, OSError):
            pass
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout)
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(WorkerCrash("worker pool shut down"))
        for queue in self._inboxes + [self._outbox]:
            if hasattr(queue, "close"):
                try:
                    queue.close()
                except OSError:
                    pass

    @property
    def alive(self) -> bool:
        return (
            self._started
            and not self._closed
            and any(proc.is_alive() for proc in self._procs)
        )

    # -- submission ----------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: dict,
        headers: "Optional[Dict[str, str]]" = None,
    ) -> "Future":
        """Queue a request on the next worker (round-robin); the Future
        resolves with the result dict or raises the reconstructed typed
        exception."""
        future: "Future" = Future()
        with self._lock:
            if self._closed or not self._started:
                future.set_exception(WorkerCrash("worker pool is not running"))
                return future
            request_id = self._next_id = self._next_id + 1
            worker_id = self._next_worker
            self._next_worker = (worker_id + 1) % self.workers
            self._pending[request_id] = future
            self.dispatched += 1
        try:
            self._inboxes[worker_id].put(
                (request_id, kind, dict(payload), dict(headers or {}))
            )
        except (BrokenPipeError, OSError):
            with self._lock:
                self._pending.pop(request_id, None)
            future.set_exception(WorkerCrash(f"worker {worker_id} is gone"))
        return future

    def stats(self) -> "Dict[str, int]":
        """The ``/metrics`` section: totals plus one counter per worker,
        so aggregation visibly accounts for every member of the pool."""
        with self._lock:
            stats = {
                "workers": self.workers,
                "dispatched": self.dispatched,
                "completed": self.completed,
                "crashed": self.crashed,
                "pending": len(self._pending),
            }
            for worker_id, count in enumerate(self.served):
                stats[f"worker_{worker_id}_served"] = count
        return stats

    # -- dispatcher ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            try:
                item = self._outbox.get()
            except (EOFError, OSError):
                break
            if item is None:
                break
            request_id, worker_id, status, body, counters = item
            with self._lock:
                future = self._pending.pop(request_id, None)
                self.completed += 1
                if status == "crash":
                    self.crashed += 1
                self.served[worker_id] += 1
            if self._absorb is not None and counters:
                try:
                    self._absorb(worker_id, counters)
                except Exception:  # metrics must never kill dispatch
                    pass
            if future is None or future.done():
                continue
            if status == "ok":
                future.set_result(body)
            elif status == "http_error":
                future.set_exception(
                    HttpError(body["status"], body["code"], body["detail"])
                )
            elif status == "budget_exceeded":
                future.set_exception(
                    BudgetExceeded(
                        body["phase"],
                        body["resource"],
                        body["limit"],
                        body["elapsed"],
                        body["progress"],
                    )
                )
            else:
                future.set_exception(WorkerCrash(body["rendered"]))

"""The service's metrics registry — instrument counters, aggregated.

:mod:`repro.core.instrument` collects per-request (its collectors are
thread-local and scoped to one profiled region); a serving process needs
the *running totals* across every request it ever handled.
:class:`MetricsRegistry` is that accumulator: worker threads profile
each request with the instrument layer, then :meth:`absorb` the
collector's counters under a lock.  The service adds its own families on
top (``service.requests.*``, ``service.responses.*``,
``service.budget_exceeded``, per-endpoint latency sums).

``GET /metrics`` renders the registry two ways:

- **text** (default): one ``repro_<name> <value>`` line per counter,
  dots mapped to underscores, sorted — greppable and close enough to
  the Prometheus exposition format for standard scrapers.
- **JSON** (``?format=json`` or ``Accept: application/json``): the
  counter map plus the live ``cache`` and ``jobs`` sections, which is
  what the bench harness and the CI smoke job consume.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Optional

__all__ = ["MetricsRegistry"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


class MetricsRegistry:
    """A thread-safe, monotonically growing counter map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: "Dict[str, float]" = {}

    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def absorb(self, counters: "Dict[str, int]", prefix: str = "") -> None:
        """Fold a finished request's instrument counters into the totals."""
        with self._lock:
            for name, value in counters.items():
                key = f"{prefix}{name}"
                self._counters[key] = self._counters.get(key, 0) + value

    def snapshot(self) -> "Dict[str, float]":
        with self._lock:
            return dict(sorted(self._counters.items()))

    # -- rendering -----------------------------------------------------

    def render_json(
        self, sections: "Optional[Dict[str, Dict[str, float]]]" = None
    ) -> "Dict[str, object]":
        payload: "Dict[str, object]" = {"counters": self.snapshot()}
        for name, values in (sections or {}).items():
            payload[name] = dict(sorted(values.items()))
        return payload

    def render_text(
        self, sections: "Optional[Dict[str, Dict[str, float]]]" = None
    ) -> str:
        lines = []
        for name, value in self.snapshot().items():
            lines.append(f"repro_{_NAME_RE.sub('_', name)} {_render_value(value)}")
        for section, values in sorted((sections or {}).items()):
            for name, value in sorted(values.items()):
                metric = _NAME_RE.sub("_", f"{section}_{name}")
                lines.append(f"repro_{metric} {_render_value(value)}")
        return "\n".join(lines) + "\n"


def _render_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6f}"
    return str(int(value))

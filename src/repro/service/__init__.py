"""repro.service — the async HTTP front-end over the pipeline.

The serving layer is shells over pure functions: HTTP handlers parse
payloads, call :func:`compile_result` / :func:`analyze_result` /
:func:`parse_result` / :func:`fuzz_result`, and serialise the result
dicts canonically — so a served response is bit-identical to calling
the pipeline directly (a tested contract).  See ALGORITHM.md §16.
"""

from .app import (
    GrammarService,
    analyze_result,
    batch_result,
    compile_result,
    fuzz_result,
    parse_result,
)
from .metrics import MetricsRegistry
from .pool import WorkerCrash, WorkerPool, fork_available
from .protocol import HttpError, Request, Response, canonical_json
from .qos import BUDGET_HEADERS, budget_from_headers
from .server import Client, ClientResponse, ServiceThread, run_server, serve_forever

__all__ = [
    "BUDGET_HEADERS",
    "Client",
    "ClientResponse",
    "GrammarService",
    "HttpError",
    "MetricsRegistry",
    "Request",
    "Response",
    "ServiceThread",
    "WorkerCrash",
    "WorkerPool",
    "analyze_result",
    "fork_available",
    "batch_result",
    "budget_from_headers",
    "canonical_json",
    "compile_result",
    "fuzz_result",
    "parse_result",
    "run_server",
    "serve_forever",
]

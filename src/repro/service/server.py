"""The asyncio transport: sockets in front of :class:`GrammarService`.

Three entry points, one per consumer:

- :func:`serve_forever` — the blocking loop behind ``repro serve``.
- :class:`ServiceThread` — a real server on an ephemeral port inside a
  background thread, for the functional suite, the bench harness and
  the CI smoke job (start, hammer over TCP, close — no subprocess
  management, no port races).
- :class:`Client` — a tiny blocking ``http.client`` wrapper so tests
  and benches speak actual HTTP instead of poking handlers directly.

Connections are keep-alive HTTP/1.1; a malformed request gets one 400
and the connection is closed.  Client disconnects mid-stream are normal,
not errors.
"""

from __future__ import annotations

import asyncio
import json
import threading
from http.client import HTTPConnection
from typing import Dict, Optional

from .app import GrammarService
from .protocol import ProtocolError, Response, canonical_json, read_request

__all__ = ["Client", "ClientResponse", "ServiceThread", "run_server", "serve_forever"]


async def handle_connection(
    service: GrammarService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                request = await read_request(reader)
            except ProtocolError as error:
                service.metrics.inc("service.protocol_errors")
                writer.write(
                    Response.json(
                        {"error": "bad_request", "detail": str(error)}, status=400
                    ).encode(keep_alive=False)
                )
                await writer.drain()
                break
            if request is None:
                break
            response = await service.handle(request)
            keep = request.keep_alive
            writer.write(response.encode(keep_alive=keep))
            await writer.drain()
            if not keep:
                break
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except Exception:
            pass


async def run_server(
    service: GrammarService, host: str = "127.0.0.1", port: int = 0
) -> "asyncio.AbstractServer":
    """Start the job queue and bind a listening server (port 0 = any)."""
    await service.start()
    return await asyncio.start_server(
        lambda reader, writer: handle_connection(service, reader, writer),
        host,
        port,
    )


def serve_forever(
    service: GrammarService,
    host: str = "127.0.0.1",
    port: int = 8080,
    announce=print,
) -> int:
    """Blocking serve loop (the ``repro serve`` verb); 0 on clean exit."""

    async def main() -> None:
        server = await run_server(service, host, port)
        bound = server.sockets[0].getsockname()
        announce(f"serving on http://{bound[0]}:{bound[1]}")
        try:
            async with server:
                await server.serve_forever()
        finally:
            await service.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


class ServiceThread:
    """A live server on an ephemeral port, in a daemon thread.

    >>> with ServiceThread(cache_dir=str(tmp)) as st:
    ...     Client(st.port).post("/compile", {"corpus": "paper_example"})
    """

    def __init__(
        self,
        service: "Optional[GrammarService]" = None,
        host: str = "127.0.0.1",
        **service_kwargs,
    ):
        self.service = service if service is not None else GrammarService(**service_kwargs)
        self.host = host
        self.port: "Optional[int]" = None
        self._thread: "Optional[threading.Thread]" = None
        self._loop: "Optional[asyncio.AbstractEventLoop]" = None
        self._stop: "Optional[asyncio.Event]" = None
        self._ready = threading.Event()
        self._startup_error: "Optional[BaseException]" = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30) or self._startup_error is not None:
            raise RuntimeError(f"service failed to start: {self._startup_error}")
        return self

    def close(self) -> None:
        if self._loop is not None and self._thread is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=15)

    def join_jobs(self, timeout: float = 300.0) -> None:
        """Block until every queued job has finished."""
        assert self._loop is not None
        asyncio.run_coroutine_threadsafe(
            self.service.jobs.join(), self._loop
        ).result(timeout=timeout)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surface startup failures to start()
            self._startup_error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_event_loop()
        self._stop = asyncio.Event()
        server = await run_server(self.service, self.host, 0)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        await self._stop.wait()
        server.close()
        await server.wait_closed()
        await self.service.close()


class ClientResponse:
    """Status + raw bytes + parsed JSON of one exchange."""

    __slots__ = ("status", "body", "headers")

    def __init__(self, status: int, body: bytes, headers: "Dict[str, str]"):
        self.status = status
        self.body = body
        self.headers = headers

    def json(self) -> object:
        return json.loads(self.body.decode("utf-8"))


class Client:
    """A blocking HTTP client for tests, benches and smoke checks.

    One connection per request: simple, and exactly how concurrent test
    clients should behave (no shared-socket serialization).
    """

    def __init__(self, port: int, host: str = "127.0.0.1", timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self,
        method: str,
        path: str,
        payload: object = None,
        headers: "Optional[Dict[str, str]]" = None,
    ) -> ClientResponse:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = canonical_json(payload) if payload is not None else None
            conn.request(method, path, body=body, headers=dict(headers or {}))
            raw = conn.getresponse()
            return ClientResponse(
                raw.status, raw.read(), {k.lower(): v for k, v in raw.getheaders()}
            )
        finally:
            conn.close()

    def get(self, path: str, headers: "Optional[Dict[str, str]]" = None) -> ClientResponse:
        return self.request("GET", path, None, headers)

    def post(
        self,
        path: str,
        payload: object,
        headers: "Optional[Dict[str, str]]" = None,
    ) -> ClientResponse:
        return self.request("POST", path, payload, headers)

"""Minimal HTTP/1.1 framing over asyncio streams — stdlib only.

The grammar service deliberately does not pull in a web framework: its
request surface is six JSON endpoints, and the whole point of the
serving layer is that the *pipeline* stays the hot path.  This module is
the thin wire layer: parse one request from a stream, render one
response back, keep-alive until the client closes.

Determinism matters here.  Every JSON body the service emits goes
through :func:`canonical_json` — sorted keys, fixed separators, a
trailing newline — so a response is a *pure function of the result
dict*.  The corpus functional suite leans on that: it recomputes the
result dict through the pipeline directly and asserts the service's
bytes are identical.

Limits: request bodies are capped at :data:`MAX_BODY_BYTES` (8 MiB —
grammars are small; corpora of them are submitted as jobs, not one
giant body) and header blocks at the stream reader's 64 KiB default.
Violations, like any malformed framing, raise :class:`ProtocolError`
and the connection is answered with a 400 and closed.
"""

from __future__ import annotations

import asyncio
import json
from http import HTTPStatus
from typing import Dict, Optional
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HttpError",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "Request",
    "Response",
    "canonical_json",
    "read_request",
]

#: Largest request body accepted (grammars are text; keep DoS margin).
MAX_BODY_BYTES = 8 * 1024 * 1024


class ProtocolError(Exception):
    """The client sent something that is not a well-formed request."""


class HttpError(Exception):
    """A typed application-level failure, rendered as a JSON body.

    Attributes:
        status: The HTTP status code.
        code: Machine-readable error slug (``"grammar_error"``, ...).
        detail: Human-readable one-liner.
    """

    def __init__(self, status: int, code: str, detail: str):
        self.status = status
        self.code = code
        self.detail = detail
        super().__init__(f"{status} {code}: {detail}")

    def body(self) -> Dict[str, str]:
        return {"error": self.code, "detail": self.detail}


def canonical_json(payload: object) -> bytes:
    """The one JSON serialisation the service ever emits: sorted keys,
    compact separators, trailing newline.  Bit-identical responses are a
    tested contract, so there is exactly one recipe."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "target", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ):
        self.method = method
        self.target = target
        split = urlsplit(target)
        self.path = split.path
        self.query = dict(parse_qsl(split.query))
        self.headers = headers
        self.body = body

    def json(self) -> object:
        """The request body as JSON (empty body reads as ``{}``)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise HttpError(400, "bad_json", f"request body is not JSON: {error}")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


class Response:
    """One response ready to encode onto the wire."""

    __slots__ = ("status", "body", "content_type", "headers")

    def __init__(
        self,
        status: int = 200,
        body: bytes = b"",
        content_type: str = "application/json",
        headers: "Optional[Dict[str, str]]" = None,
    ):
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = dict(headers or {})

    @classmethod
    def json(
        cls,
        payload: object,
        status: int = 200,
        headers: "Optional[Dict[str, str]]" = None,
    ) -> "Response":
        return cls(status, canonical_json(payload), "application/json", headers)

    @classmethod
    def text(cls, text: str, status: int = 200) -> "Response":
        return cls(status, text.encode("utf-8"), "text/plain; charset=utf-8")

    def encode(self, keep_alive: bool = True) -> bytes:
        try:
            phrase = HTTPStatus(self.status).phrase
        except ValueError:
            phrase = ""
        lines = [
            f"HTTP/1.1 {self.status} {phrase}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


async def read_request(reader: asyncio.StreamReader) -> "Optional[Request]":
    """Parse one request off *reader*; None on a clean end-of-stream.

    Raises ProtocolError for malformed framing (bad request line,
    non-numeric Content-Length, over-long headers or body, truncation
    mid-request).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise ProtocolError("header block too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"unacceptable Content-Length: {length}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-body")
    return Request(method, target, headers, body)

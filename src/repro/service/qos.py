"""Per-request quality of service: budget headers in, typed 503s out.

:mod:`repro.core.budget` already governs every pipeline phase with a
cooperative :class:`~repro.core.budget.Budget`.  This module is the
serving-side adapter:

- **Headers in.**  :func:`budget_from_headers` reads the ``X-Repro-*``
  request headers (see :data:`BUDGET_HEADERS`) into a fresh Budget, so
  every request carries its own deadline and state/step/token caps —
  one pathological grammar cannot hold a worker hostage.
- **503 out.**  When a governed phase raises
  :class:`~repro.core.budget.BudgetExceeded`, the service answers
  ``503 Service Unavailable`` whose JSON body is exactly
  :meth:`BudgetExceeded.as_dict` — the phase reached, the resource that
  tripped, and the partial-progress counters, so clients can tell "your
  grammar is too big for the cap you set" from "the service is down".
  A ``Retry-After`` header rides along for well-behaved clients.

The budget object is created *before* any pipeline work and threaded
through build and parse alike; because the table cache only stores
tables from builders that *returned*, a blown budget can never poison
the shared artifact store with a partial table (the QoS suite pins
this).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.budget import Budget, BudgetExceeded
from .protocol import HttpError, Response

__all__ = ["BUDGET_HEADERS", "budget_from_headers", "budget_exceeded_response"]

#: Request header (lower-cased) -> (Budget kwarg, parser).  Every entry
#: is optional and independent, mirroring the Budget constructor.
BUDGET_HEADERS = {
    "x-repro-timeout": ("timeout", float),
    "x-repro-max-states": ("max_states", int),
    "x-repro-max-digraph-steps": ("max_digraph_steps", int),
    "x-repro-max-tokens": ("max_tokens", int),
    "x-repro-max-parse-steps": ("max_parse_steps", int),
}


def budget_from_headers(headers: "Dict[str, str]") -> "Optional[Budget]":
    """The request's Budget, or None when no ``X-Repro-*`` cap is set.

    Malformed values are the client's fault: ``400 bad_budget_header``.
    """
    kwargs: "Dict[str, object]" = {}
    for header, (kwarg, parse) in BUDGET_HEADERS.items():
        raw = headers.get(header)
        if raw is None:
            continue
        try:
            kwargs[kwarg] = parse(raw)
        except ValueError:
            raise HttpError(
                400, "bad_budget_header",
                f"{header}: expected {parse.__name__}, got {raw!r}",
            )
    if not kwargs:
        return None
    try:
        return Budget(**kwargs)
    except ValueError as error:
        raise HttpError(400, "bad_budget_header", str(error))


def budget_exceeded_response(error: BudgetExceeded) -> Response:
    """The typed 503 for a blown per-request budget."""
    return Response.json(error.as_dict(), status=503, headers={"Retry-After": "1"})

"""The grammar-analysis service: six endpoints over the pipeline.

====================  ======  ==============================================
endpoint              method  what it does
====================  ======  ==============================================
``/compile``          POST    build a parse table (sync; ``"async": true``
                              or a ``"batch"`` list submits a job instead)
``/analyze``          POST    LALR(1) look-ahead report, or — with a
                              ``"session"`` id — incremental edits through a
                              live :class:`~repro.pipeline.AnalysisSession`
``/parse``            POST    run the LR engine over ``"input"`` tokens
``/fuzz``             POST    submit a differential fuzz campaign job
``/jobs/<id>``        GET     poll a submitted job
``/metrics``          GET     instrument counters (text; ``?format=json``)
====================  ======  ==============================================

Three design rules keep the serving layer honest:

- **Handlers are shells over pure functions.**  :func:`compile_result`,
  :func:`analyze_result`, :func:`parse_result`, :func:`fuzz_result` and
  :func:`batch_result` map plain inputs to plain dicts; the HTTP layer
  only parses payloads and serialises the dicts canonically.  The corpus
  functional suite calls the same functions directly and asserts the
  service's bytes are identical — serving must never change an answer.
- **The shared artifact store is the cache.**  One sharded, hot-LRU'd
  :class:`~repro.tables.cache.TableCache` instance backs every request
  (and, via its on-disk layer, every batch-job worker process).
- **Every request is budgeted.**  ``X-Repro-*`` headers become a
  per-request :class:`~repro.core.budget.Budget`; exhaustion surfaces
  as the typed 503 of :mod:`repro.service.qos`, and a blown build never
  stores a partial table.

Pipeline work runs on a thread-pool executor so the event loop stays
responsive; per-grammar **session affinity** is a named
:class:`AnalysisSession` guarded by its own lock, so repeated edits to
one grammar ride the incremental splice path while other grammars build
in parallel.
"""

from __future__ import annotations

import asyncio
import functools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from ..core import instrument
from ..core.budget import Budget, BudgetExceeded
from ..grammar import Grammar, load_grammar
from ..grammar.delta import add_production, remove_production, replace_rhs
from ..grammar.errors import GrammarError
from ..grammar.fingerprint import grammar_fingerprint
from ..grammars import corpus
from ..parser import ConflictedTableError, ParseError, Parser
from ..pipeline import AnalysisSession
from ..tables import (
    TableCache,
    build_clr_table,
    build_lalr_table,
    build_lr0_table,
    build_slr_table,
    specialized_view,
)
from .jobs import Job, JobQueue
from .metrics import MetricsRegistry
from .pool import WorkerCrash, WorkerPool, fork_available
from .protocol import HttpError, Request, Response
from .qos import budget_exceeded_response, budget_from_headers

__all__ = [
    "GrammarService",
    "analyze_result",
    "batch_result",
    "compile_result",
    "fuzz_result",
    "parse_result",
]

BUILDERS = {
    "lr0": build_lr0_table,
    "slr1": build_slr_table,
    "lalr1": build_lalr_table,
    "clr1": build_clr_table,
}


# ---------------------------------------------------------------------------
# Pure result functions — the served contract, callable without a server.
# ---------------------------------------------------------------------------


def _build_table(
    grammar: Grammar,
    method: str,
    cache: "Optional[TableCache]",
    budget: "Optional[Budget]",
):
    builder = BUILDERS[method]
    if budget is not None:
        builder = functools.partial(builder, budget=budget)
    augmented = grammar.augmented()
    if cache is not None:
        return augmented, cache.load_or_build(augmented, method, builder)
    return augmented, builder(augmented)


def compile_result(
    grammar: Grammar,
    method: str = "lalr1",
    cache: "Optional[TableCache]" = None,
    budget: "Optional[Budget]" = None,
) -> dict:
    """The ``POST /compile`` body: table shape and conflict summary."""
    augmented, table = _build_table(grammar, method, cache, budget)
    summary = table.conflict_summary()
    return {
        "grammar": grammar.name,
        "method": method,
        "fingerprint": grammar_fingerprint(augmented),
        "states": table.n_states,
        "deterministic": table.is_deterministic,
        "conflicts": {
            "shift_reduce": summary["shift_reduce"],
            "reduce_reduce": summary["reduce_reduce"],
            "resolved": summary["resolved"],
        },
    }


def analyze_result(grammar: Grammar, budget: "Optional[Budget]" = None) -> dict:
    """The ``POST /analyze`` body (sessionless): the look-ahead report."""
    from ..core.lalr import LalrAnalysis

    analysis = LalrAnalysis(grammar.augmented(), budget=budget)
    return {
        "grammar": grammar.name,
        "lr0_states": len(analysis.automaton),
        "not_lr_k": analysis.not_lr_k,
        "lookaheads": analysis.describe(),
    }


def parse_result(
    grammar: Grammar,
    tokens: "List[str]",
    method: str = "lalr1",
    tree: bool = False,
    cache: "Optional[TableCache]" = None,
    budget: "Optional[Budget]" = None,
    engine: str = "lr",
) -> dict:
    """The ``POST /parse`` body: validity (plus the tree on request)."""
    _, table = _build_table(grammar, method, cache, budget)
    if engine == "glr":
        from ..parser import GlrParser

        glr = GlrParser(table)
        try:
            forest = glr.parse_forest(tokens, budget=budget)
        except ParseError as error:
            return {"grammar": grammar.name, "valid": False, "error": str(error)}
        result = {
            "grammar": grammar.name,
            "valid": True,
            "trees": forest.tree_count(limit=1000),
        }
        if tree and result["trees"]:
            result["tree"] = forest.tree().format()
        return result
    # Serve off the specialized hot loop: the recompilation is memoized
    # on the table object, so tables coming off the hot LRU pay it once.
    # Byte-identity with the plain engine (trees, error text, positions,
    # expected sets, budget exhaustion points) is pinned corpus-wide by
    # tests/test_specialize.py and the representation-parity fuzz oracle.
    try:
        parser = Parser(specialized_view(table))
    except ConflictedTableError as error:
        raise HttpError(422, "conflicted_table", str(error))
    result = {"grammar": grammar.name, "valid": True}
    try:
        node = parser.parse(tokens, budget=budget)
    except ParseError as error:
        return {"grammar": grammar.name, "valid": False, "error": str(error)}
    if tree:
        result["tree"] = node.format()
    return result


def fuzz_result(payload: dict) -> dict:
    """One differential fuzz campaign, as a job result (deterministic:
    the same seed/count/buckets/oracles reproduce it bit for bit)."""
    from ..fuzz import CampaignConfig, DEFAULT_BUCKETS, run_campaign
    from ..fuzz.oracles import oracle_names

    oracles = payload.get("oracles")
    if oracles:
        unknown = [n for n in oracles if n not in oracle_names()]
        if unknown:
            raise HttpError(
                400, "unknown_oracle",
                f"unknown oracle(s): {', '.join(unknown)}",
            )
    buckets = list(DEFAULT_BUCKETS)
    wanted = payload.get("buckets")
    if wanted:
        by_label = {bucket.label: bucket for bucket in DEFAULT_BUCKETS}
        unknown = [b for b in wanted if b not in by_label]
        if unknown:
            raise HttpError(
                400, "unknown_bucket",
                f"unknown bucket(s): {', '.join(unknown)}",
            )
        buckets = [by_label[b] for b in wanted]
    config = CampaignConfig(
        seed=int(payload.get("seed", 0)),
        count=int(payload.get("count", 100)),
        buckets=buckets,
        oracles=list(oracles) if oracles else None,
        time_budget=float(payload.get("time_budget", 0.0)),
        clr_state_bound=int(payload.get("clr_bound", 60)),
    )
    report = run_campaign(config, workers=int(payload.get("workers", 1)))
    return {
        "seed": config.seed,
        "count": config.count,
        "grammars_run": report.grammars_run,
        "buckets": dict(sorted(report.per_bucket.items())),
        "failures": [failure.describe() for failure in report.failures],
        "duplicate_failures": report.duplicate_failures,
        "generation_errors": report.generation_errors,
        "stopped_early": report.stopped_early,
        "clean": report.clean,
    }


def _grammar_from_spec(spec) -> Grammar:
    """A grammar from a payload spec: ``{"corpus": name}``,
    ``{"grammar": text, "name": ...}``, or a ``"corpus:<name>"`` string."""
    if isinstance(spec, str):
        if spec.startswith("corpus:"):
            spec = {"corpus": spec.split(":", 1)[1]}
        else:
            spec = {"grammar": spec}
    if not isinstance(spec, dict):
        raise HttpError(400, "bad_grammar_spec", f"cannot interpret {spec!r}")
    if "corpus" in spec:
        name = spec["corpus"]
        try:
            return corpus.load(name)
        except KeyError:
            raise HttpError(
                422, "unknown_corpus",
                f"no corpus grammar {name!r} (known: {', '.join(corpus.names())})",
            )
    if "grammar" in spec:
        try:
            return load_grammar(
                str(spec["grammar"]), name=str(spec.get("name", "grammar"))
            )
        except GrammarError as error:
            raise HttpError(422, "grammar_error", str(error))
    raise HttpError(400, "missing_grammar", "payload needs 'grammar' or 'corpus'")


def _batch_compile_worker(task: tuple) -> dict:
    """One batch-job grammar, as a plain picklable row (runs in a forked
    worker when the job asks for ``workers > 1``)."""
    spec, method, cache_dir, backend = task
    cache = TableCache(cache_dir, backend=backend) if cache_dir else None
    try:
        grammar = _grammar_from_spec(spec)
        row = compile_result(grammar, method, cache)
    except HttpError as error:
        return {"status": "error", "detail": error.detail}
    except Exception as error:  # a bad grammar must not kill the batch
        return {"status": "error", "detail": f"{type(error).__name__}: {error}"}
    row["status"] = "ok" if row["deterministic"] else "conflicted"
    return row


def batch_result(
    payload: dict, cache_dir: str = "", backend: str = "json"
) -> dict:
    """``repro batch`` semantics as a job: compile every grammar spec,
    fanned across processes, sharing the on-disk artifact store."""
    from ..core.parallel import parallel_map

    specs = payload.get("batch")
    if not isinstance(specs, list) or not specs:
        raise HttpError(400, "bad_batch", "'batch' must be a non-empty list")
    method = _method_of(payload)
    workers = int(payload.get("workers", 1))
    tasks = [(spec, method, cache_dir, backend) for spec in specs]
    rows = parallel_map(_batch_compile_worker, tasks, workers=workers)
    errors = sum(1 for row in rows if row["status"] == "error")
    conflicted = sum(1 for row in rows if row["status"] == "conflicted")
    return {
        "rows": rows,
        "total": len(rows),
        "clean": len(rows) - errors - conflicted,
        "conflicted": conflicted,
        "errors": errors,
        "ok": not errors and not conflicted,
    }


def _method_of(payload: dict) -> str:
    method = payload.get("method", "lalr1")
    if method not in BUILDERS:
        raise HttpError(
            400, "bad_method",
            f"unknown method {method!r} (known: {', '.join(sorted(BUILDERS))})",
        )
    return method


def _engine_of(payload: dict) -> str:
    engine = payload.get("engine", "lr")
    if engine not in ("lr", "glr"):
        raise HttpError(
            400, "bad_engine", f"unknown engine {engine!r} (known: glr, lr)"
        )
    return engine


def _tokens_of(payload: dict) -> "List[str]":
    tokens = payload.get("input")
    if isinstance(tokens, str):
        return tokens.split()
    if isinstance(tokens, list):
        return [str(token) for token in tokens]
    raise HttpError(400, "missing_input", "payload needs 'input' (string or list)")


# ---------------------------------------------------------------------------
# The service object
# ---------------------------------------------------------------------------


class GrammarService:
    """Shared state and request handling for one serving process.

    Args:
        cache_dir: Directory of the shared table-artifact store (empty
            disables disk caching; the hot LRU needs the cache too).
        cache_backend: ``"json"`` or ``"bin"`` artifacts.
        hot_capacity: In-memory hot-table LRU size.
        job_workers: Concurrent jobs (and the job executor's threads).
        queue_capacity: Bounded job-queue depth (beyond it: 429).
        request_workers: Threads for synchronous request work.
        pool_workers: Process-pool size for stateless request work
            (``repro serve --workers N``).  At 1 (or where ``fork`` is
            unavailable) everything runs in-process as before; above 1 a
            :class:`~repro.service.pool.WorkerPool` executes sync
            compile/parse/analyze/fuzz requests and async compile jobs
            on forked workers sharing the on-disk store zero-copy, with
            responses bit-identical to the in-process tier.
        job_ttl: Seconds a finished job stays pollable (0 = no TTL).
    """

    def __init__(
        self,
        cache_dir: str = "",
        cache_backend: str = "json",
        hot_capacity: int = 32,
        job_workers: int = 2,
        queue_capacity: int = 16,
        request_workers: int = 4,
        pool_workers: int = 1,
        job_ttl: float = 3600.0,
    ):
        self.cache = (
            TableCache(cache_dir, backend=cache_backend, hot_capacity=hot_capacity)
            if cache_dir
            else None
        )
        self.cache_dir = cache_dir
        self.cache_backend = cache_backend
        self.metrics = MetricsRegistry()
        self.jobs = JobQueue(
            self._run_job, workers=job_workers, capacity=queue_capacity,
            ttl=job_ttl,
        )
        self.pool: "Optional[WorkerPool]" = None
        if pool_workers > 1 and fork_available():
            self.pool = WorkerPool(
                pool_workers,
                cache_dir=cache_dir,
                cache_backend=cache_backend,
                hot_capacity=hot_capacity,
                absorb=self._absorb_worker,
            )
        self.sessions: "Dict[str, AnalysisSession]" = {}
        self._session_locks: "Dict[str, threading.Lock]" = {}
        self._sessions_guard = threading.Lock()
        self._request_executor = ThreadPoolExecutor(
            max_workers=max(1, request_workers), thread_name_prefix="repro-req"
        )

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        await self.jobs.start()
        if self.pool is not None:
            # Fork the workers before request traffic builds up state.
            self.pool.start()

    async def close(self) -> None:
        await self.jobs.close()
        if self.pool is not None:
            self.pool.close()
        self._request_executor.shutdown(wait=False)

    # -- dispatch ------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        started = time.perf_counter_ns()
        segments = [part for part in request.path.split("/") if part]
        endpoint = segments[0] if segments else "index"
        try:
            response = await self._dispatch(request, segments)
        except HttpError as error:
            response = Response.json(error.body(), status=error.status)
        except BudgetExceeded as error:
            self.metrics.inc("service.budget_exceeded")
            response = budget_exceeded_response(error)
        except WorkerCrash as error:
            # The worker-side rendering is already "TypeName: message",
            # so the body matches the in-process 500 byte for byte.
            self.metrics.inc("service.internal_errors")
            response = Response.json(
                {"error": "internal_error", "detail": error.rendered},
                status=500,
            )
        except Exception as error:  # noqa: BLE001 - the 500 of last resort
            self.metrics.inc("service.internal_errors")
            response = Response.json(
                {
                    "error": "internal_error",
                    "detail": f"{type(error).__name__}: {error}",
                },
                status=500,
            )
        self.metrics.inc("service.requests")
        self.metrics.inc(f"service.requests.{endpoint}")
        self.metrics.inc(f"service.responses.{response.status // 100}xx")
        self.metrics.inc("service.request_ns", time.perf_counter_ns() - started)
        return response

    async def _dispatch(self, request: Request, segments: "List[str]") -> Response:
        route = tuple(segments[:1])
        if route == ():
            return self._index(request)
        name = segments[0]
        if name == "healthz" and len(segments) == 1:
            self._expect(request, "GET")
            return Response.json({"ok": True})
        if name == "metrics" and len(segments) == 1:
            self._expect(request, "GET")
            return self._metrics(request)
        if name == "jobs" and len(segments) == 2:
            self._expect(request, "GET")
            return Response.json(self.jobs.get(segments[1]).as_dict())
        if name == "compile" and len(segments) == 1:
            self._expect(request, "POST")
            return await self._compile(request)
        if name == "analyze" and len(segments) == 1:
            self._expect(request, "POST")
            return await self._analyze(request)
        if name == "parse" and len(segments) == 1:
            self._expect(request, "POST")
            return await self._parse(request)
        if name == "fuzz" and len(segments) == 1:
            self._expect(request, "POST")
            return await self._fuzz(request)
        raise HttpError(404, "not_found", f"no endpoint {request.path!r}")

    @staticmethod
    def _expect(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(
                405, "method_not_allowed",
                f"{request.path} accepts {method}, not {request.method}",
            )

    @staticmethod
    def _payload(request: Request) -> dict:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "bad_payload", "request body must be a JSON object")
        return payload

    def _index(self, request: Request) -> Response:
        self._expect(request, "GET")
        return Response.json(
            {
                "service": "repro-grammar-analysis",
                "endpoints": [
                    "POST /compile",
                    "POST /analyze",
                    "POST /parse",
                    "POST /fuzz",
                    "GET /jobs/<id>",
                    "GET /metrics",
                    "GET /healthz",
                ],
            }
        )

    # -- endpoint handlers ---------------------------------------------

    async def _compile(self, request: Request) -> Response:
        payload = self._payload(request)
        if payload.get("batch") is not None:
            job = self.jobs.submit("batch", payload)
            return Response.json(job.as_dict(), status=202)
        if payload.get("async"):
            job = self.jobs.submit("compile", payload)
            return Response.json(job.as_dict(), status=202)
        if self.pool is not None:
            return Response.json(
                await self._run_pool("compile", payload, request.headers)
            )
        budget = budget_from_headers(request.headers)
        method = _method_of(payload)
        result = await self._run(
            lambda: compile_result(
                _grammar_from_spec(payload), method, self.cache, budget
            )
        )
        return Response.json(result)

    async def _analyze(self, request: Request) -> Response:
        payload = self._payload(request)
        if payload.get("session") is not None:
            # Sessions are mutable in-process state (affinity + locks);
            # they never cross into the pool.
            result = await self._run(lambda: self._session_update(payload))
            return Response.json(result)
        if self.pool is not None:
            return Response.json(
                await self._run_pool("analyze", payload, request.headers)
            )
        budget = budget_from_headers(request.headers)
        result = await self._run(
            lambda: analyze_result(_grammar_from_spec(payload), budget)
        )
        return Response.json(result)

    async def _parse(self, request: Request) -> Response:
        payload = self._payload(request)
        if self.pool is not None:
            return Response.json(
                await self._run_pool("parse", payload, request.headers)
            )
        budget = budget_from_headers(request.headers)
        method = _method_of(payload)
        tokens = _tokens_of(payload)
        tree = bool(payload.get("tree"))
        engine = _engine_of(payload)
        result = await self._run(
            lambda: parse_result(
                _grammar_from_spec(payload), tokens, method, tree, self.cache,
                budget, engine,
            )
        )
        return Response.json(result)

    async def _fuzz(self, request: Request) -> Response:
        payload = self._payload(request)
        if payload.get("wait"):
            if self.pool is not None:
                return Response.json(
                    await self._run_pool("fuzz", payload, request.headers)
                )
            result = await self._run(lambda: fuzz_result(payload))
            return Response.json(result)
        job = self.jobs.submit("fuzz", payload)
        return Response.json(job.as_dict(), status=202)

    def _metrics(self, request: Request) -> Response:
        sections: "Dict[str, Dict[str, float]]" = {"jobs": self.jobs.stats()}
        if self.cache is not None:
            sections["cache"] = self.cache.stats()
        sections["sessions"] = self._session_stats()
        if self.pool is not None:
            sections["pool"] = self.pool.stats()
        wants_json = request.query.get("format") == "json" or (
            "application/json" in request.headers.get("accept", "")
        )
        if wants_json:
            return Response.json(self.metrics.render_json(sections))
        return Response.text(self.metrics.render_text(sections))

    # -- sessions (per-grammar affinity) -------------------------------

    def _session_update(self, payload: dict) -> dict:
        session_id = str(payload["session"])
        lock = self._session_lock(session_id)
        with lock:
            session = self.sessions.get(session_id)
            if "grammar" in payload or "corpus" in payload:
                grammar = _grammar_from_spec(payload)
                session = AnalysisSession(
                    grammar.augmented(), table_cache=self.cache
                )
                self.sessions[session_id] = session
                reports: "List[str]" = []
            elif session is None:
                raise HttpError(
                    404, "unknown_session",
                    f"no session {session_id!r}; POST a grammar to open one",
                )
            else:
                reports = []
            for edit in payload.get("edits", []):
                edited = self._apply_edit(session.grammar, edit)
                reports.append(session.update(edited).describe())
            table = session.table
            summary = table.conflict_summary()
            return {
                "session": session_id,
                "grammar": session.grammar.name,
                "states": table.n_states,
                "deterministic": table.is_deterministic,
                "conflicts": {
                    "shift_reduce": summary["shift_reduce"],
                    "reduce_reduce": summary["reduce_reduce"],
                    "resolved": summary["resolved"],
                },
                "updates": reports,
                "strategies": dict(session.strategy_counts),
            }

    @staticmethod
    def _apply_edit(grammar: Grammar, edit) -> Grammar:
        if not isinstance(edit, dict) or "op" not in edit:
            raise HttpError(400, "bad_edit", f"cannot interpret edit {edit!r}")
        rhs = edit.get("rhs", "")
        rhs_tokens = rhs.split() if isinstance(rhs, str) else [str(s) for s in rhs]
        try:
            op = edit["op"]
            if op == "set":
                return replace_rhs(grammar, int(edit["index"]), rhs_tokens)
            if op == "add":
                return add_production(grammar, str(edit["lhs"]), rhs_tokens)
            if op == "remove":
                return remove_production(grammar, int(edit["index"]))
        except (IndexError, KeyError, TypeError, ValueError) as error:
            raise HttpError(422, "bad_edit", f"{edit.get('op')}: {error}")
        raise HttpError(
            400, "bad_edit", f"unknown op {edit['op']!r} (known: set, add, remove)"
        )

    def _session_lock(self, session_id: str) -> threading.Lock:
        with self._sessions_guard:
            lock = self._session_locks.get(session_id)
            if lock is None:
                lock = self._session_locks[session_id] = threading.Lock()
            return lock

    def _session_stats(self) -> "Dict[str, float]":
        with self._sessions_guard:
            sessions = list(self.sessions.values())
        stats = {"active": len(sessions), "updates": 0}
        for strategy in ("noop", "memo", "splice", "rebuild"):
            stats[strategy] = 0
        for session in sessions:
            stats["updates"] += session.updates
            for strategy, count in session.strategy_counts.items():
                stats[strategy] += count
        return stats

    # -- execution plumbing --------------------------------------------

    async def _run_pool(self, kind: str, payload: dict, headers) -> dict:
        """Dispatch one stateless request to the worker pool and await
        its result; typed worker exceptions re-raise here and take the
        same `handle()` paths (and produce the same bytes) as in-process
        execution."""
        self.metrics.inc("service.pool.dispatched")
        future = self.pool.submit(kind, payload, dict(headers or {}))
        return await asyncio.wrap_future(future)

    def _absorb_worker(self, worker_id: int, counters) -> None:
        """Dispatcher-thread callback: fold one pooled request's
        instrument counters into the shared registry, tagged per worker
        so `/metrics` provably counts every pool member."""
        self.metrics.absorb(counters)
        self.metrics.inc(f"service.pool.worker.{worker_id}.requests")

    async def _run(self, fn):
        """Run *fn* on the request executor, folding its instrument
        counters into the metrics registry even when it raises."""
        loop = asyncio.get_running_loop()

        def call():
            prof = instrument.profile()
            collector = prof.__enter__()
            try:
                return fn()
            finally:
                prof.__exit__(None, None, None)
                self.metrics.absorb(collector.counters)

        return await loop.run_in_executor(self._request_executor, call)

    def _run_job(self, job: Job) -> dict:
        """The job runner (executes on the job executor's threads)."""
        prof = instrument.profile()
        collector = prof.__enter__()
        try:
            if job.kind == "fuzz":
                return fuzz_result(job.payload)
            if job.kind == "batch":
                return batch_result(
                    job.payload, cache_dir=self.cache_dir, backend=self.cache_backend
                )
            if job.kind == "compile":
                if self.pool is not None and self.pool.alive:
                    # Async compile jobs ride the same pool as sync
                    # requests; .result() blocks a job thread, not the
                    # event loop.
                    return self.pool.submit("compile", job.payload).result()
                budget = None
                method = _method_of(job.payload)
                return compile_result(
                    _grammar_from_spec(job.payload), method, self.cache, budget
                )
            raise HttpError(400, "unknown_job_kind", f"no job kind {job.kind!r}")
        finally:
            prof.__exit__(None, None, None)
            self.metrics.absorb(collector.counters)

"""Submit/poll jobs behind a bounded queue — batch work, served.

``repro batch`` and ``repro fuzz run`` are long-running by design; a
request/response cycle cannot hold a connection open for them.  The
service therefore graduates them into **jobs**: ``POST`` returns ``202``
with a job id immediately, ``GET /jobs/<id>`` polls until the result is
attached.

The moving parts:

- **A bounded queue.**  ``capacity`` caps how much work may be queued;
  a full queue rejects the submit with a typed ``429 queue_full`` —
  backpressure, not an unbounded memory graveyard.
- **Async workers over a thread pool.**  N asyncio worker tasks pull
  jobs and run the (synchronous, CPU-heavy) runner in a
  ``ThreadPoolExecutor``, keeping the event loop free to answer
  metrics/poll requests while pipelines grind.
- **Process fan-out inside the job.**  A batch or fuzz job's payload may
  name ``workers``; the runner then fans across forked processes via
  :func:`repro.core.parallel.parallel_map` — the same deterministic
  executor the CLI verbs use, now behind the queue.
- **Bounded retention.**  Finished jobs are kept for polling but evicted
  once they age past ``ttl`` seconds or overflow ``max_finished``
  (oldest first), so a long-lived service does not leak every job it
  ever ran.  Evictions are counted (``jobs.evicted`` in ``/metrics``);
  polling an evicted job is an ordinary 404.

Job failures never kill a worker: the exception is recorded on the job
(``status: "failed"``; a blown per-job budget records the typed
``budget_exceeded`` payload) and the worker moves on.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Optional

from ..core.budget import BudgetExceeded
from .pool import WorkerCrash
from .protocol import HttpError

__all__ = ["Job", "JobQueue"]


class Job:
    """One unit of submitted work and its lifecycle."""

    __slots__ = (
        "job_id", "kind", "payload", "status", "result", "error", "finished_at"
    )

    def __init__(self, job_id: str, kind: str, payload: dict):
        self.job_id = job_id
        self.kind = kind
        self.payload = payload
        self.status = "queued"
        self.result: Optional[dict] = None
        self.error: Optional[dict] = None
        #: Monotonic completion time; None while queued/running.  The
        #: TTL eviction clock in :meth:`JobQueue._trim` keys off this.
        self.finished_at: Optional[float] = None

    def as_dict(self) -> dict:
        body = {"job": self.job_id, "kind": self.kind, "status": self.status}
        if self.result is not None:
            body["result"] = self.result
        if self.error is not None:
            body["error"] = self.error
        return body


class JobQueue:
    """A bounded submit/poll queue worked by async workers.

    Args:
        runner: ``runner(job) -> dict`` — synchronous, executed in the
            thread pool; its return value becomes ``job.result``.
        workers: Concurrent jobs (asyncio workers == executor threads).
        capacity: Queued-job bound; submits beyond it get 429.
        max_finished: Finished jobs retained for polling.
        ttl: Seconds a finished job stays pollable (0 disables age
            eviction; the ``max_finished`` bound always applies).
        clock: Monotonic time source (injectable for deterministic
            eviction tests).
    """

    def __init__(
        self,
        runner: "Callable[[Job], dict]",
        workers: int = 2,
        capacity: int = 16,
        max_finished: int = 256,
        ttl: float = 3600.0,
        clock: "Callable[[], float]" = None,
    ):
        self._runner = runner
        self.workers = max(1, workers)
        self.capacity = max(1, capacity)
        self.max_finished = max_finished
        self.ttl = ttl
        self._clock = clock if clock is not None else time.monotonic
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._queue: "Optional[asyncio.Queue]" = None
        self._tasks: list = []
        self._executor: "Optional[ThreadPoolExecutor]" = None
        self._counter = 0
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.running = 0
        self.evicted = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._queue = asyncio.Queue(maxsize=self.capacity)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-job"
        )
        self._tasks = [
            asyncio.ensure_future(self._work()) for _ in range(self.workers)
        ]

    async def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    async def join(self) -> None:
        """Wait for every queued job to finish (tests and benches)."""
        if self._queue is not None:
            await self._queue.join()

    # -- submit / poll -------------------------------------------------

    def submit(self, kind: str, payload: dict) -> Job:
        """Enqueue a job or raise a typed 429 when the queue is full."""
        if self._queue is None:
            raise HttpError(503, "not_started", "job queue is not running")
        self._counter += 1
        job = Job(f"job-{self._counter:06d}", kind, payload)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.rejected += 1
            raise HttpError(
                429, "queue_full",
                f"job queue is at capacity ({self.capacity}); retry later",
            )
        self.submitted += 1
        self._jobs[job.job_id] = job
        self._trim()
        return job

    def get(self, job_id: str) -> Job:
        # Age-based eviction happens on the poll path too, so a job past
        # its TTL 404s even on an otherwise idle service.
        self._trim()
        job = self._jobs.get(job_id)
        if job is None:
            raise HttpError(404, "unknown_job", f"no job {job_id!r}")
        return job

    def stats(self) -> "Dict[str, int]":
        self._trim()
        return {
            "capacity": self.capacity,
            "workers": self.workers,
            "submitted": self.submitted,
            "queued": self._queue.qsize() if self._queue is not None else 0,
            "running": self.running,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "evicted": self.evicted,
        }

    # -- internals -----------------------------------------------------

    async def _work(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_event_loop()
        while True:
            job = await self._queue.get()
            job.status = "running"
            self.running += 1
            try:
                job.result = await loop.run_in_executor(
                    self._executor, self._runner, job
                )
                job.status = "done"
                self.completed += 1
            except asyncio.CancelledError:
                job.status = "failed"
                job.error = {"error": "cancelled", "detail": "service shut down"}
                self.failed += 1
                job.finished_at = self._clock()
                self.running -= 1
                self._queue.task_done()
                raise
            except BudgetExceeded as error:
                job.status = "failed"
                job.error = error.as_dict()
                self.failed += 1
            except HttpError as error:
                job.status = "failed"
                job.error = error.body()
                self.failed += 1
            except WorkerCrash as error:
                # Already rendered worker-side as "TypeName: message" —
                # identical to what in-process execution reports below.
                job.status = "failed"
                job.error = {"error": "job_failed", "detail": error.rendered}
                self.failed += 1
            except Exception as error:  # one bad job must not kill a worker
                job.status = "failed"
                job.error = {
                    "error": "job_failed",
                    "detail": f"{type(error).__name__}: {error}",
                }
                self.failed += 1
            job.finished_at = self._clock()
            self.running -= 1
            self._queue.task_done()

    def _trim(self) -> None:
        """Evict finished jobs past their TTL, then any overflow beyond
        ``max_finished`` (oldest first).  Queued/running jobs are never
        evicted."""
        if self.ttl > 0:
            horizon = self._clock() - self.ttl
            expired = [
                job_id
                for job_id, job in self._jobs.items()
                if job.finished_at is not None and job.finished_at <= horizon
            ]
            for job_id in expired:
                del self._jobs[job_id]
                self.evicted += 1
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.status in ("done", "failed")
        ]
        excess = len(finished) - self.max_finished
        # Note the guard: a negative excess would slice from the *end*,
        # evicting recent jobs long before the cap is reached.
        if excess > 0:
            for job_id in finished[:excess]:
                del self._jobs[job_id]
                self.evicted += 1

"""LL(1) analysis: predictive parse tables, conflicts, and a driver.

An orthogonal axis to the LR hierarchy (LL(1) is incomparable with the
LR classes), included because any practical grammar workbench answers
"is this grammar LL(1), and if not, why?" — and because the PREDICT-set
machinery is a two-line corollary of the FIRST/FOLLOW substrate this
library already ships.
"""

from .analysis import Ll1Analysis, LlConflict, predict_set
from .parser import LlParser

__all__ = ["Ll1Analysis", "LlConflict", "LlParser", "predict_set"]

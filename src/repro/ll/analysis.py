"""LL(1) PREDICT sets, parse table, and conflict detection.

``PREDICT(A -> α)`` is the set of terminals on which a predictive parser
should choose that production:

    PREDICT(A -> α) = FIRST(α)            when α is not nullable
                    = FIRST(α) ∪ FOLLOW(A) when α =>* ε

A grammar is LL(1) iff for every nonterminal the PREDICT sets of its
alternatives are pairwise disjoint.  Overlaps classify as:

- **FIRST/FIRST** — two alternatives can start with the same terminal;
- **FIRST/FOLLOW** — a nullable alternative's FOLLOW intersects another
  alternative's FIRST (the classic hidden conflict).

The analysis works on the augmented grammar so FOLLOW carries the ``$end``
marker, mirroring the LR side's conventions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Optional

from ..analysis.first import FirstSets
from ..analysis.follow import FollowSets
from ..grammar.grammar import Grammar
from ..grammar.production import Production
from ..grammar.symbols import Symbol


def predict_set(
    production: Production,
    first_sets: FirstSets,
    follow_sets: FollowSets,
) -> FrozenSet[Symbol]:
    """PREDICT of one production (see module docstring)."""
    first, all_nullable = first_sets.of_sequence(production.rhs)
    if not all_nullable:
        return first
    return frozenset(set(first) | set(follow_sets[production.lhs]))


class LlConflict(NamedTuple):
    """An LL(1) conflict between two alternatives of one nonterminal."""

    nonterminal: Symbol
    kind: str  # "FIRST/FIRST" or "FIRST/FOLLOW"
    left: Production
    right: Production
    terminals: FrozenSet[Symbol]

    def describe(self) -> str:
        names = ", ".join(sorted(t.name for t in self.terminals))
        return (
            f"{self.nonterminal.name}: {self.kind} conflict between "
            f"[{self.left}] and [{self.right}] on {{{names}}}"
        )


class Ll1Analysis:
    """The LL(1) view of a grammar: PREDICT sets, table, conflicts."""

    def __init__(self, grammar: Grammar):
        if not grammar.is_augmented:
            grammar = grammar.augmented()
        self.grammar = grammar
        self.first_sets = FirstSets(grammar)
        self.follow_sets = FollowSets(grammar, self.first_sets)

        #: PREDICT per production index (production 0 excluded: it is the
        #: augmentation artifact, never predicted by user input).
        self.predict: Dict[int, FrozenSet[Symbol]] = {}
        for production in grammar.productions[1:]:
            self.predict[production.index] = predict_set(
                production, self.first_sets, self.follow_sets
            )

        self.conflicts: List[LlConflict] = []
        #: table[nonterminal][terminal] -> production index (first writer
        #: wins on conflicts, which are recorded).
        self.table: Dict[Symbol, Dict[Symbol, int]] = {}
        self._build()

    def _build(self) -> None:
        nullable = self.first_sets.nullable
        for nonterminal in self.grammar.nonterminals:
            if nonterminal is self.grammar.start:
                continue
            alternatives = self.grammar.productions_for(nonterminal)
            row: Dict[Symbol, int] = {}
            for production in alternatives:
                for terminal in self.predict[production.index]:
                    if terminal in row:
                        self._record_conflict(
                            nonterminal,
                            self.grammar.productions[row[terminal]],
                            production,
                            terminal,
                            nullable,
                        )
                    else:
                        row[terminal] = production.index
            self.table[nonterminal] = row

    def _record_conflict(
        self,
        nonterminal: Symbol,
        left: Production,
        right: Production,
        terminal: Symbol,
        nullable,
    ) -> None:
        # Classify: if either alternative is nullable and the overlap came
        # through its FOLLOW, it is FIRST/FOLLOW; otherwise FIRST/FIRST.
        def first_only(production: Production) -> FrozenSet[Symbol]:
            first, _ = self.first_sets.of_sequence(production.rhs)
            return first

        in_left_first = terminal in first_only(left)
        in_right_first = terminal in first_only(right)
        kind = "FIRST/FIRST" if (in_left_first and in_right_first) else "FIRST/FOLLOW"
        # Merge with an existing record for the same pair if present.
        for i, existing in enumerate(self.conflicts):
            if (
                existing.nonterminal is nonterminal
                and existing.left is left
                and existing.right is right
                and existing.kind == kind
            ):
                self.conflicts[i] = existing._replace(
                    terminals=existing.terminals | {terminal}
                )
                return
        self.conflicts.append(
            LlConflict(nonterminal, kind, left, right, frozenset((terminal,)))
        )

    @property
    def is_ll1(self) -> bool:
        return not self.conflicts

    def production_for(
        self, nonterminal: Symbol, lookahead: Symbol
    ) -> Optional[Production]:
        """The production the predictive parser picks, or None (error)."""
        index = self.table.get(nonterminal, {}).get(lookahead)
        return None if index is None else self.grammar.productions[index]

    def format_table(self) -> str:
        """Render the LL(1) table with production indices as cells."""
        terminals = [t for t in self.grammar.terminals]
        header = ["nonterminal"] + [t.name for t in terminals]
        rows: List[List[str]] = [header]
        for nonterminal, row in self.table.items():
            cells = [nonterminal.name]
            for terminal in terminals:
                index = row.get(terminal)
                cells.append("" if index is None else str(index))
            rows.append(cells)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        return "\n".join(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
            for row in rows
        )

"""A table-driven LL(1) predictive parser.

The stack-machine formulation: the stack holds grammar symbols (plus the
end marker at the bottom); a terminal on top must match the lookahead, a
nonterminal is replaced by the predicted production's rhs.  Builds the
same :class:`~repro.parser.tree.Node` trees as the LR engine, so the two
drivers can be cross-checked tree-for-tree on grammars that are both
LL(1) and LALR(1).
"""

from __future__ import annotations

from typing import Iterable, List

from ..grammar.symbols import Symbol
from ..parser.engine import Token, TokenLike
from ..parser.errors import ParseError
from ..parser.tree import Node
from .analysis import Ll1Analysis


class LlParser:
    """Predictive parser for an LL(1)-analysed grammar."""

    def __init__(self, analysis: Ll1Analysis, allow_conflicts: bool = False):
        if analysis.conflicts and not allow_conflicts:
            raise ValueError(
                f"grammar is not LL(1): {len(analysis.conflicts)} conflict(s); "
                f"pass allow_conflicts=True to parse with first-writer-wins cells"
            )
        self.analysis = analysis
        self.grammar = analysis.grammar
        self._eof = self.grammar.eof

    def _normalise(self, token: TokenLike, position: int) -> Token:
        if isinstance(token, Token):
            return token
        if isinstance(token, Symbol):
            return Token(token, token.name)
        if isinstance(token, str):
            symbol = self.grammar.symbols.get(token)
            if symbol is None or symbol.is_nonterminal:
                raise ParseError(
                    f"unknown terminal {token!r} at position {position}",
                    position, None, state=-1, expected=[],
                )
            return Token(symbol, token)
        raise TypeError(f"cannot interpret token {token!r}")

    def parse(self, tokens: Iterable[TokenLike]) -> Node:
        """Parse and return the tree rooted at the user's start symbol."""
        stream = [self._normalise(t, i) for i, t in enumerate(tokens)]
        stream.append(Token(self._eof, None))
        position = 0

        root = Node(self.grammar.original_start)
        # Stack of (symbol, node-to-fill); nonterminal nodes get children
        # appended in place as predictions expand.
        stack: List = [(self._eof, None), (root.symbol, root)]

        while stack:
            symbol, node = stack.pop()
            token = stream[position]
            if symbol.is_terminal:
                if token.symbol is not symbol:
                    raise self._error(position, token, expected=[symbol])
                if node is not None:
                    node.value = token.value
                position += 1
                continue
            production = self.analysis.production_for(symbol, token.symbol)
            if production is None:
                expected = sorted(
                    self.analysis.table.get(symbol, {}), key=lambda s: s.name
                )
                raise self._error(position, token, expected)
            node.production = production
            children = [Node(s) for s in production.rhs]
            node.children = children
            for child in reversed(children):
                stack.append((child.symbol, child))
        if position != len(stream):
            raise self._error(position, stream[position], expected=[])
        return root

    def accepts(self, tokens: Iterable[TokenLike]) -> bool:
        try:
            self.parse(tokens)
        except ParseError:
            return False
        return True

    def _error(self, position: int, token: Token, expected) -> ParseError:
        names = ", ".join(t.name for t in expected) or "<nothing>"
        what = token.symbol.name if token.symbol is not self._eof else "end of input"
        return ParseError(
            f"LL(1) syntax error at position {position}: unexpected {what}; "
            f"expected one of: {names}",
            position,
            token.symbol,
            state=-1,
            expected=list(expected),
        )

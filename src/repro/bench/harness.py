"""Measurement utilities for the experiment suite.

The paper reports per-grammar rows (timings on 1979 hardware plus
derived counts).  Wall-clock numbers do not transfer across 45 years of
hardware, so every experiment here reports **both**:

- wall time via ``time.perf_counter`` (median of repeats), and
- machine-independent operation counts (set unions, relation edges,
  automaton sizes) exposed by the analyses themselves.

The *shape* — which method is cheapest, how ratios move with grammar
size — is the reproducible claim; EXPERIMENTS.md records it.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Dict, List, Sequence, Tuple

from ..automaton.lr0 import LR0Automaton
from ..baselines.merge_lr1 import MergedLr1Analysis
from ..baselines.propagation import PropagationAnalysis
from ..baselines.slr import SlrAnalysis
from ..core import instrument
from ..core.budget import Budget, BudgetExceeded
from ..core.lalr import LalrAnalysis
from ..grammar.fingerprint import grammar_fingerprint
from ..grammar.grammar import Grammar


def time_callable(fn: Callable[[], object], repeats: int = 5) -> float:
    """Median wall-clock seconds of *fn* over *repeats* runs."""
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


#: The lookahead methods compared throughout: name -> analysis factory.
#: Each factory takes (grammar, shared LR(0) automaton, budget) so the
#: automaton cost — common to all LR(0)-based methods — is excluded,
#: exactly as the paper charges only the lookahead phase to each method.
#: Only the DP analysis is budget-aware; the baselines ignore it (their
#: cost is bounded by the automaton the budget already gated).
METHODS: "Dict[str, Callable[..., object]]" = {
    "deremer_pennello": lambda g, a, b=None: LalrAnalysis(g, a, budget=b),
    "propagation": lambda g, a, b=None: PropagationAnalysis(g, a),
    "lr1_merge": lambda g, a, b=None: MergedLr1Analysis(g, a),
    "slr_follow": lambda g, a, b=None: SlrAnalysis(g, a).lookahead_table(),
}


def measure_methods(
    grammar: Grammar,
    methods: "Sequence[str] | None" = None,
    repeats: int = 5,
    budget_seconds: float = 0.0,
) -> Dict[str, float]:
    """Median lookahead-computation time per method for one grammar.

    A nonzero *budget_seconds* caps the whole measurement (automaton
    build plus every repeat) with one :class:`Budget` deadline; blowing
    it raises :class:`BudgetExceeded` with the phase reached.
    """
    grammar = grammar.augmented()
    budget = Budget(timeout=budget_seconds) if budget_seconds else None
    automaton = LR0Automaton(grammar, budget=budget)
    chosen = methods or list(METHODS)
    return {
        name: time_callable(
            lambda n=name: METHODS[n](grammar, automaton, budget), repeats
        )
        for name in chosen
    }


def grammar_row(grammar: Grammar) -> Dict[str, int]:
    """The Table-1 row for one grammar: sizes of everything."""
    grammar = grammar.augmented()
    automaton = LR0Automaton(grammar)
    analysis = LalrAnalysis(grammar, automaton)
    row: Dict[str, int] = {}
    row.update(grammar.stats())
    row.update(automaton.stats())
    row.update(analysis.relations.stats())
    row["reads_sccs"] = len(analysis.reads_sccs)
    row["includes_sccs"] = len(analysis.includes_sccs)
    return row


def cost_row(grammar: Grammar) -> Dict[str, int]:
    """The Table-2 operation-count row for one grammar."""
    grammar = grammar.augmented()
    automaton = LR0Automaton(grammar)
    dp = LalrAnalysis(grammar, automaton)
    prop = PropagationAnalysis(grammar, automaton)
    merge = MergedLr1Analysis(grammar, automaton)
    lr1_states, lalr_states = merge.merged_state_count()
    return {
        "dp_unions": dp.stats.unions,
        "dp_edges": dp.stats.edges,
        "prop_links": prop.cost_summary()["propagation_links"],
        "prop_sweeps": prop.sweeps,
        "prop_unions": prop.unions,
        "lr1_states": lr1_states,
        "lalr_states": lalr_states,
    }


def speedup(times: Dict[str, float], baseline: str, method: str) -> float:
    """times[baseline] / times[method] — >1 means *method* is faster."""
    return times[baseline] / times[method] if times[method] else float("inf")


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


def sweep(
    sizes: Sequence[int],
    family: Callable[[int], Grammar],
    measure: Callable[[Grammar], Dict[str, float]],
) -> "List[Tuple[int, Dict[str, float]]]":
    """Run *measure* over *family* at each size (the Figure workloads)."""
    return [(n, measure(family(n))) for n in sizes]


def profile_pipeline(
    grammar: Grammar,
    method: str = "lalr1",
    tokens: "Sequence | None" = None,
    cache: "object | None" = None,
) -> "instrument.ProfileCollector":
    """Profile the full pipeline for *grammar* and return the collector.

    Runs grammar -> LR(0) -> relations -> Digraph x2 -> LA -> table fill
    (via *cache* when given a :class:`repro.tables.cache.TableCache`),
    plus one engine run over *tokens* when provided.  The result's
    ``as_dict()`` is the machine-readable profile the benchmarks diff
    across commits; its ``format()`` is the CLI ``--profile`` breakdown.
    """
    from ..parser.engine import Parser
    from ..tables import build

    builders = {
        "lr0": build.build_lr0_table,
        "slr1": build.build_slr_table,
        "lalr1": build.build_lalr_table,
        "clr1": build.build_clr_table,
    }
    builder = builders[method]
    grammar = grammar.augmented()
    with instrument.profile() as collector:
        with instrument.span("pipeline"):
            if cache is not None:
                table = cache.load_or_build(grammar, method, builder)
            else:
                table = builder(grammar)
            if tokens is not None and table.is_deterministic:
                Parser(table).accepts(tokens)
    return collector


#: Format tag for baseline snapshot files (``BENCH_core_ids.json``).
BASELINE_FORMAT = 1


def bench_snapshot(
    named_grammars: "Sequence[Tuple[str, Grammar]]",
    repeats: int = 5,
    budget_seconds: float = 0.0,
) -> Dict:
    """A machine-readable benchmark snapshot for baseline comparison.

    Per grammar: the median DeRemer–Pennello lookahead wall time (the
    Table-2 workload), the per-phase instrument span totals of one full
    pipeline run, and the machine-independent cost counters.  The
    counters are what cross-commit comparisons *assert* on — wall times
    vary with hardware and are reported for context only.
    """
    grammars: Dict[str, Dict] = {}
    for name, grammar in named_grammars:
        grammars[name] = _snapshot_entry(grammar, repeats, budget_seconds)
    return {"format": BASELINE_FORMAT, "grammars": grammars}


def _snapshot_entry(
    grammar: Grammar, repeats: int, budget_seconds: float = 0.0
) -> Dict:
    """One grammar's snapshot row (see :func:`bench_snapshot`).

    With a nonzero *budget_seconds*, a grammar that blows the per-grammar
    deadline yields a ``{"budget_exceeded": ...}`` marker row instead of
    hanging the whole sweep; :func:`compare_baseline` reports such rows
    as drift rather than crashing on the missing timings.
    """
    grammar = grammar.augmented()
    try:
        budget = Budget(timeout=budget_seconds) if budget_seconds else None
        automaton = LR0Automaton(grammar, budget=budget)
        seconds = time_callable(
            lambda: LalrAnalysis(grammar, automaton, budget=budget), repeats
        )
        analysis = LalrAnalysis(grammar, automaton, budget=budget)
        collector = profile_pipeline(grammar)
    except BudgetExceeded as error:
        return {"budget_exceeded": error.describe()}
    return {
        "fingerprint": grammar_fingerprint(grammar),
        "lookahead_seconds": seconds,
        "phases": collector.phase_totals(),
        "counters": analysis.cost_summary(),
    }


def _load_spec(spec: str) -> "Tuple[str, Grammar]":
    """(display name, grammar) for a CLI grammar spec."""
    import os

    from ..grammar.reader import load_grammar_file
    from ..grammars import corpus

    if spec.startswith("corpus:"):
        name = spec.split(":", 1)[1]
        return name, corpus.load(name)
    return os.path.basename(spec), load_grammar_file(spec)


def _snapshot_worker(task: "Tuple[str, int, float]") -> "Tuple[str, Dict]":
    """Parallel-map worker: snapshot one grammar *spec*.

    Takes the spec string, not a Grammar — grammars are re-loaded inside
    the worker so no interned symbols cross the process boundary.
    """
    spec, repeats, budget_seconds = task
    name, grammar = _load_spec(spec)
    return name, _snapshot_entry(grammar, repeats, budget_seconds)


def _measure_worker(task: "Tuple[str, int, float]") -> "Tuple[str, object]":
    """Parallel-map worker: the method-timing row for one grammar spec.

    Returns the timing dict, or the budget diagnostic string when the
    grammar blew the per-grammar ``--budget`` deadline.
    """
    spec, repeats, budget_seconds = task
    name, grammar = _load_spec(spec)
    try:
        return name, measure_methods(
            grammar, repeats=repeats, budget_seconds=budget_seconds
        )
    except BudgetExceeded as error:
        return name, error.describe()


def compare_baseline(current: Dict, baseline: Dict) -> "Tuple[List[List], List[str]]":
    """Diff a snapshot against a stored baseline.

    Returns ``(rows, drift)``: one display row per grammar present in
    both snapshots — ``[name, phase, baseline_ms, current_ms, speedup]``
    with an overall ``lookahead`` row followed by one row per shared
    instrument-span phase — and a list of human-readable counter-drift
    messages.  Drift in the operation counters means the *algorithm*
    changed, not the hardware, so callers (the CI smoke check) should
    fail on any drift.
    """
    rows: List[List] = []
    drift: List[str] = []
    base_grammars = baseline.get("grammars", {})

    def ratio(base_seconds: float, seconds: float) -> float:
        return base_seconds / seconds if seconds else float("inf")

    for name, entry in current.get("grammars", {}).items():
        base = base_grammars.get(name)
        if base is None:
            drift.append(f"{name}: not present in baseline")
            continue
        # Marker rows from a budget-governed sweep carry no timings or
        # counters; surface them as drift instead of KeyError-ing.
        if "lookahead_seconds" not in entry:
            drift.append(f"{name}: {entry.get('budget_exceeded', 'no timings')}")
            continue
        if "lookahead_seconds" not in base:
            drift.append(f"{name}: baseline has no timings "
                         f"({base.get('budget_exceeded', 'marker row')})")
            continue
        # Same-name-different-grammar is the silent killer of counter
        # diffs; the content fingerprint catches it.  Checked only when
        # both sides carry one so pre-fingerprint baselines stay valid.
        if (
            "fingerprint" in entry
            and "fingerprint" in base
            and entry["fingerprint"] != base["fingerprint"]
        ):
            drift.append(f"{name}: grammar content fingerprint changed "
                         f"({base['fingerprint'][:12]}... -> "
                         f"{entry['fingerprint'][:12]}...)")
        base_seconds = base["lookahead_seconds"]
        entry_seconds = entry["lookahead_seconds"]
        rows.append([
            name,
            "lookahead",
            base_seconds * 1e3,
            entry_seconds * 1e3,
            ratio(base_seconds, entry_seconds),
        ])
        base_phases = base.get("phases", {})
        for phase, seconds in entry.get("phases", {}).items():
            if phase in base_phases:
                rows.append([
                    name,
                    phase,
                    base_phases[phase] * 1e3,
                    seconds * 1e3,
                    ratio(base_phases[phase], seconds),
                ])
        for key, base_value in sorted(base.get("counters", {}).items()):
            value = entry["counters"].get(key)
            if value != base_value:
                drift.append(f"{name}: counter {key} {base_value} -> {value}")
    return rows, drift


def main(argv: "Sequence[str] | None" = None) -> int:
    """``python -m repro.bench.harness`` — time/profile lookahead methods.

    With ``--profile``, prints the per-phase breakdown for each grammar
    and optionally writes the machine-readable profile JSON (one file per
    grammar) for cross-commit diffing.  ``--write-baseline`` captures a
    snapshot (timings + operation counters) and ``--baseline`` compares
    the current run against one, exiting nonzero on counter drift — the
    CI smoke check drives exactly this pair.
    """
    import argparse
    import json
    import os

    from ..core.parallel import parallel_map

    parser = argparse.ArgumentParser(prog="repro.bench.harness")
    parser.add_argument("grammars", nargs="+",
                        help="grammar files or corpus:<name> specs")
    parser.add_argument("--method", default="lalr1",
                        choices=["lr0", "slr1", "lalr1", "clr1"])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="bench grammars across N worker processes; "
                             "operation counters are unaffected, wall "
                             "times get noisier under CPU contention "
                             "(default 1)")
    parser.add_argument("--budget", type=float, default=0.0, metavar="SEC",
                        help="per-grammar analysis deadline; a grammar "
                             "that blows it reports 'budget exceeded' "
                             "instead of hanging the sweep (default: none)")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase pipeline breakdown")
    parser.add_argument("--profile-dir", default="",
                        help="also write one profile JSON per grammar here")
    parser.add_argument("--baseline", default="",
                        help="compare against a snapshot JSON "
                             "(exit 1 on operation-counter drift)")
    parser.add_argument("--write-baseline", default="",
                        help="write a snapshot JSON instead of reporting")
    args = parser.parse_args(argv)

    def snapshot_all() -> Dict:
        tasks = [(spec, args.repeats, args.budget) for spec in args.grammars]
        rows = parallel_map(_snapshot_worker, tasks, workers=args.workers)
        return {"format": BASELINE_FORMAT, "grammars": dict(rows)}

    if args.write_baseline:
        snapshot = snapshot_all()
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.write_baseline} ({len(snapshot['grammars'])} grammars)")
        return 0

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        snapshot = snapshot_all()
        rows, drift = compare_baseline(snapshot, baseline)
        header = (f"{'grammar':20s} {'phase':24s} "
                  f"{'base ms':>10s} {'now ms':>10s} {'speedup':>8s}")
        print(header)
        for name, phase, base_ms, now_ms, ratio in rows:
            print(f"{name:20s} {phase:24s} {base_ms:10.3f} {now_ms:10.3f} {ratio:7.2f}x")
        if drift:
            print("operation-counter drift (algorithm changed?):")
            for message in drift:
                print(f"  {message}")
            return 1
        print("operation counters match the baseline")
        return 0

    if args.profile:
        for spec in args.grammars:
            name, grammar = _load_spec(spec)
            print(f"== {name} ==")
            collector = profile_pipeline(grammar, method=args.method)
            print(collector.format())
            if args.profile_dir:
                os.makedirs(args.profile_dir, exist_ok=True)
                out = os.path.join(args.profile_dir, f"{name}.{args.method}.json")
                with open(out, "w", encoding="utf-8") as handle:
                    handle.write(collector.to_json())
                print(f"wrote {out}")
        return 0

    tasks = [(spec, args.repeats, args.budget) for spec in args.grammars]
    for name, times in parallel_map(_measure_worker, tasks, workers=args.workers):
        print(f"== {name} ==")
        if isinstance(times, str):
            print(f"  budget exceeded: {times}")
            continue
        for method, seconds in times.items():
            print(f"  {method:20s} {seconds * 1e3:10.3f} ms")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())

"""Measurement utilities for the experiment suite.

The paper reports per-grammar rows (timings on 1979 hardware plus
derived counts).  Wall-clock numbers do not transfer across 45 years of
hardware, so every experiment here reports **both**:

- wall time via ``time.perf_counter`` (median of repeats), and
- machine-independent operation counts (set unions, relation edges,
  automaton sizes) exposed by the analyses themselves.

The *shape* — which method is cheapest, how ratios move with grammar
size — is the reproducible claim; EXPERIMENTS.md records it.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Dict, List, Sequence, Tuple

from ..automaton.lr0 import LR0Automaton
from ..baselines.merge_lr1 import MergedLr1Analysis
from ..baselines.propagation import PropagationAnalysis
from ..baselines.slr import SlrAnalysis
from ..core import instrument
from ..core.lalr import LalrAnalysis
from ..grammar.grammar import Grammar


def time_callable(fn: Callable[[], object], repeats: int = 5) -> float:
    """Median wall-clock seconds of *fn* over *repeats* runs."""
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


#: The lookahead methods compared throughout: name -> analysis factory.
#: Each factory takes (grammar, shared LR(0) automaton) so the automaton
#: cost — common to all LR(0)-based methods — is excluded, exactly as the
#: paper charges only the lookahead phase to each method.
METHODS: "Dict[str, Callable[[Grammar, LR0Automaton], object]]" = {
    "deremer_pennello": lambda g, a: LalrAnalysis(g, a),
    "propagation": lambda g, a: PropagationAnalysis(g, a),
    "lr1_merge": lambda g, a: MergedLr1Analysis(g, a),
    "slr_follow": lambda g, a: SlrAnalysis(g, a).lookahead_table(),
}


def measure_methods(
    grammar: Grammar,
    methods: "Sequence[str] | None" = None,
    repeats: int = 5,
) -> Dict[str, float]:
    """Median lookahead-computation time per method for one grammar."""
    grammar = grammar.augmented()
    automaton = LR0Automaton(grammar)
    chosen = methods or list(METHODS)
    return {
        name: time_callable(lambda n=name: METHODS[n](grammar, automaton), repeats)
        for name in chosen
    }


def grammar_row(grammar: Grammar) -> Dict[str, int]:
    """The Table-1 row for one grammar: sizes of everything."""
    grammar = grammar.augmented()
    automaton = LR0Automaton(grammar)
    analysis = LalrAnalysis(grammar, automaton)
    row: Dict[str, int] = {}
    row.update(grammar.stats())
    row.update(automaton.stats())
    row.update(analysis.relations.stats())
    row["reads_sccs"] = len(analysis.reads_sccs)
    row["includes_sccs"] = len(analysis.includes_sccs)
    return row


def cost_row(grammar: Grammar) -> Dict[str, int]:
    """The Table-2 operation-count row for one grammar."""
    grammar = grammar.augmented()
    automaton = LR0Automaton(grammar)
    dp = LalrAnalysis(grammar, automaton)
    prop = PropagationAnalysis(grammar, automaton)
    merge = MergedLr1Analysis(grammar, automaton)
    lr1_states, lalr_states = merge.merged_state_count()
    return {
        "dp_unions": dp.stats.unions,
        "dp_edges": dp.stats.edges,
        "prop_links": prop.cost_summary()["propagation_links"],
        "prop_sweeps": prop.sweeps,
        "prop_unions": prop.unions,
        "lr1_states": lr1_states,
        "lalr_states": lalr_states,
    }


def speedup(times: Dict[str, float], baseline: str, method: str) -> float:
    """times[baseline] / times[method] — >1 means *method* is faster."""
    return times[baseline] / times[method] if times[method] else float("inf")


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


def sweep(
    sizes: Sequence[int],
    family: Callable[[int], Grammar],
    measure: Callable[[Grammar], Dict[str, float]],
) -> "List[Tuple[int, Dict[str, float]]]":
    """Run *measure* over *family* at each size (the Figure workloads)."""
    return [(n, measure(family(n))) for n in sizes]


def profile_pipeline(
    grammar: Grammar,
    method: str = "lalr1",
    tokens: "Sequence | None" = None,
    cache: "object | None" = None,
) -> "instrument.ProfileCollector":
    """Profile the full pipeline for *grammar* and return the collector.

    Runs grammar -> LR(0) -> relations -> Digraph x2 -> LA -> table fill
    (via *cache* when given a :class:`repro.tables.cache.TableCache`),
    plus one engine run over *tokens* when provided.  The result's
    ``as_dict()`` is the machine-readable profile the benchmarks diff
    across commits; its ``format()`` is the CLI ``--profile`` breakdown.
    """
    from ..parser.engine import Parser
    from ..tables import build

    builders = {
        "lr0": build.build_lr0_table,
        "slr1": build.build_slr_table,
        "lalr1": build.build_lalr_table,
        "clr1": build.build_clr_table,
    }
    builder = builders[method]
    grammar = grammar.augmented()
    with instrument.profile() as collector:
        with instrument.span("pipeline"):
            if cache is not None:
                table = cache.load_or_build(grammar, method, builder)
            else:
                table = builder(grammar)
            if tokens is not None and table.is_deterministic:
                Parser(table).accepts(tokens)
    return collector


def main(argv: "Sequence[str] | None" = None) -> int:
    """``python -m repro.bench.harness`` — time/profile lookahead methods.

    With ``--profile``, prints the per-phase breakdown for each grammar
    and optionally writes the machine-readable profile JSON (one file per
    grammar) for cross-commit diffing.
    """
    import argparse
    import json
    import os

    from ..grammar.reader import load_grammar_file
    from ..grammars import corpus

    parser = argparse.ArgumentParser(prog="repro.bench.harness")
    parser.add_argument("grammars", nargs="+",
                        help="grammar files or corpus:<name> specs")
    parser.add_argument("--method", default="lalr1",
                        choices=["lr0", "slr1", "lalr1", "clr1"])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase pipeline breakdown")
    parser.add_argument("--profile-dir", default="",
                        help="also write one profile JSON per grammar here")
    args = parser.parse_args(argv)

    for spec in args.grammars:
        if spec.startswith("corpus:"):
            name, grammar = spec.split(":", 1)[1], corpus.load(spec.split(":", 1)[1])
        else:
            name, grammar = os.path.basename(spec), load_grammar_file(spec)
        print(f"== {name} ==")
        if args.profile:
            collector = profile_pipeline(grammar, method=args.method)
            print(collector.format())
            if args.profile_dir:
                os.makedirs(args.profile_dir, exist_ok=True)
                out = os.path.join(args.profile_dir, f"{name}.{args.method}.json")
                with open(out, "w", encoding="utf-8") as handle:
                    handle.write(collector.to_json())
                print(f"wrote {out}")
        else:
            for method, seconds in measure_methods(grammar, repeats=args.repeats).items():
                print(f"  {method:20s} {seconds * 1e3:10.3f} ms")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())

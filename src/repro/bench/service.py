"""Service bench: request latency over a live server, drift-checked.

Boots a real :class:`~repro.service.ServiceThread` on an ephemeral port
(fresh on-disk table cache), then, per grammar: one ``/compile`` to warm
the artifact store, then N ``/parse`` requests whose tables come off the
hot LRU.  Reports p50/p95 request latency — **informational**, they
depend on the runner — and a set of machine-independent counters that
are pure functions of the grammar and the serving contract:

- ``states``, ``compile_bytes``, ``parse_bytes`` — the served answers'
  shape (bytes are exact: responses are canonical JSON);
- ``parse_requests``, ``parse_valid`` — the recipe itself;
- ``stores_delta`` (1: every table is cacheable, conflicted ones
  included since JSON format 4) and ``hot_hits_delta`` (one per
  cached-table parse) — the cache flow a served grammar must follow.

``--baseline`` fails on any counter drift, exactly like the other bench
harnesses::

    python -m repro.bench.service --write-baseline BENCH_service.json
    python -m repro.bench.service --baseline BENCH_service.json
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from typing import Dict, List, Sequence, Tuple

from ..analysis.derive import SentenceGenerator
from ..grammars import corpus

SERVICE_BASELINE_FORMAT = 1

#: Default grammars: a spread of table sizes plus a conflicted one
#: (dangling_else), served by the GLR engine off its cached
#: conflict-carrying artifact.
DEFAULT_GRAMMARS = ["expr", "json", "dangling_else", "mini_pascal_det", "toy_java"]


def _percentile(samples: "List[float]", fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _timed(client, method: str, path: str, payload) -> "Tuple[object, float]":
    started = time.perf_counter()
    response = client.request(method, path, payload)
    return response, time.perf_counter() - started


def grammar_tokens(name: str) -> "List[str]":
    """The deterministic parse input: the seed-0 generated sentence."""
    grammar = corpus.load(name)
    sentences = SentenceGenerator(grammar, seed=0).sentences(1, budget=30)
    if sentences:
        return [symbol.name for symbol in sentences[0]]
    return ["id"]


def service_snapshot(
    names: "Sequence[str]", parse_requests: int = 16
) -> Dict:
    """Boot a service, drive the compile-then-parse recipe, snapshot."""
    from ..service import Client, ServiceThread

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-service-")
    grammars: "Dict[str, Dict]" = {}
    try:
        with ServiceThread(cache_dir=cache_dir, hot_capacity=32) as thread:
            client = Client(thread.port)

            def cache_stats() -> Dict:
                return client.get("/metrics?format=json").json()["cache"]

            for name in names:
                before = cache_stats()
                compile_response, compile_seconds = _timed(
                    client, "POST", "/compile", {"corpus": name}
                )
                assert compile_response.status == 200, name
                compiled = compile_response.json()

                # The lr engine 422s on conflicted tables; serve those
                # with the GLR engine, like a real client would.
                engine = "lr" if compiled["deterministic"] else "glr"
                tokens = grammar_tokens(name)
                latencies: "List[float]" = []
                parse_bytes = 0
                parse_valid = None
                for _ in range(parse_requests):
                    response, seconds = _timed(
                        client, "POST", "/parse",
                        {"corpus": name, "input": tokens, "engine": engine},
                    )
                    assert response.status == 200, name
                    latencies.append(seconds)
                    parse_bytes = len(response.body)
                    parse_valid = response.json()["valid"]
                after = cache_stats()

                grammars[name] = {
                    "counters": {
                        "states": compiled["states"],
                        "compile_bytes": len(compile_response.body),
                        "parse_bytes": parse_bytes,
                        "parse_requests": parse_requests,
                        "parse_valid": int(bool(parse_valid)),
                        "stores_delta": after["stores"] - before["stores"],
                        "hot_hits_delta": after["hot_hits"] - before["hot_hits"],
                    },
                    "latency_ms": {
                        "compile_cold": compile_seconds * 1e3,
                        "parse_p50": _percentile(latencies, 0.50) * 1e3,
                        "parse_p95": _percentile(latencies, 0.95) * 1e3,
                    },
                }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {"format": SERVICE_BASELINE_FORMAT, "grammars": grammars}


def compare_service_baseline(
    current: Dict, baseline: Dict
) -> "Tuple[List[List], List[str]]":
    """``(rows, drift)``: informational latency rows, counter drift."""
    rows: "List[List]" = []
    drift: "List[str]" = []
    base_grammars = baseline.get("grammars", {})
    if current.get("format") != baseline.get("format"):
        drift.append(
            f"baseline format {baseline.get('format')!r} != "
            f"current {current.get('format')!r}"
        )
    for name, entry in current.get("grammars", {}).items():
        base = base_grammars.get(name)
        if base is None:
            drift.append(f"{name}: not present in baseline")
            continue
        for key, base_value in sorted(base.get("counters", {}).items()):
            value = entry["counters"].get(key)
            if value != base_value:
                drift.append(f"{name}: counter {key} {base_value} -> {value}")
        base_latency = base.get("latency_ms", {})
        for metric, value in sorted(entry.get("latency_ms", {}).items()):
            rows.append([name, metric, base_latency.get(metric, 0.0), value])
    for name in base_grammars:
        if name not in current.get("grammars", {}):
            drift.append(f"{name}: in baseline but not measured")
    return rows, drift


def main(argv: "Sequence[str] | None" = None) -> int:
    """``python -m repro.bench.service`` — see the module docstring."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.bench.service")
    parser.add_argument("grammars", nargs="*", default=DEFAULT_GRAMMARS,
                        help="corpus grammar names "
                             f"(default: {' '.join(DEFAULT_GRAMMARS)})")
    parser.add_argument("--requests", type=int, default=16, metavar="N",
                        help="parse requests per grammar (default 16)")
    parser.add_argument("--baseline", default="",
                        help="compare against a snapshot JSON "
                             "(exit 1 on counter drift)")
    parser.add_argument("--write-baseline", default="",
                        help="write a snapshot JSON instead of reporting")
    args = parser.parse_args(argv)

    snapshot = service_snapshot(args.grammars, parse_requests=args.requests)

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.write_baseline} ({len(snapshot['grammars'])} grammars)")
        return 0

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        rows, drift = compare_service_baseline(snapshot, baseline)
        print(f"{'grammar':16s} {'metric':14s} {'baseline ms':>12s} {'now ms':>12s}")
        for name, metric, base_value, value in rows:
            print(f"{name:16s} {metric:14s} {base_value:12,.3f} {value:12,.3f}")
        if drift:
            print("service-counter drift (serving contract changed?):")
            for message in drift:
                print(f"  {message}")
            return 1
        print("service counters match the baseline")
        return 0

    for name, entry in snapshot["grammars"].items():
        latency = entry["latency_ms"]
        counters = entry["counters"]
        print(
            f"{name:16s} states={counters['states']:<5d} "
            f"compile={latency['compile_cold']:8.3f}ms "
            f"parse p50={latency['parse_p50']:7.3f}ms "
            f"p95={latency['parse_p95']:7.3f}ms "
            f"(hot hits {counters['hot_hits_delta']})"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
